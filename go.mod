module whatsupersay

go 1.22
