package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testArgs appends a tiny scale so CLI tests stay fast.
func testArgs(args ...string) []string {
	return append(args, "-scale", "0.00005", "-seed", "2")
}

func TestUsageAndUnknown(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no-arg run must be a usage error")
	}
	if !strings.Contains(b.String(), "subcommands") {
		t.Error("usage missing")
	}
	if err := run([]string{"bogus"}, &b); err == nil {
		t.Error("unknown subcommand must error")
	}
	b.Reset()
	if err := run([]string{"help"}, &b); err != nil || !strings.Contains(b.String(), "compare-filters") {
		t.Error("help output wrong")
	}
	if !strings.Contains(b.String(), "build-store") || !strings.Contains(b.String(), "serve") {
		t.Error("usage missing the store subcommands")
	}
}

// TestExitCodes pins the process exit contract: 0 success and help,
// 1 runtime failure, 2 usage mistakes — and errors on stderr, never
// stdout.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"tables", "-t", "1"}, 0},
		{"help subcommand", []string{"help"}, 0},
		{"subcommand -h", []string{"tables", "-h"}, 0},
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"bogus"}, 2},
		{"bad flag", []string{"tables", "-no-such-flag"}, 2},
		{"bad flag value", []string{"tables", "-scale", "x"}, 2},
		{"missing required flag", []string{"analyze"}, 2},
		{"missing global value", []string{"tables", "-metrics"}, 2},
		{"runtime failure", []string{"analyze", "-in", "/no/such/file"}, 1},
		{"bad system", []string{"generate", "-system", "marsrover"}, 1},
	}
	for _, tc := range cases {
		var out, errw strings.Builder
		if got := runMain(tc.args, &out, &errw); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errw.String())
		}
		if tc.want == 1 && errw.Len() == 0 {
			t.Errorf("%s: runtime failure printed nothing to stderr", tc.name)
		}
		if tc.want != 0 && strings.Contains(out.String(), "logstudy:") {
			t.Errorf("%s: error text leaked to stdout", tc.name)
		}
	}
}

func TestRulesCommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"rules", "-system", "bgl"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "41 categories") {
		t.Errorf("BG/L rule count missing: %s", out)
	}
	if !strings.Contains(out, "$5 ~ /KERNEL/") {
		t.Error("awk-style rule missing")
	}
	b.Reset()
	if err := run([]string{"rules"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"Blue Gene/L", "Thunderbird", "Red Storm", "Spirit", "Liberty"} {
		if !strings.Contains(b.String(), sys) {
			t.Errorf("rules for %s missing", sys)
		}
	}
	if err := run([]string{"rules", "-system", "nope"}, &b); err == nil {
		t.Error("bad system must error")
	}
}

func TestTables1Command(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"tables", "-t", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "131072") {
		t.Error("Table 1 content missing")
	}
}

func TestTables5Command(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("tables", "-t", "5"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "FATAL") || !strings.Contains(out, "severity baseline") {
		t.Errorf("Table 5 output incomplete:\n%s", out)
	}
}

func TestTablesAllCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("tables"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1.", "Table 2.", "Table 3.", "Table 4 (Blue Gene/L).",
		"Table 4 (Liberty).", "Table 5.", "Table 6.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
	// Category columns intact at tiny scale.
	if !strings.Contains(out, "EXT_CCISS") || !strings.Contains(out, "KERNDTLB") {
		t.Error("table 4 rows missing")
	}
}

func TestGenerateCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "liberty.log")
	var b strings.Builder
	if err := run(testArgs("generate", "-system", "liberty", "-o", path), &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 1000 {
		t.Errorf("generated %d lines, want a real log", len(lines))
	}
	if !strings.Contains(b.String(), "wrote") {
		t.Error("summary line missing")
	}
	if err := run(testArgs("generate", "-system", "marsrover"), &b); err == nil {
		t.Error("bad system must error")
	}
}

func TestGenerateTreeCommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tree")
	var b strings.Builder
	if err := run(testArgs("generate", "-system", "liberty", "-tree", dir), &b); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 20 {
		t.Fatalf("tree has %d source files, want many", len(entries))
	}
	foundAdmin := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ladmin2") {
			foundAdmin = true
		}
	}
	if !foundAdmin {
		t.Error("ladmin2 per-source file missing")
	}
}

func TestCompareFiltersCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("compare-filters", "-system", "liberty", "-adaptive"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"simultaneous", "serial", "temporal", "spatial", "adaptive", "Alerts/Failure"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}

func TestRulesExportCommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"rules", "-system", "spirit", "-export"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `H EXT_CCISS`) || !strings.Contains(out, `program == "pbs_mom"`) {
		t.Errorf("export format missing rules:\n%s", out)
	}
}

func TestAnalyzeCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.log")
	var b strings.Builder
	if err := run(testArgs("generate", "-system", "liberty", "-o", path), &b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"analyze", "-in", path, "-system", "liberty"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ingested") || !strings.Contains(out, "Algorithm 3.1") {
		t.Errorf("analyze output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "PBS_CHK") {
		t.Error("per-category table missing")
	}

	// Analyze with an exported rule file: same shape.
	rulePath := filepath.Join(dir, "rules.txt")
	b.Reset()
	if err := run([]string{"rules", "-system", "liberty", "-export"}, &b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rulePath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"analyze", "-in", path, "-system", "liberty", "-rules", rulePath}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "custom rules") {
		t.Error("custom-rules path not used")
	}
	if err := run([]string{"analyze"}, &b); err == nil {
		t.Error("missing -in must error")
	}
}

func TestAnonymizeCommand(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.log")
	out := filepath.Join(dir, "out.log")
	content := "Mar  7 14:30:05 ln1 sshd: session opened for user zelda by (uid=0)\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"anonymize", "-in", in, "-o", out, "-key", "k"}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "zelda") {
		t.Error("username survived anonymization")
	}
	if !strings.Contains(b.String(), "0 residual leaks") {
		t.Errorf("audit summary missing: %s", b.String())
	}
	if err := run([]string{"anonymize", "-in", in}, &b); err == nil {
		t.Error("missing -key must error")
	}
}

func TestGenerateAndAnalyzeGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.log.gz")
	var b strings.Builder
	if err := run(testArgs("generate", "-system", "liberty", "-o", path), &b); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatal("output is not gzip")
	}
	b.Reset()
	if err := run([]string{"analyze", "-in", path, "-system", "liberty"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ingested") {
		t.Errorf("gz analyze failed:\n%s", b.String())
	}
}

func TestFiguresCSVExport(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(testArgs("figures", "-f", "2a", "-csv", dir), &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig2a_liberty_hourly.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "hour,messages\n") {
		t.Errorf("csv header wrong: %q", string(data[:20]))
	}
}

func TestSweepCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("sweep", "-system", "liberty"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "threshold sensitivity") || !strings.Contains(out, "5s") {
		t.Errorf("sweep output incomplete:\n%s", out)
	}
}

func TestCompareFiltersCorrelationFlag(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("compare-filters", "-system", "liberty", "-correlation"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "correlation-aware") || !strings.Contains(out, "learned category correlations") {
		t.Errorf("correlation output incomplete:\n%s", out)
	}
}

func TestDiscoverCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("discover", "-system", "tbird", "-min", "5"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "CPU") || !strings.Contains(out, "Multi-source %") {
		t.Errorf("discover output incomplete:\n%s", out)
	}
}

func TestMineCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("mine", "-system", "liberty", "-support", "5", "-top", "5"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "purity vs expert tags") {
		t.Errorf("mine output incomplete:\n%s", out)
	}
}

func TestJobsCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("jobs", "-system", "liberty"), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "alert-only estimate") || !strings.Contains(out, "node-hours lost") {
		t.Errorf("jobs output incomplete:\n%s", out)
	}
}

func TestFiguresCommand(t *testing.T) {
	var b strings.Builder
	if err := run(testArgs("figures", "-f", "1"), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("figure 1 missing")
	}
	b.Reset()
	if err := run(testArgs("figures", "-f", "3"), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "GM_PAR") {
		t.Error("figure 3 missing lanes")
	}
}
