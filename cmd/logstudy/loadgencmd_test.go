package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"whatsupersay/internal/bench"
)

// TestLoadgenEndToEndSharded is the acceptance run: the loadgen
// subcommand self-hosts a 4-shard serve tier in-process, completes the
// seeded closed-loop warmup plus open-loop ramp against it, and writes
// a load_reports section into the benchmark ledger. A second run with
// the same configuration upserts (replaces) its row instead of
// appending a duplicate.
func TestLoadgenEndToEndSharded(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	args := []string{
		"-shards", "4",
		"-system", "liberty",
		"-scale", "0.0002",
		"-seed", "5",
		"-ingesters", "3",
		"-queriers", "2",
		"-batch-lines", "50",
		"-step", "300ms",
		"-ramp-steps", "2",
		"-start-rate", "8",
		"-ramp-factor", "2",
		"-o", ledger,
	}
	var out bytes.Buffer
	if err := runLoadgen(args, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	for _, want := range []string{"plan:", "self-hosted liberty", "load report appended"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	led, err := bench.ReadJSON(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.LoadReports) != 1 {
		t.Fatalf("load_reports rows: %d, want 1", len(led.LoadReports))
	}
	rep := led.LoadReports[0]
	if rep.System != "liberty" || rep.Shards != 4 || rep.Ingesters != 3 || rep.Queriers != 2 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.PlanFingerprint == "" || rep.Cores < 1 {
		t.Fatalf("report missing fingerprint or cores: %+v", rep)
	}
	if len(rep.Steps) != 3 { // closed warmup + 2 ramp steps
		t.Fatalf("steps: %d, want 3", len(rep.Steps))
	}
	if rep.Steps[0].Mode != "closed" {
		t.Fatalf("step 0 mode %q", rep.Steps[0].Mode)
	}
	var ingestOK, queryOK int64
	for i, s := range rep.Steps {
		if i > 0 && (s.Mode != "open" || s.OfferedPerSec <= 0) {
			t.Fatalf("ramp step %d: %+v", i, s)
		}
		ingestOK += s.Ingest.OK
		queryOK += s.Query.OK
		if s.Ingest.OK > 0 {
			if _, ok := s.Ingest.LatencyQuantiles["p50"]; !ok {
				t.Fatalf("step %d missing ingest p50: %+v", i, s.Ingest.LatencyQuantiles)
			}
		}
	}
	if ingestOK == 0 || queryOK == 0 {
		t.Fatalf("no successful traffic: ingest %d, query %d", ingestOK, queryOK)
	}

	// Same configuration again: the row is replaced, not duplicated, and
	// the plan fingerprint is identical (determinism at the CLI layer).
	var out2 bytes.Buffer
	if err := runLoadgen(args, &out2); err != nil {
		t.Fatalf("loadgen rerun: %v\n%s", err, out2.String())
	}
	led2, err := bench.ReadJSON(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(led2.LoadReports) != 1 {
		t.Fatalf("after rerun load_reports rows: %d, want 1", len(led2.LoadReports))
	}
	if led2.LoadReports[0].PlanFingerprint != rep.PlanFingerprint {
		t.Fatalf("fingerprint drifted across runs: %s vs %s",
			led2.LoadReports[0].PlanFingerprint, rep.PlanFingerprint)
	}
}

// TestLoadgenUsageErrors pins the flag contract.
func TestLoadgenUsageErrors(t *testing.T) {
	var out bytes.Buffer
	err := runLoadgen([]string{"-target", "http://127.0.0.1:1", "-shards", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-shards only applies") {
		t.Fatalf("want usage error for -target + -shards, got %v", err)
	}
	err = runLoadgen([]string{"-system", "nosuch"}, &out)
	if err == nil {
		t.Fatal("want error for unknown system")
	}
}
