package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"whatsupersay/internal/correlate"
	"whatsupersay/internal/report"
	"whatsupersay/internal/store"
)

// runCorrelate is the batch counterpart of GET /api/correlations: mine
// the event-correlation graph from a store built by build-store (or
// filled through serve's ingest endpoint) in one scan and print the
// strongest precedence edges — which categories foreshadow which, how
// often, and with what typical lag. With -predict it also runs the
// live-prediction evaluation (the /api/predict scoreboard) over the
// same scan. The graph is byte-identical to what the online miner
// serves over the same entries — the differential tests pin that.
func runCorrelate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("correlate", flag.ContinueOnError)
	dir := fs.String("dir", "", "store directory (required)")
	window := fs.Duration("window", correlate.DefaultWindow, "co-occurrence window")
	nodes := fs.String("nodes", "category", "node identity: category, source-category, or template")
	minSupport := fs.Int("min-support", 2, "only edges with at least this many precedence pairs")
	minConfidence := fs.Float64("min-confidence", 0, "only edges with at least this P(target | source)")
	node := fs.String("node", "", "only edges touching this node (neighborhood view)")
	top := fs.Int("top", 20, "edges to print")
	asJSON := fs.Bool("json", false, "emit the filtered graph as JSON instead of a table")
	doPredict := fs.Bool("predict", false, "also evaluate the predictor pool and print the champion scoreboard")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *dir == "" {
		return usageError("correlate: -dir is required")
	}
	if *minSupport < 0 || *minConfidence < 0 || *minConfidence > 1 {
		return usageError("correlate: -min-support must be >= 0 and -min-confidence in [0, 1]")
	}
	nodeMode, err := correlate.ParseNodeMode(*nodes)
	if err != nil {
		return usageError(fmt.Sprintf("correlate: %v", err))
	}
	cfg := correlate.Config{Window: *window, NodeMode: nodeMode}

	st, _, err := store.Open(*dir, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()

	g, err := correlate.MineStore(st, cfg)
	if err != nil {
		return err
	}
	g.Edges = correlate.FilterEdges(g.Edges, int64(*minSupport), *minConfidence, *node)

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(g); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "%s events across %d %s nodes; %d edges above support %d / confidence %.2f (window %v)\n\n",
			report.Comma(int64(g.Events)), len(g.Nodes), g.NodeMode, len(g.Edges), *minSupport, *minConfidence, g.Window)
		t := report.NewTable("strongest precedence edges (source precedes target within the window)",
			"Source", "Target", "Pairs", "Confidence", "Mean Lag")
		for i, e := range g.Edges {
			if i >= *top {
				fmt.Fprintf(w, "... %d more edges\n", len(g.Edges)-*top)
				break
			}
			t.AddRow(e.Source, e.Target, report.Comma(e.Pairs),
				fmt.Sprintf("%.3f", e.Confidence), e.MeanLag.String())
		}
		t.Render(w)
	}

	if !*doPredict {
		return nil
	}
	rep, err := correlate.PredictStore(st, cfg, correlate.PredictOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nprediction scoreboard as of %s (%d events, %d categories, horizon %v):\n",
		rep.AsOf.Format("2006-01-02 15:04:05"), rep.Events, rep.Categories, rep.Horizon)
	t := report.NewTable("per-category champions (holdout precision/recall)",
		"Category", "Predictor", "Precision", "Recall", "F1", "Lead")
	for _, row := range rep.Scoreboard {
		lead := "-"
		if row.FromGraph {
			lead = row.Lag.String()
		}
		t.AddRow(row.Category, row.Predictor,
			fmt.Sprintf("%.3f", row.Precision), fmt.Sprintf("%.3f", row.Recall),
			fmt.Sprintf("%.3f", row.F1), lead)
	}
	t.Render(w)
	if len(rep.Warnings) == 0 {
		fmt.Fprintln(w, "no active warnings in the final horizon")
		return nil
	}
	fmt.Fprintf(w, "active warnings (%d):\n", len(rep.Warnings))
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "  %s  %-14s via %s\n",
			warn.Time.Format("2006-01-02 15:04:05"), warn.Category, warn.Predictor)
	}
	return nil
}
