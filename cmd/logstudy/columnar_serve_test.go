package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// HTTP-layer columnar differential: the /api/aggregate bytes a
// columnar-backed server produces must equal the bytes a row-decode
// server produces over the same store, for every filter the API can
// express — including the body predicate, where both sides take the
// decode path. The sharded variant pins the scatter-gather tier (whose
// per-shard engines choose their own path) against a single decode
// reference.

// getRaw fetches a URL and returns the exact response bytes.
func getRaw(t *testing.T, rawURL string) []byte {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", rawURL, resp.StatusCode, body)
	}
	return body
}

// columnarParams is the query matrix for the HTTP differentials. The
// body= cases exercise the decode fallback end to end.
func columnarParams(entries []store.Entry) []url.Values {
	mid := entries[len(entries)/2].Record.Time
	late := entries[3*len(entries)/4].Record.Time
	kept := entries[0].Category
	return []url.Values{
		{},
		{"category": {kept}},
		{"source": {entries[0].Record.Source}},
		{"kept": {"true"}},
		{"from": {mid.Format(time.RFC3339Nano)}, "to": {late.Format(time.RFC3339Nano)}},
		{"topk": {"3"}, "quantiles": {"0.5,0.95"}},
		{"body": {"."}},
		{"body": {"no such substring anywhere"}},
		{"body": {"."}, "kept": {"true"}},
	}
}

// TestAggregateColumnarMatchesDecodeOverHTTP serves one store through
// two API handlers — columnar allowed and columnar disabled — and pins
// their /api/aggregate responses byte-equal.
func TestAggregateColumnarMatchesDecodeOverHTTP(t *testing.T) {
	s := newTestStudy(t)
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	st, err := store.Create(t.TempDir(), s.System, store.Options{FlushEvery: len(entries)/3 + 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}

	columnar := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(columnar.Close)
	decode := httptest.NewServer(newTestAPI(t, st, apiOptions{DisableColumnar: true}))
	t.Cleanup(decode.Close)

	for _, p := range columnarParams(entries) {
		q := p.Encode()
		got := getRaw(t, columnar.URL+"/api/aggregate?"+q)
		want := getRaw(t, decode.URL+"/api/aggregate?"+q)
		if string(got) != string(want) {
			t.Errorf("%q: columnar response diverges from decode\ncolumnar: %s\ndecode:   %s", q, got, want)
		}
	}
}

// TestBodyFilterOverHTTP checks the body predicate against the linear
// reference: the filtered total must equal a direct count over the
// entries, and must be a strict subset when the substring is selective.
func TestBodyFilterOverHTTP(t *testing.T) {
	s := newTestStudy(t)
	srv, entries := newTestServer(t, s)

	// Pick a substring that matches some but not all bodies.
	needle := entries[0].Record.Body
	if len(needle) > 8 {
		needle = needle[:8]
	}
	f := store.Filter{BodyContains: needle}
	want := 0
	for _, en := range entries {
		if matchesFilter(f, en) {
			want++
		}
	}

	var resp struct {
		Aggregate struct {
			Total int `json:"total"`
		} `json:"aggregate"`
	}
	getJSON(t, srv.URL+"/api/aggregate?body="+url.QueryEscape(needle), &resp)
	if resp.Aggregate.Total != want {
		t.Fatalf("body filter total = %d, linear reference = %d", resp.Aggregate.Total, want)
	}
	getJSON(t, srv.URL+"/api/aggregate?body="+url.QueryEscape("no such substring anywhere"), &resp)
	if resp.Aggregate.Total != 0 {
		t.Fatalf("impossible body filter matched %d entries", resp.Aggregate.Total)
	}
}

// TestShardedAggregateMatchesDecodeReference is the sharded columnar
// differential: {1, 2, 4, 7} shards (whose engines use the columnar
// path where their backends allow it) against a single-store reference
// forced through row decode — byte equality of the aggregate for every
// query shape, body fallback included.
func TestShardedAggregateMatchesDecodeReference(t *testing.T) {
	s := newTestStudy(t)
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	st, err := store.Create(t.TempDir(), s.System, store.Options{FlushEvery: len(entries)/3 + 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	decode := httptest.NewServer(newTestAPI(t, st, apiOptions{DisableColumnar: true}))
	t.Cleanup(decode.Close)

	for _, n := range []int{1, 2, 4, 7} {
		srv, _ := newShardTestServer(t, entries, n, shard.Options{})
		for _, p := range columnarParams(entries) {
			q := p.Encode()
			var want shardAggResponse
			getJSON(t, decode.URL+"/api/aggregate?"+q, &want)
			var got shardAggResponse
			getJSON(t, srv.URL+"/api/aggregate?"+q, &got)
			if got.Partial {
				t.Fatalf("%d shards, %q: partial answer on a healthy cluster", n, q)
			}
			if string(got.Aggregate) != string(want.Aggregate) {
				t.Errorf("%d shards, %q: sharded aggregate diverges from decode reference\nsharded: %s\ndecode:  %s",
					n, q, got.Aggregate, want.Aggregate)
			}
		}
	}
}
