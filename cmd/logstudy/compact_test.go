package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/store"
)

// TestAggregateByteIdenticalAcrossCompactionAndCache is the PR's
// acceptance differential: for a battery of filters, the /api/aggregate
// "aggregate" payload is byte-identical (a) before compaction, (b)
// after compaction, and (c) on a cache hit — compaction and the cache
// are pure optimizations, never semantics changes. The "stats" side
// channel legitimately reflects the storage layout (fewer, larger
// segments after a merge), so it is pinned only between a
// post-compaction miss and its cache hit, where the store is unchanged
// and the full body must match to the byte.
func TestAggregateByteIdenticalAcrossCompactionAndCache(t *testing.T) {
	s := newTestStudy(t)
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: len(entries)/6 + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{CacheSize: 32}))
	defer srv.Close()

	// get returns the full response body and the raw bytes of its
	// "aggregate" field.
	get := func(params url.Values) (body, agg string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/api/aggregate?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("aggregate: %d %v: %s", resp.StatusCode, err, raw)
		}
		var fields struct {
			Aggregate json.RawMessage `json:"aggregate"`
		}
		if err := json.Unmarshal(raw, &fields); err != nil {
			t.Fatalf("aggregate response is not JSON: %v: %s", err, raw)
		}
		return string(raw), string(fields.Aggregate)
	}

	kept := "true"
	batteries := []url.Values{
		{},
		{"category": {entries[0].Category}},
		{"kept": {kept}},
		{"topk": {"3"}, "quantiles": {"0.5,0.95"}},
		{"source": {entries[0].Record.Source}},
	}

	before := make([]string, len(batteries))
	for i, p := range batteries {
		_, before[i] = get(p)
	}

	segsBefore := len(st.Segments())
	cst, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Compactions == 0 || len(st.Segments()) >= segsBefore {
		t.Fatalf("compaction did not restructure the store: %+v", cst)
	}

	for i, p := range batteries {
		missBody, afterCompact := get(p) // fresh fingerprint: recomputed from the merged layout
		if afterCompact != before[i] {
			t.Errorf("battery %d: aggregate changed across compaction\nbefore: %s\nafter:  %s", i, before[i], afterCompact)
		}
		hitBody, cacheHit := get(p) // unchanged store: served from the cache
		if cacheHit != before[i] {
			t.Errorf("battery %d: cache hit aggregate diverges\nmiss: %s\nhit:  %s", i, before[i], cacheHit)
		}
		if hitBody != missBody {
			t.Errorf("battery %d: cached full body (stats included) diverges from its miss\nmiss: %s\nhit:  %s", i, missBody, hitBody)
		}
	}
}

// TestIngestBodyLimitReturns413 pins the -max-body contract: an
// oversized POST /api/ingest is rejected with 413 and a JSON error, and
// nothing from it reaches the store.
func TestIngestBodyLimitReturns413(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{MaxBody: 512}))
	defer srv.Close()

	big := strings.Repeat("x", 2048)
	resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body is not a JSON error: %s", body)
	}
	if st.Len() != 0 {
		t.Fatalf("rejected body reached the store: %d entries", st.Len())
	}

	// A body under the cap still works end to end.
	resp, err = http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader("not a log line\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body rejected: %d", resp.StatusCode)
	}
}

// TestCompactCommand drives the subcommand end to end: build a store
// with many small segments, compact it, and check the inventory shrank
// without changing the served aggregate.
func TestCompactCommand(t *testing.T) {
	dir := t.TempDir() + "/alerts"
	if err := run(testArgs("build-store", "-system", "liberty", "-dir", dir, "-flush-every", "300"), io.Discard); err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	segsBefore := len(st.Segments())
	wantEntries := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if segsBefore < 2 {
		t.Fatalf("fixture store too coarse: %d segments", segsBefore)
	}

	var b strings.Builder
	if err := run([]string{"compact", "-dir", dir}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "compacted") {
		t.Fatalf("no compaction summary: %s", b.String())
	}

	st2, rep, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.SupersededSegments != 0 || rep.TailDedupedEntries != 0 {
		t.Fatalf("compact left recovery work: %+v", rep)
	}
	if got := len(st2.Segments()); got >= segsBefore {
		t.Fatalf("segments %d, want fewer than %d", got, segsBefore)
	}
	if st2.Len() != wantEntries {
		t.Fatalf("entries %d, want %d", st2.Len(), wantEntries)
	}

	// Usage contract: missing -dir is exit-code-2 material.
	if err := run([]string{"compact"}, io.Discard); err == nil {
		t.Error("missing -dir must error")
	}
}
