// Command logstudy drives the reproduction of "What Supercomputers Say: A
// Study of Five System Logs" (DSN 2007): it generates calibrated synthetic
// logs for the five machines, runs the tag → filter → analyze pipeline,
// and prints each of the paper's tables and figures.
//
// Usage:
//
//	logstudy tables  [-t 1|2|3|4|5|6|all] [-scale S] [-seed N]
//	logstudy figures [-f 1|2a|2b|3|4|5|6|all] [-scale S] [-seed N] [-adaptive]
//	logstudy generate -system bgl|tbird|redstorm|spirit|liberty [-scale S] [-seed N] [-o FILE]
//	logstudy compare-filters [-system NAME] [-scale S] [-seed N] [-adaptive]
//	logstudy analyze -in FILE [-system NAME] [-rules FILE]
//	logstudy ingest -in FILE [-system NAME] [-resume CKPT] [-max-errors N] [-quarantine FILE] [-inject SPEC]
//	logstudy anonymize -in FILE -key K [-o FILE]
//	logstudy discover [-system NAME] [-window D] [-min N]
//	logstudy mine [-system NAME] [-support N] [-top N]
//	logstudy jobs [-system NAME] [-category CAT] [-checkpoint D]
//	logstudy rules [-system NAME] [-export]
//	logstudy bench [-system NAME|all] [-scale S] [-seed N] [-iters N] [-workers N] [-o FILE]
//	logstudy build-store -dir DIR [-system NAME] [-scale S] [-seed N] [-in FILE] [-compact]
//	logstudy serve -dir DIR [-addr ADDR] [-system NAME] [-max-body N] [-cache N] [-compact-every D] [-retention D] [-graphite ADDR]
//	logstudy loadgen [-target URL | -shards N] [-system NAME] [-ingesters K] [-queriers M] [-ramp-steps N] [-o FILE]
//	logstudy compact -dir DIR [-target N] [-retention D]
//	logstudy correlate -dir DIR [-window D] [-nodes MODE] [-min-support N] [-min-confidence P] [-top N] [-json] [-predict]
//
// Exit status is 0 on success (including -h/help), 1 on a runtime
// failure, and 2 on a command-line usage error.
//
// Every subcommand additionally accepts the global observability flags
// (before or after the subcommand name):
//
//	-metrics FILE  write a JSON snapshot of all pipeline telemetry at exit
//	-http ADDR     serve Prometheus /metrics and /debug/pprof on ADDR
//	-v             print the per-stage latency summary table at exit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"whatsupersay/internal/anonymize"
	"whatsupersay/internal/bench"
	"whatsupersay/internal/catalog"
	"whatsupersay/internal/cluster"
	"whatsupersay/internal/core"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/mining"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/report"
	"whatsupersay/internal/rules"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/tag"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runMain maps a run's outcome onto the process exit code contract
// shared by every subcommand: 0 on success (including -h/help), 1 on a
// runtime failure, 2 on a command-line usage mistake. Errors always
// land on errw (stderr), never stdout.
func runMain(args []string, out, errw io.Writer) int {
	err := run(args, out)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errBadFlags):
		// The flag package already printed the specific problem.
		return 2
	default:
		fmt.Fprintln(errw, "logstudy:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
}

// errBadFlags marks a flag-parse failure the flag package has already
// reported to stderr; runMain exits 2 without printing it again.
var errBadFlags = errors.New("invalid flags")

// usageError is a command-line usage mistake (missing subcommand,
// missing required flag): printed to stderr and exits 2.
type usageError string

func (e usageError) Error() string { return string(e) }

// parseFlags normalizes the three outcomes every subcommand's flag
// parse shares: -h/-help prints the flag help and succeeds (exit 0),
// a bad flag becomes errBadFlags (exit 2), and success proceeds.
func parseFlags(fs *flag.FlagSet, args []string) (help bool, err error) {
	switch err := fs.Parse(args); {
	case err == nil:
		return false, nil
	case errors.Is(err, flag.ErrHelp):
		return true, nil
	default:
		return false, fmt.Errorf("%s: %w", fs.Name(), errBadFlags)
	}
}

// globalOpts are the observability flags every subcommand accepts,
// written before or after the subcommand name.
type globalOpts struct {
	metricsPath string // -metrics: JSON telemetry snapshot at exit
	httpAddr    string // -http: serve /metrics (Prometheus) and /debug/pprof
	verbose     bool   // -v: print the per-stage summary table at exit
}

// extractGlobal strips the global observability flags out of args,
// leaving the subcommand and its own flags untouched. Both "-flag value"
// and "-flag=value" spellings are accepted.
func extractGlobal(args []string) ([]string, globalOpts, error) {
	var g globalOpts
	var rest []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		if !strings.HasPrefix(a, "-") {
			rest = append(rest, a)
			continue
		}
		name, val, hasVal := strings.Cut(strings.TrimLeft(a, "-"), "=")
		switch name {
		case "metrics", "http":
			if !hasVal {
				i++
				if i >= len(args) {
					return nil, g, usageError(fmt.Sprintf("-%s requires a value", name))
				}
				val = args[i]
			}
			if name == "metrics" {
				g.metricsPath = val
			} else {
				g.httpAddr = val
			}
		case "v":
			g.verbose = true
		default:
			rest = append(rest, a)
		}
	}
	return rest, g, nil
}

func run(args []string, w io.Writer) error {
	args, g, err := extractGlobal(args)
	if err != nil {
		return err
	}
	if g.httpAddr != "" {
		addr, stop, err := obs.Serve(g.httpAddr, obs.Default)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(w, "serving /metrics and /debug/pprof on http://%s/\n", addr)
	}
	err = dispatch(args, w)
	if g.verbose {
		fmt.Fprintln(w)
		obs.Default.WriteSummary(w)
	}
	if g.metricsPath != "" {
		if werr := obs.Default.WriteJSONFile(g.metricsPath); werr != nil {
			if err == nil {
				err = werr
			}
		} else {
			fmt.Fprintf(w, "telemetry snapshot written to %s\n", g.metricsPath)
		}
	}
	return err
}

func dispatch(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return usageError("a subcommand is required")
	}
	switch args[0] {
	case "tables":
		return runTables(args[1:], w)
	case "figures":
		return runFigures(args[1:], w)
	case "generate":
		return runGenerate(args[1:], w)
	case "compare-filters":
		return runCompareFilters(args[1:], w)
	case "analyze":
		return runAnalyze(args[1:], w)
	case "ingest":
		return runIngest(args[1:], w)
	case "discover":
		return runDiscover(args[1:], w)
	case "mine":
		return runMine(args[1:], w)
	case "jobs":
		return runJobs(args[1:], w)
	case "sweep":
		return runSweep(args[1:], w)
	case "anonymize":
		return runAnonymize(args[1:], w)
	case "rules":
		return runRules(args[1:], w)
	case "bench":
		return runBench(args[1:], w)
	case "build-store":
		return runBuildStore(args[1:], w)
	case "serve":
		return runServe(args[1:], w)
	case "loadgen":
		return runLoadgen(args[1:], w)
	case "compact":
		return runCompact(args[1:], w)
	case "correlate":
		return runCorrelate(args[1:], w)
	case "help", "-h", "--help":
		usage(w)
		return nil
	default:
		usage(w)
		return usageError(fmt.Sprintf("unknown subcommand %q", args[0]))
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `logstudy - reproduce "What Supercomputers Say" (DSN 2007)

subcommands:
  tables           print Tables 1-6 (measured from synthetic logs)
  figures          print Figures 2a, 2b, 3, 4, 5, 6
  generate         emit one system's synthetic log text
  compare-filters  simultaneous vs serial filtering (Section 3.3.2)
  analyze          ingest a log file: tag, filter, summarize
  ingest           fault-tolerant streaming ingestion: retries, quarantine,
                   checkpoint/resume, optional chaos injection (-inject)
  anonymize        pseudonymize a log file (usernames, IPs) and audit it
  discover         rank categories by spatial correlation and burstiness (Section 4)
  mine             discover message templates (SLCT-style) and score vs expert tags
  jobs             workload overlay: killed jobs, lost node-hours, RAS metrics
  sweep            filtering-threshold sensitivity (the paper fixes T=5s)
  rules            print the expert tagging rules (awk-style or file format)
  bench            time each pipeline stage serial vs parallel; write the
                   BENCH_pipeline.json ledger
  build-store      run the pipeline once and persist tagged + filtered
                   alerts as a segment-indexed store (-dir)
  serve            answer /api/query, /api/aggregate, /api/segments, and
                   POST /api/ingest over a store, without re-running the
                   pipeline
  loadgen          drive a live serve endpoint (or a self-hosted one) with
                   concurrent ingesters and queriers on a seeded plan:
                   latency quantiles, throughput, and the saturation knee,
                   appended to the BENCH_pipeline.json ledger
  compact          merge a store's small segments into large sorted ones
                   and apply the retention horizon (-dir)
  correlate        mine the event-correlation graph from a store in one
                   scan: which categories precede which, with what
                   confidence and lag (-predict adds the champion
                   prediction scoreboard)

global flags (any subcommand, before or after its name):
  -metrics FILE    write a JSON snapshot of all pipeline telemetry at exit
  -http ADDR       serve Prometheus /metrics and /debug/pprof on ADDR
                   (e.g. -http localhost:6060)
  -v               print the per-stage latency summary table at exit`)
}

// studyIndex maps studies by system.
func studyIndex(studies []*core.Study) map[logrec.System]*core.Study {
	out := make(map[logrec.System]*core.Study, len(studies))
	for _, s := range studies {
		out[s.System] = s
	}
	return out
}

// commonFlags registers the scale/seed flags shared by subcommands.
func commonFlags(fs *flag.FlagSet) (*float64, *int64) {
	scale := fs.Float64("scale", simulate.DefaultScale, "volume scale relative to the paper's logs")
	seed := fs.Int64("seed", 1, "random seed")
	return scale, seed
}

func runTables(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	which := fs.String("t", "all", "table to print (1-6 or all)")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	want := func(t string) bool { return *which == "all" || *which == t }

	if want("1") {
		core.Table1().Render(w)
		fmt.Fprintln(w)
		if *which == "1" {
			return nil
		}
	}

	studies, err := core.NewAll(*scale, *seed)
	if err != nil {
		return err
	}
	byName := studyIndex(studies)

	if want("2") {
		t, err := core.Table2(studies)
		if err != nil {
			return err
		}
		t.Render(w)
		fmt.Fprintln(w)
	}
	if want("3") {
		core.Table3(studies).Render(w)
		fmt.Fprintln(w)
	}
	if want("4") {
		for _, s := range studies {
			core.Table4(s).Render(w)
			fmt.Fprintln(w)
		}
	}
	if want("5") {
		bgl := byName[logrec.BlueGeneL]
		core.Table5(bgl).Render(w)
		conf := core.Table5Baseline(bgl)
		fmt.Fprintf(w, "severity baseline (FATAL/FAILURE => alert): FP %.2f%%, FN %.2f%% (paper: 59.34%%, 0%%)\n\n",
			100*conf.FalsePositiveRate(), 100*conf.FalseNegativeRate())
	}
	if want("6") {
		core.Table6(byName[logrec.RedStorm]).Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

func runFigures(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	which := fs.String("f", "all", "figure to print (1, 2a, 2b, 3, 4, 5, 6, all)")
	adaptive := fs.Bool("adaptive", false, "use per-category adaptive thresholds for figure 6")
	csvDir := fs.String("csv", "", "also write each figure's series as CSV into this directory")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	want := func(f string) bool { return *which == "all" || *which == f }
	writeCSV := func(name string, xName, yName string, xs, ys []float64) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		report.CSV(f, xName, yName, xs, ys)
		return nil
	}

	newStudy := func(sys logrec.System, alertScale float64) (*core.Study, error) {
		return core.New(simulate.Config{System: sys, Scale: *scale, AlertScale: alertScale, Seed: *seed})
	}

	if want("1") {
		bgl, err := newStudy(logrec.BlueGeneL, 0)
		if err != nil {
			return err
		}
		core.RenderFigure1(w, bgl)
		fmt.Fprintln(w)
	}
	if want("2a") || want("2b") || want("3") || want("4") {
		liberty, err := newStudy(logrec.Liberty, 1)
		if err != nil {
			return err
		}
		if want("2a") {
			core.RenderFigure2a(w, liberty)
			fmt.Fprintln(w)
			d := core.Figure2a(liberty)
			xs := make([]float64, len(d.Hourly))
			ys := make([]float64, len(d.Hourly))
			for i, c := range d.Hourly {
				xs[i], ys[i] = float64(i), float64(c)
			}
			if err := writeCSV("fig2a_liberty_hourly.csv", "hour", "messages", xs, ys); err != nil {
				return err
			}
		}
		if want("2b") {
			core.RenderFigure2b(w, liberty, 12)
			fmt.Fprintln(w)
			d := core.Figure2b(liberty)
			xs := make([]float64, len(d.Ranked))
			ys := make([]float64, len(d.Ranked))
			for i, sc := range d.Ranked {
				xs[i], ys[i] = float64(i+1), float64(sc.Count)
			}
			if err := writeCSV("fig2b_liberty_sources.csv", "rank", "messages", xs, ys); err != nil {
				return err
			}
		}
		if want("3") {
			core.RenderFigure3(w, liberty, "GM_PAR", "GM_LANAI")
			fmt.Fprintln(w)
		}
		if want("4") {
			core.RenderFigure4(w, liberty)
			fmt.Fprintln(w)
		}
	}
	if want("5") {
		tbird, err := newStudy(logrec.Thunderbird, 0)
		if err != nil {
			return err
		}
		if err := core.RenderFigure5(w, tbird, "ECC"); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if d, err := core.Figure5(tbird, "ECC"); err == nil {
			xs := make([]float64, len(d.Interarrivals))
			for i := range xs {
				xs[i] = float64(i + 1)
			}
			if err := writeCSV("fig5_tbird_ecc_gaps.csv", "n", "gap_seconds", xs, d.Interarrivals); err != nil {
				return err
			}
		}
	}
	if want("6") {
		for _, sys := range []logrec.System{logrec.BlueGeneL, logrec.Spirit} {
			s, err := newStudy(sys, 0)
			if err != nil {
				return err
			}
			if *adaptive {
				th := core.AdaptiveThresholds(s)
				s.Filtered = filter.Adaptive{Thresholds: th, Default: filter.DefaultThreshold}.Filter(s.Alerts)
				fmt.Fprintln(w, "(adaptive per-category thresholds)")
			}
			core.RenderFigure6(w, s)
			fmt.Fprintln(w)
			d := core.Figure6(s)
			xs := make([]float64, len(d.LogHist.Counts))
			ys := make([]float64, len(d.LogHist.Counts))
			for i, c := range d.LogHist.Counts {
				xs[i], ys[i] = d.LogHist.BinCenter(i), float64(c)
			}
			name := fmt.Sprintf("fig6_%s_interarrival_loghist.csv", sys.ShortName())
			if err := writeCSV(name, "gap_seconds_bin_center", "count", xs, ys); err != nil {
				return err
			}
		}
	}
	return nil
}

func runGenerate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	sysName := fs.String("system", "liberty", "system to generate (bgl, tbird, redstorm, spirit, liberty)")
	outPath := fs.String("o", "", "output file (default stdout)")
	treeDir := fs.String("tree", "", "write the per-source directory layout of Section 3.1 into this directory instead")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	out, err := simulate.Generate(simulate.Config{System: sys, Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	if *treeDir != "" {
		render := func(r logrec.Record) string { return r.Raw }
		if err := ingest.WriteTree(*treeDir, out.Records, render, true); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s lines into per-source files under %s\n",
			report.Comma(int64(len(out.Records))), *treeDir)
		return nil
	}
	if *outPath != "" {
		// .gz paths are compressed transparently.
		n, err := ingest.WriteLines(*outPath, out.Lines)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s lines (%s bytes) to %s\n",
			report.Comma(int64(len(out.Lines))), report.Comma(n), *outPath)
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, line := range out.Lines {
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func runCompareFilters(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("compare-filters", flag.ContinueOnError)
	sysName := fs.String("system", "spirit", "system to compare on")
	adaptive := fs.Bool("adaptive", false, "include the adaptive-threshold filter")
	correlation := fs.Bool("correlation", false, "include the correlation-aware filter and print its learned groups")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	s, err := core.New(simulate.Config{System: sys, Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	algs := []filter.Algorithm{
		filter.Simultaneous{T: filter.DefaultThreshold},
		filter.Serial{T: filter.DefaultThreshold},
		filter.Temporal{T: filter.DefaultThreshold},
		filter.Spatial{T: filter.DefaultThreshold},
		filter.Tuple{T: filter.DefaultThreshold},
	}
	if *adaptive {
		algs = append(algs, filter.Adaptive{Thresholds: core.AdaptiveThresholds(s), Default: filter.DefaultThreshold})
	}
	if *correlation {
		algs = append(algs, filter.CorrelationAware{T: filter.DefaultThreshold})
	}
	results := core.CompareFilters(s, algs...)
	t := report.NewTable(fmt.Sprintf("Filter comparison on %s (%s raw alerts)", s.System, report.Comma(int64(len(s.Alerts)))),
		"Algorithm", "Kept", "Removed", "Incidents", "Missed", "Redundant Kept", "Alerts/Failure", "Elapsed")
	for _, r := range results {
		t.AddRow(r.Algorithm, r.Stats.Output, r.Stats.Removed,
			r.Accuracy.Incidents, r.Accuracy.MissedIncidents, r.Accuracy.RedundantKept,
			fmt.Sprintf("%.3f", r.Accuracy.AlertsPerFailure()), r.Elapsed.String())
	}
	t.Render(w)

	diff := core.SurvivorDiff(s, filter.Serial{T: filter.DefaultThreshold}, filter.Simultaneous{T: filter.DefaultThreshold})
	if len(diff) > 0 {
		fmt.Fprintln(w, "\nalerts kept by serial but removed by simultaneous, by category:")
		for cat, n := range diff {
			fmt.Fprintf(w, "  %-12s %d\n", cat, n)
		}
	}
	if *correlation {
		groups := (filter.CorrelationAware{T: filter.DefaultThreshold}).Learn(s.Alerts)
		fmt.Fprintln(w, "\nlearned category correlations (Section 5 future work):")
		gs := groups.Groups()
		if len(gs) == 0 {
			fmt.Fprintln(w, "  (none above threshold)")
		}
		for _, g := range gs {
			fmt.Fprintf(w, "  %s\n", strings.Join(g, " + "))
		}
	}
	return nil
}

func runRules(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rules", flag.ContinueOnError)
	sysName := fs.String("system", "all", "system whose rules to print")
	export := fs.Bool("export", false, "emit the loadable rule-file format instead of the awk view")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	systems := logrec.Systems()
	if *sysName != "all" {
		sys, err := logrec.ParseSystem(*sysName)
		if err != nil {
			return err
		}
		systems = []logrec.System{sys}
	}
	for _, sys := range systems {
		if *export {
			if err := rules.Export(w, sys); err != nil {
				return err
			}
			fmt.Fprintln(w)
			continue
		}
		fmt.Fprintf(w, "%s (%d categories):\n", sys, len(catalog.BySystem(sys)))
		for _, c := range tag.NewTagger(sys).Rules() {
			fmt.Fprintf(w, "  %s/%-10s %s\n", c.Type.Code(), c.Name, tag.AwkSource(c))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runAnalyze(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	inPath := fs.String("in", "", "log file to analyze (required)")
	sysName := fs.String("system", "liberty", "system the log belongs to")
	rulesPath := fs.String("rules", "", "optional custom rule file (default: built-in expert rules)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *inPath == "" {
		return usageError("analyze: -in is required")
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	f, err := ingest.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := cluster.New(sys)
	if err != nil {
		return err
	}
	recs, stats, err := ingest.ReadAll(f, sys, m.LogStart)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ingested %s lines (%d parse errors; %d syslog, %d RAS, %d event)\n",
		report.Comma(int64(stats.Lines)), stats.ParseErrors, stats.Syslog, stats.RAS, stats.Event)

	var alerts []tag.Alert
	if *rulesPath != "" {
		rf, err := os.Open(*rulesPath)
		if err != nil {
			return err
		}
		set, lerr := rules.Load(rf)
		rf.Close()
		if lerr != nil {
			return lerr
		}
		alerts = tagWithSet(recs, set)
		fmt.Fprintf(w, "tagged with %d custom rules from %s\n", len(set.Rules), *rulesPath)
	} else {
		alerts = tag.NewTagger(sys).TagAll(recs)
	}
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	fmt.Fprintf(w, "alerts: %s raw, %s after Algorithm 3.1 (T=5s), %d categories observed\n\n",
		report.Comma(int64(len(alerts))), report.Comma(int64(len(filtered))), tag.CategoriesObserved(alerts))

	t := report.NewTable("alerts by category", "Type/Cat.", "Raw", "Filtered")
	raw := tag.CountByCategory(alerts)
	filt := tag.CountByCategory(filtered)
	for _, c := range catalog.BySystem(sys) {
		if raw[c.Name] == 0 {
			continue
		}
		t.AddRow(c.Type.Code()+" / "+c.Name, report.Comma(int64(raw[c.Name])), report.Comma(int64(filt[c.Name])))
	}
	t.Render(w)
	return nil
}

// tagWithSet tags records using a custom rule set, mapping rule names
// back to catalog categories when they exist (so downstream type
// accounting still works) and synthesizing ad-hoc categories otherwise.
func tagWithSet(recs []logrec.Record, set *rules.Set) []tag.Alert {
	adHoc := map[string]*catalog.Category{}
	var alerts []tag.Alert
	for _, r := range recs {
		rule, ok := set.Tag(r)
		if !ok {
			continue
		}
		c, ok := catalog.Lookup(r.System, rule.Name)
		if !ok {
			c = adHoc[rule.Name]
			if c == nil {
				c = &catalog.Category{System: r.System, Name: rule.Name, Type: rule.Type, Raw: 1, Filtered: 1, Pattern: rule.Source}
				adHoc[rule.Name] = c
			}
		}
		alerts = append(alerts, tag.Alert{Record: r, Category: c})
	}
	return alerts
}

func runDiscover(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("discover", flag.ContinueOnError)
	sysName := fs.String("system", "tbird", "system to analyze")
	window := fs.Duration("window", 30*time.Second, "spatial clustering window")
	minEvents := fs.Int("min", 20, "minimum raw alerts for a category to be scored")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	s, err := core.New(simulate.Config{System: sys, Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	scores := core.DiscoverSpatialCorrelation(s, *window, *minEvents)
	fano := core.BurstinessByCategory(s, *minEvents)
	t := report.NewTable(
		fmt.Sprintf("Spatial correlation and burstiness on %s (window %v)", s.System, *window),
		"Category", "Events", "Clusters", "Multi-source %", "Mean Sources", "Fano (hourly)")
	for _, sc := range scores {
		t.AddRow(sc.Category, sc.Score.Events, sc.Score.Windows,
			fmt.Sprintf("%.1f", 100*sc.Score.Index()),
			fmt.Sprintf("%.2f", sc.Score.MeanSources),
			fmt.Sprintf("%.1f", fano[sc.Category]))
	}
	t.Render(w)
	fmt.Fprintln(w, "\nhigh multi-source share = job-coupled (the SMP clock bug discovery signal);")
	fmt.Fprintln(w, "near zero = independent physical process (ECC).")
	return nil
}

func runMine(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	sysName := fs.String("system", "liberty", "system to mine")
	support := fs.Int("support", 20, "minimum (position, token) support")
	top := fs.Int("top", 15, "templates to print")
	maxBodies := fs.Int("max", 100000, "maximum bodies to mine (0 = all)")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	s, err := core.New(simulate.Config{System: sys, Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	rep := core.MineTemplates(s, mining.Config{Support: *support}, *maxBodies)
	fmt.Fprintf(w, "mined %d templates from %s messages; purity vs expert tags %.3f\n\n",
		len(rep.Templates), report.Comma(int64(rep.Messages)), rep.AlertPurity)
	for i, tp := range rep.Templates {
		if i >= *top {
			fmt.Fprintf(w, "... %d more templates\n", len(rep.Templates)-*top)
			break
		}
		pattern := tp.String()
		if len(pattern) > 90 {
			pattern = pattern[:87] + "..."
		}
		fmt.Fprintf(w, "%8s  %s\n", report.Comma(int64(tp.Count)), pattern)
	}
	return nil
}

func runJobs(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	sysName := fs.String("system", "liberty", "system to analyze")
	category := fs.String("category", "PBS_CHK", "job-fatal alert category")
	checkpoint := fs.Duration("checkpoint", time.Hour, "checkpoint interval for the lost-work comparison")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	s, err := core.New(simulate.Config{System: sys, Scale: *scale, AlertScale: 1, Seed: *seed})
	if err != nil {
		return err
	}
	imp := core.JobImpact(s, *category, *seed, *checkpoint)
	ras := core.RAS(s)
	fmt.Fprintf(w, "%s %s job impact:\n", s.System, *category)
	fmt.Fprintf(w, "  workload: %s jobs; killed in overlay: %d; alert-only estimate: %d\n",
		report.Comma(int64(imp.Jobs)), imp.GroundTruthKilled, imp.EstimatedKilled)
	fmt.Fprintf(w, "  node-hours lost: %.1f uncheckpointed, %.1f with %v checkpoints\n",
		imp.LostNodeHours, imp.LostNodeHoursCheckpointed, imp.CheckpointInterval)
	fmt.Fprintf(w, "  production availability %.4f; log-derived MTBF %v (discouraged; see Section 5)\n",
		ras.Metrics.Availability(), ras.LogMTBF)
	return nil
}

func runSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	sysName := fs.String("system", "spirit", "system to sweep on")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	s, err := core.New(simulate.Config{System: sys, Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	rows := core.ThresholdSweep(s, core.DefaultSweepThresholds())
	t := report.NewTable(
		fmt.Sprintf("Algorithm 3.1 threshold sensitivity on %s (%s raw alerts; paper uses T=5s)",
			s.System, report.Comma(int64(len(s.Alerts)))),
		"T", "Kept", "Missed Incidents", "Redundant Kept", "Alerts/Failure")
	for _, r := range rows {
		t.AddRow(r.T.String(), r.Kept, r.Missed, r.Redundant, fmt.Sprintf("%.3f", r.AlertsPerFailure))
	}
	t.Render(w)
	return nil
}

func runAnonymize(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("anonymize", flag.ContinueOnError)
	inPath := fs.String("in", "", "log file to anonymize (required)")
	outPath := fs.String("o", "", "output file (default stdout)")
	key := fs.String("key", "", "secret pseudonymization key (required)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *inPath == "" || *key == "" {
		return usageError("anonymize: -in and -key are required")
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	an := anonymize.New(*key)
	changed := an.Lines(lines)
	leaks := an.Audit(lines)

	dst := w
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	for _, l := range lines {
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(w, "anonymized %s lines (%s rewritten) -> %s; audit found %d residual leaks\n",
			report.Comma(int64(len(lines))), report.Comma(int64(changed)), *outPath, len(leaks))
	}
	return nil
}

// runBench times each pipeline stage serial vs parallel and writes the
// benchmark ledger.
func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	sysName := fs.String("system", "all", "system to benchmark (or all)")
	iters := fs.Int("iters", 3, "timed iterations per stage (best wins)")
	workers := fs.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	outPath := fs.String("o", "BENCH_pipeline.json", "ledger output path")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	systems := logrec.Systems()
	if *sysName != "all" {
		sys, err := logrec.ParseSystem(*sysName)
		if err != nil {
			return err
		}
		systems = []logrec.System{sys}
	}
	led, err := bench.Run(systems, bench.Options{
		Scale: *scale, Seed: *seed, Iterations: *iters, Workers: *workers,
	})
	if err != nil {
		return err
	}
	for _, rep := range led.Reports {
		fmt.Fprintf(w, "%s: %s records, %s lines\n",
			rep.System, report.Comma(int64(rep.Records)), report.Comma(int64(rep.Lines)))
		fmt.Fprintf(w, "  %-9s %14s %14s %8s %14s\n", "stage", "serial rec/s", "parallel rec/s", "speedup", "allocs/rec")
		for _, s := range rep.Stages {
			fmt.Fprintf(w, "  %-9s %14.0f %14.0f %7.2fx %14.2f\n",
				s.Name, s.SerialRecPerSec, s.ParallelRecPerSec, s.Speedup, s.AllocsPerRecord)
		}
		fmt.Fprintf(w, "  end-to-end: %.3fs serial, %.3fs parallel (%.2fx on %d procs)\n\n",
			rep.TotalSerialSec, rep.TotalParallelSec, rep.TotalSpeedup, led.GOMAXPROCS)
	}
	for _, rep := range led.StoreReports {
		fmt.Fprintf(w, "%s store: %s entries in %d segments\n",
			rep.System, report.Comma(int64(rep.Records)), rep.Segments)
		fmt.Fprintf(w, "  %-18s %14s %14s %14s\n", "stage", "rec/s", "allocs/rec", "bytes/rec")
		for _, s := range rep.Stages {
			fmt.Fprintf(w, "  %-18s %14.0f %14.2f %14.1f\n",
				s.Name, s.RecPerSec, s.AllocsPerRecord, s.BytesPerRecord)
		}
		fmt.Fprintf(w, "  columnar aggregate: %.2fx over row decode\n\n", rep.ColumnarSpeedup)
	}
	for _, rep := range led.StandingReports {
		fmt.Fprintf(w, "%s standing: %s entries, %d batches of %d, %d subscriptions\n",
			rep.System, report.Comma(int64(rep.Records)), rep.Batches, rep.BatchSize, rep.Subscriptions)
		fmt.Fprintf(w, "  %-18s %14s %14s %14s\n", "stage", "rec/s", "allocs/rec", "bytes/rec")
		for _, s := range rep.Stages {
			fmt.Fprintf(w, "  %-18s %14.0f %14.2f %14.1f\n",
				s.Name, s.RecPerSec, s.AllocsPerRecord, s.BytesPerRecord)
		}
		fmt.Fprintf(w, "  incremental maintenance: %.2fx over per-batch rescan\n\n", rep.IncrementalSpeedup)
	}
	for _, rep := range led.CorrelateReports {
		fmt.Fprintf(w, "%s correlate: %s events, %d batches of %d, graph %d nodes / %d edges\n",
			rep.System, report.Comma(int64(rep.Records)), rep.Batches, rep.BatchSize, rep.Nodes, rep.Edges)
		fmt.Fprintf(w, "  %-18s %14s %14s %14s\n", "stage", "events/s", "allocs/rec", "bytes/rec")
		for _, s := range rep.Stages {
			fmt.Fprintf(w, "  %-18s %14.0f %14.2f %14.1f\n",
				s.Name, s.RecPerSec, s.AllocsPerRecord, s.BytesPerRecord)
		}
		fmt.Fprintf(w, "  incremental mining: %.2fx over per-batch re-mine\n\n", rep.IncrementalSpeedup)
	}
	if *outPath != "" {
		if err := led.WriteJSON(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "ledger written to %s\n", *outPath)
	}
	return nil
}
