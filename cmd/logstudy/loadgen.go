package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"whatsupersay/internal/bench"
	"whatsupersay/internal/loadgen"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/store"
)

// runLoadgen drives a live serve endpoint with concurrent ingesters and
// queriers on a deterministic, seeded plan, then reports per-path
// latency quantiles, sustained records/sec per core, the 429/503 error
// budget, and the saturation knee found by the open-loop ramp. With no
// -target it self-hosts the production serve stack (openServeBackend +
// serveAndWait — the same code path `logstudy serve` runs) on a
// loopback port, so the harness exercises real listener, middleware,
// and shutdown behavior rather than a test double.
func runLoadgen(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running serve endpoint (default: self-host one)")
	dir := fs.String("dir", "", "store directory for the self-hosted server (default: a temp dir, removed at exit)")
	shards := fs.Int("shards", 0, "self-host a sharded cluster with this many shards (0 = single store)")
	sysName := fs.String("system", "liberty", "system whose synthetic log seeds the load")
	ingesters := fs.Int("ingesters", 8, "closed-loop ingest workers (K)")
	queriers := fs.Int("queriers", 4, "concurrent query workers (M)")
	batchLines := fs.Int("batch-lines", 200, "log lines per ingest batch")
	stepDur := fs.Duration("step", 2*time.Second, "duration of each schedule step")
	rampSteps := fs.Int("ramp-steps", 4, "open-loop ramp steps after the closed-loop warmup")
	startRate := fs.Float64("start-rate", 4, "offered batches/sec at the first ramp step")
	rampFactor := fs.Float64("ramp-factor", 2, "offered-rate multiplier between ramp steps")
	reqTimeout := fs.Duration("request-timeout", 15*time.Second, "per-request client timeout")
	outPath := fs.String("o", "BENCH_pipeline.json", "benchmark ledger to upsert the load_reports section into (empty = don't write)")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	if *target != "" && *shards != 0 {
		return usageError("loadgen: -shards only applies when self-hosting; the -target server's shape is probed from /healthz")
	}

	plan, err := loadgen.BuildPlan(loadgen.Config{
		System:       sys,
		Seed:         *seed,
		Scale:        *scale,
		Ingesters:    *ingesters,
		Queriers:     *queriers,
		BatchLines:   *batchLines,
		StepDuration: *stepDur,
		RampSteps:    *rampSteps,
		StartRate:    *startRate,
		RampFactor:   *rampFactor,
		Timeout:      *reqTimeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plan: %s batches of <=%d lines (%s records), %d schedule steps, fingerprint %s\n",
		report.Comma(int64(len(plan.Batches))), *batchLines, report.Comma(int64(plan.Records)),
		len(plan.Steps), plan.Fingerprint())

	base := *target
	nShards := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var serveDone chan error
	if base == "" {
		d := *dir
		if d == "" {
			var err error
			if d, err = os.MkdirTemp("", "logstudy-loadgen-"); err != nil {
				return err
			}
			defer os.RemoveAll(d)
		}
		b, err := openServeBackend(serveBackendConfig{
			Dir:       d,
			SysName:   *sysName,
			Shards:    *shards,
			StoreOpts: store.Options{},
		}, io.Discard)
		if err != nil {
			return fmt.Errorf("loadgen: self-host: %w", err)
		}
		ready := make(chan net.Addr, 1)
		serveDone = make(chan error, 1)
		go func() {
			serveDone <- serveAndWait(ctx, b, "127.0.0.1:0", 0, defaultShutdownGrace, io.Discard,
				func(a net.Addr) { ready <- a })
		}()
		select {
		case a := <-ready:
			base = "http://" + a.String()
		case err := <-serveDone:
			return fmt.Errorf("loadgen: self-hosted server died: %w", err)
		}
		nShards = *shards
		fmt.Fprintf(w, "self-hosted %s on %s (shards=%d, dir=%s)\n", *sysName, base, *shards, d)
	} else {
		nShards, err = probeShards(base, *reqTimeout)
		if err != nil {
			return fmt.Errorf("loadgen: target %s: %w", base, err)
		}
	}

	runner := &loadgen.Runner{Plan: plan, BaseURL: base, Shards: nShards}
	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	renderLoadReport(w, rep)

	if serveDone != nil {
		// Tear the self-hosted server down the production way (SIGTERM
		// path), so the run also exercises drain-and-seal under load.
		cancel()
		if err := <-serveDone; err != nil {
			return fmt.Errorf("loadgen: self-hosted shutdown: %w", err)
		}
	}

	if *outPath != "" {
		if err := upsertLoadReport(*outPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "load report appended to %s\n", *outPath)
	}
	return nil
}

// probeShards asks the target's /healthz how many shards it fronts
// (absent field = single store).
func probeShards(base string, timeout time.Duration) (int, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h struct {
		OK     bool `json:"ok"`
		Shards int  `json:"shards"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return 0, fmt.Errorf("healthz: %w", err)
	}
	if !h.OK {
		return 0, fmt.Errorf("healthz: target reports not ok")
	}
	return h.Shards, nil
}

// renderLoadReport prints the per-step table and the knee verdict.
func renderLoadReport(w io.Writer, rep *loadgen.Report) {
	t := report.NewTable(
		fmt.Sprintf("load: %s, %d ingesters / %d queriers, %d cores", rep.System, rep.Ingesters, rep.Queriers, rep.Cores),
		"Step", "Mode", "Offered/s", "Achieved/s", "Ingest p50/p99 ms", "Query p50/p99 ms", "429", "Errors", "rec/s/core")
	for _, s := range rep.Steps {
		offered := "-"
		if s.OfferedPerSec > 0 {
			offered = fmt.Sprintf("%.1f", s.OfferedPerSec)
		}
		t.AddRow(s.Index, s.Mode, offered,
			fmt.Sprintf("%.1f", s.AchievedPerSec),
			fmt.Sprintf("%s/%s", latencyMS(s.Ingest.LatencyQuantiles, "p50"), latencyMS(s.Ingest.LatencyQuantiles, "p99")),
			fmt.Sprintf("%s/%s", latencyMS(s.Query.LatencyQuantiles, "p50"), latencyMS(s.Query.LatencyQuantiles, "p99")),
			s.Ingest.Backpressure429+s.Query.Backpressure429,
			s.Ingest.ServerErr5xx+s.Ingest.NetErrors+s.Query.ServerErr5xx+s.Query.NetErrors,
			fmt.Sprintf("%.0f", s.RecordsPerSecCore))
	}
	t.Render(w)
	if rep.Saturation != nil {
		k := rep.Saturation
		fmt.Fprintf(w, "saturation knee: step %d — offered %.1f/s, achieved %.1f/s (%s)\n",
			k.StepIndex, k.OfferedPerSec, k.AchievedPerSec, k.Reason)
	} else {
		fmt.Fprintln(w, "no saturation knee within the ramp (raise -ramp-steps or -ramp-factor to find it)")
	}
}

// latencyMS formats one stored quantile in milliseconds.
func latencyMS(q map[string]float64, label string) string {
	v, ok := q[label]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1f", v*1000)
}

// upsertLoadReport appends rep to the ledger's load_reports, creating
// the ledger if absent and preserving every other section. Reports for
// the same (system, shards, fingerprint, worker shape) are replaced
// rather than duplicated, so repeated runs converge to one row per
// configuration.
func upsertLoadReport(path string, rep *loadgen.Report) error {
	led, err := bench.ReadJSON(path)
	if os.IsNotExist(err) {
		led = &bench.Ledger{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
		err = nil
	}
	if err != nil {
		return err
	}
	same := func(r loadgen.Report) bool {
		return r.System == rep.System && r.Shards == rep.Shards &&
			r.PlanFingerprint == rep.PlanFingerprint &&
			r.Ingesters == rep.Ingesters && r.Queriers == rep.Queriers
	}
	kept := led.LoadReports[:0]
	for _, r := range led.LoadReports {
		if !same(r) {
			kept = append(kept, r)
		}
	}
	led.LoadReports = append(kept, *rep)
	sort.SliceStable(led.LoadReports, func(i, j int) bool {
		a, b := led.LoadReports[i], led.LoadReports[j]
		if a.System != b.System {
			return a.System < b.System
		}
		return a.Shards < b.Shards
	})
	return led.WriteJSON(path)
}
