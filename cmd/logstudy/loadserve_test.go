package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/connectors/graphite"
	"whatsupersay/internal/faultinject/shardfault"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// --- satellite 1: the request-timeout deadline must exempt SSE ---

// TestRequestDeadlineMiddleware pins which routes the uniform
// per-request deadline covers: every API route gets a context deadline,
// the SSE stream gets none.
func TestRequestDeadlineMiddleware(t *testing.T) {
	opts := apiOptions{RequestTimeout: 5 * time.Second}
	var gotDeadline bool
	h := opts.withRequestDeadlines(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, gotDeadline = r.Context().Deadline()
	}))
	cases := []struct {
		method, path string
		want         bool
	}{
		{http.MethodGet, "/api/query", true},
		{http.MethodGet, "/api/aggregate", true},
		{http.MethodPost, "/api/ingest", true},
		{http.MethodPost, "/api/subscribe", true},
		{http.MethodGet, "/api/subscriptions", true},
		{http.MethodGet, "/api/subscribe/abc123/events", false},
		// DELETE on the subscribe tree is not a stream: deadline applies.
		{http.MethodDelete, "/api/subscribe/abc123", true},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		h.ServeHTTP(httptest.NewRecorder(), r)
		if gotDeadline != c.want {
			t.Errorf("%s %s: deadline=%v, want %v", c.method, c.path, gotDeadline, c.want)
		}
	}
}

// TestSSESurvivesRequestTimeout is the satellite-1 regression: a
// subscriber's event stream must outlive both the per-request deadline
// and the server's WriteTimeout. Pre-fix (no SSE exemption in the
// deadline wrapper) the stream dies at the first deadline window.
func TestSSESurvivesRequestTimeout(t *testing.T) {
	study := newTestStudy(t)
	entries := store.FromAlerts(study.Alerts, study.Filtered)
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	reqTimeout := 150 * time.Millisecond
	handler := newTestAPI(t, st, apiOptions{
		RequestTimeout: reqTimeout,
		SSEHeartbeat:   30 * time.Millisecond,
	})
	srv := httptest.NewUnstartedServer(handler)
	srv.Config.WriteTimeout = writeTimeout(reqTimeout)
	srv.Start()
	t.Cleanup(srv.Close)

	// A never-firing subscription to stream against.
	resp, err := http.Post(srv.URL+"/api/subscribe", "application/json",
		strings.NewReader(`{"threshold": 1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("subscribe returned no id")
	}

	stream, err := http.Get(srv.URL + "/api/subscribe/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", stream.StatusCode)
	}

	// Survive at least 4 full request-timeout windows of heartbeats.
	deadline := time.Now().Add(4*reqTimeout + reqTimeout/2)
	sc := bufio.NewScanner(stream.Body)
	var pings int
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for time.Now().Before(deadline) {
		select {
		case ln, ok := <-lines:
			if !ok {
				t.Fatalf("SSE stream ended after %d pings — killed by a timeout path", pings)
			}
			if strings.HasPrefix(ln, ": ping") {
				pings++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("SSE stream stalled: no heartbeat")
		}
	}
	if pings < 3 {
		t.Fatalf("only %d heartbeats across 4 deadline windows", pings)
	}
	// Meanwhile the deadline still applies to normal routes.
	r, err := http.Get(srv.URL + "/api/query?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query under SSE load: %d", r.StatusCode)
	}
}

// --- satellite 2: uniform 429 retry contract ---

// TestSingleStoreIngestBackpressure429 is the satellite-2 regression
// for the single-store path: a full admission queue must produce the
// same 429 contract the sharded tier has — Retry-After (integer
// seconds, never 0) plus rejected_sources — instead of queueing
// unboundedly. Pre-fix the single-store path had no admission control
// and never 429'd, so this test fails there.
func TestSingleStoreIngestBackpressure429(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	handler := newTestAPI(t, st, apiOptions{
		IngestQueueDepth: 1,
		ingestApplyHook: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)

	body := ingestTestBody(t)
	type ingestResult struct {
		status     int
		retryAfter string
		body       []byte
	}
	res := make(chan ingestResult, 8)
	doPost := func() {
		resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
		if err != nil {
			res <- ingestResult{status: -1}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		res <- ingestResult{resp.StatusCode, resp.Header.Get("Retry-After"), b}
	}

	// First post wedges in the worker; then five contenders race for the
	// one queue slot. Exactly one wins (and blocks behind the gate with
	// the first), the other four must bounce with the 429 contract —
	// whichever ones they are. Everything is async so the test goroutine
	// never waits on a response the gate is holding hostage.
	go doPost()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked the first batch up")
	}
	for i := 0; i < 5; i++ {
		go doPost()
	}
	var rejected []ingestResult
	timeout := time.After(10 * time.Second)
	for len(rejected) < 4 {
		select {
		case r := <-res:
			if r.status != http.StatusTooManyRequests {
				t.Fatalf("status %d before the gate opened (want only 429s): %s", r.status, r.body)
			}
			rejected = append(rejected, r)
		case <-timeout:
			t.Fatalf("admission queue never overflowed: %d/4 rejections", len(rejected))
		}
	}
	for _, r := range rejected {
		secs, err := strconv.Atoi(r.retryAfter)
		if err != nil || secs < 1 {
			t.Fatalf("Retry-After = %q, want integer seconds >= 1", r.retryAfter)
		}
		var rej shardIngestResponse
		if err := json.Unmarshal(r.body, &rej); err != nil {
			t.Fatal(err)
		}
		if len(rej.RejectedSources[0]) == 0 {
			t.Fatalf("single-store 429 without rejected_sources: %s", r.body)
		}
		if rej.Rejected[0] == 0 {
			t.Fatalf("single-store 429 without rejected count: %s", r.body)
		}
	}

	// Release the drain: the two admitted batches land, and a retry of a
	// bounced batch succeeds.
	close(gate)
	for ok := 0; ok < 2; {
		select {
		case r := <-res:
			if r.status != http.StatusOK {
				t.Fatalf("admitted post finished with %d: %s", r.status, r.body)
			}
			ok++
		case <-time.After(10 * time.Second):
			t.Fatal("admitted batches never completed after release")
		}
	}
	resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release retry: %d", resp.StatusCode)
	}
}

// TestShardedRetryAfterTracksDrainRate is the satellite-2 regression
// for the sharded path: Retry-After must reflect the measured queue
// drain rate, not a fixed constant. With a ~1.2s-per-batch backend and
// two batches pending, an honest hint is >= 2 seconds; the pre-fix code
// always returned the configured default (1).
func TestShardedRetryAfterTracksDrainRate(t *testing.T) {
	body := ingestTestBody(t)
	root := t.TempDir()
	open, faulty := faultyOpenStore(root)
	c, _, err := shard.Create(root, logrec.Liberty, 1, shard.Options{
		Store:      store.Options{FlushEvery: 1 << 30},
		OpenStore:  open,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
	defer srv.Close()

	const delay = 1200 * time.Millisecond
	faulty(0).SetFaults(shardfault.StoreFaults{AppendDelay: delay})

	// Seed the drain EWMA: one slow batch, synchronously.
	postLines(t, srv.URL, body, http.StatusOK)

	// Park one batch in the worker and one in the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := c.Health()[0]
		if h.Inflight == 1 && h.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", c.Health())
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow post: %d", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not integer seconds", ra)
	}
	// Two pending batches at ~1.2s each: an honest hint is >= 2s. The
	// pre-fix fixed default was 1.
	if secs < 2 {
		t.Fatalf("Retry-After = %d, want >= 2 (drain-rate derived)", secs)
	}
	if secs > 60 {
		t.Fatalf("Retry-After = %d, beyond the clamp", secs)
	}
}

func TestRetryAfterEstimateNeverZero(t *testing.T) {
	cases := []struct {
		pending  int
		drain    time.Duration
		fallback time.Duration
		want     time.Duration
	}{
		{0, 0, 0, time.Second},                   // nothing known: floor
		{5, 0, 3 * time.Second, 3 * time.Second}, // no drain data: fallback
		{1, 1200 * time.Millisecond, 0, 2400 * time.Millisecond},
		{0, time.Microsecond, 0, time.Second},   // fast drain: floor, never 0
		{100, 10 * time.Second, 0, time.Minute}, // ceiling
	}
	for _, c := range cases {
		if got := shard.RetryAfterEstimate(c.pending, c.drain, c.fallback); got != c.want {
			t.Errorf("RetryAfterEstimate(%d, %v, %v) = %v, want %v", c.pending, c.drain, c.fallback, got, c.want)
		}
	}
}

// --- satellite 3: graceful shutdown under load ---

// ackedBatch is one client-side record of a 200-acked ingest body.
type ackedBatch struct {
	body string
}

// entryKey is the Seq-independent identity used to compare acked
// batches against a reopened store.
func entryKey(en store.Entry) string {
	return fmt.Sprintf("%d|%s|%s|%s|%t", en.Record.Time.UnixNano(), en.Record.Source, en.Category, en.Record.Body, en.Kept)
}

// clientPipeline replays a raw body through the exact stages the server
// runs, yielding the entries a 200 ack promised were appended.
func clientPipeline(t *testing.T, body string) []store.Entry {
	t.Helper()
	m, err := cluster.New(logrec.Liberty)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := ingest.ReadAll(strings.NewReader(body), logrec.Liberty, m.LogStart)
	if err != nil {
		t.Fatal(err)
	}
	alerts := tag.NewTagger(logrec.Liberty).TagAll(recs)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	return store.FromAlerts(alerts, filtered)
}

// TestGracefulShutdownUnderLoad is the satellite-3 kill test: SIGTERM
// (modeled as context cancellation, the same path) while concurrent
// ingesters and an SSE subscriber are attached must (a) complete
// promptly — pre-fix, the never-ending SSE stream wedged Shutdown for
// its whole 5s budget and surfaced an error — and (b) leave every
// 200-acked batch durable in the reopened store.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	b, err := openServeBackend(serveBackendConfig{
		Dir:       dir,
		SysName:   "liberty",
		StoreOpts: store.Options{FlushEvery: 1 << 30},
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- serveAndWait(ctx, b, "127.0.0.1:0", 0, 5*time.Second, io.Discard,
			func(a net.Addr) { ready <- a })
	}()
	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server died before ready: %v", err)
	}

	// An SSE subscriber — the connection that wedged pre-fix shutdown.
	resp, err := http.Post(base+"/api/subscribe", "application/json",
		strings.NewReader(`{"threshold": 1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	stream, err := http.Get(base + "/api/subscribe/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	// Concurrent ingesters: each pulls distinct batches and logs what
	// the server acked with a 200.
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: testScale, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const batchLines = 40
	var batches []string
	for i := 0; i < len(out.Lines); i += batchLines {
		end := min(i+batchLines, len(out.Lines))
		batches = append(batches, strings.Join(out.Lines[i:end], "\n")+"\n")
	}
	var next atomic.Int64
	var mu sync.Mutex
	var acked []ackedBatch
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(batches) {
					return
				}
				resp, err := http.Post(base+"/api/ingest", "text/plain", strings.NewReader(batches[i]))
				if err != nil {
					return // shutdown cut us off mid-request: not acked
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					mu.Lock()
					acked = append(acked, ackedBatch{body: batches[i]})
					mu.Unlock()
				}
			}
		}()
	}

	// Let load build, then pull the plug mid-flight.
	time.Sleep(250 * time.Millisecond)
	shutStart := time.Now()
	cancel()
	var serveErr error
	select {
	case serveErr = <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("serveAndWait never returned")
	}
	shutDur := time.Since(shutStart)
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("shutdown error: %v", serveErr)
	}
	// Pre-fix the SSE stream pinned Shutdown for its full 5s budget.
	if shutDur >= 4*time.Second {
		t.Fatalf("shutdown took %v — drained by timeout, not gracefully", shutDur)
	}
	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	if nAcked == 0 {
		t.Fatal("no batches were acked before shutdown; test proves nothing")
	}

	// Replay the client-side success log against the reopened store:
	// every acked entry must be there.
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	have := map[string]int{}
	if _, err := st.Scan(store.Filter{}, func(en store.Entry) error {
		have[entryKey(en)]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, ab := range acked {
		for _, en := range clientPipeline(t, ab.body) {
			want[entryKey(en)]++
		}
	}
	for k, n := range want {
		if have[k] < n {
			t.Fatalf("acked entry missing after reopen (%d/%d present): %s", have[k], n, k)
		}
	}
	t.Logf("verified %d acked batches (%d entries) durable; shutdown in %v", nAcked, len(want), shutDur)
}

// --- tentpole: graphite pump from a live serve backend ---

// TestServeGraphitePausedSinkNoStall wires a serve backend to a fake
// graphite sink, pauses the sink, and proves the serve tier never
// stalls: ingest and query requests keep succeeding at full speed while
// the pump counts drops, and metrics flow again after resume.
func TestServeGraphitePausedSinkNoStall(t *testing.T) {
	sink, err := graphite.NewFakeSink()
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	b, err := openServeBackend(serveBackendConfig{
		Dir:            t.TempDir(),
		SysName:        "liberty",
		StoreOpts:      store.Options{FlushEvery: 1 << 30},
		GraphiteAddr:   sink.Addr(),
		GraphiteEvery:  20 * time.Millisecond,
		GraphitePrefix: "logstudy",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- serveAndWait(ctx, b, "127.0.0.1:0", 0, 5*time.Second, io.Discard,
			func(a net.Addr) { ready <- a })
	}()
	base := "http://" + (<-ready).String()

	body := ingestTestBody(t)
	post := func() time.Duration {
		t0 := time.Now()
		resp, err := http.Post(base+"/api/ingest", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest with graphite attached: %d", resp.StatusCode)
		}
		return time.Since(t0)
	}
	post()

	// Healthy sink first: metrics arrive.
	deadline := time.Now().Add(10 * time.Second)
	for len(sink.Lines()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no metrics reached the sink")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, ln := range sink.Lines() {
		if !strings.HasPrefix(ln, "logstudy.") {
			t.Fatalf("unprefixed metric line %q", ln)
		}
	}

	// Pause the sink and keep hammering the API. The contract is
	// serve-side: every request completes promptly no matter what the
	// sink does, and the pump's gather loop stays alive (sent+dropped
	// keeps advancing — where the overflow lands depends on how much the
	// kernel's socket buffers absorb, which the connector's own paused-
	// sink test pins; here we only require that serve never pays for it).
	sink.Pause()
	paused := b.pump.Stats()
	pauseUntil := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(pauseUntil) {
		if d := post(); d > 3*time.Second {
			t.Fatalf("serve request stalled %v behind a paused sink", d)
		}
		r, err := http.Get(base + "/api/aggregate")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("aggregate with paused sink: %d", r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	during := b.pump.Stats()
	if during.BatchesSent+during.BatchesDropped <= paused.BatchesSent+paused.BatchesDropped {
		t.Fatalf("pump gather loop stalled behind the paused sink: %+v -> %+v", paused, during)
	}

	sink.Resume()
	before := len(sink.Lines())
	deadline = time.Now().Add(15 * time.Second)
	for len(sink.Lines()) <= before {
		if time.Now().After(deadline) {
			t.Fatalf("sink received nothing after resume: %+v", b.pump.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown with graphite attached: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged behind the paused-then-resumed sink")
	}
}
