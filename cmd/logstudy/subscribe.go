package main

// Standing-query subscriptions over HTTP. Both the single-store api and
// the sharded shardAPI mount the same four endpoints:
//
//	POST   /api/subscribe             register a standing query
//	GET    /api/subscriptions         list subscriptions with live totals
//	GET    /api/subscribe/{id}/events SSE stream: state snapshot + fires
//	DELETE /api/subscribe/{id}        remove a subscription
//
// A subscription is a (filter, aggregate options, threshold) triple
// whose aggregate the registry maintains incrementally off the store's
// mutation stream — serving it never rescans. When the matched total
// crosses the threshold the server pushes one event (edge-triggered) to
// every connected SSE client and, if the subscription carries a webhook
// URL, POSTs the event JSON there.
//
// Push semantics are at-most-once: a slow SSE client's buffer overflow
// drops events (counted in standing_push_drops_total) and webhook
// deliveries are one attempt with a 5s budget, no retry (failures in
// standing_push_failures_total). The subscription listing remains the
// source of truth — Events counts every fire whether or not any push
// landed.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/query"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// Push-delivery telemetry.
var (
	mStandingPushes       = obs.Default.Counter("standing_pushes_total")
	mStandingPushFailures = obs.Default.Counter("standing_push_failures_total")
	mStandingPushDrops    = obs.Default.Counter("standing_push_drops_total")
	hStandingPushLatency  = obs.Default.Histogram("standing_push_latency_seconds", obs.Seconds)
)

// subEvent is the wire form of one threshold crossing, shared by the
// SSE stream and the webhook body.
type subEvent struct {
	SubscriptionID string            `json:"id"`
	Seq            uint64            `json:"seq"`
	Threshold      int               `json:"threshold"`
	Total          int               `json:"total"`
	Aggregate      query.Aggregation `json:"aggregate"`
	ShardsStanding int               `json:"shards_standing,omitempty"`
	ShardsTotal    int               `json:"shards_total,omitempty"`
	FiredAt        time.Time         `json:"fired_at"`
}

// subJSON is the wire form of one subscription in listings and the
// subscribe response.
type subJSON struct {
	ID             string `json:"id"`
	Threshold      int    `json:"threshold"`
	Total          int    `json:"total"`
	Fired          bool   `json:"fired"`
	Events         uint64 `json:"events"`
	Webhook        string `json:"webhook,omitempty"`
	ShardsStanding int    `json:"shards_standing,omitempty"`
	ShardsTotal    int    `json:"shards_total,omitempty"`
}

// standingBackend abstracts the two standing-query tiers — a
// single-store query.Registry or a shard.Cluster — behind the surface
// the HTTP handlers need.
type standingBackend interface {
	Subscribe(f store.Filter, opts query.AggregateOptions, threshold int) (subJSON, error)
	Unsubscribe(id string) bool
	Subscriptions() []subJSON
	StandingAggregate(id string) (query.Aggregation, bool)
	System() logrec.System
}

// registryStanding adapts a single-store registry.
type registryStanding struct {
	reg *query.Registry
	sys logrec.System
}

func (b registryStanding) Subscribe(f store.Filter, opts query.AggregateOptions, threshold int) (subJSON, error) {
	info, err := b.reg.Register(f, opts, threshold)
	if err != nil {
		return subJSON{}, err
	}
	return subJSON{ID: info.ID, Threshold: info.Threshold, Total: info.Total,
		Fired: info.Fired, Events: info.Events}, nil
}

func (b registryStanding) Unsubscribe(id string) bool { return b.reg.Unregister(id) }

func (b registryStanding) Subscriptions() []subJSON {
	infos := b.reg.List()
	out := make([]subJSON, 0, len(infos))
	for _, info := range infos {
		out = append(out, subJSON{ID: info.ID, Threshold: info.Threshold, Total: info.Total,
			Fired: info.Fired, Events: info.Events})
	}
	return out
}

func (b registryStanding) StandingAggregate(id string) (query.Aggregation, bool) {
	return b.reg.AggregateOf(id)
}

func (b registryStanding) System() logrec.System { return b.sys }

// clusterStandingBackend adapts a sharded cluster.
type clusterStandingBackend struct{ c *shard.Cluster }

func (b clusterStandingBackend) Subscribe(f store.Filter, opts query.AggregateOptions, threshold int) (subJSON, error) {
	info, err := b.c.Subscribe(f, opts, threshold)
	if err != nil {
		return subJSON{}, err
	}
	return clusterSubJSON(info), nil
}

func (b clusterStandingBackend) Unsubscribe(id string) bool { return b.c.Unsubscribe(id) }

func (b clusterStandingBackend) Subscriptions() []subJSON {
	infos := b.c.Subscriptions()
	out := make([]subJSON, 0, len(infos))
	for _, info := range infos {
		out = append(out, clusterSubJSON(info))
	}
	return out
}

func (b clusterStandingBackend) StandingAggregate(id string) (query.Aggregation, bool) {
	return b.c.StandingAggregate(id)
}

func (b clusterStandingBackend) System() logrec.System { return b.c.System() }

func clusterSubJSON(info shard.ClusterSubInfo) subJSON {
	return subJSON{ID: info.ID, Threshold: info.Threshold, Total: info.Total,
		Fired: info.Fired, Events: info.Events,
		ShardsStanding: info.ShardsStanding, ShardsTotal: info.ShardsTotal}
}

// pushHub fans fired events out to SSE clients and webhooks. dispatch
// is called from the registries' notify hooks — which may run under a
// registry lock — so it never blocks: SSE sends are non-blocking (full
// buffer = drop) and webhook POSTs run on their own goroutine.
type pushHub struct {
	mu       sync.Mutex
	clients  map[string]map[chan subEvent]struct{}
	webhooks map[string]string
	client   *http.Client
	// shutdown broadcasts "the server is draining": SSE streams select
	// on it and finish, so a graceful Shutdown is not held hostage by
	// connections that by design never end.
	shutdown     chan struct{}
	shutdownOnce sync.Once
}

func newPushHub() *pushHub {
	return &pushHub{
		clients:  map[string]map[chan subEvent]struct{}{},
		webhooks: map[string]string{},
		client:   &http.Client{Timeout: 5 * time.Second},
		shutdown: make(chan struct{}),
	}
}

// beginShutdown releases every attached SSE stream. Idempotent.
func (h *pushHub) beginShutdown() {
	h.shutdownOnce.Do(func() { close(h.shutdown) })
}

// sseBuffer is each SSE client's event buffer; a client this far behind
// on rare edge-triggered fires is dead or wedged, and dropping beats
// blocking the notify path.
const sseBuffer = 8

func (h *pushHub) attach(id string) chan subEvent {
	ch := make(chan subEvent, sseBuffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	set := h.clients[id]
	if set == nil {
		set = map[chan subEvent]struct{}{}
		h.clients[id] = set
	}
	set[ch] = struct{}{}
	return ch
}

func (h *pushHub) detach(id string, ch chan subEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set := h.clients[id]; set != nil {
		delete(set, ch)
		if len(set) == 0 {
			delete(h.clients, id)
		}
	}
}

func (h *pushHub) setWebhook(id, url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if url == "" {
		delete(h.webhooks, id)
		return
	}
	h.webhooks[id] = url
}

func (h *pushHub) webhookOf(id string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.webhooks[id]
}

// drop forgets a removed subscription's webhook. Attached SSE clients
// simply stop receiving; their handlers exit when the client hangs up.
func (h *pushHub) drop(id string) { h.setWebhook(id, "") }

// dispatch pushes one fired event to every attached SSE client and the
// subscription's webhook, if any. Must not block (see type doc).
func (h *pushHub) dispatch(ev subEvent) {
	ev.FiredAt = time.Now()
	h.mu.Lock()
	chans := make([]chan subEvent, 0, len(h.clients[ev.SubscriptionID]))
	for ch := range h.clients[ev.SubscriptionID] {
		chans = append(chans, ch)
	}
	hook := h.webhooks[ev.SubscriptionID]
	h.mu.Unlock()

	for _, ch := range chans {
		select {
		case ch <- ev:
		default:
			mStandingPushDrops.Add(1)
		}
	}
	if hook != "" {
		go h.postWebhook(hook, ev)
	}
}

// postWebhook is the one-attempt webhook delivery: POST the event JSON,
// 5s budget, any error or non-2xx is a counted failure, never a retry.
func (h *pushHub) postWebhook(url string, ev subEvent) {
	mStandingPushes.Add(1)
	body, err := json.Marshal(ev)
	if err != nil {
		mStandingPushFailures.Add(1)
		return
	}
	resp, err := h.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		mStandingPushFailures.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		mStandingPushFailures.Add(1)
		return
	}
	hStandingPushLatency.ObserveSince(ev.FiredAt)
}

// subAPI mounts the subscription endpoints over one standing backend.
type subAPI struct {
	b    standingBackend
	hub  *pushHub
	opts apiOptions
}

// register mounts the subscription routes on a mux.
func (s *subAPI) register(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/subscribe", instrument("/api/subscribe", s.handleSubscribe))
	mux.HandleFunc("GET /api/subscriptions", instrument("/api/subscriptions", s.handleSubscriptions))
	mux.HandleFunc("DELETE /api/subscribe/{id}", instrument("/api/unsubscribe", s.handleUnsubscribe))
	mux.HandleFunc("GET /api/subscribe/{id}/events", s.handleEvents)
}

// subscribeRequest is the POST /api/subscribe body. Filter and option
// fields are strings with exactly the syntax of the GET query
// parameters of /api/aggregate, so the two surfaces cannot drift.
type subscribeRequest struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Source    string `json:"source"`
	Category  string `json:"category"`
	Severity  string `json:"severity"`
	Kept      string `json:"kept"`
	Body      string `json:"body"`
	TopK      string `json:"topk"`
	Quantiles string `json:"quantiles"`
	Threshold int    `json:"threshold"`
	Webhook   string `json:"webhook"`
}

// values rebuilds the shared query-parameter form so parseFilter and
// parseAggregateOptions (including strict quantile validation) apply
// verbatim.
func (req subscribeRequest) values() url.Values {
	v := url.Values{}
	set := func(k, s string) {
		if s != "" {
			v.Set(k, s)
		}
	}
	set("from", req.From)
	set("to", req.To)
	set("source", req.Source)
	set("category", req.Category)
	set("severity", req.Severity)
	set("kept", req.Kept)
	set("body", req.Body)
	set("topk", req.TopK)
	set("quantiles", req.Quantiles)
	return v
}

func (s *subAPI) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "subscribe: %v", err)
		return
	}
	vals := req.values()
	f, err := parseFilter(s.b.System(), vals)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parseAggregateOptions(vals)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Threshold < 0 {
		httpError(w, http.StatusBadRequest, "bad threshold %d", req.Threshold)
		return
	}
	if req.Webhook != "" {
		u, err := url.Parse(req.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			httpError(w, http.StatusBadRequest, "bad webhook %q: need an absolute http(s) URL", req.Webhook)
			return
		}
	}
	info, err := s.b.Subscribe(f, opts, req.Threshold)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "subscribe: %v", err)
		return
	}
	if req.Webhook != "" {
		s.hub.setWebhook(info.ID, req.Webhook)
		info.Webhook = req.Webhook
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(info)
}

// handleSubscriptions lists subscriptions, bounded by the shared limit
// parameter (default 100, max 1000, 400 on garbage) so a server with
// thousands of standing queries cannot be made to render them all in
// one response. count is the full population; truncated flags a
// clipped listing.
func (s *subAPI) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	limit, err := parseBoundedLimit(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	subs := s.b.Subscriptions()
	total := len(subs)
	if len(subs) > limit {
		subs = subs[:limit]
	}
	for i := range subs {
		subs[i].Webhook = s.hub.webhookOf(subs[i].ID)
	}
	writeJSON(w, map[string]any{"count": total, "subscriptions": subs, "truncated": total > limit})
}

func (s *subAPI) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.b.Unsubscribe(id) {
		httpError(w, http.StatusNotFound, "unknown subscription %q", id)
		return
	}
	s.hub.drop(id)
	writeJSON(w, map[string]any{"removed": id})
}

// sseHeartbeat keeps idle streams alive through proxies and surfaces
// dead client connections to the server.
const sseHeartbeat = 15 * time.Second

// handleEvents is the SSE stream: an immediate `state` event carrying
// the subscription's current materialized aggregate, then one `fire`
// event per threshold crossing, with comment heartbeats in between.
func (s *subAPI) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	agg, ok := s.b.StandingAggregate(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown subscription %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	// A standing stream must outlive the server's per-request write
	// budget — it is the one endpoint meant to stay open.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})

	ch := s.hub.attach(id)
	defer s.hub.detach(id, ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if err := writeSSE(w, "state", map[string]any{"id": id, "aggregate": agg}); err != nil {
		return
	}
	fl.Flush()

	beat := sseHeartbeat
	if s.opts.SSEHeartbeat > 0 {
		beat = s.opts.SSEHeartbeat
	}
	hb := time.NewTicker(beat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.hub.shutdown:
			return
		case ev := <-ch:
			if err := writeSSE(w, "fire", ev); err != nil {
				return
			}
			fl.Flush()
			mStandingPushes.Add(1)
			hStandingPushLatency.ObserveSince(ev.FiredAt)
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE emits one server-sent event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
