package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"whatsupersay/internal/report"
	"whatsupersay/internal/store"
)

// runCompact performs one on-demand maintenance pass over a store:
// retention first (when -retention is set, dropping whole segments
// whose newest record has aged past the horizon, measured in log time
// relative to the store's newest record), then compaction (merging runs
// of adjacent small segments into large sorted ones until none fits
// under the target). The same pass `logstudy serve -compact-every` runs
// in the background.
func runCompact(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	dir := fs.String("dir", "", "store directory (required)")
	target := fs.Int("target", 0, "merged-segment size goal, in entries (default 4x the store's flush size)")
	retention := fs.Duration("retention", 0, "drop segments older than this horizon before the newest record (0 = keep everything)")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *dir == "" {
		return usageError("compact: -dir is required")
	}

	st, rep, err := store.Open(*dir, store.Options{CompactTarget: *target, Retention: *retention})
	if err != nil {
		return err
	}
	reportOpen(w, st, rep)
	before := len(st.Segments())

	start := time.Now()
	cst, rst, err := st.Maintain()
	if err != nil {
		st.Close()
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}

	if rst.SegmentsDropped > 0 {
		fmt.Fprintf(w, "retention dropped %d segments (%s entries) past the %v horizon\n",
			rst.SegmentsDropped, report.Comma(int64(rst.EntriesDropped)), *retention)
	}
	if cst.Compactions > 0 {
		fmt.Fprintf(w, "compacted %d segments into %d (%s entries rewritten) in %v\n",
			cst.SegmentsIn, cst.Compactions, report.Comma(int64(cst.EntriesMerged)), time.Since(start).Round(time.Millisecond))
	}
	if rst.SegmentsDropped == 0 && cst.Compactions == 0 {
		fmt.Fprintf(w, "nothing to do: %d segments already at or above the target\n", before)
	}
	return nil
}

// reportOpen prints the open report's anomalies — the shared accounting
// the serve and compact subcommands both surface.
func reportOpen(w io.Writer, st *store.Store, rep *store.OpenReport) {
	if rep == nil {
		return
	}
	fmt.Fprintf(w, "opened %s store: %d segments, %d tail entries\n",
		st.System().ShortName(), rep.Segments, rep.TailEntries)
	for name, reason := range rep.CorruptSegments {
		fmt.Fprintf(w, "  quarantined %s: %s\n", name, reason)
	}
	if rep.TailDroppedBytes > 0 {
		fmt.Fprintf(w, "  truncated %d torn wal bytes (%s)\n", rep.TailDroppedBytes, rep.TailDamage)
	}
	if rep.TempFilesRemoved > 0 {
		fmt.Fprintf(w, "  swept %d stale temp files\n", rep.TempFilesRemoved)
	}
	if rep.SupersededSegments > 0 {
		fmt.Fprintf(w, "  removed %d segments superseded by an interrupted compaction\n", rep.SupersededSegments)
	}
	if rep.TailDedupedEntries > 0 {
		fmt.Fprintf(w, "  deduplicated %d wal entries already sealed in a segment\n", rep.TailDedupedEntries)
	}
}
