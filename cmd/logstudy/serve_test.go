package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/core"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/query"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// The differential contract under test: every /api/aggregate response
// must be byte-identical to running query.Aggregate over the batch
// pipeline's output (store.FromAlerts of the study's alerts) on the
// same records. The store and the HTTP layer are an optimization,
// never a semantics change.

const testScale = 0.00005

// newTestAPI builds the single-store handler, failing the test on a
// miner baseline error and closing the push tier (registry + miner) at
// cleanup, before the store's own cleanup closes the store.
func newTestAPI(t *testing.T, st *store.Store, opts apiOptions) http.Handler {
	t.Helper()
	as, err := newAPI(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { as.Close() })
	return as
}

// newTestStudy runs the batch pipeline once at test scale.
func newTestStudy(t *testing.T) *core.Study {
	t.Helper()
	s, err := core.New(simulate.Config{System: logrec.Liberty, Scale: testScale, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer loads the study into a multi-segment store and serves
// it through the real API handler.
func newTestServer(t *testing.T, s *core.Study) (*httptest.Server, []store.Entry) {
	t.Helper()
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	if len(entries) < 20 {
		t.Fatalf("test study too small: %d entries", len(entries))
	}
	// A small segment size forces several sealed segments plus a tail,
	// so queries cross every storage tier.
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: len(entries)/3 + 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)
	return srv, entries
}

// matchesFilter replicates store.Filter semantics as an independent
// linear reference for building expected aggregates.
func matchesFilter(f store.Filter, en store.Entry) bool {
	tm := en.Record.Time
	if !f.From.IsZero() && tm.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !tm.Before(f.To) {
		return false
	}
	if len(f.Categories) > 0 && !containsString(f.Categories, en.Category) {
		return false
	}
	if len(f.Sources) > 0 && !containsString(f.Sources, en.Record.Source) {
		return false
	}
	if len(f.Severities) > 0 {
		ok := false
		for _, sev := range f.Severities {
			if sev == en.Record.Severity {
				ok = true
			}
		}
		if !ok {
			return false
		}
	}
	if f.Kept != nil && *f.Kept != en.Kept {
		return false
	}
	return f.BodyContains == "" || strings.Contains(en.Record.Body, f.BodyContains)
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func getJSON(t *testing.T, rawURL string, into any) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", rawURL, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", rawURL, err)
	}
}

func TestAggregateEndpointMatchesBatchPipeline(t *testing.T) {
	s := newTestStudy(t)
	srv, entries := newTestServer(t, s)

	mid := entries[len(entries)/2].Record.Time
	late := entries[3*len(entries)/4].Record.Time
	kept := true
	topCat := entries[0].Category

	cases := []struct {
		name   string
		params url.Values
		f      store.Filter
		opts   query.AggregateOptions
	}{
		{"everything", url.Values{}, store.Filter{}, query.AggregateOptions{}},
		{
			"one category",
			url.Values{"category": {topCat}},
			store.Filter{Categories: []string{topCat}},
			query.AggregateOptions{},
		},
		{
			"survivors only",
			url.Values{"kept": {"true"}},
			store.Filter{Kept: &kept},
			query.AggregateOptions{},
		},
		{
			"time window",
			url.Values{"from": {mid.Format(time.RFC3339Nano)}, "to": {late.Format(time.RFC3339Nano)}},
			store.Filter{From: mid, To: late},
			query.AggregateOptions{},
		},
		{
			"custom topk and quantiles",
			url.Values{"topk": {"3"}, "quantiles": {"0.5,0.95"}},
			store.Filter{},
			query.AggregateOptions{TopK: 3, Quantiles: []float64{0.5, 0.95}},
		},
	}
	for _, tc := range cases {
		var resp struct {
			Stats     store.ScanStats `json:"stats"`
			Aggregate json.RawMessage `json:"aggregate"`
		}
		getJSON(t, srv.URL+"/api/aggregate?"+tc.params.Encode(), &resp)

		var ref []store.Entry
		for _, en := range entries {
			if matchesFilter(tc.f, en) {
				ref = append(ref, en)
			}
		}
		want, err := json.Marshal(query.Aggregate(ref, tc.opts))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Aggregate) != string(want) {
			t.Errorf("%s: served aggregate diverges from batch pipeline\nserved: %s\nbatch:  %s",
				tc.name, resp.Aggregate, want)
		}
		if resp.Stats.Matched != len(ref) {
			t.Errorf("%s: stats.matched = %d, want %d", tc.name, resp.Stats.Matched, len(ref))
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := newTestStudy(t)
	srv, entries := newTestServer(t, s)

	var resp struct {
		Count   int `json:"count"`
		Entries []struct {
			Seq      uint64    `json:"seq"`
			Time     time.Time `json:"time"`
			Category string    `json:"category"`
			Kept     bool      `json:"kept"`
		} `json:"entries"`
	}
	getJSON(t, srv.URL+"/api/query?limit=10", &resp)
	if resp.Count != 10 || len(resp.Entries) != 10 {
		t.Fatalf("limit ignored: count %d", resp.Count)
	}
	for i, en := range resp.Entries {
		if !en.Time.Equal(entries[i].Record.Time) || en.Seq != entries[i].Record.Seq {
			t.Fatalf("entry %d out of canonical order: %+v", i, en)
		}
	}

	cat := entries[0].Category
	getJSON(t, srv.URL+"/api/query?limit=0&category="+url.QueryEscape(cat), &resp)
	want := 0
	for _, en := range entries {
		if en.Category == cat {
			want++
		}
	}
	if resp.Count != want {
		t.Fatalf("category filter: count %d, want %d", resp.Count, want)
	}
	for _, en := range resp.Entries {
		if en.Category != cat {
			t.Fatalf("filter leaked category %q", en.Category)
		}
	}
}

func TestSegmentsEndpoint(t *testing.T) {
	s := newTestStudy(t)
	srv, entries := newTestServer(t, s)

	var resp struct {
		System       string              `json:"system"`
		Segments     []store.SegmentInfo `json:"segments"`
		TailEntries  int                 `json:"tail_entries"`
		TotalEntries int                 `json:"total_entries"`
	}
	getJSON(t, srv.URL+"/api/segments", &resp)
	if resp.System != "liberty" {
		t.Errorf("system = %q", resp.System)
	}
	if len(resp.Segments) < 2 {
		t.Errorf("want multiple sealed segments, got %d", len(resp.Segments))
	}
	total := resp.TailEntries
	for _, g := range resp.Segments {
		total += g.Records
	}
	if total != len(entries) || resp.TotalEntries != len(entries) {
		t.Errorf("inventory %d+tail=%d, want %d", resp.TotalEntries, total, len(entries))
	}
}

// TestIngestEndpointMatchesBatchPipeline posts raw log lines into an
// empty store and checks the served aggregation equals the batch
// pipeline run directly over the same lines.
func TestIngestEndpointMatchesBatchPipeline(t *testing.T) {
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: testScale, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Join(out.Lines, "\n") + "\n"

	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d: %s", resp.StatusCode, raw)
	}
	var ing ingestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Lines != len(out.Lines) || ing.Appended == 0 || ing.Appended != ing.Alerts {
		t.Fatalf("ingest summary off: %+v (posted %d lines)", ing, len(out.Lines))
	}

	// The batch side of the differential: same lines, same stages,
	// no store or HTTP in the loop.
	m, err := cluster.New(logrec.Liberty)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := ingest.ReadAll(strings.NewReader(body), logrec.Liberty, m.LogStart)
	if err != nil {
		t.Fatal(err)
	}
	alerts := tag.NewTagger(logrec.Liberty).TagAll(recs)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	want, err := json.Marshal(query.Aggregate(store.FromAlerts(alerts, filtered), query.AggregateOptions{}))
	if err != nil {
		t.Fatal(err)
	}

	var got struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	getJSON(t, srv.URL+"/api/aggregate", &got)
	if string(got.Aggregate) != string(want) {
		t.Fatalf("ingested aggregate diverges from batch pipeline\nserved: %s\nbatch:  %s",
			got.Aggregate, want)
	}
}

func TestAPIErrors(t *testing.T) {
	s := newTestStudy(t)
	srv, _ := newTestServer(t, s)

	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/api/query?from=yesterday", http.StatusBadRequest},
		{"GET", "/api/query?limit=nope", http.StatusBadRequest},
		{"GET", "/api/aggregate?quantiles=1.5", http.StatusBadRequest},
		{"GET", "/api/aggregate?severity=NOT_A_SEVERITY", http.StatusBadRequest},
		{"POST", "/api/query", http.StatusMethodNotAllowed},
		{"GET", "/api/ingest", http.StatusMethodNotAllowed},
		{"GET", "/healthz", http.StatusOK},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestBuildStoreAndServeCommands exercises the two subcommands end to
// end: build a store from the synthetic pipeline, then reopen it via
// the API handler path (Open, as runServe does) and check the served
// totals match the build summary's inputs.
func TestBuildStoreAndServeCommands(t *testing.T) {
	dir := t.TempDir() + "/alerts"
	var b strings.Builder
	if err := run(testArgs("build-store", "-system", "liberty", "-dir", dir, "-flush-every", "1000"), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "stored") {
		t.Fatalf("build summary missing: %s", b.String())
	}
	if err := run([]string{"build-store"}, io.Discard); err == nil {
		t.Error("missing -dir must error")
	}

	st, rep, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rep.TailEntries != 0 || len(rep.CorruptSegments) != 0 {
		t.Fatalf("build-store left a dirty store: %+v", rep)
	}
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	defer srv.Close()

	s := newTestStudy(t)
	want, err := json.Marshal(query.Aggregate(store.FromAlerts(s.Alerts, s.Filtered), query.AggregateOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	getJSON(t, srv.URL+"/api/aggregate", &got)
	if string(got.Aggregate) != string(want) {
		t.Fatalf("served store diverges from the pipeline that built it\nserved: %s\nbatch:  %s",
			got.Aggregate, want)
	}
}
