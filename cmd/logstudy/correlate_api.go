package main

// Correlation-mining and live-prediction endpoints, mounted by both the
// single-store api and the sharded shardAPI:
//
//	GET /api/correlations  the weighted event-correlation graph the
//	                       online miner maintains off the mutation
//	                       stream (filter with min_support,
//	                       min_confidence, node; bound with limit)
//	GET /api/predict       current warnings plus the per-category
//	                       predictor scoreboard AutoSelect maintains
//	                       over the mined graph and baseline predictors
//
// Responses are views over miner state — serving them never rescans the
// store. Under -shards N the graph is the merged cluster view: per-shard
// timestamp columns unioned and edges recomputed, so cross-shard
// precedence pairs are counted exactly (see internal/shard).
//
// Both endpoints carry a "settled" field: false while a baseline scan
// or compaction/retention re-baseline is still installing, so clients
// can tell a warming view from a quiet system.

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"whatsupersay/internal/correlate"
	"whatsupersay/internal/shard"
)

// List-endpoint response bounds (satellite: /api/subscriptions shares
// them). The default keeps accidental curls small; the max keeps a
// hostile limit from ballooning a response.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// parseBoundedLimit reads the limit parameter for list endpoints:
// default when absent, 400 (via error) when not an integer in
// [1, maxListLimit].
func parseBoundedLimit(q url.Values) (int, error) {
	limit := defaultListLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxListLimit {
			return 0, fmt.Errorf("bad limit %q: want an integer in 1..%d", v, maxListLimit)
		}
		limit = n
	}
	return limit, nil
}

// correlateBackend abstracts the two correlation tiers — a single-store
// miner or a sharded cluster's merged view — behind the surface the
// HTTP handlers need.
type correlateBackend interface {
	CorrelationGraph() correlate.Graph
	PredictionReport() correlate.PredictionReport
	CorrelateSettled() bool
}

// minerCorrelate adapts a single-store miner and its live service.
type minerCorrelate struct {
	m    *correlate.Miner
	live *correlate.LiveService
}

func (b minerCorrelate) CorrelationGraph() correlate.Graph { return b.m.Snapshot() }

func (b minerCorrelate) PredictionReport() correlate.PredictionReport { return b.live.Report() }

func (b minerCorrelate) CorrelateSettled() bool { return b.m.Settled() }

// clusterCorrelateBackend adapts a sharded cluster.
type clusterCorrelateBackend struct {
	c    *shard.Cluster
	opts correlate.PredictOptions
}

func (b clusterCorrelateBackend) CorrelationGraph() correlate.Graph { return b.c.CorrelationGraph() }

func (b clusterCorrelateBackend) PredictionReport() correlate.PredictionReport {
	return b.c.PredictionReport(b.opts)
}

func (b clusterCorrelateBackend) CorrelateSettled() bool { return b.c.CorrelateSettled() }

// correlAPI mounts the correlation endpoints over one backend.
type correlAPI struct {
	b correlateBackend
}

func (ca *correlAPI) register(mux *http.ServeMux) {
	mux.HandleFunc("/api/correlations", instrument("/api/correlations", ca.handleCorrelations))
	mux.HandleFunc("/api/predict", instrument("/api/predict", ca.handlePredict))
}

// handleCorrelations serves the correlation graph. Query parameters:
//
//	limit           max nodes and max edges returned (default 100, max 1000)
//	min_support     drop edges with fewer co-occurrence pairs
//	min_confidence  drop edges below this P(target | source)
//	node            keep only edges touching this node (neighborhood view)
func (ca *correlAPI) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	limit, err := parseBoundedLimit(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minSupport := 0
	if v := q.Get("min_support"); v != "" {
		if minSupport, err = strconv.Atoi(v); err != nil || minSupport < 0 {
			httpError(w, http.StatusBadRequest, "bad min_support %q", v)
			return
		}
	}
	minConfidence := 0.0
	if v := q.Get("min_confidence"); v != "" {
		if minConfidence, err = strconv.ParseFloat(v, 64); err != nil || minConfidence < 0 || minConfidence > 1 {
			httpError(w, http.StatusBadRequest, "bad min_confidence %q: want a number in [0, 1]", v)
			return
		}
	}

	g := ca.b.CorrelationGraph()
	edges := correlate.FilterEdges(g.Edges, int64(minSupport), minConfidence, q.Get("node"))
	nodeCount, edgeCount := len(g.Nodes), len(edges)
	nodes := g.Nodes
	if len(nodes) > limit {
		nodes = nodes[:limit]
	}
	if len(edges) > limit {
		edges = edges[:limit]
	}
	writeJSON(w, map[string]any{
		"window_ns":  g.Window,
		"node_mode":  g.NodeMode,
		"events":     g.Events,
		"settled":    ca.b.CorrelateSettled(),
		"node_count": nodeCount,
		"nodes":      nodes,
		"edge_count": edgeCount,
		"edges":      edges,
		"truncated":  nodeCount > limit || edgeCount > limit,
	})
}

// handlePredict serves the live failure-prediction view: the warnings
// active in the horizon ending at the newest event, and the
// per-category champion scoreboard. limit bounds both lists.
func (ca *correlAPI) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	limit, err := parseBoundedLimit(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep := ca.b.PredictionReport()
	scoreCount, warnCount := len(rep.Scoreboard), len(rep.Warnings)
	scoreboard := rep.Scoreboard
	if len(scoreboard) > limit {
		scoreboard = scoreboard[:limit]
	}
	warnings := rep.Warnings
	if len(warnings) > limit {
		warnings = warnings[:limit]
	}
	writeJSON(w, map[string]any{
		"as_of":            rep.AsOf,
		"horizon_ns":       rep.Horizon,
		"events":           rep.Events,
		"categories":       rep.Categories,
		"settled":          ca.b.CorrelateSettled(),
		"scoreboard_count": scoreCount,
		"scoreboard":       scoreboard,
		"warning_count":    warnCount,
		"warnings":         warnings,
		"truncated":        scoreCount > limit || warnCount > limit,
	})
}
