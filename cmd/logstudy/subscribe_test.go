package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// The subscribe smoke contract: registering a standing query, streaming
// its SSE feed, and crossing the threshold produces exactly ONE fire
// event — single store and sharded alike — and a fresh stream's state
// snapshot is byte-identical to /api/aggregate over the same records.

// subEntries fabricates n Liberty entries spread over several sources.
func subEntries(base time.Time, startSeq uint64, n int) []store.Entry {
	sevs := []logrec.Severity{logrec.SevErr, logrec.SevCrit, logrec.SevWarning}
	out := make([]store.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Entry{
			Record: logrec.Record{
				Seq:      startSeq + uint64(i),
				Time:     base.Add(time.Duration(i) * time.Second),
				System:   logrec.Liberty,
				Source:   fmt.Sprintf("ladmin%d", i%9),
				Severity: sevs[i%len(sevs)],
				Program:  "kernel",
				Body:     fmt.Sprintf("subscribe smoke %d", i),
			},
			Category: []string{"MPT_BUS_RESET", "SCSI_ABORT"}[i%2],
			Kept:     i%3 != 0,
		})
	}
	return out
}

// postSubscribe registers a subscription and returns the response body.
func postSubscribe(t *testing.T, baseURL string, req subscribeRequest) subJSON {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/api/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe: %d: %s", resp.StatusCode, raw)
	}
	var info subJSON
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatalf("subscribe response %q: %v", raw, err)
	}
	return info
}

// sseStream opens an SSE connection and parses events onto a channel.
type sseStream struct {
	events <-chan sseEvent
	close  func()
}

type sseEvent struct {
	name string
	data string
}

func openSSE(t *testing.T, url string) *sseStream {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE open: %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	ch := make(chan sseEvent, 16)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if name != "" {
					ch <- sseEvent{name, data}
				}
				name, data = "", ""
			}
		}
	}()
	return &sseStream{events: ch, close: func() { resp.Body.Close() }}
}

// next waits for the stream's next event, failing on timeout.
func (s *sseStream) next(t *testing.T, want string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if !ok {
			t.Fatalf("SSE stream closed waiting for %q", want)
		}
		if ev.name != want {
			t.Fatalf("SSE event %q (%s), want %q", ev.name, ev.data, want)
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatalf("no %q event within 5s", want)
		return sseEvent{}
	}
}

// quiet asserts no event arrives for a grace window — the at-most-once
// half of the edge-trigger contract.
func (s *sseStream) quiet(t *testing.T, d time.Duration) {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if ok {
			t.Fatalf("unexpected SSE event %q: %s", ev.name, ev.data)
		}
	case <-time.After(d):
	}
}

// aggregateBytes fetches /api/aggregate's aggregate field verbatim.
func aggregateBytes(t *testing.T, baseURL string) string {
	t.Helper()
	var resp struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	getJSON(t, baseURL+"/api/aggregate", &resp)
	return string(resp.Aggregate)
}

func TestSubscribeSmoke(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	// A webhook target that records every delivery.
	var whMu sync.Mutex
	var hooks []subEvent
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev subEvent
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		whMu.Lock()
		hooks = append(hooks, ev)
		whMu.Unlock()
	}))
	t.Cleanup(hook.Close)

	info := postSubscribe(t, srv.URL, subscribeRequest{Threshold: 5, Webhook: hook.URL})
	if info.ID == "" || info.Threshold != 5 || info.Total != 0 || info.Webhook != hook.URL {
		t.Fatalf("subscribe response %+v", info)
	}

	stream := openSSE(t, srv.URL+"/api/subscribe/"+info.ID+"/events")
	defer stream.close()
	state := stream.next(t, "state")
	if !strings.Contains(state.data, `"total":0`) {
		t.Fatalf("initial state: %s", state.data)
	}

	base := time.Date(2004, 1, 5, 0, 0, 0, 0, time.UTC)
	// Below the threshold: no fire.
	if err := st.Append(subEntries(base, 0, 3)...); err != nil {
		t.Fatal(err)
	}
	stream.quiet(t, 100*time.Millisecond)

	// Crossing: exactly one fire, with the incremental aggregate inline.
	if err := st.Append(subEntries(base.Add(time.Minute), 10, 4)...); err != nil {
		t.Fatal(err)
	}
	fire := stream.next(t, "fire")
	var ev subEvent
	if err := json.Unmarshal([]byte(fire.data), &ev); err != nil {
		t.Fatalf("fire payload %q: %v", fire.data, err)
	}
	if ev.SubscriptionID != info.ID || ev.Total != 7 || ev.Threshold != 5 || ev.Aggregate.Total != 7 || ev.Seq != 1 {
		t.Fatalf("fire event %+v", ev)
	}

	// Staying above the line: still exactly one.
	if err := st.Append(subEntries(base.Add(2*time.Minute), 20, 5)...); err != nil {
		t.Fatal(err)
	}
	stream.quiet(t, 150*time.Millisecond)

	// The webhook got the same single event.
	deadline := time.Now().Add(2 * time.Second)
	for {
		whMu.Lock()
		n := len(hooks)
		whMu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("webhook never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	whMu.Lock()
	if len(hooks) != 1 || hooks[0].SubscriptionID != info.ID || hooks[0].Total != 7 {
		t.Fatalf("webhook deliveries %+v", hooks)
	}
	whMu.Unlock()

	// Listing reflects the live total and the single fire.
	var list struct {
		Count int       `json:"count"`
		Subs  []subJSON `json:"subscriptions"`
	}
	getJSON(t, srv.URL+"/api/subscriptions", &list)
	if list.Count != 1 || list.Subs[0].Total != 12 || list.Subs[0].Events != 1 || !list.Subs[0].Fired {
		t.Fatalf("subscriptions listing %+v", list)
	}

	// A fresh stream's state snapshot — served from the materialization,
	// no rescan — is byte-identical to a from-scratch /api/aggregate.
	fresh := openSSE(t, srv.URL+"/api/subscribe/"+info.ID+"/events")
	defer fresh.close()
	var snap struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(fresh.next(t, "state").data), &snap); err != nil {
		t.Fatal(err)
	}
	if got, want := string(snap.Aggregate), aggregateBytes(t, srv.URL); got != want {
		t.Fatalf("materialized state diverges from /api/aggregate\nstate: %s\nfresh: %s", got, want)
	}

	// DELETE removes it; the listing empties; a second DELETE 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/subscribe/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unsubscribe: %d", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unsubscribe: %d", resp.StatusCode)
	}
	getJSON(t, srv.URL+"/api/subscriptions", &list)
	if list.Count != 0 {
		t.Fatalf("listing after unsubscribe %+v", list)
	}
}

// TestShardSubscribeSmoke is the sharded variant of the acceptance
// criterion: one subscription over a 3-shard cluster, a crossing spread
// across the shards, exactly one cluster-level fire on the stream.
func TestShardSubscribeSmoke(t *testing.T) {
	c, rep, err := shard.Create(t.TempDir(), logrec.Liberty, 3, shard.Options{
		Store: store.Options{FlushEvery: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined: %v", rep.Quarantined)
	}
	srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
	t.Cleanup(srv.Close)

	info := postSubscribe(t, srv.URL, subscribeRequest{Threshold: 10})
	if info.ShardsStanding != 3 || info.ShardsTotal != 3 {
		t.Fatalf("subscribe coverage %+v", info)
	}
	stream := openSSE(t, srv.URL+"/api/subscribe/"+info.ID+"/events")
	defer stream.close()
	stream.next(t, "state")

	base := time.Date(2004, 1, 5, 0, 0, 0, 0, time.UTC)
	if _, err := c.Append(subEntries(base, 0, 6)); err != nil {
		t.Fatal(err)
	}
	stream.quiet(t, 100*time.Millisecond)

	if _, err := c.Append(subEntries(base.Add(time.Minute), 10, 8)); err != nil {
		t.Fatal(err)
	}
	fire := stream.next(t, "fire")
	var ev subEvent
	if err := json.Unmarshal([]byte(fire.data), &ev); err != nil {
		t.Fatalf("fire payload %q: %v", fire.data, err)
	}
	if ev.SubscriptionID != info.ID || ev.Threshold != 10 || ev.Total < 10 ||
		ev.Aggregate.Total != ev.Total || ev.ShardsStanding != 3 || ev.Seq != 1 {
		t.Fatalf("cluster fire event %+v", ev)
	}
	// More appends above the line: the latch holds — one event total.
	if _, err := c.Append(subEntries(base.Add(2*time.Minute), 30, 6)); err != nil {
		t.Fatal(err)
	}
	stream.quiet(t, 150*time.Millisecond)

	// Materialized state == scatter-gather /api/aggregate, byte for byte.
	var aggResp struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	getJSON(t, srv.URL+"/api/aggregate", &aggResp)
	fresh := openSSE(t, srv.URL+"/api/subscribe/"+info.ID+"/events")
	defer fresh.close()
	var snap struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	if err := json.Unmarshal([]byte(fresh.next(t, "state").data), &snap); err != nil {
		t.Fatal(err)
	}
	if string(snap.Aggregate) != string(aggResp.Aggregate) {
		t.Fatalf("cluster materialization diverges\nstate: %s\nfresh: %s", snap.Aggregate, aggResp.Aggregate)
	}
}

// TestSubscribeValidation pins the request-side 400s, including the
// strict quantile validation shared with /api/aggregate.
func TestSubscribeValidation(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	bad := []subscribeRequest{
		{Quantiles: "NaN"},           // parses as a float, not a quantile
		{Quantiles: "+Inf"},          // same
		{Quantiles: "0.9,0.5"},       // not strictly increasing
		{Quantiles: "0"},             // out of (0, 1]
		{Quantiles: "1.5"},           // out of (0, 1]
		{Quantiles: "abc"},           // not a float at all
		{TopK: "x"},                  // bad topk
		{Threshold: -1},              // negative threshold
		{Webhook: "not-a-url"},       // relative / schemeless webhook
		{Webhook: "ftp://host/path"}, // non-http scheme
		{From: "yesterday"},          // bad time
		{Kept: "maybe"},              // bad bool
	}
	for _, req := range bad {
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/api/subscribe", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("subscribe %+v: status %d (%s), want 400", req, resp.StatusCode, raw)
		}
	}

	// The same garbage quantiles 400 on the aggregate endpoint (the
	// validation satellite): they must never reach the stats layer or
	// poison a cache entry.
	for _, qs := range []string{"NaN", "+Inf", "0.9,0.5", "0", "1.5"} {
		resp, err := http.Get(srv.URL + "/api/aggregate?quantiles=" + strings.ReplaceAll(qs, "+", "%2B"))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("aggregate quantiles=%s: status %d (%s), want 400", qs, resp.StatusCode, raw)
		}
	}

	// SSE and DELETE on an unknown id 404.
	resp, err := http.Get(srv.URL + "/api/subscribe/sub-999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events on unknown id: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/subscribe/sub-999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown id: %d", resp.StatusCode)
	}
}
