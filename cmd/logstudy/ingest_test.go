package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"whatsupersay/internal/ingest"
)

// genLog writes a small Liberty log for the ingest-mode tests.
func genLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "liberty.log")
	var b strings.Builder
	if err := run(testArgs("generate", "-system", "liberty", "-o", path), &b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIngestCommand(t *testing.T) {
	path := genLog(t)
	var b strings.Builder
	if err := run([]string{"ingest", "-in", path}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "ingested") || !strings.Contains(out, "syslog") {
		t.Errorf("summary missing: %s", out)
	}
	if err := run([]string{"ingest"}, &b); err == nil {
		t.Error("-in must be required")
	}
	if err := run([]string{"ingest", "-in", path, "-system", "marsrover"}, &b); err == nil {
		t.Error("bad system must error")
	}
	if err := run([]string{"ingest", "-in", path, "-inject", "bogus=1"}, &b); err == nil {
		t.Error("bad inject spec must error")
	}
}

func TestIngestCommandChaosAndQuarantine(t *testing.T) {
	path := genLog(t)
	qpath := filepath.Join(t.TempDir(), "quarantine.log")
	var b strings.Builder
	err := run([]string{"ingest", "-in", path, "-retry-base", "10us",
		"-inject", "seed=7,short,transient=0.05,garble=0.0008,tear=30",
		"-quarantine", qpath}, &b)
	if err != nil {
		t.Fatalf("chaos ingest aborted: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "chaos injection active") {
		t.Error("injection banner missing")
	}
	if !strings.Contains(out, "retries") {
		t.Errorf("summary missing: %s", out)
	}
	data, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("quarantine file empty despite garbling")
	}
}

func TestIngestCommandErrorBudget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.log")
	if err := os.WriteFile(path, []byte(strings.Repeat("unparseable junk\n", 30)), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"ingest", "-in", path, "-max-errors", "5"}, &b)
	if err == nil || !strings.Contains(err.Error(), "error budget") {
		t.Fatalf("budget abort missing: %v", err)
	}
	b.Reset()
	if err := run([]string{"ingest", "-in", path}, &b); err != nil {
		t.Fatalf("unlimited budget must survive garbage: %v", err)
	}
}

// TestIngestCommandResume: a run killed by the chaos harness's hard
// failure leaves a checkpoint; rerunning with -resume finishes the job,
// and the combined line count matches a clean one-shot run.
func TestIngestCommandResume(t *testing.T) {
	path := genLog(t)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")

	var b strings.Builder
	err = run([]string{"ingest", "-in", path, "-resume", ckpt, "-checkpoint-every", "50",
		"-inject", "failafter=" + strconv.FormatInt(info.Size()/2, 10)}, &b)
	if err == nil {
		t.Fatal("hard failure must surface")
	}
	if !strings.Contains(b.String(), "rerun with -resume") {
		t.Errorf("resume hint missing: %s", b.String())
	}
	cp, err := ingest.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after killed run: %v", err)
	}
	if cp.Lines == 0 {
		t.Fatal("checkpoint is empty")
	}

	b.Reset()
	if err := run([]string{"ingest", "-in", path, "-resume", ckpt}, &b); err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "resuming from") {
		t.Errorf("resume banner missing: %s", b.String())
	}
	final, err := ingest.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Clean one-shot run for the ground-truth line count.
	ckpt2 := filepath.Join(t.TempDir(), "ckpt2.json")
	b.Reset()
	if err := run([]string{"ingest", "-in", path, "-resume", ckpt2}, &b); err != nil {
		t.Fatal(err)
	}
	oneShot, err := ingest.LoadCheckpoint(ckpt2)
	if err != nil {
		t.Fatal(err)
	}
	if final.Lines != oneShot.Lines || final.Seq != oneShot.Seq {
		t.Errorf("resumed total %d lines / seq %d, one-shot %d / %d",
			final.Lines, final.Seq, oneShot.Lines, oneShot.Seq)
	}
	if final.Stats != oneShot.Stats {
		t.Errorf("resumed stats %+v != one-shot %+v", final.Stats, oneShot.Stats)
	}
}
