package main

import (
	"flag"
	"fmt"
	"io"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/core"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
)

// runBuildStore runs the batch pipeline once — generate (or ingest a
// real log with -in), tag, filter — and persists the result as a
// segment store that `logstudy serve` answers from without ever
// re-running the pipeline.
func runBuildStore(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("build-store", flag.ContinueOnError)
	sysName := fs.String("system", "liberty", "system to build (bgl, tbird, redstorm, spirit, liberty)")
	dir := fs.String("dir", "", "store directory to create or append to (required)")
	inPath := fs.String("in", "", "ingest this log file instead of generating synthetically")
	flushEvery := fs.Int("flush-every", store.DefaultFlushEvery, "seal a segment every N entries")
	syncAppends := fs.Bool("sync", false, "fsync the wal after every append batch")
	compact := fs.Bool("compact", false, "compact the store after loading (merge small segments)")
	scale, seed := commonFlags(fs)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *dir == "" {
		return usageError("build-store: -dir is required")
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}

	var s *core.Study
	if *inPath != "" {
		f, err := ingest.Open(*inPath)
		if err != nil {
			return err
		}
		m, err := cluster.New(sys)
		if err != nil {
			f.Close()
			return err
		}
		recs, stats, err := ingest.ReadAll(f, sys, m.LogStart)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ingested %s lines (%d parse errors) from %s\n",
			report.Comma(int64(stats.Lines)), stats.ParseErrors, *inPath)
		s = core.FromRecords(sys, recs)
	} else if s, err = core.New(simulate.Config{System: sys, Scale: *scale, Seed: *seed}); err != nil {
		return err
	}

	st, err := store.Create(*dir, sys, store.Options{FlushEvery: *flushEvery, SyncAppends: *syncAppends})
	if err != nil {
		return err
	}
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	if err := st.Append(entries...); err != nil {
		st.Close()
		return err
	}
	if err := st.Seal(); err != nil {
		st.Close()
		return err
	}
	if *compact {
		cst, err := st.Compact()
		if err != nil {
			st.Close()
			return err
		}
		if cst.Compactions > 0 {
			fmt.Fprintf(w, "compacted %d segments into %d\n", cst.SegmentsIn, cst.Compactions)
		}
	}
	nSegs := len(st.Segments())
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "stored %s alerts (%s kept by Algorithm 3.1) in %d segments under %s\n",
		report.Comma(int64(len(entries))), report.Comma(int64(len(s.Filtered))), nSegs, *dir)
	return nil
}
