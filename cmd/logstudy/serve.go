package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/correlate"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/query"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// runServe answers alert queries out of a store built by `build-store`
// (or filled through POST /api/ingest), so interarrival quantiles,
// top-k sources, and filter-reduction ratios come back without
// re-running the batch pipeline. The API is JSON over HTTP:
//
//	GET  /api/query      matching entries (filter params + limit)
//	GET  /api/aggregate  the standard aggregation over the match
//	GET  /api/segments   the store's sealed-segment inventory
//	POST /api/ingest     raw log lines -> tag -> filter -> append
//	GET  /healthz        liveness
//
// With -shards N the same API fronts a sharded cluster (internal/shard)
// instead of one store: ingest routes by source hash, queries
// scatter-gather with per-shard breakers and deadlines, responses carry
// coverage metadata, and GET /api/shards reports per-shard health.
func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	dir := fs.String("dir", "", "store directory (required)")
	addr := fs.String("addr", "localhost:8080", "listen address")
	sysName := fs.String("system", "", "create the store for this system if the directory is not one yet")
	flushEvery := fs.Int("flush-every", store.DefaultFlushEvery, "seal a segment every N appended entries")
	syncAppends := fs.Bool("sync", false, "fsync the wal after every ingest batch")
	maxBody := fs.Int64("max-body", defaultMaxBody, "largest POST /api/ingest body accepted, in bytes (413 beyond it)")
	cacheSize := fs.Int("cache", query.DefaultCacheSize, "aggregate-result cache entries (0 disables the cache)")
	compactEvery := fs.Duration("compact-every", 0, "run retention + compaction in the background on this interval (0 = never)")
	compactTarget := fs.Int("compact-target", 0, "merged-segment size goal, in entries (default 4x flush-every)")
	retention := fs.Duration("retention", 0, "drop segments older than this horizon before the newest record (0 = keep everything)")
	shards := fs.Int("shards", 0, "serve a sharded cluster with N shards (0 = single store; existing clusters use their on-disk shape)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request deadline on query/aggregate handlers (0 = none)")
	shutdownGrace := fs.Duration("shutdown-grace", defaultShutdownGrace, "budget for draining in-flight requests on SIGTERM")
	corrWindow := fs.Duration("correlate-window", correlate.DefaultWindow, "co-occurrence window for the online correlation miner")
	corrNodes := fs.String("correlate-nodes", "category", "correlation node identity: category, source-category, or template")
	graphiteAddr := fs.String("graphite", "", "pump aggregate metrics to this graphite (carbon plaintext) host:port")
	graphiteEvery := fs.Duration("graphite-every", 10*time.Second, "graphite pump cadence")
	graphitePrefix := fs.String("graphite-prefix", "logstudy", "graphite metric path prefix")
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *dir == "" {
		return usageError("serve: -dir is required")
	}
	nodeMode, err := correlate.ParseNodeMode(*corrNodes)
	if err != nil {
		return usageError(fmt.Sprintf("serve: %v", err))
	}
	b, err := openServeBackend(serveBackendConfig{
		Dir:     *dir,
		SysName: *sysName,
		Shards:  *shards,
		StoreOpts: store.Options{
			FlushEvery:    *flushEvery,
			SyncAppends:   *syncAppends,
			CompactTarget: *compactTarget,
			CompactEvery:  *compactEvery,
			Retention:     *retention,
		},
		APIOpts: apiOptions{
			MaxBody: *maxBody, CacheSize: *cacheSize, RequestTimeout: *reqTimeout,
			Correlate: correlate.Config{Window: *corrWindow, NodeMode: nodeMode},
		},
		CacheSize:      *cacheSize,
		GraphiteAddr:   *graphiteAddr,
		GraphiteEvery:  *graphiteEvery,
		GraphitePrefix: *graphitePrefix,
	}, w)
	if err != nil {
		return err
	}

	// SIGTERM is how orchestrators (systemd, Kubernetes) ask for a
	// graceful stop; treat it exactly like Ctrl-C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveAndWait(ctx, b, *addr, *reqTimeout, *shutdownGrace, w, nil)
}

// defaultMaxBody bounds POST /api/ingest bodies: large enough for any
// reasonable batch, small enough that one request cannot balloon the
// server's memory (ingest buffers the parsed records).
const defaultMaxBody = int64(32 << 20)

// writeTimeout derives the server's WriteTimeout from the per-request
// deadline: the handler budget plus headroom to stream the response.
// With no request deadline there is no write timeout either (bulk
// /api/query responses can be legitimately large).
func writeTimeout(reqTimeout time.Duration) time.Duration {
	if reqTimeout <= 0 {
		return 0
	}
	return reqTimeout + 10*time.Second
}

// apiOptions tune the HTTP layer.
type apiOptions struct {
	// MaxBody caps POST /api/ingest bodies in bytes (defaultMaxBody
	// when zero; negative disables the cap — tests only).
	MaxBody int64
	// CacheSize enables the aggregate-result cache with this many
	// entries (0 disables it).
	CacheSize int
	// RequestTimeout bounds each query/aggregate handler: the request
	// context gets this deadline and the scan aborts cooperatively when
	// it passes (0 = no per-request deadline).
	RequestTimeout time.Duration
	// DisableColumnar forces the engine's row-decode aggregate path —
	// the reference side of the columnar differential tests.
	DisableColumnar bool
	// Correlate configures the online correlation miner behind
	// /api/correlations (zero value = defaults).
	Correlate correlate.Config
	// CorrelateArtifact is where the miner persists its graph for warm
	// starts (empty disables persistence — tests).
	CorrelateArtifact string
	// Predict tunes the /api/predict evaluation (zero value = defaults).
	Predict correlate.PredictOptions
	// IngestQueueDepth bounds the single-store ingest admission queue
	// (default defaultIngestQueueDepth). Overflow is rejected with 429 +
	// Retry-After, matching the sharded tier's contract.
	IngestQueueDepth int
	// SSEHeartbeat overrides the SSE comment-heartbeat cadence (default
	// sseHeartbeat; tests shrink it to cross deadline windows quickly).
	SSEHeartbeat time.Duration
	// ingestApplyHook, when set, runs inside the ingest queue's worker
	// just before each batch applies — a test seam to wedge or slow the
	// drain without faulting the store.
	ingestApplyHook func()
}

// requestContext applies the configured per-request deadline to an
// incoming request's context.
func (o apiOptions) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if o.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), o.RequestTimeout)
}

// isSSERequest recognizes GET /api/subscribe/{id}/events — the one
// endpoint that is designed to outlive every per-request budget.
func isSSERequest(r *http.Request) bool {
	return r.Method == http.MethodGet &&
		strings.HasPrefix(r.URL.Path, "/api/subscribe/") &&
		strings.HasSuffix(r.URL.Path, "/events")
}

// withRequestDeadlines applies RequestTimeout to every route's context
// uniformly — except the SSE stream, which must be exempt from both
// this deadline and the server's WriteTimeout (the handler clears the
// latter itself) or every subscriber would be dropped mid-heartbeat
// the moment the budget elapses. TestSSEExemptFromRequestTimeout pins
// the exemption.
func (o apiOptions) withRequestDeadlines(h http.Handler) http.Handler {
	if o.RequestTimeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isSSERequest(r) {
			h.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), o.RequestTimeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// api serves one store. Handlers are pure views over the store and the
// query engine, so the differential tests can drive them through
// httptest against the batch pipeline's answers.
type api struct {
	st   *store.Store
	eng  *query.Engine
	opts apiOptions
	q    *ingestQueue
}

// apiServer is the single-store handler plus the push tier behind it:
// the standing-query registry and the correlation miner, both fed by
// the store's (single, multiplexed) mutation observer.
type apiServer struct {
	http.Handler
	st    *store.Store
	reg   *query.Registry
	miner *correlate.Miner
	q     *ingestQueue
	hub   *pushHub
}

// Close shuts the push tier down in warm-start-preserving order: first
// drain the ingest admission queue (every batch a client got a 200 for
// must reach the wal before anything seals — the durability ordering
// the loadgen kill test pins), then seal the tail while the miner still
// observes (so the persisted artifact's fingerprint matches the store a
// reopen will see), detach the observer, close the miner (final
// artifact save), then the registry. The store stays open — the caller
// owns it, and its own Close's seal finds an empty tail, a no-op that
// leaves the fingerprint stable.
func (a *apiServer) Close() error {
	a.q.close()
	err := a.st.Seal()
	a.st.SetObserver(nil)
	a.miner.Close()
	a.reg.Close()
	return err
}

// BeginShutdown tells long-lived push streams (SSE) to finish so the
// HTTP server's graceful Shutdown can complete; request/response
// traffic is unaffected.
func (a *apiServer) BeginShutdown() { a.hub.beginShutdown() }

// newAPI builds the HTTP handler for one open store, including the
// standing-query subscription endpoints (a registry observes the
// store's mutation stream and its fires flow into a push hub) and the
// correlation miner behind /api/correlations and /api/predict. The
// error is the miner's baseline scan failing. Call Close before
// closing the store.
func newAPI(st *store.Store, opts apiOptions) (*apiServer, error) {
	eng := &query.Engine{Store: st, DisableColumnar: opts.DisableColumnar}
	if opts.CacheSize > 0 {
		eng.EnableCache(opts.CacheSize)
	}
	if opts.MaxBody == 0 {
		opts.MaxBody = defaultMaxBody
	}
	a := &api{st: st, eng: eng, opts: opts}
	a.q = newIngestQueue(opts.IngestQueueDepth, 0, func(entries []store.Entry) error {
		return st.Append(entries...)
	}, opts.ingestApplyHook)
	mux := http.NewServeMux()
	mux.HandleFunc("/api/query", instrument("/api/query", a.handleQuery))
	mux.HandleFunc("/api/aggregate", instrument("/api/aggregate", a.handleAggregate))
	mux.HandleFunc("/api/segments", instrument("/api/segments", a.handleSegments))
	mux.HandleFunc("/api/ingest", instrument("/api/ingest", a.handleIngest))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})

	reg := query.NewRegistry(st)
	miner := correlate.NewMiner(st, opts.Correlate, opts.CorrelateArtifact)
	// One observer per store: fan the stream out to both consumers.
	st.SetObserver(func(mu store.Mutation) {
		reg.OnMutation(mu)
		miner.OnMutation(mu)
	})
	if err := miner.Init(); err != nil {
		st.SetObserver(nil)
		miner.Close()
		reg.Close()
		return nil, fmt.Errorf("correlate init: %w", err)
	}
	hub := newPushHub()
	reg.SetNotify(func(ev query.StandingEvent) {
		hub.dispatch(subEvent{
			SubscriptionID: ev.SubscriptionID,
			Seq:            ev.Seq,
			Threshold:      ev.Threshold,
			Total:          ev.Total,
			Aggregate:      ev.Aggregate,
		})
	})
	sub := &subAPI{b: registryStanding{reg: reg, sys: st.System()}, hub: hub, opts: opts}
	sub.register(mux)
	ca := &correlAPI{b: minerCorrelate{m: miner, live: correlate.NewLiveService(miner, opts.Predict)}}
	ca.register(mux)
	return &apiServer{Handler: opts.withRequestDeadlines(mux), st: st, reg: reg, miner: miner, q: a.q, hub: hub}, nil
}

// instrument wraps a handler with per-path request latency and count
// metrics on the process registry, so `-http` exposes serve telemetry
// next to the pipeline stages.
func instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := obs.Default.Histogram(fmt.Sprintf("serve_request_seconds{path=%q}", path), obs.Seconds)
	count := obs.Default.Counter(fmt.Sprintf("serve_requests_total{path=%q}", path))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		lat.ObserveSince(start)
		count.Inc()
	}
}

// timeoutStatus maps a handler error to its status: a scan that hit the
// per-request deadline is the server refusing to spend more, 503; any
// other engine failure is a plain 500.
func timeoutStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// httpError reports an error as a JSON body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseFilter builds a store filter from the shared query parameters —
// from/to (RFC 3339), source/category/severity (comma-separated), kept,
// body (substring-of-message predicate; such filters take the row-
// decode path, see DESIGN.md §11) — for a store of the given system
// (severities parse on its native scale). Both the single-store and the
// sharded API share it.
func parseFilter(sys logrec.System, q url.Values) (store.Filter, error) {
	var f store.Filter
	var err error
	if v := q.Get("from"); v != "" {
		if f.From, err = time.Parse(time.RFC3339, v); err != nil {
			return f, fmt.Errorf("bad from: %w", err)
		}
	}
	if v := q.Get("to"); v != "" {
		if f.To, err = time.Parse(time.RFC3339, v); err != nil {
			return f, fmt.Errorf("bad to: %w", err)
		}
	}
	f.Sources = splitList(q.Get("source"))
	f.Categories = splitList(q.Get("category"))
	for _, name := range splitList(q.Get("severity")) {
		sev, err := parseSeverity(sys, name)
		if err != nil {
			return f, err
		}
		f.Severities = append(f.Severities, sev)
	}
	if v := q.Get("kept"); v != "" {
		kept, err := strconv.ParseBool(v)
		if err != nil {
			return f, fmt.Errorf("bad kept: %w", err)
		}
		f.Kept = &kept
	}
	f.BodyContains = q.Get("body")
	return f, nil
}

// parseAggregateOptions reads the topk/quantiles parameters shared by
// both aggregate handlers.
func parseAggregateOptions(q url.Values) (query.AggregateOptions, error) {
	var opts query.AggregateOptions
	var err error
	if v := q.Get("topk"); v != "" {
		if opts.TopK, err = strconv.Atoi(v); err != nil || opts.TopK <= 0 {
			return opts, fmt.Errorf("bad topk %q", v)
		}
	}
	for _, part := range splitList(q.Get("quantiles")) {
		p, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return opts, fmt.Errorf("bad quantile %q", part)
		}
		opts.Quantiles = append(opts.Quantiles, p)
	}
	// Strict request-side validation (finite, in (0, 1], strictly
	// increasing) with a detail message: garbage quantiles must 400
	// here, not flow into stats.Percentiles and poison a cache entry.
	// ParseFloat accepts "NaN" and "+Inf", so the parse above alone is
	// not enough.
	if err := query.ValidateQuantiles(opts.Quantiles); err != nil {
		return opts, fmt.Errorf("bad quantiles: %w", err)
	}
	return opts, nil
}

// parseLimit reads the limit parameter with its default.
func parseLimit(q url.Values) (int, error) {
	limit := 100
	if v := q.Get("limit"); v != "" {
		var err error
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return 0, fmt.Errorf("bad limit %q", v)
		}
	}
	return limit, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSeverity resolves a severity name on the store's native scale:
// the BG/L RAS scale for BG/L stores, BSD syslog for the other four.
func parseSeverity(sys logrec.System, name string) (logrec.Severity, error) {
	if strings.EqualFold(strings.TrimSpace(name), "UNKNOWN") {
		return logrec.SeverityUnknown, nil
	}
	if sys == logrec.BlueGeneL {
		return logrec.ParseBGLSeverity(name)
	}
	return logrec.ParseSyslogSeverity(name)
}

// entryJSON is the wire view of one store entry.
type entryJSON struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Source   string    `json:"source"`
	Category string    `json:"category"`
	Severity string    `json:"severity"`
	Program  string    `json:"program,omitempty"`
	Body     string    `json:"body,omitempty"`
	Kept     bool      `json:"kept"`
}

func toEntryJSON(en store.Entry) entryJSON {
	return entryJSON{
		Seq:      en.Record.Seq,
		Time:     en.Record.Time,
		Source:   en.Record.Source,
		Category: en.Category,
		Severity: en.Record.Severity.String(),
		Program:  en.Record.Program,
		Body:     en.Record.Body,
		Kept:     en.Kept,
	}
}

// handleQuery returns the matching entries in canonical order.
func (a *api) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	f, err := parseFilter(a.st.System(), q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := parseLimit(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := a.opts.requestContext(r)
	defer cancel()
	entries, stats, err := a.eng.SelectContext(ctx, f, limit)
	if err != nil {
		httpError(w, timeoutStatus(err), "%v", err)
		return
	}
	out := make([]entryJSON, 0, len(entries))
	for _, en := range entries {
		out = append(out, toEntryJSON(en))
	}
	writeJSON(w, map[string]any{"stats": stats, "count": len(out), "entries": out})
}

// handleAggregate computes the standard aggregation server-side. The
// "aggregate" field is byte-identical to running query.Aggregate over
// the batch pipeline's output on the same records — the differential
// tests in serve_test.go pin that.
func (a *api) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	f, err := parseFilter(a.st.System(), q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parseAggregateOptions(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := a.opts.requestContext(r)
	defer cancel()
	agg, stats, err := a.eng.AggregateContext(ctx, f, opts)
	if err != nil {
		httpError(w, timeoutStatus(err), "%v", err)
		return
	}
	writeJSON(w, map[string]any{"stats": stats, "aggregate": agg})
}

// handleSegments reports the store's physical layout.
func (a *api) handleSegments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	segs := a.st.Segments()
	writeJSON(w, map[string]any{
		"system":        a.st.System().ShortName(),
		"segments":      segs,
		"tail_entries":  a.st.TailLen(),
		"total_entries": a.st.Len(),
	})
}

// ingestResponse summarizes one POST /api/ingest batch.
type ingestResponse struct {
	Lines       int `json:"lines"`
	ParseErrors int `json:"parse_errors"`
	Alerts      int `json:"alerts"`
	Kept        int `json:"kept"`
	Appended    int `json:"appended"`
}

// handleIngest streams raw log lines through the batch pipeline's exact
// stages — parse, tag, canonical sort, Algorithm 3.1 — and appends the
// result to the store via the same store.FromAlerts conversion
// build-store uses, so served aggregates stay differential-equal to the
// batch pipeline no matter which path loaded the records.
func (a *api) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	sys := a.st.System()
	m, err := cluster.New(sys)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body := r.Body
	if a.opts.MaxBody > 0 {
		// The cap also closes the connection on overrun, so a client
		// streaming an unbounded body cannot hold the handler hostage.
		body = http.MaxBytesReader(w, r.Body, a.opts.MaxBody)
	}
	recs, stats, err := ingest.ReadAll(body, sys, m.LogStart)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "ingest: body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	alerts := tag.NewTagger(sys).TagAll(recs)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	entries := store.FromAlerts(alerts, filtered)
	summary := ingestResponse{
		Lines:       stats.Lines,
		ParseErrors: stats.ParseErrors,
		Alerts:      len(alerts),
		Kept:        len(filtered),
	}
	if len(entries) == 0 {
		writeJSON(w, summary)
		return
	}
	// Admission goes through the bounded queue so sustained overload
	// surfaces as 429 + Retry-After with the same rejected_sources body
	// the sharded tier sends (shard id 0) — one retry contract for every
	// client. The 200 is written only after the worker applied the
	// batch: an acked batch is in the wal.
	done, retryAfter := a.q.offer(entries)
	if done == nil {
		if retryAfter <= 0 {
			httpError(w, http.StatusServiceUnavailable, "ingest: shutting down")
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(shardIngestResponse{
			ingestResponse:  summary,
			Rejected:        map[int]int{0: len(entries)},
			RejectedSources: map[int][]string{0: entrySources(entries)},
		})
		return
	}
	if err := <-done; err != nil {
		httpError(w, http.StatusInternalServerError, "append: %v", err)
		return
	}
	summary.Appended = len(entries)
	writeJSON(w, summary)
}
