package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"whatsupersay/internal/obs"
)

// TestExtractGlobal covers the flag grammar: global flags before or
// after the subcommand, both "-flag value" and "-flag=value" spellings,
// and everything else passed through untouched.
func TestExtractGlobal(t *testing.T) {
	cases := []struct {
		args     []string
		wantRest []string
		want     globalOpts
	}{
		{
			args:     []string{"ingest", "-in", "x.log", "-metrics", "out.json"},
			wantRest: []string{"ingest", "-in", "x.log"},
			want:     globalOpts{metricsPath: "out.json"},
		},
		{
			args:     []string{"-metrics=out.json", "-v", "bench", "-system", "liberty"},
			wantRest: []string{"bench", "-system", "liberty"},
			want:     globalOpts{metricsPath: "out.json", verbose: true},
		},
		{
			args:     []string{"tables", "-http", "localhost:6060", "-t", "3"},
			wantRest: []string{"tables", "-t", "3"},
			want:     globalOpts{httpAddr: "localhost:6060"},
		},
		{
			args:     []string{"generate", "-system", "liberty"},
			wantRest: []string{"generate", "-system", "liberty"},
			want:     globalOpts{},
		},
	}
	for _, tc := range cases {
		rest, g, err := extractGlobal(tc.args)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if !reflect.DeepEqual(rest, tc.wantRest) || g != tc.want {
			t.Errorf("extractGlobal(%v) = %v, %+v; want %v, %+v",
				tc.args, rest, g, tc.wantRest, tc.want)
		}
	}
	if _, _, err := extractGlobal([]string{"ingest", "-metrics"}); err == nil {
		t.Error("trailing -metrics without a value must error")
	}
}

// TestIngestMetricsSnapshot is the acceptance path: `logstudy ingest
// -metrics out.json -v` must emit per-stage counters and histograms in
// the snapshot and print the stage summary table.
func TestIngestMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "liberty.log")
	var buf bytes.Buffer
	if err := run([]string{"generate", "-system", "liberty", "-scale", "0.0002", "-o", logPath}, &buf); err != nil {
		t.Fatalf("generate: %v", err)
	}

	metricsPath := filepath.Join(dir, "out.json")
	buf.Reset()
	if err := run([]string{"ingest", "-in", logPath, "-metrics", metricsPath, "-v"}, &buf); err != nil {
		t.Fatalf("ingest: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"stage", "p99", "counters:", "telemetry snapshot written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["ingest_lines_total"] == 0 {
		t.Error("snapshot missing ingest_lines_total > 0")
	}
	if h, ok := snap.Histograms["stage_ingest_seconds"]; !ok || h.Count == 0 {
		t.Errorf("snapshot missing stage_ingest_seconds span histogram: %+v", h)
	}
	if h, ok := snap.Histograms["ingest_line_bytes"]; !ok || h.Count == 0 || h.Unit != "bytes" {
		t.Errorf("snapshot missing ingest_line_bytes histogram: %+v", h)
	}
}

// TestHTTPFlag checks both halves of -http: run announces the bound
// address, and the handler behind it serves the Prometheus exposition
// and the pprof index.
func TestHTTPFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-http", "127.0.0.1:0", "rules", "-system", "liberty"}, &buf); err != nil {
		t.Fatalf("run with -http: %v", err)
	}
	if !strings.Contains(buf.String(), "serving /metrics and /debug/pprof on http://127.0.0.1:") {
		t.Errorf("missing server announcement:\n%s", buf.String())
	}

	// The server stops when run returns, so scrape through the same
	// Serve entry point the flag uses.
	addr, stop, err := obs.Serve("127.0.0.1:0", obs.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for path, want := range map[string]string{
		"/metrics":      "# TYPE",
		"/debug/pprof/": "profiles",
	} {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Errorf("GET %s: status %d, body missing %q", path, resp.StatusCode, want)
		}
	}
}
