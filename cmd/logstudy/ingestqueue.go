package main

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// defaultIngestQueueDepth bounds the single-store ingest admission
// queue, mirroring the per-shard queue depth of the sharded tier.
const defaultIngestQueueDepth = 64

// queuedAppend is one admitted ingest batch awaiting its turn on the
// store.
type queuedAppend struct {
	entries []store.Entry
	done    chan error
}

// ingestQueue gives the single-store path the same admission contract
// the sharded tier has: a bounded queue drained by one worker, overflow
// rejected with a drain-rate-derived Retry-After, and the same
// rejected_sources body (shard id 0) so clients retry identically
// against either tier. One worker also serializes appends, which is
// what makes the drain EWMA an honest per-batch cost.
type ingestQueue struct {
	queue    chan queuedAppend
	wg       sync.WaitGroup
	inflight atomic.Int32
	depth    atomic.Int32
	drain    shard.DrainEWMA
	fallback time.Duration
	apply    func(entries []store.Entry) error
	hook     func() // test seam: runs in the worker before each apply

	mu     sync.RWMutex
	closed bool
}

func newIngestQueue(depth int, fallback time.Duration, apply func([]store.Entry) error, hook func()) *ingestQueue {
	if depth <= 0 {
		depth = defaultIngestQueueDepth
	}
	if fallback <= 0 {
		fallback = shard.DefaultRetryAfter
	}
	q := &ingestQueue{
		queue:    make(chan queuedAppend, depth),
		fallback: fallback,
		apply:    apply,
		hook:     hook,
	}
	q.wg.Add(1)
	go q.run()
	return q
}

func (q *ingestQueue) run() {
	defer q.wg.Done()
	for b := range q.queue {
		q.depth.Add(-1)
		q.inflight.Store(1)
		if q.hook != nil {
			q.hook()
		}
		t0 := time.Now()
		b.done <- q.apply(b.entries)
		q.drain.Observe(time.Since(t0))
		q.inflight.Store(0)
	}
}

// offer admits the batch or rejects it. On admission the returned
// channel delivers the append's result (the handler acks 200 only after
// the batch is applied). On a full queue it is nil with retryAfter > 0;
// on a closed (shutting-down) queue it is nil with retryAfter 0.
func (q *ingestQueue) offer(entries []store.Entry) (done chan error, retryAfter time.Duration) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return nil, 0
	}
	b := queuedAppend{entries: entries, done: make(chan error, 1)}
	select {
	case q.queue <- b:
		q.depth.Add(1)
		return b.done, 0
	default:
		pending := int(q.depth.Load() + q.inflight.Load())
		return nil, shard.RetryAfterEstimate(pending, q.drain.Value(), q.fallback)
	}
}

// close stops admission and waits for every already-admitted batch to
// reach the store — the wal-flush ordering apiServer.Close relies on
// before sealing: nothing a client saw a 200 for may still be in
// flight when the tail seals.
func (q *ingestQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.queue)
	q.mu.Unlock()
	q.wg.Wait()
}

// entrySources returns the distinct sources in a batch, sorted — the
// single-store twin of the shard router's rejected-sources listing.
func entrySources(entries []store.Entry) []string {
	seen := make(map[string]bool)
	out := make([]string, 0, 1)
	for _, en := range entries {
		if !seen[en.Record.Source] {
			seen[en.Record.Source] = true
			out = append(out, en.Record.Source)
		}
	}
	sort.Strings(out)
	return out
}
