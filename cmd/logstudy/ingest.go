package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
)

// runIngest is the fault-tolerant ingestion mode: it survives transient
// reader errors, oversized and torn lines, and parser bugs; quarantines
// damaged lines under an error budget; and checkpoints its position so a
// killed run (including ^C) resumes where it died. -inject wraps the
// input in the chaos harness, for drills against a known-good log.
func runIngest(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	inPath := fs.String("in", "", "log file to ingest (required)")
	sysName := fs.String("system", "liberty", "system the log belongs to")
	resumePath := fs.String("resume", "", "checkpoint file: resume from it if present, keep it updated")
	maxErrors := fs.Int("max-errors", 0, "error budget: abort after this many quarantined lines (0 = unlimited)")
	quarPath := fs.String("quarantine", "", "write damaged lines to this file for later study")
	every := fs.Int("checkpoint-every", 100000, "checkpoint interval in lines (with -resume)")
	retryBase := fs.Duration("retry-base", 0, "first retry backoff delay for transient reader errors (default 50ms)")
	injectSpec := fs.String("inject", "", `chaos spec, e.g. "seed=7,short,transient=0.05,garble=0.001,tear=40"`)
	if help, err := parseFlags(fs, args); help || err != nil {
		return err
	}
	if *inPath == "" {
		return usageError("ingest: -in is required")
	}
	sys, err := logrec.ParseSystem(*sysName)
	if err != nil {
		return err
	}
	m, err := cluster.New(sys)
	if err != nil {
		return err
	}

	f, err := ingest.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if *injectSpec != "" {
		cfg, err := parseInjectSpec(*injectSpec)
		if err != nil {
			return err
		}
		r = cfg.Wrap(r)
		fmt.Fprintf(w, "chaos injection active: %s\n", *injectSpec)
	}

	opts := ingest.ResilientOptions{MaxErrors: *maxErrors, RetryBase: *retryBase}
	if *quarPath != "" {
		qf, err := ingest.Create(*quarPath)
		if err != nil {
			return err
		}
		defer qf.Close()
		opts.Quarantine = qf
	}
	if *resumePath != "" {
		cp, err := ingest.LoadCheckpoint(*resumePath)
		switch {
		case err == nil:
			opts.Resume = &cp
			fmt.Fprintf(w, "resuming from %s: %s lines already ingested\n",
				*resumePath, report.Comma(int64(cp.Lines)))
		case errors.Is(err, os.ErrNotExist):
			// Fresh run; the file appears at the first checkpoint.
		default:
			return err
		}
		opts.CheckpointEvery = *every
		opts.OnCheckpoint = func(cp ingest.Checkpoint) error {
			return ingest.SaveCheckpoint(*resumePath, cp)
		}
	}

	// ^C cancels between lines; the checkpoint below still covers
	// everything delivered, so the run resumes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var stats ingest.Stats
	rd := ingest.Reader{System: sys, Start: m.LogStart}
	cp, runErr := rd.ReadResilient(ctx, r, func(rec logrec.Record) error {
		switch ingest.Dialect(rec.Raw) {
		case "ras":
			stats.RAS++
		case "event":
			stats.Event++
		default:
			stats.Syslog++
		}
		return nil
	}, opts)

	// Whatever happened, persist the final position so the operator can
	// resume — including after a budget abort or an interrupt.
	if *resumePath != "" {
		if err := ingest.SaveCheckpoint(*resumePath, cp); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "ingested %s lines (%d quarantined, %d oversized, %d retries, %d panics contained)\n",
		report.Comma(int64(cp.Stats.Lines)), cp.Quarantined, cp.Stats.Oversized, cp.Retries, cp.Panics)
	if runErr != nil {
		if *resumePath != "" {
			fmt.Fprintf(w, "run stopped; rerun with -resume %s to continue\n", *resumePath)
		}
		return fmt.Errorf("ingest: %w", runErr)
	}
	fmt.Fprintf(w, "dialects: %d syslog, %d RAS, %d event\n", stats.Syslog, stats.RAS, stats.Event)
	if *quarPath != "" && cp.Quarantined > 0 {
		fmt.Fprintf(w, "damaged lines preserved in %s\n", *quarPath)
	}
	return nil
}

// parseInjectSpec parses the comma-separated chaos spec: flags (short)
// and k=v pairs (seed, transient, garble, tear, failafter).
func parseInjectSpec(spec string) (faultinject.ReaderConfig, error) {
	var cfg faultinject.ReaderConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		bad := func() (faultinject.ReaderConfig, error) {
			return cfg, fmt.Errorf("ingest: bad -inject term %q", part)
		}
		switch key {
		case "short":
			if hasVal {
				return bad()
			}
			cfg.ShortReads = true
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return bad()
			}
			cfg.Seed = n
		case "transient":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return bad()
			}
			cfg.TransientErrProb = p
		case "garble":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return bad()
			}
			cfg.GarbleProb = p
		case "tear":
			n, err := strconv.Atoi(val)
			if err != nil {
				return bad()
			}
			cfg.TearTailBytes = n
		case "failafter":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return bad()
			}
			cfg.FailAfterBytes = n
		default:
			return bad()
		}
	}
	return cfg, nil
}
