package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"whatsupersay/internal/correlate"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// The HTTP-level correlation differential: GET /api/correlations must
// serve a graph byte-identical to a from-scratch batch mine over the
// same entries — through the single-store miner and through the merged
// cluster view at shard counts {1, 2, 4, 7} — and GET /api/predict must
// serve the identical report through both tiers (it is a pure function
// of the merged columns). Plus the response-bounding contract: limit
// defaults, caps, and 400s shared with /api/subscriptions.

// correlationsBody is the wire form of GET /api/correlations.
type correlationsBody struct {
	WindowNS  int64            `json:"window_ns"`
	NodeMode  string           `json:"node_mode"`
	Events    int              `json:"events"`
	Settled   bool             `json:"settled"`
	NodeCount int              `json:"node_count"`
	Nodes     []correlate.Node `json:"nodes"`
	EdgeCount int              `json:"edge_count"`
	Edges     []correlate.Edge `json:"edges"`
	Truncated bool             `json:"truncated"`
}

// getCorrelationsSettled polls the endpoint until the miner reports
// settled, so the comparison runs against a fully-installed graph.
func getCorrelationsSettled(t *testing.T, baseURL string) correlationsBody {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var body correlationsBody
		getJSON(t, baseURL+"/api/correlations?limit=1000", &body)
		if body.Settled {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatal("correlation miner did not settle within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkCorrelationsDifferential pins the served graph to the batch mine
// over the same entries.
func checkCorrelationsDifferential(t *testing.T, baseURL string, entries []store.Entry) {
	t.Helper()
	body := getCorrelationsSettled(t, baseURL)
	want := correlate.MineEntries(correlate.Config{}, entries)
	got := correlate.Graph{
		Window:   time.Duration(body.WindowNS),
		NodeMode: body.NodeMode,
		Events:   body.Events,
		Nodes:    body.Nodes,
		Edges:    body.Edges,
	}
	g, _ := json.Marshal(got)
	w, _ := json.Marshal(want)
	if string(g) != string(w) {
		t.Fatalf("served graph diverges from batch mine\nserved: %s\nbatch:  %s", g, w)
	}
	if body.NodeCount != len(want.Nodes) || body.EdgeCount != len(want.Edges) || body.Truncated {
		t.Fatalf("graph counts diverge: %+v", body)
	}
}

// correlateServeEntries fabricates Liberty entries whose categories
// cascade, spread across sources so sharding splits windowed pairs.
func correlateServeEntries(n int) []store.Entry {
	base := time.Date(2004, 3, 1, 12, 0, 0, 0, time.UTC)
	cats := []string{"GM_PAR", "GM_LANAI", "PBS_CHK"}
	out := make([]store.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Entry{
			Record: logrec.Record{
				Seq:    uint64(i),
				Time:   base.Add(time.Duration(i) * time.Minute),
				System: logrec.Liberty,
				Source: fmt.Sprintf("ln%d", i%13),
			},
			Category: cats[i%len(cats)],
			Kept:     i%5 != 4,
		})
	}
	return out
}

func TestCorrelationsEndpointSingleStore(t *testing.T) {
	entries := correlateServeEntries(60)
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	checkCorrelationsDifferential(t, srv.URL, entries)

	// Ingest-path appends reach the miner through the observer too:
	// append more and re-check.
	if err := st.Append(correlateServeEntries(80)[60:]...); err != nil {
		t.Fatal(err)
	}
	checkCorrelationsDifferential(t, srv.URL, correlateServeEntries(80))

	// Neighborhood + threshold filters apply server-side.
	var filtered correlationsBody
	getJSON(t, srv.URL+"/api/correlations?node=GM_LANAI&min_support=1&min_confidence=0.1", &filtered)
	full := correlate.MineEntries(correlate.Config{}, correlateServeEntries(80))
	wantEdges := correlate.FilterEdges(full.Edges, 1, 0.1, "GM_LANAI")
	ge, _ := json.Marshal(filtered.Edges)
	we, _ := json.Marshal(wantEdges)
	if string(ge) != string(we) {
		t.Fatalf("filtered edges diverge\nserved: %s\nbatch:  %s", ge, we)
	}
}

func TestCorrelationsEndpointSharded(t *testing.T) {
	entries := correlateServeEntries(60)
	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c, _, err := shard.Create(t.TempDir(), logrec.Liberty, shards, shard.Options{
				Store: store.Options{FlushEvery: 7},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			if _, err := c.Append(entries); err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
			t.Cleanup(srv.Close)
			checkCorrelationsDifferential(t, srv.URL, entries)
		})
	}
}

// TestPredictEndpointShardedMatchesSingle: /api/predict is a pure
// function of the merged columns, so the sharded response must equal
// the single-store response over the same entries, at every shard
// count.
func TestPredictEndpointShardedMatchesSingle(t *testing.T) {
	entries := correlateServeEntries(90)

	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(single.Close)
	want := getPredictSettled(t, single.URL)
	if want["events"].(float64) == 0 {
		t.Fatalf("single-store predict report is empty: %v", want)
	}

	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c, _, err := shard.Create(t.TempDir(), logrec.Liberty, shards, shard.Options{
				Store: store.Options{FlushEvery: 1000},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			if _, err := c.Append(entries); err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
			t.Cleanup(srv.Close)
			got := getPredictSettled(t, srv.URL)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sharded predict diverges from single store\nsharded: %v\nsingle:  %v", got, want)
			}
		})
	}
}

// getPredictSettled polls /api/predict until settled, then returns the
// body with the settled flag dropped (it is the only legal difference
// between tiers).
func getPredictSettled(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var body map[string]any
		getJSON(t, baseURL+"/api/predict?limit=1000", &body)
		if body["settled"] == true {
			delete(body, "settled")
			return body
		}
		if time.Now().After(deadline) {
			t.Fatal("predict endpoint did not settle within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestListLimitValidation pins the response-bounding contract on the
// three list endpoints: default limit, hard max, and 400 on garbage.
func TestListLimitValidation(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	for _, path := range []string{"/api/correlations", "/api/predict", "/api/subscriptions"} {
		for _, bad := range []string{"0", "-1", "abc", "1001", "1.5", ""} {
			resp, err := http.Get(srv.URL + path + "?limit=" + bad)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if bad == "" {
				// Empty value means "absent": the default applies.
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET %s with empty limit: %d, want 200", path, resp.StatusCode)
				}
				continue
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s with limit=%s: %d, want 400", path, bad, resp.StatusCode)
			}
		}
		// The cap itself is legal.
		resp, err := http.Get(srv.URL + path + "?limit=1000")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with limit=1000: %d, want 200", path, resp.StatusCode)
		}
	}

	// Bad correlation filters 400 too.
	for _, q := range []string{"min_support=-1", "min_support=x", "min_confidence=1.5", "min_confidence=x"} {
		resp, err := http.Get(srv.URL + "/api/correlations?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /api/correlations?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestSubscriptionsLimitTruncates: the listing clips at limit and says
// so, while count keeps the full population.
func TestSubscriptionsLimitTruncates(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	for i := 0; i < 3; i++ {
		postSubscribe(t, srv.URL, subscribeRequest{Threshold: 100 + i})
	}
	var list struct {
		Count     int       `json:"count"`
		Subs      []subJSON `json:"subscriptions"`
		Truncated bool      `json:"truncated"`
	}
	getJSON(t, srv.URL+"/api/subscriptions?limit=2", &list)
	if list.Count != 3 || len(list.Subs) != 2 || !list.Truncated {
		t.Fatalf("truncated listing: count=%d len=%d truncated=%t", list.Count, len(list.Subs), list.Truncated)
	}
	getJSON(t, srv.URL+"/api/subscriptions", &list)
	if list.Count != 3 || len(list.Subs) != 3 || list.Truncated {
		t.Fatalf("full listing: count=%d len=%d truncated=%t", list.Count, len(list.Subs), list.Truncated)
	}
}

// TestCorrelationsTruncation: a limit smaller than the graph clips both
// lists and flags it, without disturbing the counts.
func TestCorrelationsTruncation(t *testing.T) {
	entries := correlateServeEntries(60)
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	t.Cleanup(srv.Close)

	full := getCorrelationsSettled(t, srv.URL)
	if full.EdgeCount < 2 {
		t.Fatalf("fixture too small: %d edges", full.EdgeCount)
	}
	var clipped correlationsBody
	getJSON(t, srv.URL+"/api/correlations?limit=1", &clipped)
	if len(clipped.Edges) != 1 || len(clipped.Nodes) != 1 || !clipped.Truncated {
		t.Fatalf("clipped response: %+v", clipped)
	}
	if clipped.EdgeCount != full.EdgeCount || clipped.NodeCount != full.NodeCount {
		t.Fatalf("clipping disturbed counts: %+v vs %+v", clipped, full)
	}
	if !reflect.DeepEqual(clipped.Edges[0], full.Edges[0]) {
		t.Fatalf("clipping reordered edges: %+v vs %+v", clipped.Edges[0], full.Edges[0])
	}
}
