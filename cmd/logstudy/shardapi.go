package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"whatsupersay/internal/cluster"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// shardAPI serves one sharded cluster. The endpoints mirror the
// single-store api, with the cluster's failure envelope surfaced
// instead of hidden: query/aggregate responses carry a coverage block
// and a partial flag (HTTP 200 even when shards are down — degraded,
// never dead), ingest backpressure becomes 429 + Retry-After, and
// GET /api/shards reports per-shard breaker and queue state.
type shardAPI struct {
	c    *shard.Cluster
	opts apiOptions
}

// shardServer is the sharded handler plus the hooks the serve loop
// needs around it (SSE shutdown broadcast).
type shardServer struct {
	http.Handler
	hub *pushHub
}

// BeginShutdown tells long-lived push streams (SSE) to finish so the
// HTTP server's graceful Shutdown can complete.
func (s *shardServer) BeginShutdown() { s.hub.beginShutdown() }

// newShardAPI builds the HTTP handler for one open cluster.
func newShardAPI(c *shard.Cluster, opts apiOptions) *shardServer {
	if opts.MaxBody == 0 {
		opts.MaxBody = defaultMaxBody
	}
	a := &shardAPI{c: c, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/query", instrument("/api/query", a.handleQuery))
	mux.HandleFunc("/api/aggregate", instrument("/api/aggregate", a.handleAggregate))
	mux.HandleFunc("/api/segments", instrument("/api/segments", a.handleSegments))
	mux.HandleFunc("/api/shards", instrument("/api/shards", a.handleShards))
	mux.HandleFunc("/api/ingest", instrument("/api/ingest", a.handleIngest))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ok\":true,\"shards\":%d}\n", a.c.NumShards())
	})

	// Standing-query subscriptions: the cluster's per-shard registries
	// evaluate the merged threshold, so one crossing spread across N
	// shards pushes exactly one event through the hub.
	hub := newPushHub()
	c.SetStandingNotify(func(ev shard.ClusterEvent) {
		hub.dispatch(subEvent{
			SubscriptionID: ev.SubscriptionID,
			Seq:            ev.Seq,
			Threshold:      ev.Threshold,
			Total:          ev.Total,
			Aggregate:      ev.Aggregate,
			ShardsStanding: ev.ShardsStanding,
			ShardsTotal:    ev.ShardsTotal,
		})
	})
	sub := &subAPI{b: clusterStandingBackend{c: c}, hub: hub, opts: opts}
	sub.register(mux)

	// Correlation mining + live prediction over the merged cluster view.
	ca := &correlAPI{b: clusterCorrelateBackend{c: c, opts: opts.Predict}}
	ca.register(mux)
	return &shardServer{Handler: opts.withRequestDeadlines(mux), hub: hub}
}

// handleQuery scatters the select across the cluster and returns the
// merged entries with coverage. A shard that is down, slow, or open
// degrades the response (partial:true) instead of failing it.
func (a *shardAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	f, err := parseFilter(a.c.System(), q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := parseLimit(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := a.opts.requestContext(r)
	defer cancel()
	entries, cov, stats, err := a.c.Select(ctx, f, limit)
	if err != nil {
		httpError(w, timeoutStatus(err), "%v", err)
		return
	}
	out := make([]entryJSON, 0, len(entries))
	for _, en := range entries {
		out = append(out, toEntryJSON(en))
	}
	writeJSON(w, map[string]any{
		"stats":    stats,
		"coverage": cov,
		"partial":  cov.Partial,
		"count":    len(out),
		"entries":  out,
	})
}

// handleAggregate scatters the aggregation and merges the partials;
// the "aggregate" field over a fully-covered response is byte-identical
// to the single-store answer over the union (the sharded differential
// tests pin that across shard counts).
func (a *shardAPI) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	f, err := parseFilter(a.c.System(), q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := parseAggregateOptions(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := a.opts.requestContext(r)
	defer cancel()
	agg, cov, stats, err := a.c.Aggregate(ctx, f, opts)
	if err != nil {
		httpError(w, timeoutStatus(err), "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"stats":     stats,
		"coverage":  cov,
		"partial":   cov.Partial,
		"aggregate": agg,
	})
}

// handleShards is the operator view: every shard's breaker state, queue
// depth, failure counters, and store size — quarantined shards included.
func (a *shardAPI) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, map[string]any{
		"system":        a.c.System().ShortName(),
		"shards":        a.c.Health(),
		"total_entries": a.c.Len(),
	})
}

// handleSegments reports every shard's physical layout.
func (a *shardAPI) handleSegments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, map[string]any{
		"system":        a.c.System().ShortName(),
		"shards":        a.c.Segments(),
		"total_entries": a.c.Len(),
	})
}

// shardIngestResponse extends the single-store ingest summary with the
// routing outcome.
type shardIngestResponse struct {
	ingestResponse
	PerShard map[int]int `json:"per_shard,omitempty"`
	Rejected map[int]int `json:"rejected,omitempty"`
	// RejectedSources names the bounced sources per rejected shard — the
	// retry unit for a 429 (see handleIngest).
	RejectedSources map[int][]string `json:"rejected_sources,omitempty"`
	Errors          map[int]string   `json:"errors,omitempty"`
}

// handleIngest runs the exact batch pipeline stages and routes the
// entries by source hash. A shard whose bounded queue is full turns the
// whole response into 429 + Retry-After — but slices routed to healthy
// shards have already durably landed, and the store does not dedup, so
// the client must NOT replay the full batch: resend only the records
// whose sources appear in rejected_sources, after Retry-After. A shard
// whose append failed turns the response into 500 with per-shard
// detail. Either way the response says exactly what landed — partial
// acceptance is reported, never hidden.
func (a *shardAPI) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	sys := a.c.System()
	m, err := cluster.New(sys)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body := r.Body
	if a.opts.MaxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, a.opts.MaxBody)
	}
	recs, stats, err := ingest.ReadAll(body, sys, m.LogStart)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "ingest: body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}
	alerts := tag.NewTagger(sys).TagAll(recs)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	entries := store.FromAlerts(alerts, filtered)

	rep, err := a.c.Append(entries)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "append: %v", err)
		return
	}
	resp := shardIngestResponse{
		ingestResponse: ingestResponse{
			Lines:       stats.Lines,
			ParseErrors: stats.ParseErrors,
			Alerts:      len(alerts),
			Kept:        len(filtered),
			Appended:    rep.Appended,
		},
		PerShard:        rep.PerShard,
		Rejected:        rep.Rejected,
		RejectedSources: rep.RejectedSources,
		Errors:          rep.Errors,
	}
	switch {
	case len(rep.Rejected) > 0:
		// Backpressure: tell the client when to come back.
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(rep.RetryAfter.Seconds()))))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(resp)
	case len(rep.Errors) > 0:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(resp)
	default:
		writeJSON(w, resp)
	}
}
