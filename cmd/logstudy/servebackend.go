package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"whatsupersay/internal/connectors/graphite"
	"whatsupersay/internal/correlate"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/query"
	"whatsupersay/internal/report"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/store"
)

// defaultShutdownGrace bounds the graceful drain on SIGTERM. The SSE
// shutdown broadcast means the drain normally completes in
// milliseconds; the budget only matters when a request is legitimately
// mid-flight.
const defaultShutdownGrace = 10 * time.Second

// serveBackendConfig names everything openServeBackend needs to open
// (or create) the single store or sharded cluster behind the API.
type serveBackendConfig struct {
	Dir       string
	SysName   string // non-empty: create for this system
	Shards    int
	StoreOpts store.Options
	APIOpts   apiOptions
	CacheSize int

	// GraphiteAddr enables the connector pump (empty = disabled).
	GraphiteAddr   string
	GraphiteEvery  time.Duration
	GraphitePrefix string
}

// serveBackend is an opened store-or-cluster plus the lifecycle hooks
// the serve loop drives. runServe and `logstudy loadgen`'s self-hosted
// mode share it, so the loadgen harness exercises the production
// open/serve/drain path, not a test double.
type serveBackend struct {
	handler http.Handler
	banner  string
	// beginShutdown releases long-lived streams (SSE) so the HTTP
	// server's graceful Shutdown is not held open by them.
	beginShutdown func()
	// closeStore tears the push tier and store down, in durability
	// order. Must be called exactly once, after the server stops.
	closeStore func() error
	// pump is the graphite connector (nil when disabled); started by
	// serveAndWait once the listener is up, closed before closeStore.
	pump *graphite.Pump
}

// openServeBackend opens the backend and assembles its HTTP tier.
func openServeBackend(cfg serveBackendConfig, w io.Writer) (*serveBackend, error) {
	b := &serveBackend{}
	var gather func() []graphite.Metric
	if cfg.Shards > 0 {
		var c *shard.Cluster
		var crep *shard.OpenReport
		var err error
		sopts := shard.Options{Store: cfg.StoreOpts, CacheSize: cfg.CacheSize, Correlate: cfg.APIOpts.Correlate}
		if cfg.SysName != "" {
			sys, perr := logrec.ParseSystem(cfg.SysName)
			if perr != nil {
				return nil, perr
			}
			c, crep, err = shard.Create(cfg.Dir, sys, cfg.Shards, sopts)
		} else {
			c, crep, err = shard.Open(cfg.Dir, sopts)
		}
		if err != nil {
			return nil, err
		}
		as := newShardAPI(c, cfg.APIOpts)
		b.handler = as
		b.beginShutdown = as.BeginShutdown
		b.closeStore = c.Close
		gather = clusterGather(c)
		for id, reason := range crep.Quarantined {
			fmt.Fprintf(w, "WARNING: shard %d quarantined: %s\n", id, reason)
		}
		b.banner = fmt.Sprintf("serving sharded alert store API on http://%%s/ (%d shards, %d quarantined, %s entries)\n",
			c.NumShards(), len(crep.Quarantined), report.Comma(int64(c.Len())))
	} else {
		var st *store.Store
		var rep *store.OpenReport
		var err error
		if cfg.SysName != "" {
			sys, perr := logrec.ParseSystem(cfg.SysName)
			if perr != nil {
				return nil, perr
			}
			if st, err = store.Create(cfg.Dir, sys, cfg.StoreOpts); err != nil {
				return nil, err
			}
		} else if st, rep, err = store.Open(cfg.Dir, cfg.StoreOpts); err != nil {
			return nil, err
		}
		apiOpts := cfg.APIOpts
		apiOpts.CorrelateArtifact = correlate.ArtifactPath(cfg.Dir)
		as, err := newAPI(st, apiOpts)
		if err != nil {
			st.Close()
			return nil, err
		}
		b.handler = as
		b.beginShutdown = as.BeginShutdown
		// Close the push tier (drain ingest queue, seal, detach, final
		// miner save) before the store, so acked batches are durable and
		// the persisted correlation artifact warm-starts the next open.
		b.closeStore = func() error {
			err := as.Close()
			if cerr := st.Close(); err == nil {
				err = cerr
			}
			return err
		}
		gather = storeGather(st, as.reg)
		reportOpen(w, st, rep)
		b.banner = fmt.Sprintf("serving alert store API on http://%%s/ (%s entries)\n",
			report.Comma(int64(st.Len())))
	}
	if cfg.GraphiteAddr != "" {
		b.pump = graphite.New(graphite.Config{
			Addr:     cfg.GraphiteAddr,
			Prefix:   cfg.GraphitePrefix,
			Interval: cfg.GraphiteEvery,
		}, gather)
	}
	return b, nil
}

// serveAndWait owns the server lifecycle: listen, serve, and on ctx
// cancellation (SIGTERM/Ctrl-C in production, a test's cancel in the
// kill tests) drain gracefully and close the backend in durability
// order. onReady, when set, receives the bound address once the
// listener is accepting — the seam the loadgen self-host mode and the
// kill tests use.
func serveAndWait(ctx context.Context, b *serveBackend, addr string, reqTimeout, grace time.Duration, w io.Writer, onReady func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		b.closeStore()
		return err
	}
	if grace <= 0 {
		grace = defaultShutdownGrace
	}
	srv := &http.Server{
		Handler: b.handler,
		// Slowloris defense: a client must finish its headers promptly
		// and cannot park an idle keep-alive connection forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout backstops the per-request deadline: even a handler
		// that ignores its context cannot hold a connection past the
		// request budget plus response-writing headroom. (The SSE stream
		// clears its own write deadline — see handleEvents.)
		WriteTimeout: writeTimeout(reqTimeout),
	}
	fmt.Fprintf(w, b.banner, ln.Addr())
	if b.pump != nil {
		b.pump.Start()
	}
	if onReady != nil {
		onReady(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var serveErr error
	select {
	case serveErr = <-errc:
	case <-ctx.Done():
		// Release SSE streams first: they are request-scoped goroutines
		// that by design never finish, and Shutdown waits for every
		// in-flight request. Without the broadcast a single subscriber
		// wedges the drain until the grace budget expires.
		b.beginShutdown()
		shutCtx, cancel := context.WithTimeout(context.Background(), grace)
		serveErr = srv.Shutdown(shutCtx)
		cancel()
	}
	if b.pump != nil {
		b.pump.Close()
	}
	// closeStore drains the ingest queue before sealing: every batch a
	// client got a 200 for is on disk when this returns.
	if err := b.closeStore(); err != nil && serveErr == nil {
		serveErr = err
	}
	if serveErr == nil {
		fmt.Fprintln(w, "shut down; tail sealed on close")
	}
	return serveErr
}

// storeGather flattens the single store's live aggregate and standing
// subscriptions into graphite samples. It runs on the pump's ticker
// goroutine, never on a request path.
func storeGather(st *store.Store, reg *query.Registry) func() []graphite.Metric {
	eng := &query.Engine{Store: st}
	return func() []graphite.Metric {
		now := time.Now()
		ms := []graphite.Metric{{Name: "store.entries", Value: float64(st.Len()), Time: now}}
		if agg, _, err := eng.Aggregate(store.Filter{}, query.AggregateOptions{}); err == nil {
			ms = append(ms, aggregateMetrics("aggregate", agg, now)...)
		}
		for _, info := range reg.List() {
			base := "standing." + info.ID
			fired := 0.0
			if info.Fired {
				fired = 1
			}
			ms = append(ms,
				graphite.Metric{Name: base + ".total", Value: float64(info.Total), Time: now},
				graphite.Metric{Name: base + ".fired", Value: fired, Time: now},
				graphite.Metric{Name: base + ".events", Value: float64(info.Events), Time: now},
			)
		}
		return ms
	}
}

// clusterGather is storeGather's sharded twin, adding per-shard queue
// and breaker health.
func clusterGather(c *shard.Cluster) func() []graphite.Metric {
	return func() []graphite.Metric {
		now := time.Now()
		ms := []graphite.Metric{{Name: "cluster.entries", Value: float64(c.Len()), Time: now}}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if agg, cov, _, err := c.Aggregate(ctx, store.Filter{}, query.AggregateOptions{}); err == nil {
			ms = append(ms, aggregateMetrics("aggregate", agg, now)...)
			ms = append(ms, graphite.Metric{Name: "cluster.shards_answered", Value: float64(cov.ShardsAnswered), Time: now})
		}
		for _, h := range c.Health() {
			base := fmt.Sprintf("shard.%d", h.ID)
			state := 0.0
			switch h.State {
			case "half-open":
				state = 1
			case "open":
				state = 2
			case "quarantined":
				state = 3
			}
			ms = append(ms,
				graphite.Metric{Name: base + ".queue_depth", Value: float64(h.QueueDepth + h.Inflight), Time: now},
				graphite.Metric{Name: base + ".breaker_state", Value: state, Time: now},
				graphite.Metric{Name: base + ".failures_total", Value: float64(h.TotalFailures), Time: now},
			)
		}
		n := len(c.Subscriptions())
		ms = append(ms, graphite.Metric{Name: "standing.subscriptions", Value: float64(n), Time: now})
		return ms
	}
}

// aggregateMetrics flattens one query.Aggregation into samples.
func aggregateMetrics(base string, agg query.Aggregation, now time.Time) []graphite.Metric {
	ms := []graphite.Metric{
		{Name: base + ".total", Value: float64(agg.Total), Time: now},
		{Name: base + ".kept", Value: float64(agg.Kept), Time: now},
		{Name: base + ".removed", Value: float64(agg.Removed), Time: now},
		{Name: base + ".reduction_ratio", Value: agg.ReductionRatio, Time: now},
		{Name: base + ".categories", Value: float64(agg.Categories), Time: now},
	}
	for sev, n := range agg.BySeverity {
		ms = append(ms, graphite.Metric{Name: base + ".by_severity." + sev, Value: float64(n), Time: now})
	}
	if ia := agg.Interarrival; ia != nil {
		ms = append(ms,
			graphite.Metric{Name: base + ".interarrival.mean_sec", Value: ia.MeanSec, Time: now},
			graphite.Metric{Name: base + ".interarrival.max_sec", Value: ia.MaxSec, Time: now},
		)
		for _, qv := range ia.Quantiles {
			name := fmt.Sprintf("%s.interarrival.p%g", base, qv.Q*100)
			ms = append(ms, graphite.Metric{Name: name, Value: qv.Sec, Time: now})
		}
	}
	return ms
}
