package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"whatsupersay/internal/faultinject/shardfault"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/shard"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
)

// The sharded differential contract: for any shard count, the merged
// /api/aggregate served by the scatter-gather tier must be
// byte-identical to the single-store /api/aggregate over the union of
// the same records — and when shards fail, responses stay HTTP 200 with
// partial:true and coverage that accounts for every shard.

// newShardTestServer loads entries into an n-shard cluster and serves
// it through the real sharded handler.
func newShardTestServer(t *testing.T, entries []store.Entry, n int, opts shard.Options) (*httptest.Server, *shard.Cluster) {
	t.Helper()
	if opts.Store.FlushEvery == 0 {
		// Several sealed segments plus a tail per shard.
		opts.Store.FlushEvery = len(entries)/(3*n) + 1
	}
	c, rep, err := shard.Create(t.TempDir(), logrec.Liberty, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if len(rep.Quarantined) != 0 && opts.OpenStore == nil {
		t.Fatalf("fresh cluster quarantined shards: %v", rep.Quarantined)
	}
	if len(entries) > 0 {
		ar, err := c.Append(entries)
		if err != nil {
			t.Fatal(err)
		}
		if ar.Appended+sumValues(ar.Rejected)+len(ar.Errors) == 0 && len(entries) > 0 {
			t.Fatalf("append did nothing: %+v", ar)
		}
	}
	srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
	t.Cleanup(srv.Close)
	return srv, c
}

func sumValues(m map[int]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// shardAggResponse is the sharded /api/aggregate wire shape.
type shardAggResponse struct {
	Stats     store.ScanStats `json:"stats"`
	Coverage  shard.Coverage  `json:"coverage"`
	Partial   bool            `json:"partial"`
	Aggregate json.RawMessage `json:"aggregate"`
}

// TestShardedAggregateMatchesSingleStore is the cross-shard-count HTTP
// differential: {1, 2, 4, 7} shards, several filter shapes, byte
// equality against the single-store endpoint over the same records.
func TestShardedAggregateMatchesSingleStore(t *testing.T) {
	s := newTestStudy(t)
	single, entries := newTestServer(t, s)

	mid := entries[len(entries)/2].Record.Time
	late := entries[3*len(entries)/4].Record.Time
	topCat := entries[0].Category
	oneSrc := entries[0].Record.Source
	params := []url.Values{
		{},
		{"category": {topCat}},
		{"source": {oneSrc}},
		{"kept": {"true"}},
		{"from": {mid.Format(time.RFC3339Nano)}, "to": {late.Format(time.RFC3339Nano)}},
		{"topk": {"3"}, "quantiles": {"0.5,0.95"}},
	}

	for _, n := range []int{1, 2, 4, 7} {
		srv, _ := newShardTestServer(t, entries, n, shard.Options{})
		for _, p := range params {
			q := p.Encode()
			var want struct {
				Aggregate json.RawMessage `json:"aggregate"`
			}
			getJSON(t, single.URL+"/api/aggregate?"+q, &want)
			var got shardAggResponse
			getJSON(t, srv.URL+"/api/aggregate?"+q, &got)
			if got.Partial || got.Coverage.ShardsAnswered != got.Coverage.ShardsQueried {
				t.Fatalf("%d shards, %q: degraded on a healthy cluster: %+v", n, q, got.Coverage)
			}
			if got.Coverage.ShardsTotal != n {
				t.Fatalf("%d shards, %q: coverage total %d", n, q, got.Coverage.ShardsTotal)
			}
			if string(got.Aggregate) != string(want.Aggregate) {
				t.Errorf("%d shards, %q: merged aggregate diverges from single store\nsharded: %s\nsingle:  %s",
					n, q, got.Aggregate, want.Aggregate)
			}
		}
	}
}

// TestShardedQueryEndpoint checks the merged /api/query keeps canonical
// order and honors limits across shards.
func TestShardedQueryEndpoint(t *testing.T) {
	s := newTestStudy(t)
	entries := store.FromAlerts(s.Alerts, s.Filtered)
	srv, _ := newShardTestServer(t, entries, 4, shard.Options{})

	var resp struct {
		Count    int            `json:"count"`
		Partial  bool           `json:"partial"`
		Coverage shard.Coverage `json:"coverage"`
		Entries  []struct {
			Seq  uint64    `json:"seq"`
			Time time.Time `json:"time"`
		} `json:"entries"`
	}
	getJSON(t, srv.URL+"/api/query?limit=10", &resp)
	if resp.Count != 10 || resp.Partial {
		t.Fatalf("limit or coverage off: count %d partial %v", resp.Count, resp.Partial)
	}
	for i, en := range resp.Entries {
		if !en.Time.Equal(entries[i].Record.Time) || en.Seq != entries[i].Record.Seq {
			t.Fatalf("entry %d out of canonical order across shards: %+v", i, en)
		}
	}
	getJSON(t, srv.URL+"/api/query?limit=0", &resp)
	if resp.Count != len(entries) {
		t.Fatalf("full select count %d, want %d", resp.Count, len(entries))
	}
}

// faultyOpenStore adapts shardfault.OpenFaulty to shard.Options.OpenStore.
func faultyOpenStore(root string, failIDs ...int) (open func(string, store.Options) (shard.Backend, *store.OpenReport, error), faulty func(id int) *shardfault.FaultyStore) {
	failDirs := map[string]bool{}
	for _, id := range failIDs {
		failDirs[shard.ShardDir(root, id)] = true
	}
	sfOpen, wrapped, mu := shardfault.OpenFaulty(failDirs)
	open = func(dir string, opts store.Options) (shard.Backend, *store.OpenReport, error) {
		b, rep, err := sfOpen(dir, opts)
		if err != nil {
			return nil, rep, err
		}
		return b, rep, nil
	}
	faulty = func(id int) *shardfault.FaultyStore {
		mu.Lock()
		defer mu.Unlock()
		return wrapped[shard.ShardDir(root, id)]
	}
	return open, faulty
}

// TestShardedPartialResultOverHTTP fault-injects one of four shards and
// checks the acceptance contract at the wire: /api/query and
// /api/aggregate return HTTP 200 with partial:true and coverage that
// names the dead shard, and /api/shards reports it quarantined.
func TestShardedPartialResultOverHTTP(t *testing.T) {
	s := newTestStudy(t)
	entries := store.FromAlerts(s.Alerts, s.Filtered)

	root := t.TempDir()
	const victim = 1
	open, _ := faultyOpenStore(root, victim)
	c, rep, err := shard.Create(root, logrec.Liberty, 4, shard.Options{
		Store:     store.Options{FlushEvery: len(entries)/8 + 1},
		OpenStore: open,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined: %v", rep.Quarantined)
	}
	ar, err := c.Append(entries)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
	defer srv.Close()

	// getJSON fails on non-200, so these calls double as status checks.
	var agg shardAggResponse
	getJSON(t, srv.URL+"/api/aggregate", &agg)
	if !agg.Partial || agg.Coverage.ShardsTotal != 4 || agg.Coverage.ShardsQueried != 4 || agg.Coverage.ShardsAnswered != 3 {
		t.Fatalf("aggregate coverage %+v", agg.Coverage)
	}
	if !strings.Contains(agg.Coverage.ShardErrors[fmt.Sprint(victim)], "quarantined") {
		t.Fatalf("shard errors %v", agg.Coverage.ShardErrors)
	}
	var parsed struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal(agg.Aggregate, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Total != ar.Appended {
		t.Fatalf("partial total %d, want the %d entries the healthy shards hold", parsed.Total, ar.Appended)
	}

	var q struct {
		Count    int            `json:"count"`
		Partial  bool           `json:"partial"`
		Coverage shard.Coverage `json:"coverage"`
	}
	getJSON(t, srv.URL+"/api/query?limit=0", &q)
	if !q.Partial || q.Count != ar.Appended {
		t.Fatalf("query degraded wrong: count %d partial %v (want %d)", q.Count, q.Partial, ar.Appended)
	}

	var health struct {
		Shards []shard.Health `json:"shards"`
	}
	getJSON(t, srv.URL+"/api/shards", &health)
	if len(health.Shards) != 4 || health.Shards[victim].State != "quarantined" {
		t.Fatalf("/api/shards: %+v", health.Shards)
	}
}

// TestShardedIngestMatchesBatchPipeline posts raw log lines into an
// empty cluster and checks the merged aggregation equals the
// single-store ingest of the same lines.
func TestShardedIngestMatchesBatchPipeline(t *testing.T) {
	body := ingestTestBody(t)

	// Single-store reference.
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	single := httptest.NewServer(newTestAPI(t, st, apiOptions{}))
	defer single.Close()
	postLines(t, single.URL, body, http.StatusOK)
	var want struct {
		Aggregate json.RawMessage `json:"aggregate"`
	}
	getJSON(t, single.URL+"/api/aggregate", &want)

	srv, c := newShardTestServer(t, nil, 3, shard.Options{Store: store.Options{FlushEvery: 500}})
	raw := postLines(t, srv.URL, body, http.StatusOK)
	var ing shardIngestResponse
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Appended == 0 || sumValues(ing.PerShard) != ing.Appended || len(ing.Rejected) != 0 || len(ing.Errors) != 0 {
		t.Fatalf("sharded ingest summary off: %+v", ing)
	}
	if c.Len() != ing.Appended {
		t.Fatalf("cluster holds %d, response said %d", c.Len(), ing.Appended)
	}

	var got shardAggResponse
	getJSON(t, srv.URL+"/api/aggregate", &got)
	if got.Partial {
		t.Fatalf("healthy ingest produced partial coverage: %+v", got.Coverage)
	}
	if string(got.Aggregate) != string(want.Aggregate) {
		t.Fatalf("sharded ingest aggregate diverges\nsharded: %s\nsingle:  %s", got.Aggregate, want.Aggregate)
	}
}

// TestShardedIngestBackpressure429 wedges every shard's appends behind a
// hold channel with a depth-1 queue: the first two posts park in the
// queues, the third bounces with 429 + Retry-After, and releasing the
// hold drains everything.
func TestShardedIngestBackpressure429(t *testing.T) {
	body := ingestTestBody(t)
	root := t.TempDir()
	open, faulty := faultyOpenStore(root)
	c, _, err := shard.Create(root, logrec.Liberty, 2, shard.Options{
		Store:      store.Options{FlushEvery: 1 << 30},
		OpenStore:  open,
		QueueDepth: 1,
		RetryAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(newShardAPI(c, apiOptions{}))
	defer srv.Close()

	hold := make(chan struct{})
	for id := 0; id < 2; id++ {
		faulty(id).SetFaults(shardfault.StoreFaults{AppendHold: hold})
	}

	// Two posts park: one in each shard's worker, one in each queue.
	// (No t.Fatal off the test goroutine — statuses are checked after.)
	var wg sync.WaitGroup
	parked := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			parked[i] = resp.StatusCode
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		full := true
		for _, h := range c.Health() {
			if h.Inflight != 1 || h.QueueDepth != 1 {
				full = false
			}
		}
		if full {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queues never filled: %+v", c.Health())
		}
		time.Sleep(time.Millisecond)
	}

	// The third post is rejected immediately — backpressure, not a hang.
	resp, err := http.Post(srv.URL+"/api/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow post: %d: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var rej shardIngestResponse
	if err := json.Unmarshal(raw, &rej); err != nil {
		t.Fatal(err)
	}
	if len(rej.Rejected) == 0 {
		t.Fatalf("429 without rejected detail: %+v", rej)
	}
	// The 429 must name the bounced sources: the retry unit is those
	// sources' records, never the whole batch (healthy shards' slices
	// are already durable and would duplicate on replay).
	for id := range rej.Rejected {
		if len(rej.RejectedSources[id]) == 0 {
			t.Fatalf("429 without rejected_sources for shard %d: %+v", id, rej)
		}
	}

	close(hold)
	wg.Wait()
	for i, status := range parked {
		if status != http.StatusOK {
			t.Errorf("parked post %d finished with %d, want 200", i, status)
		}
	}
	if !c.WaitQueuesIdle(10 * time.Second) {
		t.Fatal("queues never drained after release")
	}
	if c.Len() == 0 {
		t.Fatal("held ingests never landed")
	}
}

// ingestTestBody generates the raw log lines both ingest tests post.
func ingestTestBody(t *testing.T) string {
	t.Helper()
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: testScale, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return strings.Join(out.Lines, "\n") + "\n"
}

// postLines posts raw lines to /api/ingest and asserts the status.
func postLines(t *testing.T, baseURL, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/api/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("ingest: %d, want %d: %s", resp.StatusCode, wantStatus, raw)
	}
	return raw
}
