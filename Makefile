# Verification entry points. `make verify` is the PR gate: build, vet,
# and the full test suite under the race detector — the resilient-ingest
# retry/resume path and the streaming filter are concurrent-adjacent
# code, so every change gets race-checked.

GO ?= go

.PHONY: all build test vet race verify verify-race verify-shard bench bench-smoke diff-smoke subscribe-smoke correlate-smoke loadgen-smoke fuzz fuzz-smoke

# Every test invocation gets a hard wall-clock budget (a wedged-shard or
# crash-recovery bug must fail the gate, not hang it) and a shuffled
# execution order, so accidental inter-test ordering dependencies
# surface in CI instead of in the field.
TEST_TIMEOUT ?= 10m

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -shuffle=on -timeout $(TEST_TIMEOUT) ./...

# Focused race pass over the storage/compaction/cache concurrency
# surface, with -count=1 so the concurrent append/scan/seal/compact
# stress test and the crash-window recovery suite actually re-run
# instead of replaying cached results. This is the gate for the store's
# locking protocol (compactMu before mu) and the aggregate cache.
verify-race:
	$(GO) test -race -count=1 -shuffle=on -timeout $(TEST_TIMEOUT) ./internal/store/... ./internal/query/... ./cmd/logstudy/...

# Focused race pass over the sharded store's failure envelope: the
# scatter-gather router, circuit breakers, per-shard kill/recovery
# windows, and the fault-injection layer that drives them, plus the
# sharded HTTP differential and backpressure tests. -count=1 so the
# crash-window and breaker state machines re-execute every run.
verify-shard:
	$(GO) test -race -count=1 -shuffle=on -timeout $(TEST_TIMEOUT) ./internal/shard/... ./internal/faultinject/...
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -run 'Sharded' ./cmd/logstudy/

verify: build vet race bench-smoke diff-smoke subscribe-smoke correlate-smoke loadgen-smoke fuzz-smoke

# Standing-query gate: the incremental-vs-rescan differential suites
# (registry and cluster, every mutation class, shard counts 1/2/4/7),
# the single-event-per-crossing latch tests, and the HTTP subscribe
# smoke (POST subscribe → SSE fires exactly once per crossing, webhook
# delivered at most once). -race because the registry sits on the store
# mutation stream; -count=1 so the fenced re-baseline paths re-execute.
subscribe-smoke:
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -run 'Standing|Registry|Subscribe' ./internal/query/ ./internal/shard/ ./cmd/logstudy/

# Correlation-mining gate: the incremental-vs-batch miner differentials
# (every mutation class, warm starts, cluster shard counts 1/2/4/7) and
# the /api/correlations + /api/predict HTTP smoke, including the
# sharded-equals-single prediction purity check and the bounded-limit
# contract. -race because the miner sits on the store mutation stream;
# -count=1 so the Seq-fenced baseline paths re-execute every run.
correlate-smoke:
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) ./internal/correlate/
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -run 'ClusterCorrelate|ClusterPrediction' ./internal/shard/
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -run 'Correlations|Predict|ListLimit|SubscriptionsLimit' ./cmd/logstudy/

# Columnar-vs-decode differential smoke: the zero-materialization
# aggregate path must answer byte-identically to the row-decode path at
# the store, library, HTTP, and sharded layers (see DESIGN.md §11).
# -count=1 so the differential matrices re-execute every run.
diff-smoke:
	$(GO) test -count=1 -timeout $(TEST_TIMEOUT) -run 'Columnar|ScanColumns|BodyFilter|DecodeReference|Unmap' ./internal/store/ ./internal/query/ ./cmd/logstudy/

# Full stage-by-stage benchmark ledger (records/sec, allocs/record,
# serial-vs-parallel speedup per stage). Writes BENCH_pipeline.json at
# the repo root — commit the refreshed ledger when performance changes.
BENCH_SCALE ?= 0.001
bench:
	$(GO) run ./cmd/logstudy bench -scale $(BENCH_SCALE) -iters 3 -o BENCH_pipeline.json

# One cheap iteration as part of `make verify`: proves the bench path
# end-to-end (generate, parse, tag, filter, ledger serialization)
# without perturbing the committed ledger.
bench-smoke:
	$(GO) run ./cmd/logstudy bench -system liberty -scale 0.0001 -iters 1 -o $(if $(TMPDIR),$(TMPDIR),/tmp)/BENCH_smoke.json

# Load-harness gate: plan determinism, the graphite connector's
# paused-sink/drop/backoff contract, and the serve-tier-under-load
# regression trio (SSE exempt from request deadlines, uniform
# drain-rate-derived 429 retry contract on both store shapes, graceful
# drain-and-seal with acked batches durable), ending with the loadgen
# CLI end-to-end against a self-hosted 4-shard serve writing the
# ledger's load_reports section. Race on — the harness, the pump, and
# the admission queue are all concurrency; -count=1 so the kill and
# backpressure state machines re-execute every run.
loadgen-smoke:
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) ./internal/loadgen/ ./internal/connectors/...
	$(GO) test -race -count=1 -timeout $(TEST_TIMEOUT) -run 'Loadgen|RequestDeadline|SSESurvives|Backpressure429|RetryAfter|GracefulShutdown|Graphite' ./cmd/logstudy/

# Short exploratory fuzz of every parser and the streaming framer
# (native Go fuzzing; seed corpora always run under plain `make test`).
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/syslogng -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rasdb -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ddn -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -fuzz FuzzReadFunc -fuzztime $(FUZZTIME)
	$(GO) test ./internal/filter -fuzz FuzzStreamMatchesBatch -fuzztime $(FUZZTIME)

# Brief fuzz runs as part of `make verify`: a few seconds each on the
# framer and the online-vs-batch filter differential, enough to explore
# past the seed corpus on every PR without stalling the gate.
SMOKE_FUZZTIME ?= 3s
fuzz-smoke:
	$(GO) test ./internal/ingest -run '^$$' -fuzz FuzzReadFunc -fuzztime $(SMOKE_FUZZTIME)
	$(GO) test ./internal/filter -run '^$$' -fuzz FuzzStreamMatchesBatch -fuzztime $(SMOKE_FUZZTIME)
