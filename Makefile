# Verification entry points. `make verify` is the PR gate: build, vet,
# and the full test suite under the race detector — the resilient-ingest
# retry/resume path and the streaming filter are concurrent-adjacent
# code, so every change gets race-checked.

GO ?= go

.PHONY: all build test vet race verify fuzz

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

# Short exploratory fuzz of every parser and the streaming framer
# (native Go fuzzing; seed corpora always run under plain `make test`).
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/syslogng -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rasdb -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ddn -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -fuzz FuzzReadFunc -fuzztime $(FUZZTIME)
