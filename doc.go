// Package whatsupersay is a reproduction of "What Supercomputers Say: A
// Study of Five System Logs" (Oliner & Stearley, DSN 2007) as a Go
// library: calibrated synthetic log generators for the five machines
// (Blue Gene/L, Thunderbird, Red Storm, Spirit, Liberty), parsers for the
// three log dialects, the expert-rule alert tagger, the simultaneous
// spatio-temporal filter of Algorithm 3.1 with its baselines, and the
// statistical analyses behind every table and figure in the paper.
//
// Start with internal/core.Study for the end-to-end pipeline, or run
// cmd/logstudy to print the paper's tables and figures. The repository's
// DESIGN.md maps every experiment to the module and benchmark that
// regenerates it; EXPERIMENTS.md records measured-vs-paper results.
package whatsupersay
