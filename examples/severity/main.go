// Severity: the Table 5 experiment. Shows why severity fields are not a
// reliable alert detector on BG/L: tagging every FATAL/FAILURE message as
// an alert catches all expert-tagged alerts (0% false negatives) but more
// than half of what it tags is noise (~59% false positives).
package main

import (
	"fmt"
	"os"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	bgl, err := core.New(simulate.Config{System: logrec.BlueGeneL, Scale: 0.01, Seed: 3})
	if err != nil {
		return err
	}

	core.Table5(bgl).Render(os.Stdout)

	conf := core.Table5Baseline(bgl)
	fmt.Printf("\nseverity baseline (tag every FATAL/FAILURE message as an alert):\n")
	fmt.Printf("  true positives:  %d\n", conf.TruePositive)
	fmt.Printf("  false positives: %d\n", conf.FalsePositive)
	fmt.Printf("  false negatives: %d\n", conf.FalseNegative)
	fmt.Printf("  FP rate: %.2f%% (paper: 59.34%%)\n", 100*conf.FalsePositiveRate())
	fmt.Printf("  FN rate: %.2f%% (paper: 0%%)\n", 100*conf.FalseNegativeRate())
	fmt.Println("\nconclusion (Section 3.2): \"The use of message severity levels as a")
	fmt.Println("criterion for identifying failures [should] be done only with considerable caution.\"")
	return nil
}
