// Filtercompare: the Section 3.3.2 experiment. Runs the paper's
// simultaneous spatio-temporal filter and the serial
// temporal-then-spatial baseline over the same Spirit alert stream, and
// scores both against the generator's ground truth.
//
// The paper's claims, all checked here:
//   - the simultaneous filter is at least as fast ("16% faster on the
//     Spirit logs") and conceptually simpler;
//   - its survivors are a subset of the serial filter's;
//   - it removes redundant shared-resource alerts serial keeps (false
//     positives), at the cost of at most one true incident (sn325's disk
//     failure, which hid inside sn373's storm).
package main

import (
	"fmt"
	"os"

	"whatsupersay/internal/core"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	study, err := core.New(simulate.Config{System: logrec.Spirit, Scale: 0.001, Seed: 11})
	if err != nil {
		return err
	}
	fmt.Printf("Spirit: %s raw alerts across %d ground-truth incidents\n\n",
		report.Comma(int64(len(study.Alerts))), len(study.Source.Truth.Incidents))

	results := core.CompareFilters(study,
		filter.Simultaneous{T: filter.DefaultThreshold},
		filter.Serial{T: filter.DefaultThreshold},
	)
	t := report.NewTable("simultaneous (Algorithm 3.1) vs serial [Liang et al.]",
		"Algorithm", "Kept", "Missed Incidents", "Redundant Kept", "Alerts/Failure", "Elapsed")
	for _, r := range results {
		t.AddRow(r.Algorithm, r.Stats.Output, r.Accuracy.MissedIncidents,
			r.Accuracy.RedundantKept, fmt.Sprintf("%.3f", r.Accuracy.AlertsPerFailure()), r.Elapsed.String())
	}
	t.Render(os.Stdout)

	// Where do the two disagree? The paper: extra survivors under serial
	// "tend to indicate failures in shared resources", most commonly PBS.
	diff := core.SurvivorDiff(study,
		filter.Serial{T: filter.DefaultThreshold},
		filter.Simultaneous{T: filter.DefaultThreshold})
	fmt.Println("\nkept by serial, removed by simultaneous (redundant cross-node reports):")
	for cat, n := range diff {
		fmt.Printf("  %-12s %d\n", cat, n)
	}

	// The one true positive the simultaneous filter erroneously removes:
	// sn325's independent disk failure during sn373's storm.
	sim := results[0].Accuracy
	ser := results[1].Accuracy
	fmt.Printf("\nsimultaneous missed %d incident(s); serial missed %d (paper: at most one per machine)\n",
		sim.MissedIncidents, ser.MissedIncidents)
	return nil
}
