// Quickstart: generate a small synthetic Liberty log, tag it with the
// expert rules, filter it with Algorithm 3.1, and print a Table-4-style
// summary. This is the five-minute tour of the library's pipeline.
package main

import (
	"fmt"
	"os"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// A study is the whole pipeline: generate -> parse -> tag -> filter.
	// AlertScale 1 keeps Liberty's (tiny) alert population at full
	// fidelity while the background is scaled down 1000x.
	study, err := core.New(simulate.Config{
		System:     logrec.Liberty,
		Scale:      0.001,
		AlertScale: 1,
		Seed:       7,
	})
	if err != nil {
		return err
	}

	start, end := study.Window()
	fmt.Printf("generated %s %s log lines (%s bytes) covering %d days\n",
		report.Comma(int64(len(study.Lines))), study.System,
		report.Comma(study.TotalBytes()), int(end.Sub(start).Hours()/24))
	fmt.Printf("expert rules tagged %s alerts; Algorithm 3.1 (T=5s) kept %s\n\n",
		report.Comma(int64(len(study.Alerts))), report.Comma(int64(len(study.Filtered))))

	// A sample of the raw log text.
	fmt.Println("sample lines:")
	for _, i := range []int{0, len(study.Lines) / 2, len(study.Lines) - 1} {
		fmt.Println(" ", study.Lines[i])
	}
	fmt.Println()

	// Per-category counts in the shape of the paper's Table 4.
	core.Table4(study).Render(os.Stdout)
	return nil
}
