// Prediction: the Section 5 "ensemble of predictors" recommendation,
// demonstrated on Liberty. Different failure categories have different
// predictive signatures, so the ensemble assigns each category the
// predictor that matches its behavior:
//
//   - GM_LANAI is preceded by GM_PAR (the Figure 3 correlation), so a
//     precursor predictor fits;
//   - PBS_CHK arrives in job-killing storms, so a rate-threshold
//     predictor warns once a storm begins;
//   - a periodic predictor is scored on the same categories as a
//     baseline, to show what naive warning schedules cost in precision.
package main

import (
	"fmt"
	"os"
	"time"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/predict"
	"whatsupersay/internal/report"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	study, err := core.New(simulate.Config{
		System:     logrec.Liberty,
		Scale:      0.001,
		AlertScale: 1,
		Seed:       13,
	})
	if err != nil {
		return err
	}

	const (
		minLead = 30 * time.Second
		horizon = 2 * time.Hour
	)

	targets := []struct {
		category  string
		predictor predict.Predictor
	}{
		{"GM_LANAI", predict.Precursor{PrecursorCategory: "GM_PAR", Cooldown: time.Hour}},
		// PBS_BFD follows a run of PBS_CHK task_check messages (the
		// correlated siblings of Figure 4): a rate threshold on PBS_CHK
		// traffic is the natural precursor signal.
		{"PBS_BFD", predict.Precursor{PrecursorCategory: "PBS_CHK", Cooldown: 10 * time.Minute}},
	}

	t := report.NewTable(
		fmt.Sprintf("Per-category predictors on %s (lead>=%v, horizon %v)", study.System, minLead, horizon),
		"Category", "Predictor", "Warnings", "Precision", "Recall")
	for _, tc := range targets {
		events := core.AlertTimes(core.AlertsOfCategory(study.Filtered, tc.category))
		warnings := tc.predictor.Predict(study.Alerts, tc.category)
		ev := predict.Evaluate(warnings, events, minLead, horizon)
		t.AddRow(tc.category, tc.predictor.Name(), len(warnings),
			fmt.Sprintf("%.2f", ev.Precision()), fmt.Sprintf("%.2f", ev.Recall()))

		// Baseline: warn every 6 hours, no signal at all.
		base := predict.Periodic{Interval: 6 * time.Hour}
		bw := base.Predict(study.Alerts, tc.category)
		bev := predict.Evaluate(bw, events, minLead, horizon)
		t.AddRow(tc.category, base.Name()+" [baseline]", len(bw),
			fmt.Sprintf("%.2f", bev.Precision()), fmt.Sprintf("%.2f", bev.Recall()))
	}
	t.Render(os.Stdout)

	// The automated version: train every candidate on the first 60% of
	// the stream, keep the best per category, score on the held-out 40%.
	var cats []string
	for name := range map[string]bool{"GM_PAR": true, "PBS_CHK": true, "PBS_CON": true} {
		cats = append(cats, name)
	}
	sels := predict.AutoSelect(study.Alerts,
		[]string{"GM_LANAI", "PBS_BFD"},
		predict.DefaultCandidates(cats),
		0.6, minLead, horizon, 0.05)
	auto := report.NewTable("\nAuto-selected ensemble (train 60% / holdout 40%)",
		"Category", "Selected", "Train P/R", "Holdout P/R")
	for _, s := range sels {
		auto.AddRow(s.Category, s.Label,
			fmt.Sprintf("%.2f/%.2f", s.Train.Precision(), s.Train.Recall()),
			fmt.Sprintf("%.2f/%.2f", s.Holdout.Precision(), s.Holdout.Recall()))
	}
	auto.Render(os.Stdout)

	fmt.Println("\nAs the paper argues, no single feature predicts every failure type:")
	fmt.Println("the precursor signal exists only where categories are implicitly")
	fmt.Println("correlated, and rate thresholds only help for storm-like failures.")
	return nil
}
