// Jobimpact: the "Quantify RAS" recommendation, demonstrated end to end.
// The paper estimates that Liberty's PBS bug "killed as many as 1336
// jobs" from the alert stream alone, and recommends measuring "the
// amount of useful work lost due to failures" instead of log-derived
// MTTF. This example:
//
//  1. builds a Liberty study with full-fidelity alerts;
//  2. estimates killed jobs from the PBS_CHK alert stream (the paper's
//     procedure) and compares against the generator's incident count;
//  3. overlays the incidents on a synthetic batch schedule to measure
//     lost node-hours, with and without hourly checkpointing;
//  4. prints the log-derived MTBF next to the state-based availability
//     metrics to show why the former misleads.
package main

import (
	"fmt"
	"os"
	"time"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	study, err := core.New(simulate.Config{
		System:     logrec.Liberty,
		Scale:      0.0005,
		AlertScale: 1,
		Seed:       23,
	})
	if err != nil {
		return err
	}

	// Count the ground-truth PBS incidents for reference.
	pbsIncidents := 0
	for _, inc := range study.Source.Truth.Incidents {
		if inc.Category == "PBS_CHK" {
			pbsIncidents++
		}
	}

	imp := core.JobImpact(study, "PBS_CHK", 5, time.Hour)
	fmt.Println("Liberty PBS bug impact (Section 3.3.1 / Section 5):")
	fmt.Printf("  ground-truth job-kill incidents:   %d\n", pbsIncidents)
	fmt.Printf("  alert-only killed-job estimate:    %d (the paper's estimation procedure)\n", imp.EstimatedKilled)
	fmt.Printf("  synthetic workload:                %s jobs over the window\n", report.Comma(int64(imp.Jobs)))
	fmt.Printf("  jobs killed in workload overlay:   %d\n", imp.GroundTruthKilled)
	fmt.Printf("  node-hours lost (no checkpoints):  %.1f\n", imp.LostNodeHours)
	fmt.Printf("  node-hours lost (hourly ckpt):     %.1f\n", imp.LostNodeHoursCheckpointed)

	ras := core.RAS(study)
	fmt.Println("\nRAS metrics (state-based, the recommended kind):")
	fmt.Printf("  production availability:           %.4f\n", ras.Metrics.Availability())
	fmt.Printf("  scheduled downtime:                %v\n", ras.Metrics.Scheduled)
	fmt.Printf("  node-hours lost to unscheduled:    %.1f\n", ras.Metrics.NodeHoursLost)
	fmt.Println("\nlog-derived MTBF (the discouraged kind):")
	fmt.Printf("  window / filtered alerts = %v / %d = %v\n",
		func() time.Duration { s, e := study.Window(); return e.Sub(s) }(),
		ras.FilteredAlerts, ras.LogMTBF)
	fmt.Println("  \"The content of the logs is a strong function of the specific system")
	fmt.Println("   and logging configuration; using logs to compare machines is absurd.\"")
	return nil
}
