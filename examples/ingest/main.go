// Ingest: the round trip a downstream user cares about — write a
// synthetic log to disk as plain text, then ingest that text cold (no
// ground truth, no shared state) through the streaming reader, tag it
// with rules loaded from an external rule file, anonymize it, and verify
// that tagging is invariant under anonymization. This is the workflow
// the paper's authors wanted for the logs they could not release.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"whatsupersay/internal/anonymize"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/report"
	"whatsupersay/internal/rules"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/tag"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Generate a Liberty log and write it to disk as text.
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: 0.0005, AlertScale: 1, Seed: 17})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "whatsupersay")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "liberty.log")
	if err := os.WriteFile(path, []byte(strings.Join(out.Lines, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s lines to %s\n", report.Comma(int64(len(out.Lines))), path)

	// 2. Ingest the text cold.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	recs, stats, err := ingest.ReadAll(f, logrec.Liberty, out.Machine.LogStart)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("ingested %s records (%d parse errors, %d syslog lines)\n",
		report.Comma(int64(stats.Lines)), stats.ParseErrors, stats.Syslog)

	// 3. Tag with rules loaded from the external rule-file format.
	set, err := rules.LoadSystem(logrec.Liberty)
	if err != nil {
		return err
	}
	var alerts []tag.Alert
	expert := tag.NewTagger(logrec.Liberty)
	for _, r := range recs {
		if _, ok := set.Tag(r); ok {
			if c, ok2 := expert.Tag(r); ok2 {
				alerts = append(alerts, tag.Alert{Record: r, Category: c})
			}
		}
	}
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{}.Filter(alerts)
	fmt.Printf("external rules tagged %s alerts; %s after filtering\n",
		report.Comma(int64(len(alerts))), report.Comma(int64(len(filtered))))

	// 4. Anonymize and verify tagging is invariant.
	an := anonymize.New("release-key-2007")
	lines := make([]string, len(out.Lines))
	copy(lines, out.Lines)
	changed := an.Lines(lines)
	leaks := an.Audit(lines)
	fmt.Printf("anonymized: %s lines rewritten, %d residual leaks found by audit\n",
		report.Comma(int64(changed)), len(leaks))

	anonRecs, _, err := ingest.ReadAll(strings.NewReader(strings.Join(lines, "\n")+"\n"), logrec.Liberty, out.Machine.LogStart)
	if err != nil {
		return err
	}
	anonAlerts := expert.TagAll(anonRecs)
	fmt.Printf("tagging before vs after anonymization: %d vs %d alerts", len(alerts), len(anonAlerts))
	if len(anonAlerts) == len(alerts) {
		fmt.Println(" — invariant, as required for a releasable corpus")
	} else {
		fmt.Println(" — MISMATCH")
	}
	return nil
}
