// Opcontext: the Section 3.2.1 disambiguation example. The BG/L message
//
//	... RAS BGLMASTER FAILURE ciodb exited normally with exit code 0
//
// is either a harmless maintenance artifact or "all running jobs on the
// supercomputer were (undesirably) killed", depending on whether the
// system was in scheduled downtime — information the logs don't carry.
// This example runs the paper's proposed fix: an operational-context
// timeline that records "the time and cause of system state changes", and
// an annotator that judges each alert against it.
package main

import (
	"fmt"
	"os"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/opcontext"
	"whatsupersay/internal/simulate"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	bgl, err := core.New(simulate.Config{System: logrec.BlueGeneL, Scale: 0.002, Seed: 5})
	if err != nil {
		return err
	}
	tl := bgl.Source.Timeline

	fmt.Println("operational-context timeline (first transitions):")
	for i, tr := range tl.Transitions() {
		if i >= 6 {
			fmt.Printf("  ... %d more transitions\n", len(tl.Transitions())-6)
			break
		}
		fmt.Printf("  %s -> %-20s (%s)\n", tr.Time.Format("2006-01-02 15:04"), tr.To, tr.Cause)
	}

	// Annotate every filtered alert with the state in effect when it
	// fired.
	ann := opcontext.Annotate(tl, bgl.Filtered)
	counts := opcontext.CountBySignificance(ann)
	fmt.Printf("\n%d filtered alerts annotated:\n", len(ann))
	fmt.Printf("  significant:        %d\n", counts[opcontext.Significant])
	fmt.Printf("  expected artifacts: %d (fired during scheduled downtime / engineering time)\n", counts[opcontext.ExpectedArtifact])
	fmt.Printf("  already-down:       %d\n", counts[opcontext.AlreadyDown])

	// The headline case: every MASNORM ("ciodb exited normally") alert
	// fired during scheduled maintenance, so the annotator judges all of
	// them innocuous — without context they are indistinguishable from a
	// production failure that killed every running job.
	fmt.Println("\nthe ambiguous message, disambiguated:")
	for _, a := range ann {
		if a.Alert.Category.Name != "MASNORM" {
			continue
		}
		fmt.Printf("  %s  %q\n    state=%s verdict=%s\n",
			a.Alert.Record.Time.Format("2006-01-02 15:04:05"),
			a.Alert.Record.Body, a.State, a.Significance)
	}

	// Time-in-state is the raw material for the RAS metrics the paper
	// recommends over log-derived MTTF.
	start, end := bgl.Window()
	fmt.Println("\ntime in state over the window:")
	for st, d := range tl.TimeIn(start, end) {
		fmt.Printf("  %-20s %v\n", st, d)
	}
	return nil
}
