// Package mining implements message-template discovery over unstructured
// log bodies, in the lineage the paper's related work surveys: Vaarandi's
// breadth-first frequent-pattern mining over event logs (ref [27], the
// SLCT family) and Hellerstein's actionable-pattern work (ref [7]).
// Section 3.2.1 motivates it directly: "Ultimately, understanding the
// entries may require parsing the unstructured message bodies, thereby
// reducing the problem to natural language processing on the shorthand of
// multiple programmers."
//
// The miner clusters messages by their frequent (position, token) pairs:
// a first pass counts token occurrences per word position; a second pass
// assigns each message the template formed by its frequent positional
// tokens, with infrequent positions wildcarded. Messages sharing a
// template form a cluster — which, on logs whose messages come from
// printf-style format strings (all of them), recovers the format strings
// without source access.
package mining

import (
	"sort"
	"strings"
)

// Config parameterizes the miner.
type Config struct {
	// Support is the minimum occurrences for a (position, token) pair to
	// be considered constant rather than variable. Values below 2 are
	// treated as 2.
	Support int
	// MaxTokens caps the tokenized length considered; longer tails are
	// truncated into the final wildcard. Zero means 24.
	MaxTokens int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Support < 2 {
		c.Support = 2
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 24
	}
	return c
}

// Wildcard is the placeholder for variable positions.
const Wildcard = "*"

// Template is one mined message template.
type Template struct {
	// Tokens is the positional pattern; Wildcard marks variable fields.
	Tokens []string
	// Count is the number of messages matching the template.
	Count int
	// Example is one original message assigned to the template.
	Example string
}

// String renders the template as a space-joined pattern.
func (t Template) String() string { return strings.Join(t.Tokens, " ") }

// WildcardFraction is the fraction of variable positions — a measure of
// how "parameterized" the underlying format string is.
func (t Template) WildcardFraction() float64 {
	if len(t.Tokens) == 0 {
		return 0
	}
	n := 0
	for _, tok := range t.Tokens {
		if tok == Wildcard {
			n++
		}
	}
	return float64(n) / float64(len(t.Tokens))
}

// posTok is a (position, token) key.
type posTok struct {
	pos int
	tok string
}

// Mine discovers templates over message bodies. It is the two-pass
// SLCT-style procedure: count positional tokens, then bucket messages by
// their frequent-token signature. Returned templates are sorted by
// descending count.
func Mine(bodies []string, cfg Config) []Template {
	cfg = cfg.withDefaults()

	counts := make(map[posTok]int)
	for _, b := range bodies {
		toks := tokenize(b, cfg.MaxTokens)
		for i, tok := range toks {
			counts[posTok{i, tok}]++
		}
	}

	type bucket struct {
		count   int
		example string
	}
	buckets := make(map[string]*bucket)
	for _, b := range bodies {
		toks := tokenize(b, cfg.MaxTokens)
		sig := make([]string, len(toks))
		for i, tok := range toks {
			if counts[posTok{i, tok}] >= cfg.Support {
				sig[i] = tok
			} else {
				sig[i] = Wildcard
			}
		}
		key := strings.Join(sig, "\x00")
		bk := buckets[key]
		if bk == nil {
			bk = &bucket{example: b}
			buckets[key] = bk
		}
		bk.count++
	}

	out := make([]Template, 0, len(buckets))
	for key, bk := range buckets {
		out = append(out, Template{
			Tokens:  strings.Split(key, "\x00"),
			Count:   bk.count,
			Example: bk.example,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// tokenize splits a body into at most maxTokens whitespace-delimited
// tokens; a longer tail collapses into one final token so that variable-
// length messages with a common prefix still align.
func tokenize(body string, maxTokens int) []string {
	fields := strings.Fields(body)
	if len(fields) <= maxTokens {
		return fields
	}
	out := make([]string, maxTokens)
	copy(out, fields[:maxTokens-1])
	out[maxTokens-1] = strings.Join(fields[maxTokens-1:], " ")
	return out
}

// Matches reports whether a body fits the template: wildcards match any
// single token, except a trailing wildcard, which absorbs one or more
// tokens (mined templates fold variable-length tails into their final
// position).
func (t Template) Matches(body string) bool {
	if len(t.Tokens) == 0 {
		return body == ""
	}
	fields := strings.Fields(body)
	if len(fields) < len(t.Tokens) {
		return false
	}
	last := len(t.Tokens) - 1
	if len(fields) > len(t.Tokens) && t.Tokens[last] != Wildcard {
		return false
	}
	for i := 0; i < last; i++ {
		if t.Tokens[i] == Wildcard {
			continue
		}
		if fields[i] != t.Tokens[i] {
			return false
		}
	}
	if t.Tokens[last] == Wildcard {
		return true
	}
	return fields[last] == t.Tokens[last]
}

// Purity evaluates mined templates against ground-truth labels: for each
// template, the share of its messages carrying the template's majority
// label, weighted by template size. label(i) returns the ground-truth
// class of bodies[i] ("" for unlabeled). A miner that recovers the
// underlying format strings scores near 1.
func Purity(bodies []string, label func(int) string, cfg Config) float64 {
	cfg = cfg.withDefaults()
	// Re-run assignment to track indices per template.
	counts := make(map[posTok]int)
	tokenized := make([][]string, len(bodies))
	for i, b := range bodies {
		tokenized[i] = tokenize(b, cfg.MaxTokens)
		for pos, tok := range tokenized[i] {
			counts[posTok{pos, tok}]++
		}
	}
	labelCounts := make(map[string]map[string]int)
	sizes := make(map[string]int)
	for i := range bodies {
		sig := make([]string, len(tokenized[i]))
		for pos, tok := range tokenized[i] {
			if counts[posTok{pos, tok}] >= cfg.Support {
				sig[pos] = tok
			} else {
				sig[pos] = Wildcard
			}
		}
		key := strings.Join(sig, "\x00")
		lc := labelCounts[key]
		if lc == nil {
			lc = make(map[string]int)
			labelCounts[key] = lc
		}
		lc[label(i)]++
		sizes[key]++
	}
	total, agree := 0, 0
	for key, lc := range labelCounts {
		best := 0
		for _, n := range lc {
			if n > best {
				best = n
			}
		}
		agree += best
		total += sizes[key]
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}
