package mining

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Templates are correlation-node identities now (internal/correlate's
// NodeTemplate mode), so assignment must be a pure function of the body
// multiset: any order dependence would silently fork graph nodes. The
// signature (Tokens) and Count are order-independent by construction —
// (position, token) counts don't care about order — but Example is the
// first body encountered per bucket and is explicitly excluded here.

// templateBodies fabricates printf-shaped messages: a handful of format
// strings with variable fields, plus rare one-off lines.
func templateBodies(rng *rand.Rand, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			out = append(out, fmt.Sprintf("ECC error at address %x corrected", rng.Intn(1<<16)))
		case 1:
			out = append(out, fmt.Sprintf("GM parity error on unit %d lanai %d", rng.Intn(8), rng.Intn(4)))
		case 2:
			out = append(out, fmt.Sprintf("job %d exceeded walltime limit %d", rng.Intn(9999), rng.Intn(100)))
		default:
			out = append(out, fmt.Sprintf("unique-%d one off line", i))
		}
	}
	return out
}

// signatureSet reduces mined templates to their order-independent core:
// "tokens\x00count" strings, sorted by Mine's own output order.
func signatureSet(tpls []Template) []string {
	out := make([]string, 0, len(tpls))
	for _, t := range tpls {
		out = append(out, fmt.Sprintf("%s\x00%d", t.String(), t.Count))
	}
	return out
}

// assignment maps each body to the template it matches first (the
// vocabulary-lookup rule correlate's NodeTemplate mode uses).
func assignment(tpls []Template, bodies []string) map[string]string {
	out := make(map[string]string, len(bodies))
	for _, b := range bodies {
		for _, t := range tpls {
			if t.Matches(b) {
				out[b] = t.String()
				break
			}
		}
	}
	return out
}

// TestMineOrderIndependent is the property test: for fixed Support and
// MaxTokens, shuffling the body stream changes neither the template set
// (tokens + counts) nor any body's template assignment.
func TestMineOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		bodies := templateBodies(rng, 100+rng.Intn(300))
		cfg := Config{Support: 2 + rng.Intn(3), MaxTokens: 8 + rng.Intn(16)}
		want := Mine(bodies, cfg)
		wantSigs := signatureSet(want)
		wantAssign := assignment(want, bodies)
		for shuffle := 0; shuffle < 5; shuffle++ {
			shuffled := append([]string(nil), bodies...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got := Mine(shuffled, cfg)
			gotSigs := signatureSet(got)
			if len(gotSigs) != len(wantSigs) {
				t.Fatalf("trial %d: shuffled mine found %d templates, want %d", trial, len(gotSigs), len(wantSigs))
			}
			for i := range wantSigs {
				if gotSigs[i] != wantSigs[i] {
					t.Fatalf("trial %d: template %d differs under shuffle:\ngot:  %q\nwant: %q",
						trial, i, gotSigs[i], wantSigs[i])
				}
			}
			gotAssign := assignment(got, shuffled)
			for b, tpl := range wantAssign {
				if gotAssign[b] != tpl {
					t.Fatalf("trial %d: body %q reassigned under shuffle: %q -> %q",
						trial, b, tpl, gotAssign[b])
				}
			}
		}
	}
}

// TestMineDeterministicFullOutput: identical input, identical output —
// including slice order and examples, which callers persist.
func TestMineDeterministicFullOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bodies := templateBodies(rng, 200)
	cfg := Config{Support: 3, MaxTokens: 12}
	a := Mine(bodies, cfg)
	b := Mine(bodies, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() || a[i].Count != b[i].Count || a[i].Example != b[i].Example {
			t.Fatalf("template %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// FuzzMineOrderIndependent fuzzes the same property over arbitrary
// body streams: reversing the stream must preserve templates and
// counts.
func FuzzMineOrderIndependent(f *testing.F) {
	f.Add("alpha beta 1\nalpha beta 2\ngamma delta\n", 2, 8)
	f.Add("x\nx\nx y z\n", 2, 4)
	f.Add("", 3, 24)
	f.Fuzz(func(t *testing.T, blob string, support, maxTokens int) {
		if support < 0 || support > 10 || maxTokens < 1 || maxTokens > 64 {
			t.Skip()
		}
		bodies := strings.Split(blob, "\n")
		if len(bodies) > 200 {
			t.Skip()
		}
		cfg := Config{Support: support, MaxTokens: maxTokens}
		fwd := signatureSet(Mine(bodies, cfg))
		rev := make([]string, len(bodies))
		for i, b := range bodies {
			rev[len(bodies)-1-i] = b
		}
		got := signatureSet(Mine(rev, cfg))
		if len(got) != len(fwd) {
			t.Fatalf("reversed mine found %d templates, want %d", len(got), len(fwd))
		}
		for i := range fwd {
			if got[i] != fwd[i] {
				t.Fatalf("template %d differs under reversal: %q vs %q", i, got[i], fwd[i])
			}
		}
	})
}
