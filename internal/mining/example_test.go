package mining_test

import (
	"fmt"

	"whatsupersay/internal/mining"
)

// ExampleMine recovers printf-style format strings from raw message
// bodies.
func ExampleMine() {
	var bodies []string
	for i := 0; i < 40; i++ {
		bodies = append(bodies, fmt.Sprintf("session opened for user u%04d by (uid=0)", i))
	}
	for i := 0; i < 20; i++ {
		bodies = append(bodies, "rts panic! - stopping execution")
	}
	for _, t := range mining.Mine(bodies, mining.Config{Support: 10}) {
		fmt.Printf("%3d  %s\n", t.Count, t)
	}
	// Output:
	//  40  session opened for user * by (uid=0)
	//  20  rts panic! - stopping execution
}
