package mining

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
)

func TestMineRecoverFormatStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var bodies []string
	// Two format strings with variable fields, plus a fixed message.
	for i := 0; i < 200; i++ {
		bodies = append(bodies, fmt.Sprintf("session opened for user u%d by (uid=0)", rng.Intn(1000)))
	}
	for i := 0; i < 100; i++ {
		bodies = append(bodies, fmt.Sprintf("EXT3-fs error (device dm-%d): journal abort", rng.Intn(4096)))
	}
	for i := 0; i < 50; i++ {
		bodies = append(bodies, "rts panic! - stopping execution")
	}
	templates := Mine(bodies, Config{Support: 10})
	if len(templates) != 3 {
		for _, tp := range templates {
			t.Logf("template %q count=%d", tp, tp.Count)
		}
		t.Fatalf("templates = %d, want 3", len(templates))
	}
	// Sorted by count: session template first.
	if templates[0].Count != 200 || templates[1].Count != 100 || templates[2].Count != 50 {
		t.Errorf("counts = %d/%d/%d", templates[0].Count, templates[1].Count, templates[2].Count)
	}
	// The variable fields are wildcarded, the constants kept.
	top := templates[0].String()
	if !strings.Contains(top, "session opened for user") || !strings.Contains(top, Wildcard) {
		t.Errorf("top template = %q", top)
	}
	// The fixed message has no wildcards.
	if templates[2].WildcardFraction() != 0 {
		t.Errorf("fixed template has wildcards: %q", templates[2])
	}
}

func TestTemplateMatches(t *testing.T) {
	tp := Template{Tokens: []string{"EXT3-fs", "error", "(device", Wildcard}}
	if !tp.Matches("EXT3-fs error (device sda5)") {
		t.Error("should match with wildcard")
	}
	// A trailing wildcard absorbs variable-length tails (mined templates
	// fold tails into their final position).
	if !tp.Matches("EXT3-fs error (device sda5) aborting journal") {
		t.Error("trailing wildcard must absorb extra tokens")
	}
	if tp.Matches("EXT4-fs error (device sda5)") {
		t.Error("constant mismatch must not match")
	}
	if tp.Matches("EXT3-fs error") {
		t.Error("too-short body must not match")
	}
	// Without a trailing wildcard, length is strict.
	fixed := Template{Tokens: []string{"rts", Wildcard, "-", "stopping", "execution"}}
	if !fixed.Matches("rts panic! - stopping execution") {
		t.Error("inner wildcard match failed")
	}
	if fixed.Matches("rts panic! - stopping execution now") {
		t.Error("extra token must not match a fixed-length template")
	}
}

func TestMineVariableLengthTails(t *testing.T) {
	var bodies []string
	for i := 0; i < 50; i++ {
		bodies = append(bodies, fmt.Sprintf("kernel terminated for reason %d with trailing words %s", i, strings.Repeat("x ", i%5)))
	}
	templates := Mine(bodies, Config{Support: 10, MaxTokens: 6})
	// The long tails fold into the final token; the prefix aligns.
	if len(templates) == 0 {
		t.Fatal("no templates")
	}
	if !strings.HasPrefix(templates[0].String(), "kernel terminated for reason") {
		t.Errorf("top template = %q", templates[0])
	}
}

func TestMineEmpty(t *testing.T) {
	if out := Mine(nil, Config{}); len(out) != 0 {
		t.Error("empty input must yield no templates")
	}
}

func TestWildcardFraction(t *testing.T) {
	tp := Template{Tokens: []string{"a", Wildcard, "b", Wildcard}}
	if tp.WildcardFraction() != 0.5 {
		t.Errorf("fraction = %v", tp.WildcardFraction())
	}
	if (Template{}).WildcardFraction() != 0 {
		t.Error("empty template")
	}
}

// TestPurityOnCatalogBodies: mined templates recover the Table 4
// categories from generated message bodies — template clusters align
// with expert categories at >95% purity.
func TestPurityOnCatalogBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var bodies []string
	var labels []string
	for _, c := range catalog.BySystem(logrec.Thunderbird) {
		n := 30 + rng.Intn(40)
		for i := 0; i < n; i++ {
			bodies = append(bodies, c.Gen(rng))
			labels = append(labels, c.Name)
		}
	}
	purity := Purity(bodies, func(i int) string { return labels[i] }, Config{Support: 8})
	if purity < 0.95 {
		t.Errorf("template purity = %.3f, want > 0.95", purity)
	}
}

func TestPurityDegenerate(t *testing.T) {
	if Purity(nil, func(int) string { return "" }, Config{}) != 0 {
		t.Error("empty purity must be 0")
	}
	// All-identical messages with one label: purity 1.
	bodies := []string{"a b c", "a b c", "a b c"}
	if p := Purity(bodies, func(int) string { return "x" }, Config{Support: 2}); p != 1 {
		t.Errorf("purity = %v, want 1", p)
	}
}

// TestEveryBodyMatchesSomeTemplate is the miner's coverage invariant,
// quick-checked over random printf-like corpora: every input body must
// match at least one mined template.
func TestEveryBodyMatchesSomeTemplate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formats := []func() string{
			func() string { return fmt.Sprintf("job %d started on node tn%d", rng.Intn(1e6), rng.Intn(100)) },
			func() string {
				return fmt.Sprintf("error code %d in module %s", rng.Intn(100), []string{"io", "net", "mm"}[rng.Intn(3)])
			},
			func() string { return "link up" },
		}
		var bodies []string
		for i := 0; i < 150; i++ {
			bodies = append(bodies, formats[rng.Intn(len(formats))]())
		}
		templates := Mine(bodies, Config{Support: 5})
		for _, b := range bodies {
			matched := false
			for _, tp := range templates {
				if tp.Matches(b) {
					matched = true
					break
				}
			}
			if !matched {
				t.Logf("unmatched body: %q", b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMineDeterministic(t *testing.T) {
	bodies := []string{"a b", "a c", "a d", "e f", "e g"}
	a := Mine(bodies, Config{Support: 2})
	b := Mine(bodies, Config{Support: 2})
	if len(a) != len(b) {
		t.Fatal("nondeterministic template count")
	}
	for i := range a {
		if a[i].String() != b[i].String() || a[i].Count != b[i].Count {
			t.Fatal("nondeterministic output")
		}
	}
}
