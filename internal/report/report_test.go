package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "Name", "Count")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-longer", 22)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5 (title, header, separator, 2 rows)", len(lines))
	}
}

func TestTableRenderRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("x", 3.5)
	tb.AddRow("y", 2)
	out := tb.String()
	if !strings.Contains(out, "3.500") {
		t.Errorf("float formatting missing: %q", out)
	}
	if !strings.Contains(out, "y") {
		t.Errorf("row missing: %q", out)
	}
	// Columns align: every line has the same prefix width for column A.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("want header, separator, and two rows: %q", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5"},
		{2.5, "2.500"},
		{0.001, "1.00e-03"},
		{-3, "-3"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestComma(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{999, "999"},
		{1000, "1,000"},
		{178081459, "178,081,459"},
		{-1234567, "-1,234,567"},
	}
	for _, tc := range cases {
		if got := Comma(tc.in); got != tc.want {
			t.Errorf("Comma(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(59, 100); got != "59.00" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 3); got != "33.33" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(5, 0); got != "0.00" {
		t.Errorf("Pct zero denom = %q", got)
	}
}

func TestStepPlot(t *testing.T) {
	var b strings.Builder
	StepPlot(&b, "plot", []int{1, 2, 3, 10, 10, 1}, 6, 5)
	out := b.String()
	if !strings.Contains(out, "plot") || !strings.Contains(out, "#") {
		t.Errorf("plot output: %q", out)
	}
	if !strings.Contains(out, "max=10") {
		t.Errorf("max label missing: %q", out)
	}
	var empty strings.Builder
	StepPlot(&empty, "none", []int{0, 0}, 4, 3)
	if !strings.Contains(empty.String(), "(no data)") {
		t.Error("zero series should say no data")
	}
}

func TestResample(t *testing.T) {
	out := resample([]int{2, 4, 6, 8}, 2)
	if len(out) != 2 || out[0] != 3 || out[1] != 7 {
		t.Errorf("resample = %v", out)
	}
	if resample(nil, 4) != nil {
		t.Error("empty resample must be nil")
	}
	// Upsampling repeats values.
	up := resample([]int{5}, 3)
	if len(up) != 3 || up[0] != 5 || up[2] != 5 {
		t.Errorf("upsample = %v", up)
	}
}

func TestLaneScatter(t *testing.T) {
	var b strings.Builder
	pts := []report0ScatterAlias{
		{X: 0, Lane: 0}, {X: 50, Lane: 1}, {X: 100, Lane: 0},
		{X: -5, Lane: 0},  // out of range: ignored
		{X: 50, Lane: 99}, // bad lane: ignored
	}
	LaneScatter(&b, "scatter", []string{"one", "two"}, pts, 0, 100, 20)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lane scatter lines = %d, want title + 2 lanes", len(lines))
	}
	// Count dots inside the plot region only (the lane label "one"
	// contains the letter o).
	region := lines[1][strings.IndexByte(lines[1], '|'):]
	if got := strings.Count(region, "o"); got != 2 {
		t.Errorf("lane one dot count = %d, want 2 (region %q)", got, region)
	}
}

// report0ScatterAlias keeps the test readable.
type report0ScatterAlias = ScatterPoint

func TestLogHistPlot(t *testing.T) {
	var b strings.Builder
	LogHistPlot(&b, "hist", []float64{1, 10, 100}, []int{5, 10, 2}, 20)
	out := b.String()
	if strings.Count(out, "#") == 0 {
		t.Errorf("no bars: %q", out)
	}
	// The max row has the full width of bars.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width: %q", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	CSV(&b, "x", "y", []float64{1, 2}, []float64{3, 4})
	want := "x,y\n1,3\n2,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
