// Package report renders the study's tables and figures as plain text:
// aligned tables in the shape of the paper's Tables 1-6, ASCII dot and
// step plots for the figures, and CSV series for external plotting.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	if v != 0 && (v < 0.01 && v > -0.01) {
		return strconv.FormatFloat(v, 'e', 2, 64)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var sep strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(w, "%-*s", widths[i]+2, h)
		sep.WriteString(strings.Repeat("-", widths[i]))
		sep.WriteString("  ")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.TrimRight(sep.String(), " "))
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i]+2, c)
			}
		}
		fmt.Fprintln(w)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Comma formats an integer with thousands separators, matching the
// paper's number style (e.g. 178,081,459).
func Comma(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
		if len(s) > pre {
			b.WriteByte(',')
		}
	}
	for i := pre; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals.
func Pct(num, denom int) string {
	if denom == 0 {
		return "0.00"
	}
	return fmt.Sprintf("%.2f", 100*float64(num)/float64(denom))
}
