package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// StepPlot renders a count series (e.g. messages per hour, Figure 2(a))
// as a column chart of the requested width and height, downsampling by
// averaging buckets.
func StepPlot(w io.Writer, title string, counts []int, width, height int) {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 12
	}
	cols := resample(counts, width)
	maxV := 0.0
	for _, v := range cols {
		if v > maxV {
			maxV = v
		}
	}
	fmt.Fprintln(w, title)
	if maxV == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	for row := height; row >= 1; row-- {
		threshold := maxV * float64(row) / float64(height)
		var b strings.Builder
		for _, v := range cols {
			if v >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		label := ""
		if row == height {
			label = fmt.Sprintf(" max=%.0f", maxV)
		}
		fmt.Fprintf(w, "|%s|%s\n", b.String(), label)
	}
	fmt.Fprintf(w, "+%s+\n", strings.Repeat("-", len(cols)))
}

// resample averages a series down (or repeats it up) to n columns.
func resample(counts []int, n int) []float64 {
	if len(counts) == 0 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(counts) / n
		hi := (i + 1) * len(counts) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0
		for j := lo; j < hi && j < len(counts); j++ {
			sum += counts[j]
		}
		out[i] = float64(sum) / float64(hi-lo)
	}
	return out
}

// ScatterPoint is one dot of a scatter plot.
type ScatterPoint struct {
	X float64
	// Lane selects the row band (e.g. one per alert category,
	// Figure 3 / Figure 4 style).
	Lane int
}

// LaneScatter renders category-lane event scatter in the style of
// Figures 3 and 4: one text row per lane, dots positioned by X.
func LaneScatter(w io.Writer, title string, lanes []string, points []ScatterPoint, xmin, xmax float64, width int) {
	if width <= 0 {
		width = 72
	}
	fmt.Fprintln(w, title)
	grid := make([][]byte, len(lanes))
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	span := xmax - xmin
	if span <= 0 {
		span = 1
	}
	for _, p := range points {
		if p.Lane < 0 || p.Lane >= len(lanes) || p.X < xmin || p.X > xmax {
			continue
		}
		col := int((p.X - xmin) / span * float64(width-1))
		if col < 0 || col >= width {
			continue
		}
		grid[p.Lane][col] = 'o'
	}
	nameWidth := 0
	for _, l := range lanes {
		if len(l) > nameWidth {
			nameWidth = len(l)
		}
	}
	for i, l := range lanes {
		fmt.Fprintf(w, "%-*s |%s|\n", nameWidth, l, grid[i])
	}
}

// LogHistPlot renders a log-bucketed histogram (Figures 5(b) and 6) as a
// horizontal bar chart with one row per bucket, labeled by the bucket's
// lower edge in seconds.
func LogHistPlot(w io.Writer, title string, centers []float64, counts []int, width int) {
	if width <= 0 {
		width = 60
	}
	maxV := 0
	for _, c := range counts {
		if c > maxV {
			maxV = c
		}
	}
	fmt.Fprintln(w, title)
	if maxV == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	for i, c := range counts {
		bar := int(math.Round(float64(c) / float64(maxV) * float64(width)))
		fmt.Fprintf(w, "%10.3g s |%s %d\n", centers[i], strings.Repeat("#", bar), c)
	}
}

// CSV writes a two-column series for external plotting.
func CSV(w io.Writer, xName, yName string, xs, ys []float64) {
	fmt.Fprintf(w, "%s,%s\n", xName, yName)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g,%g\n", xs[i], ys[i])
	}
}
