// Package anonymize implements consistent log pseudonymization — the
// challenge that kept the study's data private: "Log anonymization is
// also troublesome, because sensitive information like usernames is not
// relegated to distinct fields. Our log data are not available for public
// study primarily because we cannot remove all sensitive information with
// sufficient confidence. We are working to overcome this challenge and to
// release the logs." (Section 3.2.1; the released Thunderbird/Spirit/
// Liberty/BG/L logs were eventually anonymized this way.)
//
// The anonymizer rewrites sensitive tokens (usernames, IP addresses,
// path-embedded identifiers, job owners) with deterministic keyed
// pseudonyms, so that:
//
//   - the same token always maps to the same pseudonym (correlation
//     structure survives — filtering and per-source analyses still work);
//   - different tokens never collide (HMAC over the token);
//   - the mapping cannot be reversed without the key.
//
// Structural fields the analyses depend on (timestamps, node names,
// categories' message shapes) are preserved, and a verification pass
// (package test) shows expert-rule tagging is invariant under
// anonymization.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"regexp"
	"strings"
)

// Anonymizer rewrites sensitive tokens under a secret key.
type Anonymizer struct {
	key []byte
	// KeepNodeNames, when true (the default via New), leaves hostnames
	// and node names intact; the per-source structure of Figure 2(b) is
	// part of what the logs are *for*. Set false for stricter releases.
	KeepNodeNames bool

	userRe *regexp.Regexp
	ipRe   *regexp.Regexp
	pathRe *regexp.Regexp
}

// New builds an anonymizer with the given secret key.
func New(key string) *Anonymizer {
	return &Anonymizer{
		key:           []byte(key),
		KeepNodeNames: true,
		// "user alice", "for user bob from", "(alice)", "user=alice"
		userRe: regexp.MustCompile(`\buser[= ]([A-Za-z][A-Za-z0-9._-]*)`),
		ipRe:   regexp.MustCompile(`\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b`),
		// home-directory style paths embed usernames.
		pathRe: regexp.MustCompile(`/(?:home|users|g/g\d+)/([A-Za-z][A-Za-z0-9._-]*)`),
	}
}

// pseudonym returns a stable keyed pseudonym for a token, in the given
// namespace (so a username and a hostname with equal text get distinct
// pseudonyms).
func (a *Anonymizer) pseudonym(namespace, token string) string {
	mac := hmac.New(sha256.New, a.key)
	mac.Write([]byte(namespace))
	mac.Write([]byte{0})
	mac.Write([]byte(token))
	return hex.EncodeToString(mac.Sum(nil))[:8]
}

// User pseudonymizes a username.
func (a *Anonymizer) User(name string) string {
	return "u" + a.pseudonym("user", name)
}

// IP pseudonymizes a dotted-quad address, preserving the /16 prefix so
// subnet-level structure (cluster-internal vs external) survives.
func (a *Anonymizer) IP(ip string) string {
	parts := strings.Split(ip, ".")
	if len(parts) != 4 {
		return a.pseudonym("ip", ip)
	}
	suffix := a.pseudonym("ip", ip)
	return fmt.Sprintf("%s.%s.%d.%d", parts[0], parts[1],
		int(suffix[0])%256, int(suffix[1])%256)
}

// Line anonymizes one log line. Username rewriting is idempotent: tokens
// that are already pseudonyms are left alone, so re-anonymizing a
// released log (with any key) does not scramble it further. IP rewriting
// is deterministic but not idempotent, since a rewritten address is
// indistinguishable from a real one.
func (a *Anonymizer) Line(line string) string {
	out := a.userRe.ReplaceAllStringFunc(line, func(m string) string {
		sub := a.userRe.FindStringSubmatch(m)
		if looksPseudonymous(sub[1]) {
			return m
		}
		sep := "="
		if strings.Contains(m, " ") {
			sep = " "
		}
		return "user" + sep + a.User(sub[1])
	})
	out = a.pathRe.ReplaceAllStringFunc(out, func(m string) string {
		sub := a.pathRe.FindStringSubmatch(m)
		if looksPseudonymous(sub[1]) {
			return m
		}
		return strings.Replace(m, sub[1], a.User(sub[1]), 1)
	})
	out = a.ipRe.ReplaceAllStringFunc(out, func(m string) string {
		return a.IP(m)
	})
	return out
}

// Lines anonymizes a whole log in place and returns the number of lines
// changed.
func (a *Anonymizer) Lines(lines []string) int {
	changed := 0
	for i, l := range lines {
		if out := a.Line(l); out != l {
			lines[i] = out
			changed++
		}
	}
	return changed
}

// Leak describes a residual sensitive token found by Audit.
type Leak struct {
	LineIndex int
	Token     string
	Kind      string
}

// Audit scans anonymized lines for residual sensitive-looking tokens —
// the "sufficient confidence" check the authors lacked tooling for. It
// reports raw dotted quads that kept their full host part and any
// user-pattern token that is not a pseudonym.
func (a *Anonymizer) Audit(lines []string) []Leak {
	var leaks []Leak
	for i, l := range lines {
		for _, m := range a.userRe.FindAllStringSubmatch(l, -1) {
			if !looksPseudonymous(m[1]) {
				leaks = append(leaks, Leak{LineIndex: i, Token: m[1], Kind: "username"})
			}
		}
	}
	return leaks
}

// looksPseudonymous recognizes this package's pseudonym shape.
func looksPseudonymous(tok string) bool {
	if len(tok) != 9 || tok[0] != 'u' {
		return false
	}
	for i := 1; i < len(tok); i++ {
		c := tok[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
