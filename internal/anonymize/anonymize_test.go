package anonymize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

func TestUserPseudonymStable(t *testing.T) {
	a := New("key1")
	if a.User("alice") != a.User("alice") {
		t.Error("same token must map to the same pseudonym")
	}
	if a.User("alice") == a.User("bob") {
		t.Error("different tokens must not collide")
	}
	b := New("key2")
	if a.User("alice") == b.User("alice") {
		t.Error("different keys must produce different pseudonyms")
	}
	if !looksPseudonymous(a.User("alice")) {
		t.Errorf("pseudonym shape wrong: %q", a.User("alice"))
	}
}

func TestIPPreservesSubnet(t *testing.T) {
	a := New("k")
	got := a.IP("134.253.16.42")
	if !strings.HasPrefix(got, "134.253.") {
		t.Errorf("IP /16 prefix lost: %q", got)
	}
	if got == "134.253.16.42" {
		t.Error("host part not rewritten")
	}
	if a.IP("134.253.16.42") != got {
		t.Error("IP mapping must be stable")
	}
	if a.IP("134.253.16.43") == got {
		t.Error("distinct IPs must map distinctly (with overwhelming probability)")
	}
}

func TestLineRewritesSensitiveTokens(t *testing.T) {
	a := New("k")
	cases := []struct {
		in          string
		mustLose    string
		mustSurvive string
	}{
		{
			"Mar  7 14:30:05 ln1 sshd: session opened for user carol by (uid=0)",
			"carol", "session opened for user",
		},
		{
			"Mar  7 14:30:05 ln1 sshd: Accepted publickey for user dave from 134.253.91.163 port 2222 ssh2",
			"dave", "Accepted publickey",
		},
		{
			"Mar  7 14:30:05 ln1 automount: mounting /home/edith failed",
			"edith", "mounting /home/",
		},
	}
	for _, tc := range cases {
		out := a.Line(tc.in)
		if strings.Contains(out, tc.mustLose) {
			t.Errorf("sensitive token %q survived: %q", tc.mustLose, out)
		}
		if !strings.Contains(out, tc.mustSurvive) {
			t.Errorf("structure %q lost: %q", tc.mustSurvive, out)
		}
	}
}

func TestLineLeavesAlertBodiesIntact(t *testing.T) {
	a := New("k")
	// Alert message shapes carry no usernames; anonymization must not
	// disturb them (tagging invariance).
	bodies := []string{
		"Mar  7 14:30:05 sn373 kernel: cciss: cmd 0000010000a60000 has CHECK CONDITION, sense key = 0x3",
		"Mar  7 14:30:05 ln3 pbs_mom: task_check, cannot tm_reply to 123456.ladmin2 task 1",
		"2005-06-03-15.42.50.363779 R02-M1-N0 RAS KERNEL FATAL data TLB error interrupt",
	}
	for _, line := range bodies {
		if got := a.Line(line); got != line {
			t.Errorf("alert line disturbed:\n in: %q\nout: %q", line, got)
		}
	}
}

func TestLinesCountsChanges(t *testing.T) {
	a := New("k")
	lines := []string{
		"Mar  7 14:30:05 ln1 sshd: session opened for user frank by (uid=0)",
		"Mar  7 14:30:05 ln1 kernel: eth0: link up",
	}
	n := a.Lines(lines)
	if n != 1 {
		t.Errorf("changed = %d, want 1", n)
	}
	if strings.Contains(lines[0], "frank") {
		t.Error("in-place rewrite failed")
	}
}

func TestAuditFindsResidualLeaks(t *testing.T) {
	a := New("k")
	lines := []string{
		"Mar  7 14:30:05 ln1 sshd: session opened for user " + a.User("grace") + " by (uid=0)",
		"Mar  7 14:30:05 ln1 sshd: session opened for user harriet by (uid=0)", // not anonymized
	}
	leaks := a.Audit(lines)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %d, want 1", len(leaks))
	}
	if leaks[0].Token != "harriet" || leaks[0].LineIndex != 1 || leaks[0].Kind != "username" {
		t.Errorf("leak = %+v", leaks[0])
	}
}

func TestAuditCleanAfterAnonymize(t *testing.T) {
	a := New("k")
	lines := []string{
		"Mar  7 14:30:05 ln1 sshd: session opened for user iris by (uid=0)",
		"Mar  7 14:30:05 ln1 sshd: Accepted publickey for user jack from 10.1.2.3 port 99 ssh2",
	}
	a.Lines(lines)
	if leaks := a.Audit(lines); len(leaks) != 0 {
		t.Errorf("audit found %d leaks after anonymization: %+v", len(leaks), leaks)
	}
}

// TestUsernameRewriteIdempotent: re-anonymizing an anonymized line must
// not scramble usernames further (a property quick-checked over random
// user tokens).
func TestUsernameRewriteIdempotent(t *testing.T) {
	a := New("k")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		name := string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('0'+rng.Intn(10)))
		line := "Mar  7 14:30:05 ln1 sshd: session opened for user " + name + " by (uid=0)"
		once := a.Line(line)
		twice := a.Line(once)
		// Compare everything except IP rewrites (there are none here).
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTaggingInvariantUnderAnonymization is the release-readiness
// property: expert-rule tagging must not change when a log is
// pseudonymized, because the rules key on message structure, not
// identities.
func TestTaggingInvariantUnderAnonymization(t *testing.T) {
	a := New("k")
	tg := tag.NewTagger(logrec.Liberty)
	recs := []logrec.Record{
		{Program: "pbs_mom", Body: "task_check, cannot tm_reply to 123.ladmin2 task 1"},
		{Program: "sshd", Body: "session opened for user kate by (uid=0)"},
		{Program: "kernel", Body: "GM: LANai is not running. Allowing port=0 open for debugging"},
	}
	for _, r := range recs {
		_, before := tg.Tag(r)
		anon := r
		anon.Body = a.Line(r.Body)
		_, after := tg.Tag(anon)
		if before != after {
			t.Errorf("tagging changed under anonymization for %q", r.Body)
		}
	}
}
