// Package parallel is the order-preserving chunked worker pool behind
// the pipeline's hot stages (generate, parse, tag). Work is split into
// sequence-stamped chunks of a fixed size, the chunks fan out across a
// bounded set of workers, and results are reassembled in chunk order —
// so the output of a parallel run is byte-identical to a serial run of
// the same chunking, regardless of worker count or scheduling.
//
// The cardinal rule, enforced by construction here and by equivalence
// tests in the consuming packages: chunk boundaries are a function of
// the input size and the configured chunk size only, never of the
// worker count. Worker count decides how fast the chunks drain, not
// what the chunks are, which is what keeps `Workers: 1` and
// `Workers: 32` indistinguishable in output.
//
// Scheduling is additionally autotuned: a multi-worker Do runs its
// first chunk inline as a probe, and when the measured per-chunk work
// says the whole job is too small to pay for goroutine fan-out it
// finishes serially (counted in parallel_autotune_serial_total). The
// decision changes wall-clock only — the chunk boundaries, and thus
// the output, are identical on both sides of the threshold.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"whatsupersay/internal/obs"
)

// Pool telemetry, recorded into the process registry: per-chunk
// latency, instantaneous queue depth, and the busy-vs-available worker
// time from which utilization is derived (utilization =
// parallel_busy_nanos_total / parallel_worker_nanos_total). All updates
// are atomic and per-chunk (never per-item), so the cost is two clock
// reads and a handful of atomic adds per DefaultChunkSize items — see
// DESIGN.md §9 for the measured overhead.
var (
	poolChunks    = obs.Default.Counter("parallel_chunks_total")
	poolChunkTime = obs.Default.Histogram("parallel_chunk_seconds", obs.Seconds)
	poolQueue     = obs.Default.Gauge("parallel_queue_depth")
	poolBusy      = obs.Default.Counter("parallel_busy_nanos_total")
	poolWorker    = obs.Default.Counter("parallel_worker_nanos_total")

	// poolSerialFallbacks counts Do calls that measured the first chunk,
	// judged the remaining work too small to pay for goroutines, and
	// finished serially (see autotuneMinWork). The bench ledger records
	// the per-stage delta so a "speedup ≈ 1.0" row is explainable.
	poolSerialFallbacks = obs.Default.Counter("parallel_autotune_serial_total")
)

// SerialFallbackCounter is the autotune fallback counter's registry
// name, exported for the bench ledger.
const SerialFallbackCounter = "parallel_autotune_serial_total"

// autotuneMinWork is the estimated remaining work below which Do
// finishes serially instead of spawning workers. Parallelism costs a
// few tens of microseconds (goroutine spawns, the WaitGroup barrier,
// cross-core cache traffic); when the whole job is in that range —
// tiny inputs, trivial per-item work — the serial path is faster and,
// by the chunk-boundary invariant, byte-identical. A variable so the
// autotune tests can force either decision deterministically.
var autotuneMinWork = 250 * time.Microsecond

// runChunk times one chunk and folds it into the pool telemetry.
func runChunk(fn func(lo, hi int), lo, hi int) {
	t0 := time.Now()
	fn(lo, hi)
	d := time.Since(t0)
	poolChunks.Inc()
	poolChunkTime.Observe(int64(d))
	poolBusy.Add(int64(d))
	poolQueue.Add(-1)
}

// DefaultChunkSize is the per-chunk work-item count when Options leaves
// it zero. Big enough to amortize scheduling, small enough to load
// balance tail chunks across workers.
const DefaultChunkSize = 4096

// Options tunes a parallel run. The zero value means "all cores,
// default chunk size" and is what the pipeline uses by default.
type Options struct {
	// Workers bounds the number of concurrent workers; 0 means
	// GOMAXPROCS. Workers never affects results, only wall-clock.
	Workers int
	// ChunkSize is the number of work items per chunk; 0 means
	// DefaultChunkSize. ChunkSize affects chunk boundaries and is part
	// of the deterministic contract: same input + same ChunkSize =
	// same chunks.
	ChunkSize int
}

// workers resolves the effective worker count for n work items.
func (o Options) workers(chunks int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > chunks {
		w = chunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkSize resolves the effective chunk size.
func (o Options) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return DefaultChunkSize
}

// Chunks returns the number of chunks n items split into under o.
func (o Options) Chunks(n int) int {
	cs := o.chunkSize()
	return (n + cs - 1) / cs
}

// Do partitions [0, n) into fixed-size chunks and invokes fn(lo, hi)
// for each chunk from a bounded worker pool, returning when every chunk
// is done. fn must be safe to call concurrently for disjoint ranges;
// writing results into a preallocated slice indexed by position is the
// intended usage and is what preserves order.
func Do(n int, opts Options, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	cs := opts.chunkSize()
	chunks := opts.Chunks(n)
	w := opts.workers(chunks)
	poolQueue.Add(float64(chunks))
	t0 := time.Now()
	if w == 1 {
		// Serial fast path: same chunk boundaries, no goroutines.
		for c := 0; c < chunks; c++ {
			lo := c * cs
			hi := min(lo+cs, n)
			runChunk(fn, lo, hi)
		}
		poolWorker.Add(int64(time.Since(t0)))
		return
	}

	// Autotune probe: run chunk 0 inline and time it. If the estimated
	// remaining work (probe × remaining chunks) is below the threshold
	// where goroutines pay for themselves, finish serially. Chunk
	// boundaries are identical either way — the decision changes only
	// scheduling, never results.
	runChunk(fn, 0, min(cs, n))
	probe := time.Since(t0)
	if probe < autotuneMinWork && probe*time.Duration(chunks-1) < autotuneMinWork {
		poolSerialFallbacks.Inc()
		for c := 1; c < chunks; c++ {
			lo := c * cs
			hi := min(lo+cs, n)
			runChunk(fn, lo, hi)
		}
		poolWorker.Add(int64(time.Since(t0)))
		return
	}

	t1 := time.Now()
	var next atomic.Int64
	next.Store(1) // chunk 0 already ran as the probe
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * cs
				hi := min(lo+cs, n)
				runChunk(fn, lo, hi)
			}
		}()
	}
	wg.Wait()
	// Worker-time denominator: one worker during the probe, then w
	// workers for the parallel remainder.
	poolWorker.Add(int64(probe) + int64(time.Since(t1))*int64(w))
}

// FlatMap runs fn over each chunk of [0, n) and concatenates the
// per-chunk result slices in chunk order — the sequence-stamped
// scatter/gather the pipeline stages use when the per-item output count
// is not known up front (tagging, filtering). The concatenated result
// is identical to appending fn's outputs serially.
func FlatMap[T any](n int, opts Options, fn func(lo, hi int) []T) []T {
	if n <= 0 {
		return nil
	}
	chunks := opts.Chunks(n)
	parts := make([][]T, chunks)
	cs := opts.chunkSize()
	Do(n, opts, func(lo, hi int) {
		parts[lo/cs] = fn(lo, hi)
	})
	return Concat(parts)
}

// Tasks runs fn(i) for each task index in [0, n) from a bounded worker
// pool and gathers the per-task results in task order. It is FlatMap
// with one task per chunk: the form used when work items are naturally
// coarse and heterogeneous (one alert category, one background shard).
func Tasks[T any](n int, workers int, fn func(i int) []T) []T {
	parts := make([][]T, n)
	Do(n, Options{Workers: workers, ChunkSize: 1}, func(lo, hi int) {
		parts[lo] = fn(lo)
	})
	return Concat(parts)
}

// Concat joins slices into one, preallocated to the exact total.
func Concat[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
