package parallel

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoversAllIndices: every index in [0, n) is visited exactly once
// for a spread of sizes, chunk sizes, and worker counts.
func TestDoCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4096, 10000} {
		for _, cs := range []int{1, 3, 64, 4096, 8192} {
			for _, w := range []int{0, 1, 2, 8} {
				visits := make([]int32, n)
				Do(n, Options{Workers: w, ChunkSize: cs}, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d cs=%d w=%d: index %d visited %d times", n, cs, w, i, v)
					}
				}
			}
		}
	}
}

// TestFlatMapPreservesOrder: the concatenated output equals the serial
// map regardless of worker count and chunk size.
func TestFlatMapPreservesOrder(t *testing.T) {
	n := 5000
	want := make([]string, 0, n*2)
	for i := 0; i < n; i++ {
		want = append(want, fmt.Sprint(i))
		if i%3 == 0 { // variable-length chunks exercise reassembly
			want = append(want, fmt.Sprint(-i))
		}
	}
	mapChunk := func(lo, hi int) []string {
		var out []string
		for i := lo; i < hi; i++ {
			out = append(out, fmt.Sprint(i))
			if i%3 == 0 {
				out = append(out, fmt.Sprint(-i))
			}
		}
		return out
	}
	for _, cs := range []int{1, 7, 100, 4096, 9999} {
		for _, w := range []int{1, 2, 4, 16} {
			got := FlatMap(n, Options{Workers: w, ChunkSize: cs}, mapChunk)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cs=%d w=%d: FlatMap diverged from serial order", cs, w)
			}
		}
	}
}

// TestWorkerCountInvariance: output depends on ChunkSize, never Workers.
func TestWorkerCountInvariance(t *testing.T) {
	n := 12345
	fn := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i*i)
		}
		return out
	}
	base := FlatMap(n, Options{Workers: 1, ChunkSize: 512}, fn)
	for _, w := range []int{2, 3, 8, 32} {
		if got := FlatMap(n, Options{Workers: w, ChunkSize: 512}, fn); !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d changed FlatMap output", w)
		}
	}
}

// TestTasksOrder: per-task results are gathered in task order.
func TestTasksOrder(t *testing.T) {
	got := Tasks(10, 4, func(i int) []int {
		out := make([]int, i) // task i yields i copies of i
		for j := range out {
			out[j] = i
		}
		return out
	})
	want := Tasks(10, 1, func(i int) []int {
		out := make([]int, i)
		for j := range out {
			out[j] = i
		}
		return out
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tasks order diverged: %v vs %v", got, want)
	}
}

// TestZeroAndTiny: degenerate sizes don't hang or panic.
func TestZeroAndTiny(t *testing.T) {
	if got := FlatMap(0, Options{}, func(lo, hi int) []int { return []int{1} }); got != nil {
		t.Errorf("FlatMap(0) = %v, want nil", got)
	}
	if got := FlatMap(1, Options{Workers: 8}, func(lo, hi int) []int { return []int{lo} }); len(got) != 1 || got[0] != 0 {
		t.Errorf("FlatMap(1) = %v", got)
	}
	Do(0, Options{}, func(lo, hi int) { t.Error("Do(0) must not call fn") })
}

func BenchmarkFlatMap(b *testing.B) {
	n := 1 << 16
	for i := 0; i < b.N; i++ {
		FlatMap(n, Options{}, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for j := lo; j < hi; j++ {
				out = append(out, j)
			}
			return out
		})
	}
}

// fallbackDelta runs fn and returns how many autotune serial fallbacks
// it triggered.
func fallbackDelta(fn func()) int64 {
	before := poolSerialFallbacks.Value()
	fn()
	return poolSerialFallbacks.Value() - before
}

// TestAutotuneFallsBackOnTrivialWork: with the threshold forced high,
// a multi-worker Do of trivial chunks finishes serially (counted), and
// still visits every index exactly once.
func TestAutotuneFallsBackOnTrivialWork(t *testing.T) {
	old := autotuneMinWork
	autotuneMinWork = 1 << 62 // force the serial decision
	defer func() { autotuneMinWork = old }()

	n := 10000
	visits := make([]int32, n)
	d := fallbackDelta(func() {
		Do(n, Options{Workers: 8, ChunkSize: 64}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
	})
	if d != 1 {
		t.Fatalf("serial fallbacks = %d, want 1", d)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times under fallback", i, v)
		}
	}
}

// TestAutotuneStaysParallelOnHeavyWork: with the threshold forced to
// zero, the probe always judges the work worth fanning out and the
// fallback counter stays put.
func TestAutotuneStaysParallelOnHeavyWork(t *testing.T) {
	old := autotuneMinWork
	autotuneMinWork = 0
	defer func() { autotuneMinWork = old }()

	var total atomic.Int64
	d := fallbackDelta(func() {
		Do(10000, Options{Workers: 4, ChunkSize: 100}, func(lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if d != 0 {
		t.Fatalf("serial fallbacks = %d, want 0", d)
	}
	if total.Load() != 10000 {
		t.Fatalf("visited %d items, want 10000", total.Load())
	}
}

// TestAutotuneOutputIdentical: the fallback decision never changes
// FlatMap output — both threshold extremes reproduce the serial result.
func TestAutotuneOutputIdentical(t *testing.T) {
	fn := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i*3)
		}
		return out
	}
	want := FlatMap(7777, Options{Workers: 1, ChunkSize: 256}, fn)
	old := autotuneMinWork
	defer func() { autotuneMinWork = old }()
	for _, threshold := range []int64{0, 1 << 62} {
		autotuneMinWork = time.Duration(threshold)
		if got := FlatMap(7777, Options{Workers: 8, ChunkSize: 256}, fn); !reflect.DeepEqual(got, want) {
			t.Fatalf("threshold=%d changed FlatMap output", threshold)
		}
	}
}
