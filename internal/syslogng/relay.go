package syslogng

import (
	"math/rand"
	"sort"

	"whatsupersay/internal/logrec"
)

// Relay models the syslog-ng collection path of Thunderbird, Spirit, and
// Liberty: each node's syslogd sends messages over UDP to a logging server
// (tbird-admin1, sadmin2, ladmin2 respectively), which files them into a
// per-source directory structure. UDP gives no delivery guarantee, so a
// fraction of messages is lost, and loss worsens under contention —
// modeled here as a loss probability that scales with the instantaneous
// burst length.
type Relay struct {
	// Server is the logging server's node name.
	Server string
	// BaseLossProb is the per-message drop probability under light load.
	BaseLossProb float64
	// ContentionLossProb is the additional drop probability applied to
	// messages inside heavy bursts (more than ContentionBurst messages
	// with the same timestamp second).
	ContentionLossProb float64
	// ContentionBurst is the same-second message count past which the
	// contention penalty applies. Zero disables the contention model.
	ContentionBurst int
}

// DefaultRelay returns the loss model used for the three syslog systems in
// the study's generator: light ambient loss plus meaningful loss inside
// storms.
func DefaultRelay(server string) Relay {
	return Relay{
		Server:             server,
		BaseLossProb:       0.001,
		ContentionLossProb: 0.01,
		ContentionBurst:    200,
	}
}

// Deliver applies the loss model to a time-sorted record stream and
// returns the messages that reach the logging server, still sorted. The
// dropped count is returned for ground-truth accounting.
func (rl Relay) Deliver(rng *rand.Rand, recs []logrec.Record) (kept []logrec.Record, dropped int) {
	kept = make([]logrec.Record, 0, len(recs))
	// Count same-second occupancy to detect contention.
	perSecond := make(map[int64]int, len(recs)/4+1)
	if rl.ContentionBurst > 0 {
		for _, r := range recs {
			perSecond[r.Time.Unix()]++
		}
	}
	for _, r := range recs {
		p := rl.BaseLossProb
		if rl.ContentionBurst > 0 && perSecond[r.Time.Unix()] > rl.ContentionBurst {
			p += rl.ContentionLossProb
		}
		if p > 0 && rng.Float64() < p {
			dropped++
			continue
		}
		kept = append(kept, r)
	}
	return kept, dropped
}

// FileBySource groups rendered lines into the per-source file layout the
// logging servers produced (one slice of lines per source, in time order),
// which is the directory structure the authors collected from.
func FileBySource(recs []logrec.Record, withPriority bool) map[string][]string {
	out := make(map[string][]string)
	for _, r := range recs {
		out[r.Source] = append(out[r.Source], Render(r, withPriority))
	}
	return out
}

// Sources returns the source names of a per-source file map in descending
// message-count order (ties broken by name), the ordering of Figure 2(b).
func Sources(files map[string][]string) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(files[names[i]]) != len(files[names[j]]) {
			return len(files[names[i]]) > len(files[names[j]])
		}
		return names[i] < names[j]
	})
	return names
}
