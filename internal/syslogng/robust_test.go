package syslogng

import (
	"testing"
	"testing/quick"

	"whatsupersay/internal/logrec"
)

// TestParseNeverPanicsProperty: the parser must survive arbitrary bytes
// (Section 3.2.1's corruption means anything can appear on the wire) and
// always preserve the raw line for later study.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		line := string(junk)
		rec, _ := Parse(line, 2005, logrec.Liberty)
		return rec.Raw == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParsePrefixRobustness: truncations of a valid line parse or are
// flagged corrupted, never mangled silently into a different host.
func TestParsePrefixRobustness(t *testing.T) {
	full := "Mar  7 14:30:05 ln42 pbs_mom: task_check, cannot tm_reply to 1.l task 1"
	for cut := 0; cut <= len(full); cut++ {
		line := full[:cut]
		rec, perr := Parse(line, 2005, logrec.Liberty)
		if perr != nil {
			if !rec.Corrupted {
				t.Fatalf("cut=%d: parse error without corruption flag", cut)
			}
			continue
		}
		if rec.Source != "" && rec.Source != "ln42" {
			t.Fatalf("cut=%d: source misparsed as %q", cut, rec.Source)
		}
	}
}
