// Package syslogng renders and parses the BSD-syslog text dialect used by
// the three commodity clusters in the study (Thunderbird, Spirit, Liberty)
// and by Red Storm's Linux-node logging path, and models the syslog-ng
// relay those systems used for collection: per-source files, and UDP
// transport that loses messages under contention (the paper notes that "as
// is standard syslog practice, the UDP protocol is used for transmission,
// resulting in some messages being lost").
package syslogng

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"whatsupersay/internal/logrec"
)

// TimeLayout is the classic BSD syslog timestamp: no year, one-second
// granularity, space-padded day of month.
const TimeLayout = time.Stamp // "Jan _2 15:04:05"

// Render produces the wire form of a record:
//
//	Jan  2 15:04:05 host program: body
//
// or, when the record carries a syslog severity and WithPriority is set
// (Red Storm's configuration stored severities; the others did not):
//
//	<PRI>Jan  2 15:04:05 host program: body
//
// Program is omitted (along with its colon) when empty, which matches
// messages emitted without a tag.
func Render(r logrec.Record, withPriority bool) string {
	return string(AppendLine(nil, r, withPriority))
}

// AppendLine is Render in append form: it appends the wire line to dst
// and returns the extended slice, allocating nothing beyond dst's own
// growth. The generator's render loop reuses one scratch buffer per
// chunk through it.
func AppendLine(dst []byte, r logrec.Record, withPriority bool) []byte {
	if withPriority {
		if pri, ok := r.Severity.SyslogPriority(); ok {
			// Facility "user" (1) unless a known facility is set; the
			// study only needs severity, which is pri mod 8.
			fac := 1
			switch r.Facility {
			case "kern":
				fac = 0
			case "daemon":
				fac = 3
			case "local0":
				fac = 16
			}
			dst = append(dst, '<')
			dst = strconv.AppendInt(dst, int64(fac*8+pri), 10)
			dst = append(dst, '>')
		}
	}
	dst = r.Time.AppendFormat(dst, TimeLayout)
	dst = append(dst, ' ')
	dst = append(dst, r.Source...)
	dst = append(dst, ' ')
	if r.Program != "" {
		dst = append(dst, r.Program...)
		dst = append(dst, ": "...)
	}
	return append(dst, r.Body...)
}

// ParseError describes a line that could not be parsed as syslog.
type ParseError struct {
	Line   string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("syslogng: parse %q: %s", truncate(e.Line, 60), e.Reason)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Parse parses one syslog line into a record. year supplies the missing
// year of the BSD timestamp; sys stamps the record's system. Lines with a
// leading <PRI> have facility and severity decoded. The parser is
// tolerant in the way the study requires: a malformed line is returned as
// a Corrupted record with the raw line preserved, and a non-nil
// *ParseError describing the damage — it never discards data, because
// corrupted messages are themselves an object of study (Section 3.2.1).
func Parse(line string, year int, sys logrec.System) (logrec.Record, *ParseError) {
	rec := logrec.Record{System: sys, Raw: line}
	rest := line

	// Optional <PRI>.
	if strings.HasPrefix(rest, "<") {
		if end := strings.IndexByte(rest, '>'); end > 0 && end <= 4 {
			if pri, err := strconv.Atoi(rest[1:end]); err == nil && pri >= 0 && pri <= 191 {
				rec.Severity = logrec.SevEmerg + logrec.Severity(pri%8)
				rec.Facility = facilityName(pri / 8)
				rest = rest[end+1:]
			}
		}
	}

	// Timestamp: fixed 15-byte BSD form.
	if len(rest) < len("Jan _2 15:04:05")+1 {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "line shorter than timestamp"}
	}
	ts, err := time.Parse(TimeLayout, rest[:15])
	if err != nil {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "bad timestamp: " + err.Error()}
	}
	rec.Time = time.Date(year, ts.Month(), ts.Day(), ts.Hour(), ts.Minute(), ts.Second(), 0, time.UTC)
	rest = rest[15:]
	if !strings.HasPrefix(rest, " ") {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "missing separator after timestamp"}
	}
	rest = rest[1:]

	// Host.
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "missing host field"}
	}
	rec.Source = rest[:sp]
	rest = rest[sp+1:]

	// Optional "program:" or "program[pid]:" tag. A tag must be a single
	// token ending in ':' before any space.
	if colon := strings.Index(rest, ": "); colon > 0 && !strings.ContainsAny(rest[:colon], " \t") {
		rec.Program = stripPID(rest[:colon])
		rec.Body = rest[colon+2:]
	} else if strings.HasSuffix(rest, ":") && !strings.ContainsAny(rest[:len(rest)-1], " \t") {
		rec.Program = stripPID(rest[:len(rest)-1])
	} else {
		rec.Body = rest
	}
	return rec, nil
}

// stripPID removes a trailing [pid] from a program tag.
func stripPID(tag string) string {
	if i := strings.IndexByte(tag, '['); i > 0 && strings.HasSuffix(tag, "]") {
		return tag[:i]
	}
	return tag
}

func facilityName(f int) string {
	switch f {
	case 0:
		return "kern"
	case 1:
		return "user"
	case 3:
		return "daemon"
	case 16:
		return "local0"
	default:
		return fmt.Sprintf("facility%d", f)
	}
}

// ParseStream parses many lines, preserving order and assigning sequence
// numbers. Unparseable lines come back as corrupted records; the count of
// parse errors is returned alongside.
func ParseStream(lines []string, year int, sys logrec.System) (recs []logrec.Record, parseErrs int) {
	recs = make([]logrec.Record, 0, len(lines))
	for i, ln := range lines {
		rec, perr := Parse(ln, year, sys)
		rec.Seq = uint64(i)
		if perr != nil {
			parseErrs++
		}
		recs = append(recs, rec)
	}
	return recs, parseErrs
}
