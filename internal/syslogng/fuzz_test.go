package syslogng

import (
	"testing"

	"whatsupersay/internal/logrec"
)

// FuzzParse: Section 3.2.1 means anything can appear on the wire. The
// parser must never panic, must preserve the raw line verbatim (dropped
// data cannot be studied), and must flag every parse failure Corrupted.
func FuzzParse(f *testing.F) {
	f.Add("Mar  7 14:30:05 ln42 kernel: GM: LANai is not running")
	f.Add("<6>Mar  7 14:30:05 ln42 pbs_mom[123]: task_check")
	f.Add("Mar  7 14:30:05")
	f.Add("")
	f.Add("\x00\x01garbage\x7f")
	f.Add("<999>Mar  7 14:30:05 h x")
	f.Fuzz(func(t *testing.T, line string) {
		rec, perr := Parse(line, 2005, logrec.Liberty)
		if rec.Raw != line {
			t.Fatalf("raw not preserved: %q != %q", rec.Raw, line)
		}
		if (perr != nil) != rec.Corrupted {
			t.Fatalf("parse error %v but Corrupted=%v", perr, rec.Corrupted)
		}
	})
}
