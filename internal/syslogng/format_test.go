package syslogng

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/logrec"
)

func mkRecord(body string) logrec.Record {
	return logrec.Record{
		Time:    time.Date(2005, time.March, 7, 14, 30, 5, 0, time.UTC),
		System:  logrec.Liberty,
		Source:  "ln42",
		Program: "pbs_mom",
		Body:    body,
	}
}

func TestRenderBasic(t *testing.T) {
	got := Render(mkRecord("task_check, cannot tm_reply to 12345.ladmin2 task 1"), false)
	want := "Mar  7 14:30:05 ln42 pbs_mom: task_check, cannot tm_reply to 12345.ladmin2 task 1"
	if got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
}

func TestRenderNoProgram(t *testing.T) {
	r := mkRecord("standalone body")
	r.Program = ""
	got := Render(r, false)
	if strings.Contains(got, ": standalone") {
		t.Errorf("no-program render should not contain tag colon: %q", got)
	}
	if !strings.HasSuffix(got, " ln42 standalone body") {
		t.Errorf("Render = %q", got)
	}
}

func TestRenderWithPriority(t *testing.T) {
	r := mkRecord("x")
	r.Severity = logrec.SevCrit
	r.Facility = "kern"
	got := Render(r, true)
	if !strings.HasPrefix(got, "<2>") {
		t.Errorf("CRIT on kern should render <2>: %q", got)
	}
	// Without a syslog severity, no PRI even when requested.
	r.Severity = logrec.SeverityUnknown
	if got := Render(r, true); strings.HasPrefix(got, "<") {
		t.Errorf("no severity must render no PRI: %q", got)
	}
}

func TestParseBasic(t *testing.T) {
	line := "Mar  7 14:30:05 ln42 pbs_mom: task_check, cannot tm_reply to 1.l task 1"
	rec, perr := Parse(line, 2005, logrec.Liberty)
	if perr != nil {
		t.Fatalf("Parse: %v", perr)
	}
	if rec.Source != "ln42" || rec.Program != "pbs_mom" {
		t.Errorf("source/program = %q/%q", rec.Source, rec.Program)
	}
	if rec.Body != "task_check, cannot tm_reply to 1.l task 1" {
		t.Errorf("body = %q", rec.Body)
	}
	want := time.Date(2005, time.March, 7, 14, 30, 5, 0, time.UTC)
	if !rec.Time.Equal(want) {
		t.Errorf("time = %v, want %v", rec.Time, want)
	}
	if rec.Corrupted {
		t.Error("clean line marked corrupted")
	}
}

func TestParsePID(t *testing.T) {
	line := "Mar  7 14:30:05 sn373 gm_mapper[736]: assertion failed. /x/mi.c:541 (r == GM_SUCCESS)"
	rec, perr := Parse(line, 2005, logrec.Spirit)
	if perr != nil {
		t.Fatalf("Parse: %v", perr)
	}
	if rec.Program != "gm_mapper" {
		t.Errorf("program = %q, want gm_mapper (pid stripped)", rec.Program)
	}
}

func TestParsePriority(t *testing.T) {
	line := "<2>Mar  7 14:30:05 ddn1 DMT_DINT Failing Disk 2A"
	rec, perr := Parse(line, 2006, logrec.RedStorm)
	if perr != nil {
		t.Fatalf("Parse: %v", perr)
	}
	if rec.Severity != logrec.SevCrit {
		t.Errorf("severity = %v, want CRIT", rec.Severity)
	}
	if rec.Facility != "kern" {
		t.Errorf("facility = %q, want kern", rec.Facility)
	}
	if rec.Body != "DMT_DINT Failing Disk 2A" {
		t.Errorf("body = %q", rec.Body)
	}
}

func TestParseBodyWithColonSpaceInsideText(t *testing.T) {
	// "Server Administrator: ..." has a space before the colon token's
	// end, so it must NOT be treated as a program tag.
	line := "Mar  7 14:30:05 tn7 Server Administrator: Instrumentation Service EventID: 1404 x"
	rec, perr := Parse(line, 2005, logrec.Thunderbird)
	if perr != nil {
		t.Fatalf("Parse: %v", perr)
	}
	if rec.Program != "" {
		t.Errorf("program = %q, want empty", rec.Program)
	}
	if !strings.HasPrefix(rec.Body, "Server Administrator:") {
		t.Errorf("body = %q", rec.Body)
	}
}

func TestParseCorruptLines(t *testing.T) {
	cases := []string{
		"",
		"short",
		"XXX 99 99:99:99 host prog: body",
		"Mar  7 14:30:05",      // timestamp only
		"Mar  7 14:30:05 ",     // no host
		"Mar  7 14:30:05x h b", // missing separator
	}
	for _, line := range cases {
		rec, perr := Parse(line, 2005, logrec.Liberty)
		if perr == nil {
			t.Errorf("Parse(%q) expected error", line)
			continue
		}
		if !rec.Corrupted {
			t.Errorf("Parse(%q) should mark record corrupted", line)
		}
		if rec.Raw != line {
			t.Errorf("Parse(%q) must preserve raw text, got %q", line, rec.Raw)
		}
	}
}

func TestRenderParseRoundTripProperty(t *testing.T) {
	progs := []string{"kernel", "pbs_mom", "sshd", "crond", ""}
	f := func(seed int64, bodyWords uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		words := int(bodyWords%10) + 1
		parts := make([]string, words)
		for i := range parts {
			parts[i] = string(rune('a' + rng.Intn(26)))
		}
		rec := logrec.Record{
			Time:    time.Date(2005, time.Month(1+rng.Intn(12)), 1+rng.Intn(28), rng.Intn(24), rng.Intn(60), rng.Intn(60), 0, time.UTC),
			System:  logrec.Liberty,
			Source:  "ln" + string(rune('1'+rng.Intn(9))),
			Program: progs[rng.Intn(len(progs))],
			Body:    strings.Join(parts, " "),
		}
		line := Render(rec, false)
		got, perr := Parse(line, 2005, logrec.Liberty)
		if perr != nil {
			return false
		}
		return got.Time.Equal(rec.Time) && got.Source == rec.Source &&
			got.Program == rec.Program && got.Body == rec.Body
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderParseRoundTripWithPriority(t *testing.T) {
	for _, sev := range logrec.SyslogSeverities() {
		rec := mkRecord("body text here")
		rec.Severity = sev
		rec.Facility = "daemon"
		line := Render(rec, true)
		got, perr := Parse(line, 2005, logrec.Liberty)
		if perr != nil {
			t.Fatalf("Parse(%q): %v", line, perr)
		}
		if got.Severity != sev {
			t.Errorf("severity round trip %v -> %v", sev, got.Severity)
		}
		if got.Facility != "daemon" {
			t.Errorf("facility round trip got %q", got.Facility)
		}
	}
}

func TestParseStream(t *testing.T) {
	lines := []string{
		"Mar  7 14:30:05 ln1 kernel: a",
		"garbage",
		"Mar  7 14:30:06 ln2 kernel: b",
	}
	recs, errs := ParseStream(lines, 2005, logrec.Liberty)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (corrupt preserved)", len(recs))
	}
	if errs != 1 {
		t.Errorf("parse errors = %d, want 1", errs)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Errorf("record %d Seq = %d", i, r.Seq)
		}
	}
}
