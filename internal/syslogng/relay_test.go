package syslogng

import (
	"math/rand"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

func relayStream(n int, sameSecond bool) []logrec.Record {
	base := time.Date(2005, time.March, 7, 12, 0, 0, 0, time.UTC)
	recs := make([]logrec.Record, n)
	for i := range recs {
		ts := base
		if !sameSecond {
			ts = base.Add(time.Duration(i) * time.Second)
		}
		recs[i] = logrec.Record{Time: ts, Seq: uint64(i), Source: "ln1", Body: "x"}
	}
	return recs
}

func TestRelayNoLoss(t *testing.T) {
	rl := Relay{Server: "ladmin2"} // zero probabilities
	kept, dropped := rl.Deliver(rand.New(rand.NewSource(1)), relayStream(1000, false))
	if dropped != 0 || len(kept) != 1000 {
		t.Errorf("lossless relay dropped %d", dropped)
	}
}

func TestRelayBaseLoss(t *testing.T) {
	rl := Relay{Server: "ladmin2", BaseLossProb: 0.1}
	kept, dropped := rl.Deliver(rand.New(rand.NewSource(2)), relayStream(20000, false))
	if dropped == 0 {
		t.Fatal("expected some drops at 10% loss")
	}
	frac := float64(dropped) / 20000
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("drop rate %.3f, want ~0.10", frac)
	}
	if len(kept)+dropped != 20000 {
		t.Error("kept+dropped must equal input")
	}
}

func TestRelayContentionLoss(t *testing.T) {
	rl := Relay{Server: "ladmin2", ContentionLossProb: 0.5, ContentionBurst: 100}
	// 5000 messages in the same second: contention penalty applies.
	_, droppedBurst := rl.Deliver(rand.New(rand.NewSource(3)), relayStream(5000, true))
	// 5000 messages spread over distinct seconds: no contention.
	_, droppedSpread := rl.Deliver(rand.New(rand.NewSource(3)), relayStream(5000, false))
	if droppedSpread != 0 {
		t.Errorf("spread stream dropped %d without base loss", droppedSpread)
	}
	if droppedBurst < 2000 {
		t.Errorf("burst stream dropped %d, want ~2500 under contention", droppedBurst)
	}
}

func TestRelayDeterminism(t *testing.T) {
	rl := DefaultRelay("sadmin2")
	run := func() int {
		_, dropped := rl.Deliver(rand.New(rand.NewSource(9)), relayStream(10000, false))
		return dropped
	}
	if run() != run() {
		t.Error("same seed must produce identical drops")
	}
}

func TestFileBySourceAndRanking(t *testing.T) {
	base := time.Date(2005, time.March, 7, 12, 0, 0, 0, time.UTC)
	recs := []logrec.Record{
		{Time: base, Source: "ladmin2", Body: "a"},
		{Time: base, Source: "ln1", Body: "b"},
		{Time: base, Source: "ladmin2", Body: "c"},
		{Time: base, Source: "ln2", Body: "d"},
		{Time: base, Source: "ladmin2", Body: "e"},
	}
	files := FileBySource(recs, false)
	if len(files) != 3 {
		t.Fatalf("got %d sources, want 3", len(files))
	}
	if len(files["ladmin2"]) != 3 {
		t.Errorf("ladmin2 has %d lines, want 3", len(files["ladmin2"]))
	}
	ranked := Sources(files)
	if ranked[0] != "ladmin2" {
		t.Errorf("top source = %q, want ladmin2", ranked[0])
	}
	// Ties break by name.
	if ranked[1] != "ln1" || ranked[2] != "ln2" {
		t.Errorf("tie order = %v", ranked[1:])
	}
}
