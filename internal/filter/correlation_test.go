package filter

import (
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/tag"
)

// buildCorrelatedStream: PBS_CHK incidents each followed by a PBS_BFD
// burst two minutes later (the Figure 4 pairing), plus independent
// GM_MAP incidents.
func buildCorrelatedStream(t *testing.T) []tag.Alert {
	chk := cat(t, "PBS_CHK")
	bfd := cat(t, "PBS_BFD")
	gm := cat(t, "GM_MAP")
	var in []tag.Alert
	seq := uint64(0)
	add := func(c *catCategory, offsetSec float64) {
		in = append(in, mk(c, "n1", offsetSec, seq))
		seq++
	}
	for i := 0; i < 30; i++ {
		base := float64(i) * 7200 // one incident pair every 2 hours
		add(chk, base)
		add(chk, base+2)
		add(bfd, base+120)
		add(bfd, base+123)
	}
	for i := 0; i < 10; i++ {
		add(gm, float64(i)*9000+3000)
	}
	return in
}

// catCategory aliases the catalog type used by the test helpers.
type catCategory = catalog.Category

func TestCorrelationLearnGroupsPairs(t *testing.T) {
	in := buildCorrelatedStream(t)
	f := CorrelationAware{T: 5 * time.Second}
	groups := f.Learn(in)
	chkID, ok1 := groups.GroupOf("PBS_CHK")
	bfdID, ok2 := groups.GroupOf("PBS_BFD")
	gmID, ok3 := groups.GroupOf("GM_MAP")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("categories missing from learned groups")
	}
	if chkID != bfdID {
		t.Error("PBS_CHK and PBS_BFD must merge (Figure 4's correlated siblings)")
	}
	if gmID == chkID {
		t.Error("GM_MAP must stay independent")
	}
	gs := groups.Groups()
	if len(gs) != 1 || len(gs[0]) != 2 {
		t.Errorf("groups = %v", gs)
	}
}

func TestCorrelationFilterCollapsesPairs(t *testing.T) {
	in := buildCorrelatedStream(t)
	plain := Simultaneous{T: 5 * time.Second}.Filter(in)
	aware := CorrelationAware{T: 5 * time.Second}.Filter(in)
	// Plain: 30 CHK + 30 BFD + 10 GM = 70 survivors. Aware: the BFD
	// repeats of each incident collapse into the CHK alert: 30 + 10.
	if len(plain) != 70 {
		t.Fatalf("plain survivors = %d, want 70", len(plain))
	}
	if len(aware) != 40 {
		t.Fatalf("aware survivors = %d, want 40", len(aware))
	}
	// Every surviving pair alert is the *first* report (the CHK).
	for _, a := range aware {
		if a.Category.Name == "PBS_BFD" {
			t.Error("the correlated follower survived; the first report should win")
			break
		}
	}
}

func TestCorrelationFilterIndependentUnaffected(t *testing.T) {
	gm := cat(t, "GM_MAP")
	par := cat(t, "GM_PAR")
	// Two categories never co-occurring: correlation-aware must behave
	// exactly like the plain filter.
	var in []tag.Alert
	for i := 0; i < 20; i++ {
		in = append(in, mk(gm, "a", float64(i)*4000, uint64(2*i)))
		in = append(in, mk(par, "b", float64(i)*4000+1800, uint64(2*i+1)))
	}
	plain := Simultaneous{T: 5 * time.Second}.Filter(in)
	aware := CorrelationAware{T: 5 * time.Second}.Filter(in)
	if len(plain) != len(aware) {
		t.Errorf("independent categories affected: %d vs %d", len(plain), len(aware))
	}
}

func TestCorrelationFilterUnseenCategory(t *testing.T) {
	in := buildCorrelatedStream(t)
	f := CorrelationAware{T: 5 * time.Second}
	groups := f.Learn(in)
	// Filter a stream containing a category absent from training.
	con := cat(t, "PBS_CON")
	live := append([]tag.Alert{}, in...)
	live = append(live, mk(con, "z", 999999, 9999))
	out := f.FilterWith(groups, live)
	found := false
	for _, a := range out {
		if a.Category.Name == "PBS_CON" {
			found = true
		}
	}
	if !found {
		t.Error("unseen category must pass through as its own group")
	}
}

func TestCorrelationAwareName(t *testing.T) {
	if (CorrelationAware{}).Name() != "correlation-aware" {
		t.Error("name")
	}
}
