package filter

import "whatsupersay/internal/tag"

// IncidentFn maps an alert to its ground-truth incident (failure)
// identifier. The synthetic generator supplies this; on real logs it
// would come from a remedy database. ok is false for alerts with no known
// incident (e.g. corrupted attribution).
type IncidentFn func(a tag.Alert) (id int64, ok bool)

// Accuracy evaluates a filtering run against ground truth, quantifying
// the trade-off of Section 3.3.2: a good filter keeps exactly one alert
// per failure; removing *all* alerts of a failure is a missed failure (a
// "true positive removed"), while keeping extra alerts of an
// already-reported failure leaves false positives in place.
type Accuracy struct {
	// Incidents is the number of distinct ground-truth failures with at
	// least one alert in the unfiltered input.
	Incidents int
	// Detected is the number of incidents with at least one surviving
	// alert after filtering.
	Detected int
	// MissedIncidents counts incidents whose every alert was removed
	// (the paper's "true positive was removed"; it observed at most one
	// per machine for the simultaneous filter).
	MissedIncidents int
	// RedundantKept counts surviving alerts beyond the first for each
	// incident — redundancy the filter failed to remove ("false
	// positives" in the paper's fault-detection framing).
	RedundantKept int
	// Survivors is the filtered alert count.
	Survivors int
}

// AlertsPerFailure returns the post-filter ratio the paper wants "nearly
// one": surviving alerts per detected incident.
func (a Accuracy) AlertsPerFailure() float64 {
	if a.Detected == 0 {
		return 0
	}
	return float64(a.Survivors) / float64(a.Detected)
}

// Evaluate scores the output of a filter against ground truth. in is the
// unfiltered alert stream; out is the filter's survivors. Alerts without
// a known incident are ignored for incident accounting but still counted
// as survivors.
func Evaluate(in, out []tag.Alert, incident IncidentFn) Accuracy {
	acc := Accuracy{Survivors: len(out)}
	inIncidents := make(map[int64]bool)
	for _, a := range in {
		if id, ok := incident(a); ok {
			inIncidents[id] = true
		}
	}
	acc.Incidents = len(inIncidents)

	outCounts := make(map[int64]int)
	for _, a := range out {
		if id, ok := incident(a); ok {
			outCounts[id]++
		}
	}
	acc.Detected = len(outCounts)
	for id := range inIncidents {
		if outCounts[id] == 0 {
			acc.MissedIncidents++
		}
	}
	for _, n := range outCounts {
		if n > 1 {
			acc.RedundantKept += n - 1
		}
	}
	return acc
}
