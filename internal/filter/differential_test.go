package filter

import (
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/tag"
)

// This file holds the differential tests for the online filter path: on
// any well-formed (non-zero-time), time-sorted stream, Stream.Offer must
// hand out exactly the verdicts batch Simultaneous.Filter gives on the
// same slice, and Reordering must do the same even when the stream is
// disordered within its slack. Zero-time alerts are deliberately outside
// the domain: the batch algorithm folds a zero time into its `last`
// watermark while the online filters treat it out-of-band (see
// stream.go), so the two are only comparable on well-formed input.

// alertsFromBytes decodes a fuzz payload into a deterministic,
// time-sorted, well-formed alert stream: two bytes per alert, the first
// choosing the gap to the previous alert, the second the category and
// source. The gap encoding is biased toward the interesting region —
// mostly inside the 5s redundancy window (so the redundant-path window
// slide is constantly exercised), with dedicated encodings for the
// exact-threshold boundary, zero gaps (equal timestamps), and long quiet
// gaps (the wholesale-clear optimization).
func alertsFromBytes(tb testing.TB, data []byte) []tag.Alert {
	cats := []*catalog.Category{
		cat(tb, "PBS_CHK"), cat(tb, "GM_PAR"), cat(tb, "PBS_CON"), cat(tb, "PBS_BFD"),
	}
	srcs := []string{"a", "b", "c"}
	var in []tag.Alert
	offset := 0.0
	for i := 0; i+1 < len(data); i += 2 {
		b0, b1 := data[i], data[i+1]
		switch {
		case b0 >= 0xF0:
			offset += 30 + float64(b0&0x0F)*10 // long quiet gap: clears the table
		case b0&0x0F == 0x0F:
			offset += 5 // exactly T: the strict-inequality boundary
		default:
			offset += float64(b0&0x0F) * 0.45 // 0–6.3s, mostly inside the window
		}
		in = append(in, mk(cats[int(b1)%len(cats)], srcs[int(b1>>4)%len(srcs)], offset, uint64(i/2)))
	}
	return in
}

// batchVerdicts runs batch Algorithm 3.1 and returns keep/drop per Seq.
func batchVerdicts(in []tag.Alert) map[uint64]bool {
	kept := make(map[uint64]bool, len(in))
	for _, a := range (Simultaneous{T: 5 * time.Second}).Filter(in) {
		kept[a.Record.Seq] = true
	}
	return kept
}

// FuzzStreamMatchesBatch is the differential fuzz target: for every
// generated stream, (1) Stream.Offer on the sorted stream and (2)
// Reordering on a bounded-skew disordering of it must both reproduce the
// batch verdicts exactly, and Reordering's decisions must come out in
// event-time order with nothing left buffered. The seed corpus runs
// under plain `go test`, so the differential is always in CI; `make
// fuzz-smoke` explores beyond it.
func FuzzStreamMatchesBatch(f *testing.F) {
	// Seeds: a ~1.4s drizzle spanning several windows (redundant-path
	// slide), exact-threshold boundaries, a quiet gap mid-stream, and a
	// burst of equal timestamps across categories and sources.
	f.Add([]byte{0x03, 0x00, 0x03, 0x01, 0x03, 0x10, 0x03, 0x00, 0x03, 0x21, 0x03, 0x02})
	f.Add([]byte{0x0F, 0x00, 0x0F, 0x00, 0x0F, 0x11})
	f.Add([]byte{0x02, 0x00, 0xF4, 0x00, 0x01, 0x00, 0x01, 0x13})
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 0x00, 0x21, 0x03, 0x00, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := alertsFromBytes(t, data)
		if len(in) == 0 {
			return
		}
		want := batchVerdicts(in)

		// Differential 1: the plain online filter on the sorted stream.
		s := NewStream(5 * time.Second)
		for _, a := range in {
			if got := s.Offer(a); got != want[a.Record.Seq] {
				t.Fatalf("Stream.Offer(seq %d @%v) = %v, batch says %v",
					a.Record.Seq, a.Record.Time, got, want[a.Record.Seq])
			}
		}

		// Differential 2: the reordering filter on a disordered stream
		// whose skew is bounded by its slack.
		var seed int64
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		skew := 4 * time.Second
		disordered := faultinject.Reorder(seed, skew, in,
			func(a tag.Alert) time.Time { return a.Record.Time })
		r := NewReordering(5*time.Second, skew)
		var decisions []Decision
		for _, a := range disordered {
			decisions = append(decisions, r.Offer(a)...)
		}
		decisions = append(decisions, r.Flush()...)
		if len(decisions) != len(in) {
			t.Fatalf("Reordering decided %d of %d alerts", len(decisions), len(in))
		}
		if r.Pending() != 0 {
			t.Fatalf("Reordering left %d alerts buffered after Flush", r.Pending())
		}
		for i, d := range decisions {
			if d.Keep != want[d.Alert.Record.Seq] {
				t.Fatalf("Reordering(seq %d) = %v, batch says %v",
					d.Alert.Record.Seq, d.Keep, want[d.Alert.Record.Seq])
			}
			if i > 0 && d.Alert.Record.Time.Before(decisions[i-1].Alert.Record.Time) {
				t.Fatalf("decision %d out of event-time order", i)
			}
		}
	})
}

// TestStreamMatchesBatchOnSortedStreams is the property form of the
// differential (quick.Check over seeded random streams), so CI covers a
// wider input family than the fuzz seed corpus alone.
func TestStreamMatchesBatchOnSortedStreams(t *testing.T) {
	f := func(seed int64) bool {
		in := seededAlerts(t, seed, 400)
		want := batchVerdicts(in)
		s := NewStream(5 * time.Second)
		for _, a := range in {
			if s.Offer(a) != want[a.Record.Seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStreamRedundantPathSlidesWindow pins the window slide on the
// redundant path (stream.go): a DROPPED alert still refreshes its
// category's last-report time, exactly as batch Algorithm 3.1 does, so
// a drizzle of sub-threshold repeats coalesces no matter how long it
// runs.
func TestStreamRedundantPathSlidesWindow(t *testing.T) {
	c := cat(t, "PBS_CHK")
	s := NewStream(5 * time.Second)
	if !s.Offer(mk(c, "a", 0, 0)) {
		t.Fatal("first alert must survive")
	}
	if s.Offer(mk(c, "b", 3, 1)) {
		t.Fatal("3s repeat must be dropped")
	}
	// 6s is within T of the DROPPED 3s report but not of the kept 0s
	// report: only the slide makes it redundant.
	if s.Offer(mk(c, "a", 6, 2)) {
		t.Error("redundant path failed to slide the window")
	}
	// After a genuine quiet gap the category fires again.
	if !s.Offer(mk(c, "a", 20, 3)) {
		t.Error("quiet gap must reset the window")
	}
}
