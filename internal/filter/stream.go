package filter

import (
	"time"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/tag"
)

// Online-filter telemetry: per-offer counters on the streaming path
// (one atomic add each; the batch path is counted separately).
var (
	mStreamOffered = obs.Default.Counter("stream_offered_total")
	mStreamKept    = obs.Default.Counter("stream_kept_total")
	mStreamZero    = obs.Default.Counter("stream_zero_time_total")
)

// Stream is the online form of Algorithm 3.1, for deployments that
// filter alerts as they arrive rather than in batch: each Offer decides
// immediately whether the alert is the first report of a new failure
// (keep) or redundant (drop). The decision rule is identical to
// Simultaneous.Filter — the algorithm is single-pass by construction,
// which is part of why the paper prefers it to the serial pipeline.
type Stream struct {
	// T is the redundancy window (DefaultThreshold when zero).
	T time.Duration

	x    map[string]time.Time
	last time.Time
}

// NewStream creates an online filter with the given window.
func NewStream(t time.Duration) *Stream {
	if t <= 0 {
		t = DefaultThreshold
	}
	return &Stream{T: t, x: make(map[string]time.Time)}
}

// Offer processes one alert in arrival order and reports whether it
// survives (true = first report of a failure). Alerts must be offered in
// non-decreasing time order, as they arrive from a collection path.
//
// On any time-sorted stream of well-formed (non-zero-time) alerts, the
// verdicts are exactly those of batch Simultaneous.Filter on the same
// slice — including the window slide on the redundant path, where a
// dropped alert still refreshes its category's last-report time
// (enforced by the differential tests in differential_test.go).
// Zero-time alerts are outside the batch algorithm's domain and get the
// defensive treatment described below.
func (s *Stream) Offer(a tag.Alert) bool {
	if s.x == nil {
		s.x = make(map[string]time.Time)
	}
	t := s.T
	if t <= 0 {
		t = DefaultThreshold
	}
	mStreamOffered.Inc()
	ti := a.Record.Time
	if ti.IsZero() {
		// A zero timestamp means the record's time was corrupted away
		// (Section 3.2.1's mis-timestamped messages). Keep the alert —
		// with no time there is no basis to call it redundant — and
		// leave all window state untouched: folding a zero time into
		// s.last would put every subsequent alert "more than T" ahead
		// and wrongly clear the table on each arrival.
		mStreamZero.Inc()
		mStreamKept.Inc()
		return true
	}
	if !s.last.IsZero() && ti.Sub(s.last) > t {
		clear(s.x)
	}
	s.last = ti
	ci := a.Category.Name
	if prev, ok := s.x[ci]; ok && ti.Sub(prev) < t {
		s.x[ci] = ti
		return false
	}
	s.x[ci] = ti
	mStreamKept.Inc()
	return true
}

// Reset clears the stream's state (e.g. at an operational-context
// transition, where redundancy windows should not span a downtime).
func (s *Stream) Reset() {
	clear(s.x)
	s.last = time.Time{}
}
