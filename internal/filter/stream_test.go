package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/tag"
)

// TestStreamEquivalentToBatch: the online filter must make exactly the
// batch filter's decisions on any ordered stream (quick-checked).
func TestStreamEquivalentToBatch(t *testing.T) {
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "GM_PAR"), cat(t, "PBS_CON")}
	srcs := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []tag.Alert
		offset := 0.0
		for i := 0; i < 250; i++ {
			if rng.Intn(12) == 0 {
				offset += 20 + rng.Float64()*200 // quiet gap: exercises the clear
			} else {
				offset += rng.Float64() * 5
			}
			in = append(in, mk(cats[rng.Intn(len(cats))], srcs[rng.Intn(len(srcs))], offset, uint64(i)))
		}
		batch := Simultaneous{T: 5 * time.Second}.Filter(in)
		keptBatch := map[uint64]bool{}
		for _, a := range batch {
			keptBatch[a.Record.Seq] = true
		}
		stream := NewStream(5 * time.Second)
		for _, a := range in {
			if stream.Offer(a) != keptBatch[a.Record.Seq] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStreamZeroValueUsable(t *testing.T) {
	var s Stream // zero value: lazy map, default threshold
	c := cat(t, "PBS_CHK")
	if !s.Offer(mk(c, "a", 0, 0)) {
		t.Error("first alert must survive")
	}
	if s.Offer(mk(c, "a", 2, 1)) {
		t.Error("repeat within default window must be dropped")
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream(5 * time.Second)
	c := cat(t, "PBS_CHK")
	if !s.Offer(mk(c, "a", 0, 0)) {
		t.Fatal("first")
	}
	s.Reset()
	// After a reset (e.g. a downtime boundary), the same category is a
	// fresh failure even inside the old window.
	if !s.Offer(mk(c, "a", 2, 1)) {
		t.Error("post-reset alert must survive")
	}
}
