package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

var t0 = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)

// cat returns a catalog category for the given Liberty name (the tests
// only need real *catalog.Category pointers with distinct names).
func cat(t testing.TB, name string) *catalog.Category {
	t.Helper()
	c, ok := catalog.Lookup(logrec.Liberty, name)
	if !ok {
		t.Fatalf("category %s missing", name)
	}
	return c
}

// mk builds an alert at t0+offset seconds from the given source.
func mk(c *catalog.Category, src string, offsetSec float64, seq uint64) tag.Alert {
	return tag.Alert{
		Record: logrec.Record{
			Time:   t0.Add(time.Duration(offsetSec * float64(time.Second))),
			Source: src,
			Seq:    seq,
		},
		Category: c,
	}
}

func names(alerts []tag.Alert) []float64 {
	out := make([]float64, len(alerts))
	for i, a := range alerts {
		out[i] = a.Record.Time.Sub(t0).Seconds()
	}
	return out
}

func TestSimultaneousBasicCoalescing(t *testing.T) {
	c := cat(t, "PBS_CHK")
	// One burst: every message within 5s of the previous.
	in := []tag.Alert{
		mk(c, "a", 0, 0), mk(c, "a", 2, 1), mk(c, "b", 4, 2), mk(c, "a", 6, 3),
	}
	out := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(out) != 1 || out[0].Record.Seq != 0 {
		t.Errorf("survivors = %v, want just the first", names(out))
	}
}

func TestSimultaneousWindowResets(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{
		mk(c, "a", 0, 0),
		mk(c, "a", 10, 1), // > 5s gap: new incident
		mk(c, "a", 12, 2),
	}
	out := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Fatalf("survivors = %v, want 2", names(out))
	}
	if out[1].Record.Seq != 1 {
		t.Error("second survivor should be the 10s alert")
	}
}

func TestSimultaneousDistinctCategoriesIndependent(t *testing.T) {
	a := cat(t, "PBS_CHK")
	b := cat(t, "PBS_BFD")
	in := []tag.Alert{
		mk(a, "n1", 0, 0), mk(b, "n1", 1, 1), mk(a, "n1", 2, 2), mk(b, "n1", 3, 3),
	}
	out := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Fatalf("survivors = %d, want 2 (one per category)", len(out))
	}
}

// TestSimultaneousExactThreshold pins the paper's strict inequality: an
// alert exactly T after the previous one is NOT redundant (t_i - X[c] <
// T fails).
func TestSimultaneousExactThreshold(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mk(c, "a", 0, 0), mk(c, "b", 5, 1)}
	out := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Errorf("gap == T must survive, got %v", names(out))
	}
}

// TestSimultaneousSlidingWindow: the redundancy window slides with every
// report (including removed ones), so a drizzle with 3s gaps coalesces
// entirely even though it spans far more than T.
func TestSimultaneousSlidingWindow(t *testing.T) {
	c := cat(t, "PBS_CHK")
	var in []tag.Alert
	for i := 0; i < 20; i++ {
		in = append(in, mk(c, "n", float64(i)*3, uint64(i)))
	}
	out := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(out) != 1 {
		t.Errorf("3s drizzle should collapse to one alert, got %d", len(out))
	}
}

func TestTemporalPerSource(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{
		mk(c, "a", 0, 0),
		mk(c, "b", 1, 1), // different source: temporal keeps it
		mk(c, "a", 2, 2), // same source within T: removed
		mk(c, "b", 3, 3), // same source within T: removed
	}
	out := Temporal{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Fatalf("temporal survivors = %v, want 2", names(out))
	}
	if out[0].Record.Source != "a" || out[1].Record.Source != "b" {
		t.Error("temporal must keep the first from each source")
	}
}

func TestSpatialCrossSourceOnly(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{
		mk(c, "a", 0, 0),
		mk(c, "a", 2, 1), // same source: spatial keeps it
		mk(c, "b", 3, 2), // other source within T of a: removed
	}
	out := Spatial{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Fatalf("spatial survivors = %v, want 2", names(out))
	}
	for _, a := range out {
		if a.Record.Source != "a" {
			t.Error("spatial should keep only source a's reports")
		}
	}
}

// TestSerialVsSimultaneousAsymmetry is the Section 3.3.2 scenario: "the
// temporal filter removes messages that the spatial filter would have
// used as cues that the failure had already been reported by another
// source." Node A reports at 0s and 3s; node B at 6s. Serial: temporal
// removes A@3, spatial sees A@0 and B@6 (gap 6s > T) and keeps both.
// Simultaneous: A@3 refreshes the window, so B@6 is removed.
func TestSerialVsSimultaneousAsymmetry(t *testing.T) {
	c := cat(t, "PBS_CON")
	in := []tag.Alert{
		mk(c, "A", 0, 0),
		mk(c, "A", 3, 1),
		mk(c, "B", 6, 2),
	}
	serial := Serial{T: 5 * time.Second}.Filter(in)
	simult := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(serial) != 2 {
		t.Fatalf("serial survivors = %v, want [0 6]", names(serial))
	}
	if len(simult) != 1 {
		t.Fatalf("simultaneous survivors = %v, want [0]", names(simult))
	}
}

// TestSimultaneousSubsetOfSerial: on any stream, the simultaneous
// filter's survivors are a subset of the serial filter's. (Both keep the
// first alert of an isolated incident; simultaneous is strictly more
// aggressive.)
func TestSimultaneousSubsetOfSerial(t *testing.T) {
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "PBS_BFD"), cat(t, "GM_PAR")}
	srcs := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []tag.Alert
		offset := 0.0
		for i := 0; i < 200; i++ {
			offset += rng.ExpFloat64() * 4
			in = append(in, mk(cats[rng.Intn(len(cats))], srcs[rng.Intn(len(srcs))], offset, uint64(i)))
		}
		serial := Serial{T: 5 * time.Second}.Filter(in)
		simult := Simultaneous{T: 5 * time.Second}.Filter(in)
		inSerial := map[uint64]bool{}
		for _, a := range serial {
			inSerial[a.Record.Seq] = true
		}
		for _, a := range simult {
			if !inSerial[a.Record.Seq] {
				return false
			}
		}
		return len(simult) <= len(serial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// referenceSimultaneous is Algorithm 3.1 without the table-clearing
// optimization; the optimized version must be behaviorally identical.
func referenceSimultaneous(alerts []tag.Alert, T time.Duration) []tag.Alert {
	x := map[string]time.Time{}
	var out []tag.Alert
	for _, a := range alerts {
		ci := a.Category.Name
		ti := a.Record.Time
		if prev, ok := x[ci]; ok && ti.Sub(prev) < T {
			x[ci] = ti
			continue
		}
		x[ci] = ti
		out = append(out, a)
	}
	return out
}

func TestClearOptimizationEquivalence(t *testing.T) {
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "GM_LANAI"), cat(t, "GM_PAR")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []tag.Alert
		offset := 0.0
		for i := 0; i < 300; i++ {
			// Mix tight bursts and long quiet gaps to exercise the clear.
			if rng.Intn(10) == 0 {
				offset += 30 + rng.Float64()*100
			} else {
				offset += rng.Float64() * 4
			}
			in = append(in, mk(cats[rng.Intn(len(cats))], "s", offset, uint64(i)))
		}
		got := Simultaneous{T: 5 * time.Second}.Filter(in)
		want := referenceSimultaneous(in, 5*time.Second)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Record.Seq != want[i].Record.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSerialIsTemporalThenSpatial(t *testing.T) {
	c := cat(t, "PBS_CHK")
	var in []tag.Alert
	for i := 0; i < 50; i++ {
		in = append(in, mk(c, []string{"a", "b"}[i%2], float64(i)*2, uint64(i)))
	}
	serial := Serial{T: 5 * time.Second}.Filter(in)
	manual := Spatial{T: 5 * time.Second}.Filter(Temporal{T: 5 * time.Second}.Filter(in))
	if len(serial) != len(manual) {
		t.Fatalf("serial %d != composed %d", len(serial), len(manual))
	}
	for i := range serial {
		if serial[i].Record.Seq != manual[i].Record.Seq {
			t.Fatal("serial differs from manual composition")
		}
	}
}

func TestDefaultThresholdApplied(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mk(c, "a", 0, 0), mk(c, "a", 3, 1)}
	// Zero T must fall back to the 5s default, removing the 3s repeat.
	for _, alg := range []Algorithm{Simultaneous{}, Temporal{}, Spatial{}} {
		out := alg.Filter([]tag.Alert{mk(c, "a", 0, 0), mk(c, "b", 3, 1)})
		switch alg.(type) {
		case Temporal:
			if len(out) != 2 {
				t.Errorf("%s: different sources must both survive temporal", alg.Name())
			}
		default:
			if len(out) != 1 {
				t.Errorf("%s: default threshold not applied, got %d", alg.Name(), len(out))
			}
		}
	}
	out := Simultaneous{}.Filter(in)
	if len(out) != 1 {
		t.Error("simultaneous default threshold not applied")
	}
}

func TestAdaptivePerCategoryWindows(t *testing.T) {
	chk := cat(t, "PBS_CHK")
	par := cat(t, "GM_PAR")
	in := []tag.Alert{
		mk(chk, "a", 0, 0), mk(chk, "a", 8, 1), // within 20s window: removed
		mk(par, "b", 0, 2), mk(par, "b", 8, 3), // beyond 5s default: kept
	}
	alg := Adaptive{
		Thresholds: map[string]time.Duration{"PBS_CHK": 20 * time.Second},
		Default:    5 * time.Second,
	}
	out := alg.Filter(in)
	if len(out) != 3 {
		t.Fatalf("adaptive survivors = %d, want 3", len(out))
	}
	kept := map[uint64]bool{}
	for _, a := range out {
		kept[a.Record.Seq] = true
	}
	if kept[1] {
		t.Error("PBS_CHK repeat inside its 20s window must be removed")
	}
	if !kept[3] {
		t.Error("GM_PAR repeat beyond the 5s default must be kept")
	}
}

func TestAdaptiveEqualsSimultaneousWithUniformThreshold(t *testing.T) {
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "GM_PAR")}
	rng := rand.New(rand.NewSource(17))
	var in []tag.Alert
	offset := 0.0
	for i := 0; i < 400; i++ {
		offset += rng.Float64() * 8
		in = append(in, mk(cats[rng.Intn(2)], "s", offset, uint64(i)))
	}
	a := Adaptive{Default: 5 * time.Second}.Filter(in)
	b := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(a) != len(b) {
		t.Fatalf("adaptive(default only) %d != simultaneous %d", len(a), len(b))
	}
}

func TestFilterDoesNotMutateInput(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mk(c, "a", 0, 0), mk(c, "a", 1, 1), mk(c, "a", 99, 2)}
	before := make([]tag.Alert, len(in))
	copy(before, in)
	for _, alg := range []Algorithm{Simultaneous{}, Temporal{}, Spatial{}, Serial{}, Adaptive{}} {
		alg.Filter(in)
		for i := range in {
			if in[i].Record.Seq != before[i].Record.Seq {
				t.Fatalf("%s mutated its input", alg.Name())
			}
		}
	}
}

func TestRunStats(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mk(c, "a", 0, 0), mk(c, "a", 1, 1)}
	out, st := Run(Simultaneous{}, in)
	if st.Input != 2 || st.Output != 1 || st.Removed != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(out) != 1 {
		t.Error("output mismatch")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, alg := range []Algorithm{Simultaneous{}, Temporal{}, Spatial{}, Serial{}, Adaptive{}} {
		if out := alg.Filter(nil); len(out) != 0 {
			t.Errorf("%s on empty input produced %d", alg.Name(), len(out))
		}
		c := cat(t, "PBS_CHK")
		if out := alg.Filter([]tag.Alert{mk(c, "a", 0, 0)}); len(out) != 1 {
			t.Errorf("%s dropped a singleton", alg.Name())
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[string]Algorithm{
		"simultaneous": Simultaneous{},
		"temporal":     Temporal{},
		"spatial":      Spatial{},
		"serial":       Serial{},
		"adaptive":     Adaptive{},
	}
	for name, alg := range want {
		if alg.Name() != name {
			t.Errorf("Name() = %q, want %q", alg.Name(), name)
		}
	}
}
