package filter

import (
	"sort"
	"time"

	"whatsupersay/internal/tag"
)

// The paper's "Attribute Root Causes" recommendation: "we advise that
// future work investigate filters that are aware of correlations among
// messages and characteristics of different failure classes, rather than
// a catch-all threshold" (Section 5). CorrelationAware implements that
// future work: it learns which categories co-occur (Liberty's
// PBS_CHK/PBS_BFD, GM_PAR/GM_LANAI — Figures 3 and 4 — and BG/L's
// episode-coupled kernel categories), then filters with the learned
// groups so that one failure reported under several labels yields one
// alert. This is what removes the first mode of Figure 6(a), which
// per-category thresholds cannot (the paper's filtering weakness (1)).

// CorrelationGroups is a learned partition of categories into correlated
// groups.
type CorrelationGroups struct {
	groupOf map[string]int
}

// GroupOf returns the group id for a category; singleton categories get
// their own group. ok is false for categories never seen in training.
func (g *CorrelationGroups) GroupOf(category string) (int, bool) {
	id, ok := g.groupOf[category]
	return id, ok
}

// Groups returns the learned groups as sorted category lists, largest
// first, singletons omitted.
func (g *CorrelationGroups) Groups() [][]string {
	byID := make(map[int][]string)
	for cat, id := range g.groupOf {
		byID[id] = append(byID[id], cat)
	}
	var out [][]string
	for _, cats := range byID {
		if len(cats) < 2 {
			continue
		}
		sort.Strings(cats)
		out = append(out, cats)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// CorrelationAware is a two-stage filter: Algorithm 3.1 with threshold T,
// then collapse of surviving alerts whose categories belong to the same
// learned correlation group within GroupWindow.
type CorrelationAware struct {
	// T is the base redundancy window (DefaultThreshold when zero).
	T time.Duration
	// GroupWindow is the cross-category collapse window; correlated
	// categories report the same failure minutes apart (default 10m).
	GroupWindow time.Duration
	// MinScore is the co-occurrence score above which two categories
	// merge (default 0.4): the fraction of the rarer category's
	// occurrences that fall in a shared cluster with the other.
	MinScore float64
}

// Name implements Algorithm.
func (f CorrelationAware) Name() string { return "correlation-aware" }

func (f CorrelationAware) groupWindow() time.Duration {
	if f.GroupWindow > 0 {
		return f.GroupWindow
	}
	return 10 * time.Minute
}

func (f CorrelationAware) minScore() float64 {
	if f.MinScore > 0 {
		return f.MinScore
	}
	return 0.4
}

// Learn derives correlation groups from a time-sorted alert stream: the
// stream is pre-filtered (so storms count once), clustered with the
// GroupWindow, and every category pair sharing clusters often enough is
// merged (union-find).
func (f CorrelationAware) Learn(alerts []tag.Alert) *CorrelationGroups {
	base := Simultaneous{T: f.T}.Filter(alerts)
	clusters := Tuple{T: f.groupWindow()}.Tuples(base)

	catCount := make(map[string]int)
	pairCount := make(map[[2]string]int)
	for _, cl := range clusters {
		seen := map[string]bool{}
		for _, a := range cl {
			seen[a.Category.Name] = true
		}
		cats := make([]string, 0, len(seen))
		for c := range seen {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			catCount[c]++
		}
		for i := 0; i < len(cats); i++ {
			for j := i + 1; j < len(cats); j++ {
				pairCount[[2]string{cats[i], cats[j]}]++
			}
		}
	}

	uf := newUnionFind()
	for c := range catCount {
		uf.add(c)
	}
	for pair, n := range pairCount {
		a, b := pair[0], pair[1]
		rarer := catCount[a]
		if catCount[b] < rarer {
			rarer = catCount[b]
		}
		if rarer == 0 {
			continue
		}
		if float64(n)/float64(rarer) >= f.minScore() {
			uf.union(a, b)
		}
	}

	groups := &CorrelationGroups{groupOf: make(map[string]int, len(catCount))}
	ids := make(map[string]int)
	next := 0
	for c := range catCount {
		root := uf.find(c)
		id, ok := ids[root]
		if !ok {
			id = next
			next++
			ids[root] = id
		}
		groups.groupOf[c] = id
	}
	return groups
}

// FilterWith applies the two stages using pre-learned groups. Categories
// absent from the groups filter as singletons.
func (f CorrelationAware) FilterWith(groups *CorrelationGroups, alerts []tag.Alert) []tag.Alert {
	base := Simultaneous{T: f.T}.Filter(alerts)
	window := f.groupWindow()
	lastByGroup := make(map[int]time.Time)
	// Singleton ids for unseen categories start above the learned ids.
	extra := make(map[string]int)
	nextExtra := len(groups.groupOf) + 1
	var out []tag.Alert
	for _, a := range base {
		id, ok := groups.GroupOf(a.Category.Name)
		if !ok {
			id, ok = extra[a.Category.Name]
			if !ok {
				id = nextExtra
				nextExtra++
				extra[a.Category.Name] = id
			}
			id = -id // keep unseen-category ids disjoint from learned ids
		}
		ti := a.Record.Time
		if prev, seen := lastByGroup[id]; seen && ti.Sub(prev) < window {
			lastByGroup[id] = ti
			continue
		}
		lastByGroup[id] = ti
		out = append(out, a)
	}
	return out
}

// Filter implements Algorithm: learn on the stream, then filter it. For
// online deployments, Learn on history and FilterWith on live traffic.
func (f CorrelationAware) Filter(alerts []tag.Alert) []tag.Alert {
	return f.FilterWith(f.Learn(alerts), alerts)
}

// unionFind is a tiny string union-find.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) add(x string) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
}

func (u *unionFind) find(x string) string {
	u.add(x)
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Deterministic root choice keeps group ids stable.
		if ra < rb {
			u.parent[rb] = ra
		} else {
			u.parent[ra] = rb
		}
	}
}
