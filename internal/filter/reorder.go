package filter

import (
	"container/heap"
	"time"

	"whatsupersay/internal/tag"
)

// The online filter assumes alerts arrive in non-decreasing time order,
// but a real collection path only approximates that: per-source relay
// queues drain at different rates, so alerts arrive mildly out of order.
// Feeding such a stream straight into Stream.Offer silently corrupts the
// redundancy decision — a late-arriving first report gets dropped as
// redundant while its earlier-stamped echo survives. Reordering restores
// exact time order for any stream whose disorder is bounded, using the
// watermark technique of streaming systems: an alert is released only
// once no earlier-stamped alert can still arrive.

// Decision pairs an alert with the filter's verdict, emitted once the
// alert clears the reordering buffer.
type Decision struct {
	Alert tag.Alert
	// Keep reports whether the alert survived (first report of a
	// failure) — the same verdict batch Simultaneous.Filter would give.
	Keep bool
}

// Reordering wraps Stream with a bounded reordering buffer. Slack is the
// maximum out-of-order delay tolerated: if every alert arrives within
// Slack of all alerts stamped earlier than it, the decisions are exactly
// those of batch Algorithm 3.1 on the time-sorted stream. Latency is the
// price: a decision is withheld until the watermark passes the alert.
type Reordering struct {
	// S makes the keep/drop decisions once order is restored.
	S *Stream
	// Slack bounds the tolerated skew (and the added decision latency).
	Slack time.Duration

	h   alertHeap
	max time.Time // latest event time seen
}

// NewReordering creates a reordering filter with redundancy window t and
// out-of-order slack.
func NewReordering(t, slack time.Duration) *Reordering {
	return &Reordering{S: NewStream(t), Slack: slack}
}

// Offer accepts one alert in arrival order and returns the decisions for
// every alert the watermark released, in event-time order. Alerts whose
// time is zero (corrupted away) are decided immediately — they carry no
// ordering information — and are always kept, matching Stream.Offer.
func (r *Reordering) Offer(a tag.Alert) []Decision {
	if r.S == nil {
		r.S = NewStream(0)
	}
	if a.Record.Time.IsZero() {
		return []Decision{{Alert: a, Keep: r.S.Offer(a)}}
	}
	heap.Push(&r.h, a)
	if a.Record.Time.After(r.max) {
		r.max = a.Record.Time
	}
	// Strict watermark: release only alerts stamped strictly earlier
	// than max-Slack. Any future arrival is stamped within Slack of some
	// already-seen alert, hence strictly later than every released one —
	// so equal-time alerts are always released together, in Seq order,
	// exactly as the batch filter visits them.
	watermark := r.max.Add(-r.Slack)
	var out []Decision
	for r.h.Len() > 0 && r.h.alerts[0].Record.Time.Before(watermark) {
		b := heap.Pop(&r.h).(tag.Alert)
		out = append(out, Decision{Alert: b, Keep: r.S.Offer(b)})
	}
	return out
}

// Flush drains the buffer at end of stream, returning the remaining
// decisions in event-time order.
func (r *Reordering) Flush() []Decision {
	if r.S == nil {
		r.S = NewStream(0)
	}
	var out []Decision
	for r.h.Len() > 0 {
		b := heap.Pop(&r.h).(tag.Alert)
		out = append(out, Decision{Alert: b, Keep: r.S.Offer(b)})
	}
	return out
}

// Pending reports how many alerts are buffered awaiting the watermark.
func (r *Reordering) Pending() int { return r.h.Len() }

// alertHeap is a min-heap in canonical record order (time, then Seq).
type alertHeap struct {
	alerts []tag.Alert
}

func (h alertHeap) Len() int { return len(h.alerts) }
func (h alertHeap) Less(i, j int) bool {
	return h.alerts[i].Record.Before(h.alerts[j].Record)
}
func (h alertHeap) Swap(i, j int) { h.alerts[i], h.alerts[j] = h.alerts[j], h.alerts[i] }

func (h *alertHeap) Push(x any) { h.alerts = append(h.alerts, x.(tag.Alert)) }

func (h *alertHeap) Pop() any {
	old := h.alerts
	n := len(old)
	a := old[n-1]
	h.alerts = old[:n-1]
	return a
}
