package filter

import (
	"container/heap"
	"time"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/tag"
)

// The online filter assumes alerts arrive in non-decreasing time order,
// but a real collection path only approximates that: per-source relay
// queues drain at different rates, so alerts arrive mildly out of order.
// Feeding such a stream straight into Stream.Offer silently corrupts the
// redundancy decision — a late-arriving first report gets dropped as
// redundant while its earlier-stamped echo survives. Reordering restores
// exact time order for any stream whose disorder is bounded, using the
// watermark technique of streaming systems: an alert is released only
// once no earlier-stamped alert can still arrive.

// Reordering-buffer telemetry: how many alerts the watermark has
// released, and the instantaneous buffer depth (the latency the buffer
// is charging the stream).
var (
	mReorderReleased = obs.Default.Counter("reorder_released_total")
	mReorderPending  = obs.Default.Gauge("reorder_pending")
)

// Decision pairs an alert with the filter's verdict, emitted once the
// alert clears the reordering buffer.
type Decision struct {
	Alert tag.Alert
	// Keep reports whether the alert survived (first report of a
	// failure) — the same verdict batch Simultaneous.Filter would give.
	Keep bool
}

// Reordering wraps Stream with a bounded reordering buffer. Slack is the
// maximum out-of-order delay tolerated: if every alert arrives within
// Slack of all alerts stamped earlier than it, the decisions are exactly
// those of batch Algorithm 3.1 on the time-sorted stream. Latency is the
// price: a decision is withheld until the watermark passes the alert.
//
// Ordering contract: decisions for time-stamped alerts are emitted in
// event-time order (across Offer and Flush). Zero-time alerts —
// corrupted timestamps — carry no event time to order by, so they are
// decided out-of-band, immediately at arrival, and may therefore appear
// between two buffered alerts' decisions; see Offer.
//
// Reuse contract: a Reordering instance filters ONE logical stream.
// Flush drains the buffer but deliberately leaves the watermark and the
// inner Stream's redundancy state in place (a late tail delivered after
// an end-of-stream flush must still be judged against the stream it
// belongs to). To filter a second, unrelated stream with the same
// instance — whose timestamps may start before the first stream's
// maximum — call Reset first, or early alerts of the new stream would be
// released immediately against the stale watermark, out of order.
type Reordering struct {
	// S makes the keep/drop decisions once order is restored.
	S *Stream
	// Slack bounds the tolerated skew (and the added decision latency).
	Slack time.Duration

	h   alertHeap
	max time.Time // latest event time seen
}

// NewReordering creates a reordering filter with redundancy window t and
// out-of-order slack.
func NewReordering(t, slack time.Duration) *Reordering {
	return &Reordering{S: NewStream(t), Slack: slack}
}

// Offer accepts one alert in arrival order and returns the decisions for
// every alert the watermark released, in event-time order. Alerts whose
// time is zero (corrupted away) are decided immediately — they carry no
// ordering information, so buffering them could not sequence them
// anywhere meaningful — and are always kept, matching Stream.Offer. Such
// a decision is emitted at arrival even while earlier-stamped alerts sit
// in the buffer; only the time-stamped decisions are mutually ordered.
func (r *Reordering) Offer(a tag.Alert) []Decision {
	if r.S == nil {
		r.S = NewStream(0)
	}
	if a.Record.Time.IsZero() {
		return []Decision{{Alert: a, Keep: r.S.Offer(a)}}
	}
	heap.Push(&r.h, a)
	if a.Record.Time.After(r.max) {
		r.max = a.Record.Time
	}
	// Strict watermark: release only alerts stamped strictly earlier
	// than max-Slack. Any future arrival is stamped within Slack of some
	// already-seen alert, hence strictly later than every released one —
	// so equal-time alerts are always released together, in Seq order,
	// exactly as the batch filter visits them.
	watermark := r.max.Add(-r.Slack)
	var out []Decision
	for r.h.Len() > 0 && r.h.alerts[0].Record.Time.Before(watermark) {
		b := heap.Pop(&r.h).(tag.Alert)
		out = append(out, Decision{Alert: b, Keep: r.S.Offer(b)})
	}
	mReorderReleased.Add(int64(len(out)))
	mReorderPending.Set(float64(r.h.Len()))
	return out
}

// Flush drains the buffer at end of stream, returning the remaining
// decisions in event-time order. Flush does NOT reset the filter: the
// watermark and the inner Stream's redundancy state survive, so a late
// tail of the same stream is still judged correctly. Call Reset before
// reusing the instance for a different stream.
func (r *Reordering) Flush() []Decision {
	if r.S == nil {
		r.S = NewStream(0)
	}
	var out []Decision
	for r.h.Len() > 0 {
		b := heap.Pop(&r.h).(tag.Alert)
		out = append(out, Decision{Alert: b, Keep: r.S.Offer(b)})
	}
	mReorderReleased.Add(int64(len(out)))
	mReorderPending.Set(0)
	return out
}

// Reset prepares the instance for a new, unrelated stream: it discards
// any buffered alerts, clears the watermark, and resets the inner
// Stream's redundancy state (preserving its configured window). Without
// it, a second stream whose timestamps start earlier than the first
// stream's maximum would have its early alerts released immediately —
// in arrival rather than event-time order — against the stale
// watermark.
func (r *Reordering) Reset() {
	// Zero the backing array before truncating so the dropped alerts'
	// record strings are released to the GC.
	for i := range r.h.alerts {
		r.h.alerts[i] = tag.Alert{}
	}
	r.h.alerts = r.h.alerts[:0]
	r.max = time.Time{}
	if r.S != nil {
		r.S.Reset()
	}
	mReorderPending.Set(0)
}

// Pending reports how many alerts are buffered awaiting the watermark.
func (r *Reordering) Pending() int { return r.h.Len() }

// alertHeap is a min-heap in canonical record order (time, then Seq).
type alertHeap struct {
	alerts []tag.Alert
}

func (h alertHeap) Len() int { return len(h.alerts) }
func (h alertHeap) Less(i, j int) bool {
	return h.alerts[i].Record.Before(h.alerts[j].Record)
}
func (h alertHeap) Swap(i, j int) { h.alerts[i], h.alerts[j] = h.alerts[j], h.alerts[i] }

func (h *alertHeap) Push(x any) { h.alerts = append(h.alerts, x.(tag.Alert)) }

func (h *alertHeap) Pop() any {
	old := h.alerts
	n := len(old)
	a := old[n-1]
	// Zero the vacated slot before shrinking: the slice's backing array
	// lives as long as the buffer does, and a stale tag.Alert there
	// pins the full raw record string (and the category pointer) long
	// after the alert was decided.
	old[n-1] = tag.Alert{}
	h.alerts = old[:n-1]
	return a
}
