package filter

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/tag"
)

// seededAlerts builds a time-ordered alert stream with bursts and quiet
// gaps (to exercise the wholesale-clear path) across several categories
// and sources.
func seededAlerts(t *testing.T, seed int64, n int) []tag.Alert {
	t.Helper()
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "GM_PAR"), cat(t, "PBS_CON")}
	srcs := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(seed))
	var in []tag.Alert
	offset := 0.0
	for i := 0; i < n; i++ {
		if rng.Intn(15) == 0 {
			offset += 20 + rng.Float64()*200
		} else {
			offset += rng.Float64() * 4
		}
		in = append(in, mk(cats[rng.Intn(len(cats))], srcs[rng.Intn(len(srcs))], offset, uint64(i)))
	}
	return in
}

// TestReorderingEquivalentToBatch is the acceptance property: on a
// seeded stream disordered by bounded skew (the faultinject harness),
// the reordering stream filter makes exactly the keep/drop decisions of
// batch Simultaneous.Filter on the time-sorted stream.
func TestReorderingEquivalentToBatch(t *testing.T) {
	f := func(seed int64) bool {
		in := seededAlerts(t, seed, 300)
		batch := Simultaneous{T: 5 * time.Second}.Filter(in)
		keptBatch := map[uint64]bool{}
		for _, a := range batch {
			keptBatch[a.Record.Seq] = true
		}

		skew := 8 * time.Second
		disordered := faultinject.Reorder(seed, skew, in, func(a tag.Alert) time.Time { return a.Record.Time })

		r := NewReordering(5*time.Second, skew)
		decided := map[uint64]bool{}
		check := func(ds []Decision) bool {
			for _, d := range ds {
				if d.Keep != keptBatch[d.Alert.Record.Seq] {
					return false
				}
				decided[d.Alert.Record.Seq] = true
			}
			return true
		}
		for _, a := range disordered {
			if !check(r.Offer(a)) {
				return false
			}
		}
		if !check(r.Flush()) {
			return false
		}
		return len(decided) == len(in) && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReorderingRescuesMisdecisions: feeding the same disordered stream
// straight into the plain online filter must (on at least some seeds)
// give different decisions than batch — demonstrating the buffer is
// load-bearing, not decorative.
func TestReorderingRescuesMisdecisions(t *testing.T) {
	diverged := false
	for seed := int64(0); seed < 20 && !diverged; seed++ {
		in := seededAlerts(t, seed, 300)
		batch := Simultaneous{T: 5 * time.Second}.Filter(in)
		keptBatch := map[uint64]bool{}
		for _, a := range batch {
			keptBatch[a.Record.Seq] = true
		}
		disordered := faultinject.Reorder(seed, 8*time.Second, in, func(a tag.Alert) time.Time { return a.Record.Time })
		s := NewStream(5 * time.Second)
		for _, a := range disordered {
			if s.Offer(a) != keptBatch[a.Record.Seq] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Skip("no seed disordered enough to fool the naive stream; weak but not wrong")
	}
}

// TestReorderingZeroValueAndZeroTime: zero-value Reordering works, and
// zero-time (corrupted-timestamp) alerts are decided immediately and
// kept without disturbing the watermark.
func TestReorderingZeroTime(t *testing.T) {
	var r Reordering
	r.Slack = 5 * time.Second
	c := cat(t, "PBS_CHK")
	zero := tag.Alert{Record: mk(c, "a", 0, 99).Record, Category: c}
	zero.Record.Time = time.Time{}
	ds := r.Offer(zero)
	if len(ds) != 1 || !ds[0].Keep {
		t.Fatal("zero-time alert must be decided immediately and kept")
	}
	// The watermark must be untouched: a normal alert buffers.
	if ds := r.Offer(mk(c, "a", 100, 0)); len(ds) != 0 {
		t.Error("watermark perturbed by zero-time alert")
	}
	if got := r.Flush(); len(got) != 1 {
		t.Errorf("flush = %d decisions, want 1", len(got))
	}
}

// TestReorderingZeroTimeOutOfBand pins the settled ordering contract:
// a zero-time alert offered while earlier-stamped alerts sit buffered
// is decided immediately (out-of-band) and does not disturb, reorder,
// or flush the buffered time-stamped alerts, whose own decisions stay
// in event-time order.
func TestReorderingZeroTimeOutOfBand(t *testing.T) {
	r := NewReordering(5*time.Second, 10*time.Second)
	c := cat(t, "PBS_CHK")
	// Two buffered alerts, not yet past the watermark.
	if ds := r.Offer(mk(c, "a", 0, 1)); len(ds) != 0 {
		t.Fatal("alert released before watermark")
	}
	if ds := r.Offer(mk(c, "b", 3, 2)); len(ds) != 0 {
		t.Fatal("alert released before watermark")
	}
	zero := mk(c, "c", 0, 3)
	zero.Record.Time = time.Time{}
	ds := r.Offer(zero)
	if len(ds) != 1 || ds[0].Alert.Record.Seq != 3 || !ds[0].Keep {
		t.Fatalf("zero-time alert not decided out-of-band: %+v", ds)
	}
	if r.Pending() != 2 {
		t.Fatalf("buffered alerts disturbed: pending = %d, want 2", r.Pending())
	}
	// The buffered alerts drain later, still in event-time order.
	got := r.Flush()
	if len(got) != 2 || got[0].Alert.Record.Seq != 1 || got[1].Alert.Record.Seq != 2 {
		t.Fatalf("flush order wrong: %+v", got)
	}
}

// TestReorderingResetBetweenStreams is the reuse-after-Flush satellite:
// without Reset, the first stream's watermark (r.max) survives Flush,
// so a second stream starting earlier than that maximum is released
// immediately in the wrong order and judged against stale redundancy
// state. With Reset, back-to-back streams each get exactly the batch
// verdicts.
func TestReorderingResetBetweenStreams(t *testing.T) {
	c := cat(t, "PBS_CHK")
	// Stream one ends late (t=1000s): watermark far in the future.
	first := []tag.Alert{mk(c, "a", 990, 0), mk(c, "a", 1000, 1)}
	// Stream two starts at t=0 — entirely before stream one's max — and
	// contains a redundancy pattern whose correct verdicts depend on
	// fresh state: keep, drop, keep-after-gap.
	second := []tag.Alert{mk(c, "a", 0, 10), mk(c, "b", 2, 11), mk(c, "a", 60, 12)}
	wantKeep := map[uint64]bool{10: true, 11: false, 12: true}

	r := NewReordering(5*time.Second, 8*time.Second)
	for _, a := range first {
		r.Offer(a)
	}
	r.Flush()

	r.Reset()
	if r.Pending() != 0 {
		t.Fatal("Reset left alerts buffered")
	}
	var decisions []Decision
	for _, a := range second {
		if ds := r.Offer(a); len(ds) != 0 {
			// Nothing may be released early: the new watermark must have
			// restarted from zero, and second's span (60s) minus slack
			// (8s) does release the first two — that's fine; what must
			// NOT happen is release on the very first Offer.
			decisions = append(decisions, ds...)
		}
	}
	decisions = append(decisions, r.Flush()...)
	if len(decisions) != len(second) {
		t.Fatalf("decided %d alerts, want %d", len(decisions), len(second))
	}
	for i, d := range decisions {
		if d.Keep != wantKeep[d.Alert.Record.Seq] {
			t.Errorf("seq %d: keep = %v, want %v (stale state leaked across Reset)",
				d.Alert.Record.Seq, d.Keep, wantKeep[d.Alert.Record.Seq])
		}
		if i > 0 && d.Alert.Record.Time.Before(decisions[i-1].Alert.Record.Time) {
			t.Errorf("decision %d out of event-time order", i)
		}
	}

	// The regression itself: WITHOUT Reset the stale watermark releases
	// the new stream's first alert on its first Offer.
	r2 := NewReordering(5*time.Second, 8*time.Second)
	for _, a := range first {
		r2.Offer(a)
	}
	r2.Flush()
	if ds := r2.Offer(mk(c, "a", 0, 20)); len(ds) == 0 {
		t.Error("expected the stale watermark to misbehave without Reset; " +
			"if this fails the reuse semantics changed — update the docs")
	}
}

// TestAlertHeapPopReleasesSlot is the memory-retention satellite: Pop
// must zero the vacated backing-array slot so the popped alert's record
// string is not pinned for the lifetime of the buffer.
func TestAlertHeapPopReleasesSlot(t *testing.T) {
	c := cat(t, "PBS_CHK")
	var h alertHeap
	for i := 0; i < 4; i++ {
		a := mk(c, "src", float64(i), uint64(i))
		a.Record.Raw = "a very long raw record line that must not be pinned"
		heap.Push(&h, a)
	}
	for h.Len() > 0 {
		n := h.Len()
		heap.Pop(&h)
		// Inspect the vacated slot in the backing array.
		slot := h.alerts[:n][n-1]
		if slot.Record.Raw != "" || slot.Category != nil {
			t.Fatalf("Pop left alert data in vacated slot: %+v", slot)
		}
	}
}

// TestStreamZeroTimeDefense is the satellite fix: a zero Record.Time
// must not poison s.last (which would clear the window table on every
// subsequent alert and un-filter genuine redundancy).
func TestStreamZeroTimeDefense(t *testing.T) {
	s := NewStream(5 * time.Second)
	c := cat(t, "PBS_CHK")
	if !s.Offer(mk(c, "a", 0, 0)) {
		t.Fatal("first alert must survive")
	}
	corruptAlert := mk(c, "a", 0, 1)
	corruptAlert.Record.Time = time.Time{}
	if !s.Offer(corruptAlert) {
		t.Error("zero-time alert must be kept (no basis to drop)")
	}
	// The next in-window repeat must still be dropped: if the zero time
	// had been folded into s.last, the 2s alert would look like it
	// arrived an epoch later and the table would have been cleared.
	if s.Offer(mk(c, "a", 2, 2)) {
		t.Error("in-window repeat survived: zero time poisoned the filter state")
	}
}
