package filter

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/tag"
)

// seededAlerts builds a time-ordered alert stream with bursts and quiet
// gaps (to exercise the wholesale-clear path) across several categories
// and sources.
func seededAlerts(t *testing.T, seed int64, n int) []tag.Alert {
	t.Helper()
	cats := []*catalog.Category{cat(t, "PBS_CHK"), cat(t, "GM_PAR"), cat(t, "PBS_CON")}
	srcs := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(seed))
	var in []tag.Alert
	offset := 0.0
	for i := 0; i < n; i++ {
		if rng.Intn(15) == 0 {
			offset += 20 + rng.Float64()*200
		} else {
			offset += rng.Float64() * 4
		}
		in = append(in, mk(cats[rng.Intn(len(cats))], srcs[rng.Intn(len(srcs))], offset, uint64(i)))
	}
	return in
}

// TestReorderingEquivalentToBatch is the acceptance property: on a
// seeded stream disordered by bounded skew (the faultinject harness),
// the reordering stream filter makes exactly the keep/drop decisions of
// batch Simultaneous.Filter on the time-sorted stream.
func TestReorderingEquivalentToBatch(t *testing.T) {
	f := func(seed int64) bool {
		in := seededAlerts(t, seed, 300)
		batch := Simultaneous{T: 5 * time.Second}.Filter(in)
		keptBatch := map[uint64]bool{}
		for _, a := range batch {
			keptBatch[a.Record.Seq] = true
		}

		skew := 8 * time.Second
		disordered := faultinject.Reorder(seed, skew, in, func(a tag.Alert) time.Time { return a.Record.Time })

		r := NewReordering(5*time.Second, skew)
		decided := map[uint64]bool{}
		check := func(ds []Decision) bool {
			for _, d := range ds {
				if d.Keep != keptBatch[d.Alert.Record.Seq] {
					return false
				}
				decided[d.Alert.Record.Seq] = true
			}
			return true
		}
		for _, a := range disordered {
			if !check(r.Offer(a)) {
				return false
			}
		}
		if !check(r.Flush()) {
			return false
		}
		return len(decided) == len(in) && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReorderingRescuesMisdecisions: feeding the same disordered stream
// straight into the plain online filter must (on at least some seeds)
// give different decisions than batch — demonstrating the buffer is
// load-bearing, not decorative.
func TestReorderingRescuesMisdecisions(t *testing.T) {
	diverged := false
	for seed := int64(0); seed < 20 && !diverged; seed++ {
		in := seededAlerts(t, seed, 300)
		batch := Simultaneous{T: 5 * time.Second}.Filter(in)
		keptBatch := map[uint64]bool{}
		for _, a := range batch {
			keptBatch[a.Record.Seq] = true
		}
		disordered := faultinject.Reorder(seed, 8*time.Second, in, func(a tag.Alert) time.Time { return a.Record.Time })
		s := NewStream(5 * time.Second)
		for _, a := range disordered {
			if s.Offer(a) != keptBatch[a.Record.Seq] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Skip("no seed disordered enough to fool the naive stream; weak but not wrong")
	}
}

// TestReorderingZeroValueAndZeroTime: zero-value Reordering works, and
// zero-time (corrupted-timestamp) alerts are decided immediately and
// kept without disturbing the watermark.
func TestReorderingZeroTime(t *testing.T) {
	var r Reordering
	r.Slack = 5 * time.Second
	c := cat(t, "PBS_CHK")
	zero := tag.Alert{Record: mk(c, "a", 0, 99).Record, Category: c}
	zero.Record.Time = time.Time{}
	ds := r.Offer(zero)
	if len(ds) != 1 || !ds[0].Keep {
		t.Fatal("zero-time alert must be decided immediately and kept")
	}
	// The watermark must be untouched: a normal alert buffers.
	if ds := r.Offer(mk(c, "a", 100, 0)); len(ds) != 0 {
		t.Error("watermark perturbed by zero-time alert")
	}
	if got := r.Flush(); len(got) != 1 {
		t.Errorf("flush = %d decisions, want 1", len(got))
	}
}

// TestStreamZeroTimeDefense is the satellite fix: a zero Record.Time
// must not poison s.last (which would clear the window table on every
// subsequent alert and un-filter genuine redundancy).
func TestStreamZeroTimeDefense(t *testing.T) {
	s := NewStream(5 * time.Second)
	c := cat(t, "PBS_CHK")
	if !s.Offer(mk(c, "a", 0, 0)) {
		t.Fatal("first alert must survive")
	}
	corruptAlert := mk(c, "a", 0, 1)
	corruptAlert.Record.Time = time.Time{}
	if !s.Offer(corruptAlert) {
		t.Error("zero-time alert must be kept (no basis to drop)")
	}
	// The next in-window repeat must still be dropped: if the zero time
	// had been folded into s.last, the 2s alert would look like it
	// arrived an epoch later and the table would have been cleared.
	if s.Offer(mk(c, "a", 2, 2)) {
		t.Error("in-window repeat survived: zero time poisoned the filter state")
	}
}
