package filter

import (
	"time"

	"whatsupersay/internal/tag"
)

// Tuple implements the classic event-tupling scheme of Tsao (and the
// comparative study of Buckley & Siewiorek the paper builds on, refs [4]
// and [26]): events are grouped into tuples purely by temporal
// proximity — an event joins the current tuple if it arrives within T of
// the tuple's *last* event, regardless of category or source — and each
// tuple is reduced to its first event.
//
// Tupling predates category-aware filtering and over-coalesces by
// construction: unrelated failures that happen to be close in time merge
// into one tuple. It is included as the historical baseline the paper's
// Algorithm 3.1 improves on.
type Tuple struct {
	T time.Duration
}

// Name implements Algorithm.
func (f Tuple) Name() string { return "tuple" }

// Filter keeps the first alert of each tuple.
func (f Tuple) Filter(alerts []tag.Alert) []tag.Alert {
	var out []tag.Alert
	for _, group := range f.Tuples(alerts) {
		out = append(out, group[0])
	}
	return out
}

// Tuples returns the tuple groups themselves, for analyses that want the
// groups rather than representatives. The input must be time-sorted;
// groups preserve order.
func (f Tuple) Tuples(alerts []tag.Alert) [][]tag.Alert {
	t := f.T
	if t <= 0 {
		t = DefaultThreshold
	}
	var groups [][]tag.Alert
	var cur []tag.Alert
	var last time.Time
	for _, a := range alerts {
		ti := a.Record.Time
		if len(cur) > 0 && ti.Sub(last) >= t {
			groups = append(groups, cur)
			cur = nil
		}
		cur = append(cur, a)
		last = ti
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// TupleStats summarizes a tupling run, the quantities the comparative
// tupling literature reports.
type TupleStats struct {
	// Tuples is the number of groups.
	Tuples int
	// MaxSize and MeanSize describe group sizes.
	MaxSize  int
	MeanSize float64
	// Collisions counts tuples containing more than one category — the
	// over-coalescing failure mode category-aware filtering fixes.
	Collisions int
}

// AnalyzeTuples computes tupling statistics over an alert stream.
func (f Tuple) AnalyzeTuples(alerts []tag.Alert) TupleStats {
	groups := f.Tuples(alerts)
	st := TupleStats{Tuples: len(groups)}
	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) > st.MaxSize {
			st.MaxSize = len(g)
		}
		cats := map[string]bool{}
		for _, a := range g {
			cats[a.Category.Name] = true
		}
		if len(cats) > 1 {
			st.Collisions++
		}
	}
	if len(groups) > 0 {
		st.MeanSize = float64(total) / float64(len(groups))
	}
	return st
}
