// Package filter implements the redundancy-removal algorithms of Section
// 3.3: the paper's simultaneous spatio-temporal filter (Algorithm 3.1),
// the serial temporal-then-spatial baseline from prior BG/L work [Liang et
// al.], the individual temporal and spatial passes, and the per-category
// adaptive-threshold variant Section 4 recommends.
//
// "Filtering is used to reduce a related set of alerts to a single initial
// alert per failure; that is, to make the ratio of alerts to failures
// nearly one."
package filter

import (
	"time"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/tag"
)

// DefaultThreshold is the T = 5 s used throughout the paper, "in
// correspondence with previous work".
const DefaultThreshold = 5 * time.Second

// Batch-filter telemetry, folded in once per Filter call.
var (
	mFilterIn   = obs.Default.Counter("filter_alerts_in_total")
	mFilterKept = obs.Default.Counter("filter_alerts_kept_total")
)

// Algorithm filters a time-sorted alert stream, returning the survivors
// in order.
type Algorithm interface {
	// Name identifies the algorithm in reports and benches.
	Name() string
	// Filter returns the surviving alerts. The input must be sorted by
	// record time; the output preserves order. Implementations must not
	// mutate the input slice.
	Filter(alerts []tag.Alert) []tag.Alert
}

// categoryKey identifies an alert category within a system. Category
// names are unique per system, and streams are per-system, so the name
// suffices.
func categoryKey(a tag.Alert) string { return a.Category.Name }

// Simultaneous is Algorithm 3.1: an alert is redundant if *any* source,
// including its own, reported the same category within the last T
// seconds. The table X of last-report times is cleared wholesale whenever
// the stream goes quiet for more than T (the paper's incremental
// optimization, which keeps X small and the filter fast).
type Simultaneous struct {
	// T is the redundancy window.
	T time.Duration
}

// Name implements Algorithm.
func (f Simultaneous) Name() string { return "simultaneous" }

// Filter implements Algorithm 3.1 verbatim.
func (f Simultaneous) Filter(alerts []tag.Alert) []tag.Alert {
	sp := obs.Default.StartSpan("filter")
	t := f.T
	if t <= 0 {
		t = DefaultThreshold
	}
	x := make(map[string]time.Time) // last report time per category
	var out []tag.Alert
	var last time.Time
	for _, a := range alerts {
		ti := a.Record.Time
		if !last.IsZero() && ti.Sub(last) > t {
			clear(x)
		}
		last = ti
		ci := categoryKey(a)
		if prev, ok := x[ci]; ok && ti.Sub(prev) < t {
			x[ci] = ti
			continue
		}
		x[ci] = ti
		out = append(out, a)
	}
	sp.End()
	mFilterIn.Add(int64(len(alerts)))
	mFilterKept.Add(int64(len(out)))
	return out
}

// Temporal is the per-source temporal pass of the serial baseline: an
// alert is redundant if the *same* source reported the same category
// within T.
type Temporal struct {
	T time.Duration
}

// Name implements Algorithm.
func (f Temporal) Name() string { return "temporal" }

type srcCat struct {
	src, cat string
}

// Filter keeps the first report in each same-source run.
func (f Temporal) Filter(alerts []tag.Alert) []tag.Alert {
	t := f.T
	if t <= 0 {
		t = DefaultThreshold
	}
	x := make(map[srcCat]time.Time)
	var out []tag.Alert
	for _, a := range alerts {
		k := srcCat{src: a.Record.Source, cat: categoryKey(a)}
		ti := a.Record.Time
		if prev, ok := x[k]; ok && ti.Sub(prev) < t {
			x[k] = ti
			continue
		}
		x[k] = ti
		out = append(out, a)
	}
	return out
}

// Spatial is the cross-source pass of the serial baseline: an alert from
// source s is redundant if some *other* source reported the same category
// within T.
type Spatial struct {
	T time.Duration
}

// Name implements Algorithm.
func (f Spatial) Name() string { return "spatial" }

// spatialState tracks, per category, the most recent report and the most
// recent report from a different source than that one — enough to answer
// "did any source other than s report within T?".
type spatialState struct {
	lastTime  time.Time
	lastSrc   string
	otherTime time.Time // most recent report from a source != lastSrc
}

// Filter removes cross-source repeats.
func (f Spatial) Filter(alerts []tag.Alert) []tag.Alert {
	t := f.T
	if t <= 0 {
		t = DefaultThreshold
	}
	x := make(map[string]*spatialState)
	var out []tag.Alert
	for _, a := range alerts {
		ci := categoryKey(a)
		ti := a.Record.Time
		src := a.Record.Source
		st := x[ci]
		redundant := false
		if st != nil {
			// Another source reported recently if the latest report came
			// from a different source, or the latest same-source report
			// is shadowed by a recent other-source report.
			if st.lastSrc != src && ti.Sub(st.lastTime) < t {
				redundant = true
			} else if st.lastSrc == src && !st.otherTime.IsZero() && ti.Sub(st.otherTime) < t {
				redundant = true
			}
		}
		if st == nil {
			st = &spatialState{}
			x[ci] = st
		}
		if st.lastSrc != src {
			st.otherTime = st.lastTime
		}
		st.lastTime = ti
		st.lastSrc = src
		if !redundant {
			out = append(out, a)
		}
	}
	return out
}

// Serial is the prior-work baseline: temporal filtering followed by
// spatial filtering, applied serially [Liang et al. 2005, 2006]. Section
// 3.3.2 describes its failure mode: "the temporal filter removes messages
// that the spatial filter would have used as cues that the failure had
// already been reported by another source."
type Serial struct {
	T time.Duration
}

// Name implements Algorithm.
func (f Serial) Name() string { return "serial" }

// Filter runs the two passes in sequence.
func (f Serial) Filter(alerts []tag.Alert) []tag.Alert {
	return Spatial{T: f.T}.Filter(Temporal{T: f.T}.Filter(alerts))
}

// Adaptive is the Section 4 recommendation: "each alert category may
// require a different threshold". It runs the simultaneous filter with a
// per-category window, falling back to Default for unlisted categories.
type Adaptive struct {
	// Thresholds maps category name to its window.
	Thresholds map[string]time.Duration
	// Default applies to categories not in Thresholds.
	Default time.Duration
}

// Name implements Algorithm.
func (f Adaptive) Name() string { return "adaptive" }

// window returns the effective threshold for a category.
func (f Adaptive) window(cat string) time.Duration {
	if t, ok := f.Thresholds[cat]; ok && t > 0 {
		return t
	}
	if f.Default > 0 {
		return f.Default
	}
	return DefaultThreshold
}

// Filter is Algorithm 3.1 with per-category windows. The wholesale-clear
// optimization only applies when the stream goes quiet for longer than the
// largest window.
func (f Adaptive) Filter(alerts []tag.Alert) []tag.Alert {
	maxT := f.window("")
	for _, t := range f.Thresholds {
		if t > maxT {
			maxT = t
		}
	}
	x := make(map[string]time.Time)
	var out []tag.Alert
	var last time.Time
	for _, a := range alerts {
		ti := a.Record.Time
		if !last.IsZero() && ti.Sub(last) > maxT {
			clear(x)
		}
		last = ti
		ci := categoryKey(a)
		t := f.window(ci)
		if prev, ok := x[ci]; ok && ti.Sub(prev) < t {
			x[ci] = ti
			continue
		}
		x[ci] = ti
		out = append(out, a)
	}
	return out
}

// Stats summarizes one filtering run.
type Stats struct {
	Input, Output, Removed int
}

// Run applies an algorithm and reports stats alongside the survivors.
func Run(alg Algorithm, alerts []tag.Alert) ([]tag.Alert, Stats) {
	out := alg.Filter(alerts)
	return out, Stats{Input: len(alerts), Output: len(out), Removed: len(alerts) - len(out)}
}
