package filter

import (
	"testing"
	"time"

	"whatsupersay/internal/tag"
)

func TestTupleGrouping(t *testing.T) {
	c := cat(t, "PBS_CHK")
	flat := []tag.Alert{
		mk(c, "a", 0, 0), mk(c, "a", 2, 1), mk(c, "b", 4, 2), // one tuple
		mk(c, "a", 20, 3), // second tuple
	}
	groups := Tuple{T: 5 * time.Second}.Tuples(flat)
	if len(groups) != 2 {
		t.Fatalf("tuples = %d, want 2", len(groups))
	}
	if len(groups[0]) != 3 || len(groups[1]) != 1 {
		t.Errorf("tuple sizes = %d/%d", len(groups[0]), len(groups[1]))
	}
}

func TestTupleFilterKeepsFirst(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mk(c, "a", 0, 0), mk(c, "a", 2, 1), mk(c, "a", 30, 2)}
	out := Tuple{T: 5 * time.Second}.Filter(in)
	if len(out) != 2 {
		t.Fatalf("survivors = %d, want 2", len(out))
	}
	if out[0].Record.Seq != 0 || out[1].Record.Seq != 2 {
		t.Error("tuple representatives wrong")
	}
}

// TestTupleOverCoalesces demonstrates the failure mode category-aware
// filtering fixes: two unrelated categories close in time merge into one
// tuple, so one of them vanishes from the filtered stream.
func TestTupleOverCoalesces(t *testing.T) {
	chk := cat(t, "PBS_CHK")
	par := cat(t, "GM_PAR")
	in := []tag.Alert{mk(chk, "a", 0, 0), mk(par, "b", 2, 1)}
	tupled := Tuple{T: 5 * time.Second}.Filter(in)
	if len(tupled) != 1 {
		t.Fatalf("tuple survivors = %d, want 1 (over-coalesced)", len(tupled))
	}
	simult := Simultaneous{T: 5 * time.Second}.Filter(in)
	if len(simult) != 2 {
		t.Fatalf("simultaneous survivors = %d, want 2 (category-aware)", len(simult))
	}
}

func TestTupleSlidingWindow(t *testing.T) {
	c := cat(t, "PBS_CHK")
	// 3s drizzle spanning 60s: one tuple (window slides with each event).
	var in []tag.Alert
	for i := 0; i < 20; i++ {
		in = append(in, mk(c, "n", float64(i)*3, uint64(i)))
	}
	if groups := (Tuple{T: 5 * time.Second}).Tuples(in); len(groups) != 1 {
		t.Errorf("tuples = %d, want 1", len(groups))
	}
	// Gap exactly T starts a new tuple (>= T boundary).
	in2 := []tag.Alert{mk(c, "n", 0, 0), mk(c, "n", 5, 1)}
	if groups := (Tuple{T: 5 * time.Second}).Tuples(in2); len(groups) != 2 {
		t.Errorf("boundary tuples = %d, want 2", len(groups))
	}
}

func TestAnalyzeTuples(t *testing.T) {
	chk := cat(t, "PBS_CHK")
	par := cat(t, "GM_PAR")
	in := []tag.Alert{
		mk(chk, "a", 0, 0), mk(par, "a", 1, 1), // collision tuple
		mk(chk, "a", 100, 2), mk(chk, "b", 101, 3), mk(chk, "c", 102, 4), // clean tuple
		mk(par, "d", 500, 5), // singleton
	}
	st := Tuple{T: 5 * time.Second}.AnalyzeTuples(in)
	if st.Tuples != 3 {
		t.Fatalf("tuples = %d, want 3", st.Tuples)
	}
	if st.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", st.Collisions)
	}
	if st.MaxSize != 3 {
		t.Errorf("max size = %d, want 3", st.MaxSize)
	}
	if st.MeanSize != 2 {
		t.Errorf("mean size = %v, want 2", st.MeanSize)
	}
}

func TestTupleEmpty(t *testing.T) {
	if out := (Tuple{}).Filter(nil); len(out) != 0 {
		t.Error("empty input")
	}
	st := (Tuple{}).AnalyzeTuples(nil)
	if st.Tuples != 0 || st.MeanSize != 0 {
		t.Error("empty stats")
	}
	if (Tuple{}).Name() != "tuple" {
		t.Error("name")
	}
}
