package filter

import (
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

// mkInc builds an alert whose Seq encodes its ground-truth incident.
func mkInc(c *catalog.Category, incident int64, offsetSec float64, seq uint64) tag.Alert {
	return tag.Alert{
		Record: logrec.Record{
			Time:   t0.Add(time.Duration(offsetSec * float64(time.Second))),
			Source: "n",
			Seq:    seq,
		},
		Category: c,
	}
}

func TestEvaluatePerfectFilter(t *testing.T) {
	c := cat(t, "PBS_CHK")
	incidents := map[uint64]int64{0: 1, 1: 1, 2: 2}
	in := []tag.Alert{
		mkInc(c, 1, 0, 0), mkInc(c, 1, 2, 1), mkInc(c, 2, 100, 2),
	}
	out := []tag.Alert{in[0], in[2]} // one survivor per incident
	fn := func(a tag.Alert) (int64, bool) {
		id, ok := incidents[a.Record.Seq]
		return id, ok
	}
	acc := Evaluate(in, out, fn)
	if acc.Incidents != 2 || acc.Detected != 2 || acc.MissedIncidents != 0 || acc.RedundantKept != 0 {
		t.Errorf("accuracy = %+v", acc)
	}
	if acc.AlertsPerFailure() != 1 {
		t.Errorf("alerts/failure = %v, want 1", acc.AlertsPerFailure())
	}
}

func TestEvaluateMissedIncident(t *testing.T) {
	c := cat(t, "PBS_CHK")
	incidents := map[uint64]int64{0: 1, 1: 2}
	in := []tag.Alert{mkInc(c, 1, 0, 0), mkInc(c, 2, 1, 1)}
	out := []tag.Alert{in[0]} // incident 2 entirely removed
	fn := func(a tag.Alert) (int64, bool) {
		id, ok := incidents[a.Record.Seq]
		return id, ok
	}
	acc := Evaluate(in, out, fn)
	if acc.MissedIncidents != 1 {
		t.Errorf("missed = %d, want 1 (the sn325 case)", acc.MissedIncidents)
	}
	if acc.Detected != 1 {
		t.Errorf("detected = %d, want 1", acc.Detected)
	}
}

func TestEvaluateRedundantKept(t *testing.T) {
	c := cat(t, "PBS_CHK")
	incidents := map[uint64]int64{0: 1, 1: 1, 2: 1}
	in := []tag.Alert{mkInc(c, 1, 0, 0), mkInc(c, 1, 10, 1), mkInc(c, 1, 20, 2)}
	out := in // nothing filtered
	fn := func(a tag.Alert) (int64, bool) {
		id, ok := incidents[a.Record.Seq]
		return id, ok
	}
	acc := Evaluate(in, out, fn)
	if acc.RedundantKept != 2 {
		t.Errorf("redundant kept = %d, want 2", acc.RedundantKept)
	}
	if apf := acc.AlertsPerFailure(); apf != 3 {
		t.Errorf("alerts/failure = %v, want 3", apf)
	}
}

func TestEvaluateUnknownIncidentsIgnored(t *testing.T) {
	c := cat(t, "PBS_CHK")
	in := []tag.Alert{mkInc(c, 0, 0, 0)}
	out := in
	fn := func(tag.Alert) (int64, bool) { return 0, false }
	acc := Evaluate(in, out, fn)
	if acc.Incidents != 0 || acc.Detected != 0 || acc.MissedIncidents != 0 {
		t.Errorf("unknown incidents must not be counted: %+v", acc)
	}
	if acc.Survivors != 1 {
		t.Error("survivors still counted")
	}
	if acc.AlertsPerFailure() != 0 {
		t.Error("alerts/failure with zero detected must be 0")
	}
}
