package filter_test

import (
	"fmt"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

// ExampleSimultaneous demonstrates Algorithm 3.1: a storm of redundant
// reports from several nodes collapses to one alert per failure.
func ExampleSimultaneous() {
	chk, _ := catalog.Lookup(logrec.Liberty, "PBS_CHK")
	t0 := time.Date(2005, 3, 7, 12, 0, 0, 0, time.UTC)
	mk := func(node string, offset time.Duration, seq uint64) tag.Alert {
		return tag.Alert{
			Record:   logrec.Record{Time: t0.Add(offset), Source: node, Seq: seq},
			Category: chk,
		}
	}
	alerts := []tag.Alert{
		mk("ln1", 0, 0),                            // failure 1, first report
		mk("ln1", 2*time.Second, 1),                // redundant (same node)
		mk("ln2", 4*time.Second, 2),                // redundant (another node saw it)
		mk("ln1", 10*time.Minute, 3),               // failure 2
		mk("ln3", 10*time.Minute+3*time.Second, 4), // redundant
	}
	kept := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	for _, a := range kept {
		fmt.Printf("%s %s\n", a.Record.Time.Format("15:04:05"), a.Record.Source)
	}
	// Output:
	// 12:00:00 ln1
	// 12:10:00 ln1
}

// ExampleTuple shows the historical tupling baseline over-coalescing two
// unrelated categories that happen to be close in time.
func ExampleTuple() {
	chk, _ := catalog.Lookup(logrec.Liberty, "PBS_CHK")
	par, _ := catalog.Lookup(logrec.Liberty, "GM_PAR")
	t0 := time.Date(2005, 3, 7, 12, 0, 0, 0, time.UTC)
	alerts := []tag.Alert{
		{Record: logrec.Record{Time: t0, Source: "ln1", Seq: 0}, Category: chk},
		{Record: logrec.Record{Time: t0.Add(2 * time.Second), Source: "ln9", Seq: 1}, Category: par},
	}
	fmt.Println("tuple keeps:", len(filter.Tuple{T: filter.DefaultThreshold}.Filter(alerts)))
	fmt.Println("simultaneous keeps:", len(filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)))
	// Output:
	// tuple keeps: 1
	// simultaneous keeps: 2
}
