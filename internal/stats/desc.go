// Package stats implements the statistical machinery of Section 4:
// interarrival extraction, linear and logarithmic histograms, exponential
// and lognormal maximum-likelihood fits with goodness-of-fit tests (the
// paper fits these families and finds "heavy tails result in very poor
// statistical goodness-of-fit metrics"), time-series bucketing and
// change-point detection (Figure 2(a)'s regime shifts), per-source
// rankings (Figure 2(b)), and cross-category correlation (Figure 3).
package stats

import (
	"math"
	"sort"
	"time"
)

// Interarrivals returns the successive gaps of a time-sorted event
// sequence, in seconds. n events yield n-1 gaps; gaps of zero are
// preserved (they are common at one-second log granularity and are part
// of the story in Figure 6).
func Interarrivals(times []time.Time) []float64 {
	if len(times) < 2 {
		return nil
	}
	out := make([]float64, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		out = append(out, times[i].Sub(times[i-1]).Seconds())
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// points).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the sample median (0 for empty input).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles returns the percentile for each p in ps. Results are
// identical to calling Percentile per value; the difference is cost —
// one copy-and-sort shared across all of them instead of one per
// quantile, which is what dominates when several quantiles are asked
// of a large sample.
func Percentiles(xs []float64, ps []float64) []float64 {
	if len(ps) == 0 {
		return nil
	}
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

// percentileSorted interpolates the p-th percentile from an
// already-sorted, non-empty sample.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the smallest value (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ECDF returns the empirical CDF evaluated at x for a sorted sample.
func ECDF(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// Number of points ≤ x.
	n := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(sorted))
}
