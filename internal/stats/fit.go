package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit or test needs more points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Distribution is a fitted one-dimensional distribution.
type Distribution interface {
	// Name identifies the family.
	Name() string
	// CDF evaluates the cumulative distribution at x.
	CDF(x float64) float64
	// Params returns the fitted parameters for reporting.
	Params() map[string]float64
}

// Exponential is an exponential distribution with rate Lambda.
type Exponential struct {
	Lambda float64
}

// Name implements Distribution.
func (e Exponential) Name() string { return "exponential" }

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*x)
}

// Params implements Distribution.
func (e Exponential) Params() map[string]float64 {
	return map[string]float64{"lambda": e.Lambda}
}

// FitExponential fits by maximum likelihood (lambda = 1/mean) over the
// positive values of xs.
func FitExponential(xs []float64) (Exponential, error) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += x
			n++
		}
	}
	if n == 0 || sum == 0 {
		return Exponential{}, ErrInsufficientData
	}
	return Exponential{Lambda: float64(n) / sum}, nil
}

// Lognormal is a lognormal distribution: ln X ~ Normal(Mu, Sigma).
type Lognormal struct {
	Mu, Sigma float64
}

// Name implements Distribution.
func (l Lognormal) Name() string { return "lognormal" }

// CDF implements Distribution.
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if l.Sigma == 0 {
		if math.Log(x) < l.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Params implements Distribution.
func (l Lognormal) Params() map[string]float64 {
	return map[string]float64{"mu": l.Mu, "sigma": l.Sigma}
}

// FitLognormal fits by maximum likelihood over the positive values of xs
// (mu and sigma are the mean and standard deviation of the logs).
func FitLognormal(xs []float64) (Lognormal, error) {
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			logs = append(logs, math.Log(x))
		}
	}
	if len(logs) < 2 {
		return Lognormal{}, ErrInsufficientData
	}
	mu := Mean(logs)
	// MLE sigma uses the population variance of the logs.
	sum := 0.0
	for _, l := range logs {
		d := l - mu
		sum += d * d
	}
	return Lognormal{Mu: mu, Sigma: math.Sqrt(sum / float64(len(logs)))}, nil
}

// KSResult is the Kolmogorov-Smirnov one-sample test outcome.
type KSResult struct {
	// D is the KS statistic: the supremum gap between the empirical and
	// fitted CDFs.
	D float64
	// N is the sample size used.
	N int
	// PValue is the asymptotic Kolmogorov p-value (small means the fit
	// is rejected — the paper's "very poor statistical goodness-of-fit
	// metrics" case).
	PValue float64
}

// KSTest computes the one-sample KS statistic of xs against dist.
func KSTest(xs []float64, dist Distribution) (KSResult, error) {
	pos := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return KSResult{}, ErrInsufficientData
	}
	sort.Float64s(pos)
	n := float64(len(pos))
	d := 0.0
	for i, x := range pos {
		f := dist.CDF(x)
		dPlus := (float64(i)+1)/n - f
		dMinus := f - float64(i)/n
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	return KSResult{D: d, N: len(pos), PValue: ksPValue(d, len(pos))}, nil
}

// ksPValue is the asymptotic Kolmogorov distribution tail probability.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	lambda := (math.Sqrt(float64(n)) + 0.12 + 0.11/math.Sqrt(float64(n))) * d
	// Series sum_{k=1..} (-1)^{k-1} 2 exp(-2 k^2 lambda^2).
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := 2 * math.Exp(-2*float64(k*k)*lambda*lambda)
		if k%2 == 0 {
			term = -term
		}
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// ChiSquareResult is the binned chi-square goodness-of-fit outcome.
type ChiSquareResult struct {
	// Stat is the chi-square statistic over the occupied bins.
	Stat float64
	// DF is degrees of freedom (bins - 1 - fitted params).
	DF int
	// PValue is the upper-tail probability.
	PValue float64
}

// ChiSquareTest bins the sample into nBins equal-probability bins under
// dist and computes the chi-square statistic. params is the number of
// fitted parameters (consumed degrees of freedom).
func ChiSquareTest(xs []float64, dist Distribution, nBins, params int) (ChiSquareResult, error) {
	pos := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) < nBins*5 || nBins < 2 {
		return ChiSquareResult{}, ErrInsufficientData
	}
	sort.Float64s(pos)
	n := len(pos)
	expected := float64(n) / float64(nBins)
	// Bin edges at the fitted distribution's quantiles, found by scanning
	// the sorted sample against the CDF.
	counts := make([]int, nBins)
	for _, x := range pos {
		b := int(dist.CDF(x) * float64(nBins))
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := nBins - 1 - params
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{Stat: stat, DF: df, PValue: chiSquareTail(stat, df)}, nil
}

// chiSquareTail returns P(X > stat) for a chi-square with df degrees of
// freedom, via the regularized upper incomplete gamma function.
func chiSquareTail(stat float64, df int) float64 {
	if stat <= 0 {
		return 1
	}
	return upperIncompleteGammaRegularized(float64(df)/2, stat/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) using the
// series for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style).
func upperIncompleteGammaRegularized(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaCF(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaCF(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
