package stats_test

import (
	"fmt"
	"math/rand"
	"time"

	"whatsupersay/internal/stats"
)

// ExampleFitExponential fits the interarrival model of Figure 5 to a
// synthetic Poisson sample and tests the fit.
func ExampleFitExponential() {
	rng := rand.New(rand.NewSource(1))
	gaps := make([]float64, 5000)
	for i := range gaps {
		gaps[i] = rng.ExpFloat64() * 3600 // mean one hour
	}
	fit, _ := stats.FitExponential(gaps)
	res, _ := stats.KSTest(gaps, fit)
	fmt.Printf("lambda within 5%% of 1/3600: %v\n", fit.Lambda > 0.95/3600 && fit.Lambda < 1.05/3600)
	fmt.Printf("fit rejected at 1%%: %v\n", res.PValue < 0.01)
	// Output:
	// lambda within 5% of 1/3600: true
	// fit rejected at 1%: false
}

// ExampleDetectChangePoints finds the Figure 2(a)-style regime shift in
// an hourly count series.
func ExampleDetectChangePoints() {
	counts := make([]int, 400)
	for i := range counts {
		if i < 150 {
			counts[i] = 20
		} else {
			counts[i] = 50 // the OS upgrade
		}
	}
	cps := stats.DetectChangePoints(counts, 2, 10)
	for _, cp := range cps {
		fmt.Printf("shift at hour %d: %.0f -> %.0f\n", cp.Index, cp.Before, cp.After)
	}
	// Output:
	// shift at hour 150: 20 -> 50
}

// ExampleSpatialCorrelation separates a job-coupled failure (many nodes
// within seconds) from an independent one.
func ExampleSpatialCorrelation() {
	base := time.Date(2005, 11, 9, 0, 0, 0, 0, time.UTC)
	var coupled []stats.SpatialEvent
	for job := 0; job < 50; job++ {
		at := base.Add(time.Duration(job) * 6 * time.Hour)
		for k := 0; k < 4; k++ {
			coupled = append(coupled, stats.SpatialEvent{
				Time:   at.Add(time.Duration(k) * time.Second),
				Source: fmt.Sprintf("tn%d", job*4+k),
			})
		}
	}
	score := stats.SpatialCorrelation(coupled, 30*time.Second)
	fmt.Printf("multi-source share: %.2f, mean sources per cluster: %.1f\n", score.Index(), score.MeanSources)
	// Output:
	// multi-source share: 1.00, mean sources per cluster: 4.0
}
