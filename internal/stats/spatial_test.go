package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSpatialCorrelationSeparatesProcesses(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(1))

	// Independent per-node process (ECC-like): singleton events hours
	// apart on random nodes.
	var indep []SpatialEvent
	tm := base
	for i := 0; i < 200; i++ {
		tm = tm.Add(time.Duration(1+rng.Intn(10)) * time.Hour)
		indep = append(indep, SpatialEvent{Time: tm, Source: nodeNameT(rng)})
	}
	// Job-coupled process (CPU-clock-like): groups of 4 nodes reporting
	// within seconds.
	var coupled []SpatialEvent
	tm = base
	for i := 0; i < 100; i++ {
		tm = tm.Add(time.Duration(1+rng.Intn(10)) * time.Hour)
		for k := 0; k < 4; k++ {
			coupled = append(coupled, SpatialEvent{
				Time:   tm.Add(time.Duration(k) * time.Second),
				Source: nodeNameT(rng),
			})
		}
	}
	si := SpatialCorrelation(indep, 30*time.Second)
	sc := SpatialCorrelation(coupled, 30*time.Second)
	if si.Index() > 0.1 {
		t.Errorf("independent process index = %.2f, want ~0", si.Index())
	}
	if sc.Index() < 0.8 {
		t.Errorf("coupled process index = %.2f, want ~1", sc.Index())
	}
	if sc.MeanSources < 3 {
		t.Errorf("coupled mean sources = %.1f, want ~4", sc.MeanSources)
	}
}

func nodeNameT(rng *rand.Rand) string {
	return "tn" + string(rune('0'+rng.Intn(10))) + string(rune('0'+rng.Intn(10)))
}

func TestSpatialCorrelationEdge(t *testing.T) {
	if s := SpatialCorrelation(nil, time.Second); s.Windows != 0 || s.Index() != 0 {
		t.Error("empty input")
	}
	one := []SpatialEvent{{Time: time.Now(), Source: "a"}}
	s := SpatialCorrelation(one, time.Second)
	if s.Windows != 1 || s.MultiSourceWindows != 0 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestFitWeibullRecoverParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Inverse-CDF sampling: x = lambda * (-ln U)^(1/k).
	sample := func(k, lambda float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = lambda * math.Pow(-math.Log(rng.Float64()), 1/k)
		}
		return out
	}
	cases := []struct{ k, lambda float64 }{
		{0.7, 100}, // infant mortality
		{1.0, 50},  // exponential
		{2.5, 10},  // wear-out
	}
	for _, tc := range cases {
		xs := sample(tc.k, tc.lambda, 20000)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatalf("k=%v: %v", tc.k, err)
		}
		if math.Abs(fit.K-tc.k) > 0.05*tc.k+0.02 {
			t.Errorf("k = %.3f, want %.3f", fit.K, tc.k)
		}
		if math.Abs(fit.Lambda-tc.lambda) > 0.05*tc.lambda {
			t.Errorf("lambda = %.3f, want %.3f", fit.Lambda, tc.lambda)
		}
	}
}

func TestWeibullCDF(t *testing.T) {
	w := Weibull{K: 1, Lambda: 10} // reduces to Exponential(1/10)
	e := Exponential{Lambda: 0.1}
	for _, x := range []float64{0.1, 1, 5, 20, 100} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("Weibull(k=1) CDF(%v) = %v, want exponential %v", x, w.CDF(x), e.CDF(x))
		}
	}
	if w.CDF(0) != 0 || w.CDF(-1) != 0 {
		t.Error("CDF must be 0 for x <= 0")
	}
	if w.Name() != "weibull" || w.Params()["k"] != 1 {
		t.Error("metadata")
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{0, -1}); err == nil {
		t.Error("no positive data must error")
	}
	if _, err := FitWeibull([]float64{5}); err == nil {
		t.Error("one point must error")
	}
}

func TestWeibullKSIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = 20 * math.Pow(-math.Log(rng.Float64()), 1/1.8)
	}
	fit, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KSTest(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("Weibull fit rejected on Weibull data: D=%v p=%v", res.D, res.PValue)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly periodic series: strong correlation at the period.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 4)
	}
	ac := Autocorrelation(xs, 8)
	if math.Abs(ac[0]-1) > 1e-12 {
		t.Errorf("lag-0 = %v, want 1", ac[0])
	}
	if ac[4] < 0.9 {
		t.Errorf("lag-4 (period) = %v, want ~1", ac[4])
	}
	if ac[2] > 0 {
		t.Errorf("lag-2 (anti-phase) = %v, want negative", ac[2])
	}
	// White noise: small at all positive lags.
	rng := rand.New(rand.NewSource(4))
	ys := make([]float64, 5000)
	for i := range ys {
		ys[i] = rng.NormFloat64()
	}
	for lag, v := range Autocorrelation(ys, 5) {
		if lag == 0 {
			continue
		}
		if math.Abs(v) > 0.05 {
			t.Errorf("white noise lag-%d = %v", lag, v)
		}
	}
	// Degenerate inputs.
	if Autocorrelation([]float64{1, 1, 1}, 2)[0] != 0 {
		t.Error("constant series must give zeros")
	}
	if len(Autocorrelation(nil, 3)) != 4 {
		t.Error("output length must be maxLag+1")
	}
}

func TestFanoFactor(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := base.AddDate(0, 0, 10)
	rng := rand.New(rand.NewSource(5))

	// Poisson process: Fano ~ 1.
	var poisson []time.Time
	tm := base
	for {
		tm = tm.Add(time.Duration(rng.ExpFloat64() * float64(10*time.Minute)))
		if !tm.Before(end) {
			break
		}
		poisson = append(poisson, tm)
	}
	if f := FanoFactor(poisson, base, end, time.Hour); f < 0.6 || f > 1.6 {
		t.Errorf("Poisson Fano = %.2f, want ~1", f)
	}

	// Bursty process: all events in a few hours → Fano >> 1.
	var bursty []time.Time
	for i := 0; i < len(poisson); i++ {
		bursty = append(bursty, base.Add(time.Duration(rng.Intn(7200))*time.Second))
	}
	if f := FanoFactor(bursty, base, end, time.Hour); f < 10 {
		t.Errorf("bursty Fano = %.2f, want >> 1", f)
	}
	if FanoFactor(nil, base, end, time.Hour) != 0 {
		t.Error("empty input")
	}
}
