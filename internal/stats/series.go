package stats

import (
	"math"
	"sort"
	"time"
)

// BucketCounts buckets event times into fixed intervals over [start, end),
// the view of Figure 2(a) ("The number of messages, bucketed by hour").
// Events outside the window are ignored.
func BucketCounts(times []time.Time, start, end time.Time, width time.Duration) []int {
	if width <= 0 || !start.Before(end) {
		return nil
	}
	n := int(end.Sub(start) / width)
	if end.Sub(start)%width != 0 {
		n++
	}
	counts := make([]int, n)
	for _, t := range times {
		if t.Before(start) || !t.Before(end) {
			continue
		}
		counts[int(t.Sub(start)/width)]++
	}
	return counts
}

// SourceCount pairs a source with its message count.
type SourceCount struct {
	Source string
	Count  int
}

// RankSources tallies counts per source and returns them sorted in
// descending count (ties by name), the ordering of Figure 2(b).
func RankSources(sources []string) []SourceCount {
	tally := make(map[string]int)
	for _, s := range sources {
		tally[s]++
	}
	out := make([]SourceCount, 0, len(tally))
	for s, c := range tally {
		out = append(out, SourceCount{Source: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// ChangePoint is one detected shift in a count series.
type ChangePoint struct {
	// Index is the bucket at which the new regime begins.
	Index int
	// Before and After are the mean levels on each side.
	Before, After float64
	// Score is the normalized two-sample t-like statistic of the split.
	Score float64
}

// DetectChangePoints finds up to maxPoints abrupt level shifts in a count
// series by recursive binary segmentation: each step picks the split that
// maximizes the standardized mean difference, and recurses into both
// halves while the score stays at or above minScore. This recovers the
// regime shifts of Figure 2(a) — the paper's example is the Liberty OS
// upgrade that "instantaneously increased the average message traffic".
// Results are sorted by index.
func DetectChangePoints(counts []int, maxPoints int, minScore float64) []ChangePoint {
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	var out []ChangePoint
	segment(xs, 0, &out, maxPoints, minScore)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// segment recursively splits xs (which begins at absolute offset off).
func segment(xs []float64, off int, out *[]ChangePoint, budget int, minScore float64) {
	if budget <= 0 || len(*out) >= budget {
		return
	}
	cp, ok := bestSplit(xs, minScore)
	if !ok {
		return
	}
	cp.Index += off
	*out = append(*out, cp)
	local := cp.Index - off
	segment(xs[:local], off, out, budget, minScore)
	segment(xs[local:], cp.Index, out, budget, minScore)
}

// minSegment is the smallest segment length considered on each side of a
// split; splits closer to an edge are noise at hourly resolution.
const minSegment = 8

// bestSplit finds the single best split of xs, if any scores at least
// minScore.
func bestSplit(xs []float64, minScore float64) (ChangePoint, bool) {
	n := len(xs)
	if n < 2*minSegment {
		return ChangePoint{}, false
	}
	// Prefix sums for O(1) segment means.
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
		prefixSq[i+1] = prefixSq[i] + x*x
	}
	best := ChangePoint{}
	found := false
	for k := minSegment; k <= n-minSegment; k++ {
		nl, nr := float64(k), float64(n-k)
		ml := prefix[k] / nl
		mr := (prefix[n] - prefix[k]) / nr
		vl := prefixSq[k]/nl - ml*ml
		vr := (prefixSq[n]-prefixSq[k])/nr - mr*mr
		se := math.Sqrt(vl/nl + vr/nr)
		if se == 0 {
			if ml == mr {
				continue
			}
			se = 1e-9
		}
		score := math.Abs(ml-mr) / se
		if score >= minScore && (!found || score > best.Score) {
			best = ChangePoint{Index: k, Before: ml, After: mr, Score: score}
			found = true
		}
	}
	return best, found
}

// PearsonCorrelation returns the Pearson correlation coefficient of two
// equal-length series (0 when degenerate).
func PearsonCorrelation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// CorrelateEventSeries bins two event-time sequences over a common window
// and returns their Pearson correlation — the quantitative form of the
// Figure 3 observation that GM_PAR and GM_LANAI "do not always follow"
// each other "but the correlation is clear".
func CorrelateEventSeries(a, b []time.Time, start, end time.Time, width time.Duration) float64 {
	ca := BucketCounts(a, start, end, width)
	cb := BucketCounts(b, start, end, width)
	fa := make([]float64, len(ca))
	fb := make([]float64, len(cb))
	for i := range ca {
		fa[i] = float64(ca[i])
	}
	for i := range cb {
		fb[i] = float64(cb[i])
	}
	return PearsonCorrelation(fa, fb)
}

// SpatialConcentration returns the fraction of events contributed by the
// top-k sources — the statistic behind "a single node was responsible for
// 643,925 of them" (Thunderbird VAPI) and "node sn373 logged ... more than
// half of all Spirit alerts".
func SpatialConcentration(sources []string, k int) float64 {
	ranked := RankSources(sources)
	if len(sources) == 0 || k <= 0 {
		return 0
	}
	top := 0
	for i := 0; i < k && i < len(ranked); i++ {
		top += ranked[i].Count
	}
	return float64(top) / float64(len(sources))
}
