package stats

import (
	"math/rand"
	"testing"
	"time"
)

func TestDetectPeriodOnCronLikeStream(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := base.AddDate(0, 0, 7)
	rng := rand.New(rand.NewSource(1))
	// Hourly cron with a little jitter.
	var times []time.Time
	for tm := base; tm.Before(end); tm = tm.Add(time.Hour) {
		times = append(times, tm.Add(time.Duration(rng.Intn(30))*time.Second))
	}
	res := DetectPeriod(times, base, end, time.Minute, 10, 26*60, 0.3)
	if !res.Periodic {
		t.Fatalf("hourly stream not detected as periodic: %+v", res)
	}
	if res.Period < 55*time.Minute || res.Period > 65*time.Minute {
		t.Errorf("period = %v, want ~1h", res.Period)
	}
}

func TestDetectPeriodOnPoissonStream(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := base.AddDate(0, 0, 7)
	rng := rand.New(rand.NewSource(2))
	var times []time.Time
	tm := base
	for {
		tm = tm.Add(time.Duration(rng.ExpFloat64() * float64(time.Hour)))
		if !tm.Before(end) {
			break
		}
		times = append(times, tm)
	}
	res := DetectPeriod(times, base, end, time.Minute, 10, 26*60, 0.3)
	if res.Periodic {
		t.Errorf("Poisson stream detected as periodic: %+v", res)
	}
}

func TestDetectPeriodDegenerate(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	if res := DetectPeriod(nil, base, base.Add(time.Hour), time.Minute, 1, 30, 0.3); res.Periodic {
		t.Error("empty stream")
	}
	if res := DetectPeriod(nil, base, base, time.Minute, 1, 30, 0.3); res.Period != 0 {
		t.Error("empty window")
	}
	if res := DetectPeriod(nil, base, base.Add(time.Hour), time.Minute, 5, 5, 0.3); res.Period != 0 {
		t.Error("bad lag range")
	}
}
