package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-4.571428571) > 1e-6 {
		t.Errorf("variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v, want 5", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("p25 = %v, want 2", p)
	}
	// Interpolation between order statistics.
	if p := Percentile([]float64{0, 10}, 50); p != 5 {
		t.Errorf("interp p50 = %v, want 5", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

// TestPercentilesMatchPercentile: the shared-sort batch form must be
// bit-identical to calling Percentile per value — the aggregate
// differential tests depend on the two being interchangeable.
func TestPercentilesMatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ps := []float64{-5, 0, 12.5, 50, 90, 99, 99.9, 100, 130}
	for _, n := range []int{1, 2, 3, 17, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		got := Percentiles(xs, ps)
		for i, p := range ps {
			if want := Percentile(xs, p); got[i] != want {
				t.Errorf("n=%d p=%v: Percentiles = %v, Percentile = %v", n, p, got[i], want)
			}
		}
	}
	if Percentiles(nil, ps) == nil || Percentiles([]float64{1}, nil) != nil {
		t.Error("degenerate shapes")
	}
	xs := []float64{5, 1, 3}
	Percentiles(xs, []float64{50})
	if xs[0] != 5 {
		t.Error("Percentiles sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max must be 0")
	}
}

func TestInterarrivals(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	times := []time.Time{base, base.Add(2 * time.Second), base.Add(2 * time.Second), base.Add(7 * time.Second)}
	gaps := Interarrivals(times)
	want := []float64{2, 0, 5}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap[%d] = %v, want %v", i, gaps[i], want[i])
		}
	}
	if Interarrivals(times[:1]) != nil {
		t.Error("single event has no gaps")
	}
}

func TestECDF(t *testing.T) {
	sorted := []float64{1, 2, 2, 3}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := ECDF(sorted, tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ECDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64, probe []float64) bool {
		if len(vals) == 0 {
			return true
		}
		sorted := append([]float64(nil), vals...)
		for i := range sorted {
			sorted[i] = math.Abs(sorted[i])
		}
		sortFloats(sorted)
		prev := -1.0
		probes := append([]float64(nil), probe...)
		sortFloats(probes)
		for _, x := range probes {
			v := ECDF(sorted, x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1, 5.5, 9.99, 10, 42}
	h := NewHistogram(xs, 0, 10, 10)
	if h.Under != 1 {
		t.Errorf("under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("bin center = %v, want 0.5", c)
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 10, 100, 1000, 1e9}
	h := NewLogHistogram(xs, 0, 4, 1)
	if h.Zero != 2 { // 0 and 0.5 below 10^0
		t.Errorf("zero bucket = %d, want 2", h.Zero)
	}
	if h.Over != 1 { // 1e9 beyond 10^4
		t.Errorf("over = %d, want 1", h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
	// Geometric bin center of the first decade bin with 1 bin/decade:
	// 10^0.5.
	if c := h.BinCenter(0); math.Abs(c-math.Sqrt(10)) > 1e-9 {
		t.Errorf("bin center = %v", c)
	}
}

func TestLogHistogramModes(t *testing.T) {
	// Bimodal: peaks near 10 s and near 10^4 s.
	var xs []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		xs = append(xs, math.Exp(rng.NormFloat64()*0.3+math.Log(10)))
		xs = append(xs, math.Exp(rng.NormFloat64()*0.3+math.Log(10000)))
	}
	h := NewLogHistogram(xs, 0, 7, 2)
	if m := h.Modes(1, 0.25); m != 2 {
		t.Errorf("bimodal sample: modes = %d, want 2", m)
	}
	// Unimodal.
	var ys []float64
	for i := 0; i < 1000; i++ {
		ys = append(ys, math.Exp(rng.NormFloat64()*0.4+math.Log(1000)))
	}
	h2 := NewLogHistogram(ys, 0, 7, 2)
	if m := h2.Modes(1, 0.25); m != 1 {
		t.Errorf("unimodal sample: modes = %d, want 1", m)
	}
}

func TestFitExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / 0.25 // lambda 0.25
	}
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.25) > 0.01 {
		t.Errorf("lambda = %v, want ~0.25", fit.Lambda)
	}
	if _, err := FitExponential([]float64{0, -1}); err == nil {
		t.Error("no positive data must error")
	}
	if fit.CDF(0) != 0 || fit.CDF(-5) != 0 {
		t.Error("CDF must be 0 at and below 0")
	}
	if c := fit.CDF(1 / fit.Lambda); math.Abs(c-(1-math.Exp(-1))) > 1e-9 {
		t.Errorf("CDF at mean = %v", c)
	}
}

func TestFitLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*0.7 + 2.0)
	}
	fit, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-2.0) > 0.03 || math.Abs(fit.Sigma-0.7) > 0.03 {
		t.Errorf("fit = %+v, want mu 2 sigma 0.7", fit)
	}
	// Median of lognormal is exp(mu).
	if c := fit.CDF(math.Exp(fit.Mu)); math.Abs(c-0.5) > 1e-9 {
		t.Errorf("CDF at median = %v, want 0.5", c)
	}
	if _, err := FitLognormal([]float64{1}); err == nil {
		t.Error("one point is not enough")
	}
}

func TestKSTestAcceptsMatchingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	fit, _ := FitExponential(xs)
	res, err := KSTest(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if res.D > 0.05 {
		t.Errorf("KS D = %v for matching data, want small", res.D)
	}
	if res.PValue < 0.01 {
		t.Errorf("p = %v for matching data, want not rejected", res.PValue)
	}
}

func TestKSTestRejectsMismatchedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Heavy-tailed lognormal data against an exponential fit: the
	// paper's "very poor statistical goodness-of-fit metrics" case.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*2 + 1)
	}
	fit, _ := FitExponential(xs)
	res, err := KSTest(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %v for mismatched data, want rejection", res.PValue)
	}
}

func TestChiSquareTest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 3
	}
	fit, _ := FitExponential(xs)
	res, err := ChiSquareTest(xs, fit, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 8 {
		t.Errorf("df = %d, want 8", res.DF)
	}
	if res.PValue < 0.001 {
		t.Errorf("chi-square rejected matching data: stat=%v p=%v", res.Stat, res.PValue)
	}
	// Mismatched data must be rejected.
	ys := make([]float64, 5000)
	for i := range ys {
		ys[i] = math.Exp(rng.NormFloat64()*2 + 1)
	}
	res2, err := ChiSquareTest(ys, fit, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PValue > 1e-6 {
		t.Errorf("chi-square accepted mismatched data: p=%v", res2.PValue)
	}
	if _, err := ChiSquareTest(xs[:10], fit, 10, 1); err == nil {
		t.Error("too-small sample must error")
	}
}

func TestBucketCounts(t *testing.T) {
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(3 * time.Hour)
	times := []time.Time{
		start, start.Add(30 * time.Minute), start.Add(90 * time.Minute),
		start.Add(-time.Hour),     // before window
		end.Add(10 * time.Minute), // after window
	}
	counts := BucketCounts(times, start, end, time.Hour)
	if len(counts) != 3 {
		t.Fatalf("buckets = %v", counts)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 0 {
		t.Errorf("counts = %v", counts)
	}
	if BucketCounts(times, end, start, time.Hour) != nil {
		t.Error("inverted window must be nil")
	}
}

func TestRankSources(t *testing.T) {
	ranked := RankSources([]string{"b", "a", "b", "c", "b", "a"})
	if ranked[0].Source != "b" || ranked[0].Count != 3 {
		t.Errorf("top = %+v", ranked[0])
	}
	if ranked[1].Source != "a" || ranked[2].Source != "c" {
		t.Errorf("order = %+v", ranked)
	}
}

func TestSpatialConcentration(t *testing.T) {
	srcs := []string{"sn373", "sn373", "sn373", "sn1", "sn2"}
	if got := SpatialConcentration(srcs, 1); got != 0.6 {
		t.Errorf("top-1 share = %v, want 0.6", got)
	}
	if got := SpatialConcentration(srcs, 2); got != 0.8 {
		t.Errorf("top-2 share = %v, want 0.8", got)
	}
	if SpatialConcentration(nil, 1) != 0 {
		t.Error("empty input")
	}
}

func TestDetectChangePointsStep(t *testing.T) {
	counts := make([]int, 200)
	for i := range counts {
		if i < 80 {
			counts[i] = 10
		} else {
			counts[i] = 40
		}
	}
	// Mild noise.
	rng := rand.New(rand.NewSource(7))
	for i := range counts {
		counts[i] += rng.Intn(5)
	}
	cps := DetectChangePoints(counts, 3, 10)
	if len(cps) == 0 {
		t.Fatal("no change point found for an obvious step")
	}
	best := cps[0]
	for _, cp := range cps {
		if cp.Score > best.Score {
			best = cp
		}
	}
	if best.Index < 75 || best.Index > 85 {
		t.Errorf("change point at %d, want ~80", best.Index)
	}
	if best.After < best.Before {
		t.Error("step is upward; After must exceed Before")
	}
}

func TestDetectChangePointsFlatSeries(t *testing.T) {
	counts := make([]int, 100)
	rng := rand.New(rand.NewSource(8))
	for i := range counts {
		counts[i] = 20 + rng.Intn(3)
	}
	if cps := DetectChangePoints(counts, 3, 30); len(cps) != 0 {
		t.Errorf("flat series produced change points: %+v", cps)
	}
	if cps := DetectChangePoints(counts[:5], 3, 1); len(cps) != 0 {
		t.Error("too-short series must yield nothing")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if c := PearsonCorrelation(a, b); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
	inv := []float64{10, 8, 6, 4, 2}
	if c := PearsonCorrelation(a, inv); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", c)
	}
	if PearsonCorrelation(a, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("constant series must give 0")
	}
	if PearsonCorrelation(a, b[:3]) != 0 {
		t.Error("length mismatch must give 0")
	}
}

func TestCorrelateEventSeries(t *testing.T) {
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 10)
	var a, b []time.Time
	// Correlated: b events shadow a events day by day.
	for day := 0; day < 10; day += 2 {
		for k := 0; k < 5; k++ {
			ts := start.AddDate(0, 0, day).Add(time.Duration(k) * time.Hour)
			a = append(a, ts)
			b = append(b, ts.Add(30*time.Minute))
		}
	}
	if c := CorrelateEventSeries(a, b, start, end, 24*time.Hour); c < 0.9 {
		t.Errorf("correlated series r = %v, want high", c)
	}
}
