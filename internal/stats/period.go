package stats

import "time"

// Period detection, after Ma & Hellerstein's "Mining partially periodic
// event patterns with unknown periods" (the paper's ref [12]): find the
// dominant recurrence period of an event stream from the autocorrelation
// of its bucketed counts. Periodic streams (cron chatter, polling
// daemons) show a sharp autocorrelation peak at their period; failure
// streams do not — a cheap way to separate scheduled chatter from
// genuine trouble when triaging unknown categories.

// PeriodResult is the outcome of period detection.
type PeriodResult struct {
	// Period is the detected recurrence interval (0 when none).
	Period time.Duration
	// Strength is the autocorrelation at the detected lag (0-1-ish;
	// higher is more periodic).
	Strength float64
	// Periodic reports whether the peak cleared the threshold.
	Periodic bool
}

// DetectPeriod buckets events at the given resolution and scans
// autocorrelation lags from minLag to maxLag buckets for the strongest
// peak; a peak at or above threshold is declared periodic. A typical
// call uses a one-minute bucket, lags spanning minutes to days, and a
// threshold near 0.3.
func DetectPeriod(times []time.Time, start, end time.Time, bucket time.Duration, minLag, maxLag int, threshold float64) PeriodResult {
	counts := BucketCounts(times, start, end, bucket)
	if len(counts) == 0 || maxLag <= minLag || minLag < 1 {
		return PeriodResult{}
	}
	if maxLag >= len(counts) {
		maxLag = len(counts) - 1
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	ac := Autocorrelation(xs, maxLag)
	best, bestLag := 0.0, 0
	for lag := minLag; lag <= maxLag && lag < len(ac); lag++ {
		// Require a local maximum so harmonics of shorter structure
		// don't masquerade as the period.
		if lag > 0 && lag+1 < len(ac) && (ac[lag] < ac[lag-1] || ac[lag] < ac[lag+1]) {
			continue
		}
		if ac[lag] > best {
			best, bestLag = ac[lag], lag
		}
	}
	if bestLag == 0 {
		return PeriodResult{}
	}
	return PeriodResult{
		Period:   time.Duration(bestLag) * bucket,
		Strength: best,
		Periodic: best >= threshold,
	}
}
