package stats

import (
	"math"
)

// Histogram is a fixed-width binned count of a sample.
type Histogram struct {
	// Lo is the left edge of the first bin; Width is each bin's width.
	Lo, Width float64
	// Counts holds per-bin counts; bin i covers [Lo+i*Width, Lo+(i+1)*Width).
	Counts []int
	// Under and Over count values outside the binned range.
	Under, Over int
}

// NewHistogram bins xs into n equal-width bins spanning [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		return &Histogram{Lo: lo, Width: 0}
	}
	h := &Histogram{Lo: lo, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			i := int((x - lo) / h.Width)
			if i >= n { // guard against float edge effects
				i = n - 1
			}
			h.Counts[i]++
		}
	}
	return h
}

// Total returns the in-range count.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// LogHistogram bins a positive-valued sample by log10, the view used in
// Figures 5(b) and 6 ("The log distribution of interarrival times").
// Values ≤ minPositive (including the zero gaps produced by one-second
// timestamps) are collected in the Zero bucket.
type LogHistogram struct {
	// MinExp is the exponent of the first bin; BinsPerDecade subdivides
	// each decade.
	MinExp        int
	BinsPerDecade int
	Counts        []int
	Zero          int
	Over          int
	maxExp        int
}

// NewLogHistogram bins xs into log10 buckets covering [10^minExp,
// 10^maxExp) with binsPerDecade bins per decade.
func NewLogHistogram(xs []float64, minExp, maxExp, binsPerDecade int) *LogHistogram {
	if maxExp <= minExp || binsPerDecade <= 0 {
		return &LogHistogram{MinExp: minExp, BinsPerDecade: 1, Counts: nil, maxExp: minExp}
	}
	n := (maxExp - minExp) * binsPerDecade
	h := &LogHistogram{MinExp: minExp, BinsPerDecade: binsPerDecade, Counts: make([]int, n), maxExp: maxExp}
	lo := math.Pow(10, float64(minExp))
	for _, x := range xs {
		if x < lo {
			h.Zero++
			continue
		}
		i := int((math.Log10(x) - float64(minExp)) * float64(binsPerDecade))
		if i >= n {
			h.Over++
			continue
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// BinCenter returns the geometric center (in the original scale) of bin i.
func (h *LogHistogram) BinCenter(i int) float64 {
	exp := float64(h.MinExp) + (float64(i)+0.5)/float64(h.BinsPerDecade)
	return math.Pow(10, exp)
}

// Total returns the in-range count.
func (h *LogHistogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Modes counts the local maxima of the histogram after a moving-average
// smoothing of the given half-width, ignoring peaks below minFrac of the
// tallest peak. This is how the harness distinguishes the bimodal BG/L
// distribution of Figure 6(a) from the unimodal Spirit distribution of
// Figure 6(b).
func (h *LogHistogram) Modes(smoothHalfWidth int, minFrac float64) int {
	sm := smooth(h.Counts, smoothHalfWidth)
	if len(sm) == 0 {
		return 0
	}
	peak := 0.0
	for _, v := range sm {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return 0
	}
	modes := 0
	for i := range sm {
		if sm[i] < minFrac*peak {
			continue
		}
		left := i == 0 || sm[i] > sm[i-1]
		right := i == len(sm)-1 || sm[i] >= sm[i+1]
		// Require a strict rise on at least one side so plateaus count
		// once: credit the first index of a plateau.
		if left && right {
			if i > 0 && sm[i] == sm[i-1] {
				continue
			}
			modes++
		}
	}
	return modes
}

// smooth applies a centered moving average of half-width w.
func smooth(counts []int, w int) []float64 {
	out := make([]float64, len(counts))
	for i := range counts {
		lo := i - w
		if lo < 0 {
			lo = 0
		}
		hi := i + w
		if hi >= len(counts) {
			hi = len(counts) - 1
		}
		sum := 0
		for j := lo; j <= hi; j++ {
			sum += counts[j]
		}
		out[i] = float64(sum) / float64(hi-lo+1)
	}
	return out
}
