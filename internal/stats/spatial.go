package stats

import (
	"math"
	"sort"
	"time"
)

// Section 4 recounts how the Thunderbird SMP clock bug was found: "We
// investigated this message only after noticing that its occurrence was
// spatially correlated across nodes." This file implements that
// discovery procedure as an algorithm: score each alert category by how
// strongly its reports cluster across *distinct* sources in short time
// windows, so spatially correlated categories (CPU) separate from
// independent physical processes (ECC).

// SpatialEvent is one (time, source) observation.
type SpatialEvent struct {
	Time   time.Time
	Source string
}

// SpatialScore summarizes a category's cross-node clustering.
type SpatialScore struct {
	// Events is the number of observations scored.
	Events int
	// Windows is the number of clusters found (events grouped by the
	// window rule).
	Windows int
	// MultiSourceWindows counts clusters containing two or more distinct
	// sources.
	MultiSourceWindows int
	// MeanSources is the mean number of distinct sources per cluster.
	MeanSources float64
}

// Index is the spatial-correlation index: the fraction of clusters that
// span multiple sources. Independent per-node processes (ECC) score near
// 0; job-coupled bugs (the SMP clock bug) score high.
func (s SpatialScore) Index() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.MultiSourceWindows) / float64(s.Windows)
}

// SpatialCorrelation clusters events with the sliding-window rule (an
// event joins the current cluster if it is within window of the cluster's
// last event) and scores cross-source membership.
func SpatialCorrelation(events []SpatialEvent, window time.Duration) SpatialScore {
	if len(events) == 0 {
		return SpatialScore{}
	}
	sorted := make([]SpatialEvent, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	score := SpatialScore{Events: len(events)}
	var clusterSources map[string]bool
	var last time.Time
	totalSources := 0
	flush := func() {
		if clusterSources == nil {
			return
		}
		score.Windows++
		totalSources += len(clusterSources)
		if len(clusterSources) > 1 {
			score.MultiSourceWindows++
		}
		clusterSources = nil
	}
	for _, e := range sorted {
		if clusterSources != nil && e.Time.Sub(last) >= window {
			flush()
		}
		if clusterSources == nil {
			clusterSources = make(map[string]bool, 4)
		}
		clusterSources[e.Source] = true
		last = e.Time
	}
	flush()
	if score.Windows > 0 {
		score.MeanSources = float64(totalSources) / float64(score.Windows)
	}
	return score
}

// Weibull is a two-parameter Weibull distribution, the standard
// reliability-engineering failure model (shape K, scale Lambda). K < 1
// means infant-mortality (decreasing hazard), K = 1 is exponential,
// K > 1 wear-out.
type Weibull struct {
	K, Lambda float64
}

// Name implements Distribution.
func (w Weibull) Name() string { return "weibull" }

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Params implements Distribution.
func (w Weibull) Params() map[string]float64 {
	return map[string]float64{"k": w.K, "lambda": w.Lambda}
}

// FitWeibull fits by maximum likelihood over positive values, solving the
// profile-likelihood equation for K by Newton iteration and recovering
// Lambda in closed form.
func FitWeibull(xs []float64) (Weibull, error) {
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) < 2 {
		return Weibull{}, ErrInsufficientData
	}
	logs := make([]float64, len(pos))
	meanLog := 0.0
	for i, x := range pos {
		logs[i] = math.Log(x)
		meanLog += logs[i]
	}
	meanLog /= float64(len(pos))

	// g(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog = 0.
	g := func(k float64) (val, deriv float64) {
		var sxk, sxkl, sxkll float64
		for i, x := range pos {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * logs[i]
			sxkll += xk * logs[i] * logs[i]
		}
		val = sxkl/sxk - 1/k - meanLog
		deriv = (sxkll*sxk-sxkl*sxkl)/(sxk*sxk) + 1/(k*k)
		return val, deriv
	}
	k := 1.0
	for i := 0; i < 100; i++ {
		val, deriv := g(k)
		if math.Abs(deriv) < 1e-12 {
			break
		}
		next := k - val/deriv
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-10 {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return Weibull{}, ErrInsufficientData
	}
	var sxk float64
	for _, x := range pos {
		sxk += math.Pow(x, k)
	}
	lambda := math.Pow(sxk/float64(len(pos)), 1/k)
	return Weibull{K: k, Lambda: lambda}, nil
}

// Autocorrelation returns the sample autocorrelation of a series at the
// given lags (lag 0 is always 1 for a non-constant series).
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	out := make([]float64, maxLag+1)
	if n < 2 {
		return out
	}
	mean := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		out[lag] = num / denom
	}
	return out
}

// FanoFactor is the variance-to-mean ratio of bucketed event counts: 1
// for a Poisson process, > 1 for bursty (overdispersed) processes — a
// one-number summary of the paper's burstiness observations.
func FanoFactor(times []time.Time, start, end time.Time, width time.Duration) float64 {
	counts := BucketCounts(times, start, end, width)
	if len(counts) < 2 {
		return 0
	}
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	// Population variance: the buckets are the full population of the
	// window.
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	v /= float64(len(xs))
	return v / m
}
