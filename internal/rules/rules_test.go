package rules

import (
	"math/rand"
	"strings"
	"testing"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
)

func TestParseRuleBasic(t *testing.T) {
	r, err := ParseRule(`H EXT_FS /EXT3-fs error/`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "EXT_FS" || r.Type != catalog.Hardware {
		t.Errorf("rule = %+v", r)
	}
	if !r.Match(logrec.Record{Body: "EXT3-fs error (device sda5)"}) {
		t.Error("body match failed")
	}
	if r.Match(logrec.Record{Body: "all quiet"}) {
		t.Error("non-matching body matched")
	}
}

func TestParseRuleProgramConjunct(t *testing.T) {
	r, err := ParseRule(`S PBS_CHK program == "pbs_mom" && /task_check, cannot tm_reply/`)
	if err != nil {
		t.Fatal(err)
	}
	good := logrec.Record{Program: "pbs_mom", Body: "task_check, cannot tm_reply to 1 task 1"}
	if !r.Match(good) {
		t.Error("conjunction failed on matching record")
	}
	bad := good
	bad.Program = "kernel"
	if r.Match(bad) {
		t.Error("program constraint ignored")
	}
}

func TestParseRuleAwkForm(t *testing.T) {
	// The paper's own example: ($5 ~ /KERNEL/ && /kernel panic/)
	r, err := ParseRule(`I KERNPAN ($5 ~ /KERNEL/ && /kernel panic/)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match(logrec.Record{Facility: "KERNEL", Body: "kernel panic"}) {
		t.Error("awk form failed")
	}
	if r.Match(logrec.Record{Facility: "APP", Body: "kernel panic"}) {
		t.Error("$5 constraint ignored")
	}
}

func TestParseRuleSeverity(t *testing.T) {
	r, err := ParseRule(`I FATALS severity == FATAL && /./`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match(logrec.Record{Severity: logrec.SevFatal, Body: "x"}) {
		t.Error("severity equality failed")
	}
	if r.Match(logrec.Record{Severity: logrec.SevInfoBGL, Body: "x"}) {
		t.Error("severity mismatch matched")
	}
}

func TestParseRuleEscapedSlash(t *testing.T) {
	r, err := ParseRule(`H GM_PAR /gm_parity\.c:115:parity_int\(\):firmware/`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match(logrec.Record{Body: "PANIC: /usr/src/gm_parity.c:115:parity_int():firmware"}) {
		t.Error("escaped pattern failed")
	}
	// A pattern containing a literal / must round-trip via \/.
	r2, err := ParseRule(`H SLASH /rejecting I\/O to offline device/`)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Match(logrec.Record{Body: "scsi0: rejecting I/O to offline device"}) {
		t.Error("slash-escaped pattern failed")
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []string{
		``,
		`H`,
		`H NAME`,
		`X NAME /re/`,          // bad type
		`H NAME /unterminated`, // bad regex delim
		`H NAME bogusfield ~ /x/`,
		`H NAME program = "x"`,  // single =
		`H NAME /a/ && `,        // trailing conjunct
		`H NAME (/a/`,           // missing paren
		`H NAME /a/ extra-junk`, // trailing input
		`H NAME /[/`,            // invalid regexp
		`H NAME severity == `,   // missing value
	}
	for _, line := range cases {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) expected error", line)
		}
	}
}

func TestLoadFile(t *testing.T) {
	file := `
# Liberty rules
S PBS_CHK  program == "pbs_mom" && /task_check, cannot tm_reply/
H GM_PAR   program == "kernel" && /GM: LANAI\[0\]: PANIC/

S PBS_CON  program == "pbs_mom" && /Connection refused \(111\)/
`
	set, err := Load(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rules) != 3 {
		t.Fatalf("rules = %d, want 3 (comments and blanks skipped)", len(set.Rules))
	}
	rule, ok := set.Tag(logrec.Record{Program: "pbs_mom", Body: "task_check, cannot tm_reply to 9 task 1"})
	if !ok || rule.Name != "PBS_CHK" {
		t.Errorf("tag = %v %v", rule.Name, ok)
	}
	if _, ok := set.Tag(logrec.Record{Program: "sshd", Body: "session opened"}); ok {
		t.Error("benign record tagged")
	}
}

func TestLoadReportsLineNumbers(t *testing.T) {
	file := "H GOOD /x/\nH BAD /unterminated\n"
	_, err := Load(strings.NewReader(file))
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestFirstMatchWins(t *testing.T) {
	file := "H FIRST /error/\nH SECOND /EXT3-fs error/\n"
	set, err := Load(strings.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := set.Tag(logrec.Record{Body: "EXT3-fs error"})
	if !ok || rule.Name != "FIRST" {
		t.Errorf("first-match-wins violated: got %s", rule.Name)
	}
}

// TestExportLoadRoundTrip: for every system, the exported rule file
// reloads into a set that tags generated messages identically to the
// catalog.
func TestExportLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sys := range logrec.Systems() {
		set, err := LoadSystem(sys)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if len(set.Rules) != len(catalog.BySystem(sys)) {
			t.Fatalf("%v: %d rules, want %d", sys, len(set.Rules), len(catalog.BySystem(sys)))
		}
		for _, c := range catalog.BySystem(sys) {
			rec := logrec.Record{
				System:   sys,
				Facility: c.Facility,
				Program:  c.Program,
				Severity: c.Severity,
				Body:     c.Gen(rng),
			}
			rule, ok := set.Tag(rec)
			if !ok {
				t.Errorf("%v/%s: exported rules missed a generated record", sys, c.Name)
				continue
			}
			if rule.Name != c.Name {
				t.Errorf("%v/%s: tagged as %s by exported rules", sys, c.Name, rule.Name)
			}
			if rule.Type != c.Type {
				t.Errorf("%v/%s: type %v, want %v", sys, c.Name, rule.Type, c.Type)
			}
		}
	}
}

func TestExportFormatIsStable(t *testing.T) {
	var b strings.Builder
	if err := Export(&b, logrec.Liberty); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `S PBS_CHK    program == "pbs_mom" && /task_check, cannot tm_reply/`) {
		t.Errorf("export format changed:\n%s", out)
	}
	if !strings.HasPrefix(out, "# Liberty expert rules (6 categories)") {
		t.Errorf("export header changed:\n%s", out)
	}
}

func TestCompileExprParenNesting(t *testing.T) {
	m, err := CompileExpr(`((/a/) && (/b/ && /c/))`)
	if err != nil {
		t.Fatal(err)
	}
	if !m(logrec.Record{Body: "a b c"}) {
		t.Error("nested conjunction failed")
	}
	if m(logrec.Record{Body: "a b"}) {
		t.Error("missing term matched")
	}
}

func TestFieldGetters(t *testing.T) {
	rec := logrec.Record{Source: "sn373", Program: "kernel", Facility: "KERNEL", Body: "x", Severity: logrec.SevCrit}
	cases := []struct {
		expr string
		want bool
	}{
		{`source == sn373`, true},
		{`host ~ /^sn/`, true},
		{`body ~ /x/`, true},
		{`facility == KERNEL`, true},
		{`severity == CRIT`, true},
		{`source == sn1`, false},
	}
	for _, tc := range cases {
		m, err := CompileExpr(tc.expr)
		if err != nil {
			t.Fatalf("CompileExpr(%q): %v", tc.expr, err)
		}
		if got := m(rec); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}
