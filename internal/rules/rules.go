// Package rules implements an external rule language for alert tagging,
// modeled on the logsurfer/awk heuristics the administrators supplied
// (Section 3.2: "The heuristics provided by the administrators were often
// in the form of regular expressions amenable for consumption by the
// logsurfer utility"). It lets a rule set live in a text file, be
// reviewed by the administrator who owns it, and be loaded at run time —
// the operational workflow behind Table 4.
//
// One rule per line:
//
//	# Spirit disk errors
//	H EXT_FS   /kernel: EXT3-fs error/
//	S PBS_CHK  program == "pbs_mom" && /task_check, cannot tm_reply/
//	I KERNPAN  ($5 ~ /KERNEL/ && /kernel panic/)
//
// An expression is a conjunction of terms:
//
//	/re/              body matches re
//	body ~ /re/       same, explicit
//	program == "s"    program tag equals s
//	facility ~ /re/   facility matches re
//	severity == NAME  native severity equals NAME (either scale)
//	$5 ~ /re/         awk-style alias for facility (the paper's BG/L form)
//
// Terms may be parenthesized; `&&` is the only connective, matching the
// shape of every rule in the study.
package rules

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
)

// Matcher is a compiled rule predicate.
type Matcher func(logrec.Record) bool

// Rule is one parsed tagging rule.
type Rule struct {
	// Name is the alert category the rule tags.
	Name string
	// Type is the administrator's H/S/I assignment.
	Type catalog.Type
	// Source is the rule's expression text, as written.
	Source string
	// Match is the compiled predicate.
	Match Matcher
}

// Set is an ordered rule list; first match wins, as in package tag.
type Set struct {
	Rules []Rule
}

// Tag returns the first matching rule.
func (s *Set) Tag(rec logrec.Record) (Rule, bool) {
	for _, r := range s.Rules {
		if r.Match(rec) {
			return r, true
		}
	}
	return Rule{}, false
}

// ParseError reports where a rule file failed to parse.
type ParseError struct {
	Line   int
	Text   string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rules: line %d: %s (in %q)", e.Line, e.Reason, e.Text)
}

// Load parses a rule file.
func Load(r io.Reader) (*Set, error) {
	var set Set
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			if pe, ok := err.(*ParseError); ok {
				pe.Line = lineNo
				return nil, pe
			}
			return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
		}
		set.Rules = append(set.Rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return &set, nil
}

// ParseRule parses one "TYPE NAME expr" line.
func ParseRule(line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Rule{}, &ParseError{Text: line, Reason: "want: TYPE NAME expression"}
	}
	var ty catalog.Type
	switch fields[0] {
	case "H":
		ty = catalog.Hardware
	case "S":
		ty = catalog.Software
	case "I":
		ty = catalog.Indeterminate
	default:
		return Rule{}, &ParseError{Text: line, Reason: fmt.Sprintf("unknown type %q (want H, S, or I)", fields[0])}
	}
	name := fields[1]
	exprText := strings.TrimSpace(line[strings.Index(line, name)+len(name):])
	m, err := CompileExpr(exprText)
	if err != nil {
		return Rule{}, &ParseError{Text: line, Reason: err.Error()}
	}
	return Rule{Name: name, Type: ty, Source: exprText, Match: m}, nil
}

// CompileExpr compiles a rule expression into a Matcher.
func CompileExpr(expr string) (Matcher, error) {
	p := &exprParser{input: expr}
	m, err := p.parseConjunction()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("trailing input at byte %d: %q", p.pos, p.input[p.pos:])
	}
	return m, nil
}

// exprParser is a tiny recursive-descent parser over the expression
// grammar.
type exprParser struct {
	input string
	pos   int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

// parseConjunction := term ('&&' term)*
func (p *exprParser) parseConjunction() (Matcher, error) {
	terms := []Matcher{}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		p.skipSpace()
		if strings.HasPrefix(p.input[p.pos:], "&&") {
			p.pos += 2
			continue
		}
		break
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return func(rec logrec.Record) bool {
		for _, t := range terms {
			if !t(rec) {
				return false
			}
		}
		return true
	}, nil
}

// parseTerm := '(' conjunction ')' | '/'re'/' | field op value
func (p *exprParser) parseTerm() (Matcher, error) {
	p.skipSpace()
	switch {
	case p.peek() == '(':
		p.pos++
		m, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ) at byte %d", p.pos)
		}
		p.pos++
		return m, nil
	case p.peek() == '/':
		re, err := p.parseRegex()
		if err != nil {
			return nil, err
		}
		return bodyMatcher(re), nil
	default:
		return p.parseFieldTerm()
	}
}

// parseRegex consumes /.../ honoring backslash escapes.
func (p *exprParser) parseRegex() (*regexp.Regexp, error) {
	if p.peek() != '/' {
		return nil, fmt.Errorf("expected / at byte %d", p.pos)
	}
	p.pos++
	var b strings.Builder
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == '\\' && p.pos+1 < len(p.input) {
			next := p.input[p.pos+1]
			if next == '/' {
				b.WriteByte('/')
			} else {
				b.WriteByte('\\')
				b.WriteByte(next)
			}
			p.pos += 2
			continue
		}
		if c == '/' {
			p.pos++
			re, err := regexp.Compile(b.String())
			if err != nil {
				return nil, fmt.Errorf("bad regexp %q: %v", b.String(), err)
			}
			return re, nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return nil, fmt.Errorf("unterminated regexp")
}

// parseFieldTerm := field ('~' regex | '==' value)
func (p *exprParser) parseFieldTerm() (Matcher, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c == ' ' || c == '\t' || c == '~' || c == '=' {
			break
		}
		p.pos++
	}
	field := p.input[start:p.pos]
	if field == "" {
		return nil, fmt.Errorf("expected a term at byte %d", start)
	}
	p.skipSpace()
	switch {
	case p.peek() == '~':
		p.pos++
		p.skipSpace()
		re, err := p.parseRegex()
		if err != nil {
			return nil, err
		}
		return fieldRegexMatcher(field, re)
	case strings.HasPrefix(p.input[p.pos:], "=="):
		p.pos += 2
		p.skipSpace()
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return fieldEqualsMatcher(field, val)
	default:
		return nil, fmt.Errorf("expected ~ or == after field %q", field)
	}
}

// parseValue := '"' string '"' | bare word
func (p *exprParser) parseValue() (string, error) {
	if p.peek() == '"' {
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != '"' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return "", fmt.Errorf("unterminated string")
		}
		val := p.input[start:p.pos]
		p.pos++
		return val, nil
	}
	start := p.pos
	for p.pos < len(p.input) && p.input[p.pos] != ' ' && p.input[p.pos] != ')' {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a value at byte %d", start)
	}
	return p.input[start:p.pos], nil
}

func bodyMatcher(re *regexp.Regexp) Matcher {
	return func(rec logrec.Record) bool { return re.MatchString(rec.Body) }
}

// fieldRegexMatcher resolves field names (and awk positional aliases) to
// record fields.
func fieldRegexMatcher(field string, re *regexp.Regexp) (Matcher, error) {
	get, err := fieldGetter(field)
	if err != nil {
		return nil, err
	}
	return func(rec logrec.Record) bool { return re.MatchString(get(rec)) }, nil
}

func fieldEqualsMatcher(field, val string) (Matcher, error) {
	if field == "severity" {
		// Accept either scale's severity name.
		return func(rec logrec.Record) bool { return rec.Severity.String() == val }, nil
	}
	get, err := fieldGetter(field)
	if err != nil {
		return nil, err
	}
	return func(rec logrec.Record) bool { return get(rec) == val }, nil
}

// fieldGetter maps a field name to a record accessor. $5 is the paper's
// awk alias for the BG/L facility column.
func fieldGetter(field string) (func(logrec.Record) string, error) {
	switch field {
	case "body":
		return func(r logrec.Record) string { return r.Body }, nil
	case "program":
		return func(r logrec.Record) string { return r.Program }, nil
	case "facility", "$5":
		return func(r logrec.Record) string { return r.Facility }, nil
	case "source", "host":
		return func(r logrec.Record) string { return r.Source }, nil
	case "severity":
		return func(r logrec.Record) string { return r.Severity.String() }, nil
	default:
		return nil, fmt.Errorf("unknown field %q", field)
	}
}

// Export renders a system's catalog rules in the file format, so the
// built-in rule sets can be externalized, reviewed, and re-loaded.
func Export(w io.Writer, sys logrec.System) error {
	if _, err := fmt.Fprintf(w, "# %s expert rules (%d categories), Table 4 order\n", sys, len(catalog.BySystem(sys))); err != nil {
		return err
	}
	for _, c := range catalog.BySystem(sys) {
		expr := exportExpr(c)
		if _, err := fmt.Fprintf(w, "%s %-10s %s\n", c.Type.Code(), c.Name, expr); err != nil {
			return err
		}
	}
	return nil
}

// exportExpr renders a catalog rule as an expression.
func exportExpr(c *catalog.Category) string {
	var terms []string
	if c.Facility != "" {
		terms = append(terms, fmt.Sprintf("$5 ~ /%s/", escapeRegexDelim(c.Facility)))
	}
	if c.Program != "" {
		terms = append(terms, fmt.Sprintf("program == %q", c.Program))
	}
	terms = append(terms, "/"+escapeRegexDelim(c.Pattern)+"/")
	return strings.Join(terms, " && ")
}

// escapeRegexDelim escapes the / delimiter inside a pattern.
func escapeRegexDelim(p string) string {
	return strings.ReplaceAll(p, "/", `\/`)
}

// LoadSystem round-trips a system's built-in rules through the file
// format, returning a Set equivalent to the catalog's tagger.
func LoadSystem(sys logrec.System) (*Set, error) {
	var b strings.Builder
	if err := Export(&b, sys); err != nil {
		return nil, err
	}
	return Load(strings.NewReader(b.String()))
}
