package rules_test

import (
	"fmt"
	"strings"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/rules"
)

// ExampleLoad loads an administrator-authored rule file and tags a
// record with it.
func ExampleLoad() {
	file := `
# Spirit rules, logsurfer style
H EXT_FS   program == "kernel" && /EXT3-fs error/
S PBS_CHK  program == "pbs_mom" && /task_check, cannot tm_reply/
`
	set, err := rules.Load(strings.NewReader(file))
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	rec := logrec.Record{
		Program: "kernel",
		Body:    "EXT3-fs error (device cciss/c0d0p5) in ext3_reserve_inode_write: IO failure",
	}
	if r, ok := set.Tag(rec); ok {
		fmt.Printf("%s %s\n", r.Type.Code(), r.Name)
	}
	// Output:
	// H EXT_FS
}

// ExampleExport emits a system's built-in rules in the loadable format.
func ExampleExport() {
	var b strings.Builder
	if err := rules.Export(&b, logrec.Liberty); err != nil {
		fmt.Println("export:", err)
		return
	}
	for _, line := range strings.Split(b.String(), "\n")[:3] {
		fmt.Println(line)
	}
	// Output:
	// # Liberty expert rules (6 categories), Table 4 order
	// S PBS_CHK    program == "pbs_mom" && /task_check, cannot tm_reply/
	// S PBS_BFD    program == "pbs_mom" && /Bad file descriptor \(9\) in tm_request/
}
