package correlate

import (
	"sync"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/query"
	"whatsupersay/internal/store"
)

// Miner maintains the correlation graph online, off the store mutation
// stream. It follows the standing-query registry's consistency protocol
// exactly (internal/query/standing.go): a fenced baseline scan-retry
// loop installs state with a sequence fence, deltas buffered during the
// scan fold in iff their Seq exceeds the fence, and later deliveries
// apply iff Seq > fence — so every append lands in the state exactly
// once regardless of how delivery interleaves with scanning. Seals are
// no-ops (the entry set is unchanged); compaction and retention mark
// the state dirty and an async worker re-baselines — retention IS the
// graph's decay: aged-out events leave the columns on rebuild, and
// every edge shrinks to exactly the batch mine of what remains.
//
// The store supports at most one observer; the serve layer multiplexes
// one observer func across the standing registry and the miner.

// Correlation-miner telemetry.
var (
	gCorrelateNodes        = obs.Default.Gauge("correlate_nodes")
	gCorrelateEdges        = obs.Default.Gauge("correlate_edges")
	mCorrelateDeltas       = obs.Default.Counter("correlate_deltas_applied_total")
	mCorrelateDeltaEvents  = obs.Default.Counter("correlate_delta_events_total")
	mCorrelateRebuilds     = obs.Default.Counter("correlate_rebuilds_total")
	mCorrelateRebuildFails = obs.Default.Counter("correlate_rebuild_failures_total")
	mCorrelateBaselines    = obs.Default.Counter("correlate_baseline_scans_total")
	mCorrelateWarmStarts   = obs.Default.Counter("correlate_warm_starts_total")
)

// MinerStore is the store surface a Miner needs: scans for baselines,
// the mutation-sequence fence, and the fingerprint the persisted
// artifact is keyed by. *store.Store satisfies it.
type MinerStore interface {
	query.StandingStore
}

// seqColDelta is one buffered append awaiting a baseline install.
type seqColDelta struct {
	seq uint64
	d   delta
}

// MinerStats describes a miner's current state.
type MinerStats struct {
	Nodes  int  `json:"nodes"`
	Edges  int  `json:"edges"`
	Events int  `json:"events"`
	Dirty  bool `json:"dirty,omitempty"`
	// DeltasApplied counts folded append batches; Rebuilds counts
	// re-baselines after compaction/retention; WarmStart reports whether
	// the initial state came from a persisted artifact instead of a scan.
	DeltasApplied uint64 `json:"deltas_applied"`
	Rebuilds      uint64 `json:"rebuilds"`
	WarmStart     bool   `json:"warm_start,omitempty"`
}

// Miner is one store's online correlation miner.
type Miner struct {
	st  MinerStore
	cfg Config
	// artifactPath, when nonempty, is where the graph persists (written
	// atomically, loaded for warm starts). See persist.go.
	artifactPath string

	mu      sync.Mutex
	state   *graphState
	baseSeq uint64
	// lastSeq is the highest mutation sequence the installed state
	// reflects (appends folded, seals noted). The saver requires
	// lastSeq == MutationSeq() before persisting, so an artifact's
	// fingerprint always describes exactly the state written with it.
	lastSeq  uint64
	buf      []seqColDelta
	scanning bool
	inScan   bool
	dirty    bool
	// version counts state changes; the live-prediction cache keys on it.
	version uint64

	deltas, rebuilds uint64
	warmStart        bool

	rebuildCh chan struct{}
	saveCh    chan struct{}
	stop      chan struct{}
	done      chan struct{}
	saveDone  chan struct{}
}

// NewMiner builds a miner over st. The caller wires the observer
// (st.SetObserver, multiplexed with any other observers) and then calls
// Init to install the initial state — in that order, so no mutation is
// lost between baseline and observation. artifactPath may be empty to
// disable persistence.
func NewMiner(st MinerStore, cfg Config, artifactPath string) *Miner {
	m := &Miner{
		st:           st,
		cfg:          cfg.withDefaults(),
		artifactPath: artifactPath,
		state:        newGraphState(),
		scanning:     true,
		inScan:       true,
		rebuildCh:    make(chan struct{}, 1),
		saveCh:       make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		saveDone:     make(chan struct{}),
	}
	go m.rebuildLoop()
	go m.saveLoop()
	return m
}

// Config returns the miner's (defaulted) configuration.
func (m *Miner) Config() Config { return m.cfg }

// Init installs the initial state: a warm start from the persisted
// artifact when its config key and store fingerprint match under a
// seq-stable check, else a fenced baseline scan. Call after the
// observer is installed.
func (m *Miner) Init() error {
	if m.tryWarmStart() {
		return nil
	}
	return m.baseline(false)
}

// Close stops the workers, then writes a final artifact so the next
// open can warm-start. Detach the observer first.
func (m *Miner) Close() {
	close(m.stop)
	<-m.done
	<-m.saveDone
	m.save()
}

// OnMutation is the store-observer hook. It runs on the mutating
// goroutine and never calls back into the store's mutating side.
func (m *Miner) OnMutation(mu store.Mutation) {
	switch mu.Kind {
	case store.MutationAppend:
		m.applyDelta(mu)
	case store.MutationSeal:
		// Entry set unchanged; columns and edges stay exact — but note
		// the seq (the fingerprint moved) so the saver can persist a
		// consistent pair, and re-save under the new fingerprint.
		m.mu.Lock()
		if !m.scanning {
			m.lastSeq = mu.Seq
		}
		m.mu.Unlock()
		m.wakeSave()
	case store.MutationCompact, store.MutationRetention:
		m.markDirty()
	}
}

// applyDelta folds one appended batch (or buffers it mid-scan).
func (m *Miner) applyDelta(mu store.Mutation) {
	d := deltaOf(m.cfg, mu.Entries)
	m.mu.Lock()
	if m.scanning {
		if d.n > 0 {
			m.buf = append(m.buf, seqColDelta{seq: mu.Seq, d: d})
		}
		m.mu.Unlock()
		return
	}
	m.lastSeq = mu.Seq
	if mu.Seq <= m.baseSeq || d.n == 0 {
		m.mu.Unlock()
		m.wakeSave()
		return
	}
	m.state.fold(d, m.cfg.Window.Nanoseconds())
	m.deltas++
	m.version++
	mCorrelateDeltas.Add(1)
	mCorrelateDeltaEvents.Add(int64(d.n))
	m.publishLocked()
	m.mu.Unlock()
	m.wakeSave()
}

// markDirty invalidates the state and queues a rebuild.
func (m *Miner) markDirty() {
	m.mu.Lock()
	m.dirty = true
	// Freeze deltas until the rebuild installs; an in-flight baseline
	// (inScan) will observe the seq change and retry.
	m.scanning = true
	m.mu.Unlock()
	m.wakeRebuild()
}

func (m *Miner) wakeRebuild() {
	select {
	case m.rebuildCh <- struct{}{}:
	default:
	}
}

// rebuildLoop is the async re-baseline worker.
func (m *Miner) rebuildLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.rebuildCh:
		}
		m.mu.Lock()
		claim := m.dirty && !m.inScan
		if claim {
			m.inScan = true
			m.scanning = true
		}
		m.mu.Unlock()
		if claim {
			if err := m.baseline(true); err != nil {
				mCorrelateRebuildFails.Add(1)
			}
		}
	}
}

// baseline runs the fenced scan-retry loop and installs the result.
// The caller owns the scan (inScan set by NewMiner for the initial
// build, by rebuildLoop for rebuilds); ownership is released on return.
func (m *Miner) baseline(rebuild bool) error {
	defer func() {
		m.mu.Lock()
		m.inScan = false
		// A markDirty that landed after this baseline's final seq check
		// (its mutation sequenced after the install) left dirty set with
		// no one to claim it — re-wake the worker so it rebuilds.
		redo := m.dirty
		m.mu.Unlock()
		if redo {
			m.wakeRebuild()
		}
	}()
	for {
		s1 := m.st.MutationSeq()
		mCorrelateBaselines.Add(1)
		cols, err := scanColumns(m.st, m.cfg)
		if err != nil {
			m.mu.Lock()
			m.scanning = false
			m.buf = nil
			m.dirty = true
			m.mu.Unlock()
			return err
		}
		st := &graphState{cols: cols, edges: EdgesFromColumns(cols, m.cfg.Window)}
		m.mu.Lock()
		if m.st.MutationSeq() != s1 {
			// Mutations landed mid-scan; coverage is ambiguous. Retry.
			m.mu.Unlock()
			continue
		}
		m.state = st
		m.baseSeq = s1
		m.lastSeq = s1
		for _, bd := range m.buf {
			if bd.seq > s1 {
				m.state.fold(bd.d, m.cfg.Window.Nanoseconds())
				m.deltas++
				mCorrelateDeltas.Add(1)
			}
		}
		m.buf = nil
		m.scanning = false
		m.dirty = false
		m.version++
		if rebuild {
			m.rebuilds++
			mCorrelateRebuilds.Add(1)
		}
		m.publishLocked()
		m.mu.Unlock()
		m.wakeSave()
		return nil
	}
}

// publishLocked refreshes the size gauges. Callers hold mu.
func (m *Miner) publishLocked() {
	gCorrelateNodes.Set(float64(len(m.state.cols)))
	gCorrelateEdges.Set(float64(len(m.state.edges)))
}

// Snapshot renders the current graph. The integer state is copied
// under the lock; rendering runs outside it.
func (m *Miner) Snapshot() Graph {
	cols, edges, _ := m.snapshotState()
	return render(m.cfg, &graphState{cols: cols, edges: edges})
}

// ColumnsSnapshot deep-copies the per-node columns — the cluster tier
// merges per-shard snapshots and recomputes edges over the union.
func (m *Miner) ColumnsSnapshot() map[string][]int64 {
	cols, _, _ := m.snapshotState()
	return cols
}

// Version returns the state-change counter; it advances on every applied
// delta or installed rebuild. The live-prediction cache keys on it.
func (m *Miner) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// snapshotState copies the integer state under the lock.
func (m *Miner) snapshotState() (map[string][]int64, map[edgeKey]edgeAccum, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cols := make(map[string][]int64, len(m.state.cols))
	for node, col := range m.state.cols {
		cols[node] = append([]int64(nil), col...)
	}
	edges := make(map[edgeKey]edgeAccum, len(m.state.edges))
	for k, v := range m.state.edges {
		edges[k] = v
	}
	return cols, edges, m.version
}

// Stats reports the miner's current counters.
func (m *Miner) Stats() MinerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MinerStats{
		Nodes:         len(m.state.cols),
		Edges:         len(m.state.edges),
		Events:        m.state.events(),
		Dirty:         m.dirty,
		DeltasApplied: m.deltas,
		Rebuilds:      m.rebuilds,
		WarmStart:     m.warmStart,
	}
}

// Settled reports whether the state is installed and clean — the
// differential tests quiesce on it before comparing against the batch
// mine.
func (m *Miner) Settled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.dirty && !m.scanning && !m.inScan
}
