package correlate

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/store"
)

// The correlate differential: after every mutation class — append,
// seal, compaction, retention — the online miner's graph must marshal
// to exactly the bytes a from-scratch batch mine over the same store
// produces. Same discipline as the standing-query suite.

func waitSettled(t *testing.T, miners ...*Miner) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, m := range miners {
			if !m.Settled() {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("miner did not settle")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func checkMinerDifferential(t *testing.T, step string, st *store.Store, miners []*Miner) {
	t.Helper()
	waitSettled(t, miners...)
	for _, m := range miners {
		want, err := MineStore(st, m.Config())
		if err != nil {
			t.Fatalf("%s: batch mine: %v", step, err)
		}
		g, _ := json.Marshal(m.Snapshot())
		w, _ := json.Marshal(want)
		if string(g) != string(w) {
			t.Fatalf("%s: cfg %s diverges from batch mine\nincremental: %s\nbatch:       %s",
				step, m.Config().Key(), g, w)
		}
	}
}

// openMiners wires one multiplexed observer across all miners (the
// store supports a single observer) and installs their baselines.
func openMiners(t *testing.T, st *store.Store, cfgs []Config) []*Miner {
	t.Helper()
	miners := make([]*Miner, len(cfgs))
	for i, cfg := range cfgs {
		miners[i] = NewMiner(st, cfg, "")
	}
	st.SetObserver(func(mu store.Mutation) {
		for _, m := range miners {
			m.OnMutation(mu)
		}
	})
	for _, m := range miners {
		if err := m.Init(); err != nil {
			t.Fatal(err)
		}
	}
	return miners
}

func closeMiners(st *store.Store, miners []*Miner) {
	st.SetObserver(nil)
	for _, m := range miners {
		m.Close()
	}
}

// minerEntries fabricates a stream with several categories and sources
// at minute spacing so windowed pairs exist across batches.
func minerEntries(base time.Time, startSeq uint64, n int) []store.Entry {
	cats := []string{"GM_PAR", "GM_LANAI", "PBS_CHK"}
	srcs := []string{"ladm1", "ln12"}
	out := make([]store.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Entry{
			Record: logrec.Record{
				Seq:    startSeq + uint64(i),
				Time:   base.Add(time.Duration(i) * time.Minute),
				System: logrec.Liberty,
				Source: srcs[i%len(srcs)],
				Body:   "unit check failed",
			},
			Category: cats[i%len(cats)],
			Kept:     i%4 != 3,
		})
	}
	return out
}

func TestMinerDifferential(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	miners := openMiners(t, st, []Config{
		{},
		{Window: 2 * time.Minute},
		{NodeMode: NodeSourceCategory},
		{IncludeRemoved: true},
	})
	defer closeMiners(st, miners)

	base := time.Date(2004, 3, 1, 12, 0, 0, 0, time.UTC)
	checkMinerDifferential(t, "empty baseline", st, miners)

	// Appends with auto-seal every 3 entries (append + seal mutations).
	if err := st.Append(minerEntries(base, 0, 7)...); err != nil {
		t.Fatal(err)
	}
	checkMinerDifferential(t, "append+autoseal", st, miners)

	// A second era, then an explicit seal.
	if err := st.Append(minerEntries(base.Add(40*time.Minute), 100, 5)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	checkMinerDifferential(t, "seal", st, miners)

	// Compaction: entry set unchanged, miner must survive the rebuild.
	cst, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Compactions == 0 {
		t.Fatal("compaction did not run; test needs a real compact mutation")
	}
	checkMinerDifferential(t, "compaction rebuild", st, miners)

	// Retention drops the oldest segment — the graph's decay: aged-out
	// events must leave the columns and every touched edge must shrink
	// to exactly the batch mine of what remains.
	if err := st.Append(minerEntries(base.Add(3*time.Hour), 200, 6)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	before := miners[0].Snapshot().Events
	rst, err := st.ApplyRetention(base.Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rst.SegmentsDropped == 0 {
		t.Fatal("retention dropped nothing; test needs a real retention mutation")
	}
	checkMinerDifferential(t, "retention rebuild", st, miners)
	if after := miners[0].Snapshot().Events; after >= before {
		t.Fatalf("retention did not decay the graph: %d events before, %d after", before, after)
	}

	// Deltas resume on the new baseline.
	if err := st.Append(minerEntries(base.Add(4*time.Hour), 300, 4)...); err != nil {
		t.Fatal(err)
	}
	checkMinerDifferential(t, "post-retention append", st, miners)

	stats := miners[0].Stats()
	if stats.DeltasApplied == 0 || stats.Rebuilds == 0 {
		t.Fatalf("exercise did not cover both paths: %+v", stats)
	}
}

// TestMinerInitDuringAppends races Init's fenced baseline against a
// concurrent append stream: every entry must land exactly once.
func TestMinerInitDuringAppends(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := NewMiner(st, Config{}, "")
	st.SetObserver(m.OnMutation)
	defer func() {
		st.SetObserver(nil)
		m.Close()
	}()

	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	const batches, per = 40, 7
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			batch := minerEntries(base.Add(time.Duration(i)*time.Hour), uint64(i*per), per)
			if err := st.Append(batch...); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	checkMinerDifferential(t, "quiesced", st, []*Miner{m})
	// minerEntries keeps 6 of every 7-entry batch (index 3 is removed).
	total := batches * (per - 1)
	if got := m.Snapshot().Events; got != total {
		t.Fatalf("events = %d, want %d", got, total)
	}
}

// TestMinerVersionAdvances pins the cache key: the version moves on
// applied deltas and installed rebuilds, not on no-op mutations.
func TestMinerVersionAdvances(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := NewMiner(st, Config{}, "")
	st.SetObserver(m.OnMutation)
	defer func() {
		st.SetObserver(nil)
		m.Close()
	}()
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	v0 := m.Version()
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := st.Append(minerEntries(base, 0, 4)...); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	v1 := m.Version()
	if v1 <= v0 {
		t.Fatalf("append did not advance version: %d -> %d", v0, v1)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	if v := m.Version(); v != v1 {
		t.Fatalf("seal changed version: %d -> %d", v1, v)
	}
}
