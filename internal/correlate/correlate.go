// Package correlate mines a weighted event-correlation graph from the
// alert store, online. It is the paper's Section-5 promise — "filtering
// enables modeling" — made operational in the LogMaster shape: nodes
// are event types (a category, a (source, category) pair, or a mined
// message template), and a directed edge A→B counts how often a B event
// follows an A event within a time window, with the edge's confidence
// (co-occurrence count over A's event count) and typical lag. Figure 3's
// GM_PAR → GM_LANAI precursor is exactly such an edge, and the graph's
// edges feed internal/predict as precursor predictors.
//
// The representation is chosen so that the online incremental graph is
// *provably* byte-identical to a from-scratch batch mine over the same
// entries. The maintained state is all-integer:
//
//   - per-node timestamp columns (sorted Unix nanoseconds) — a pure
//     function of the entry multiset, order-independent by construction;
//   - per-ordered-pair accumulators {Pairs, LagSum} — and pair counting
//     is bilinear over disjoint multiset unions, so folding an appended
//     batch Δ into columns A,B updates every edge exactly by
//     cross(A,ΔB) + cross(ΔA,B) + cross(ΔA,ΔB).
//
// A pair (ta, tb) counts for edge A→B iff 0 < tb-ta ≤ Window: strict
// precedence, so equal timestamps contribute nothing and tie order
// cannot perturb the graph. Confidence and mean lag are derived from
// the integers only at render time. Differential tests pin the
// incremental state equal to the batch mine after every mutation class.
package correlate

import (
	"fmt"
	"sort"
	"time"

	"whatsupersay/internal/mining"
	"whatsupersay/internal/store"
)

// DefaultWindow is the co-occurrence window when Config.Window is zero.
// The study's cross-category cascades are minutes-scale (Figure 3's
// GM_PAR → GM_LANAI lag is 1–30 minutes); one hour covers them with
// slack without linking unrelated day-apart events.
const DefaultWindow = time.Hour

// NodeMode selects what a graph node identifies.
type NodeMode int

const (
	// NodeCategory keys nodes by alert category — the Table 4 tags, the
	// paper's unit of analysis and the default.
	NodeCategory NodeMode = iota
	// NodeSourceCategory keys nodes by "source/category", separating the
	// same failure signature on different nodes.
	NodeSourceCategory
	// NodeTemplate keys nodes by mined message template (Config.Templates
	// is the pinned vocabulary); bodies matching no template share the
	// UnmatchedNode.
	NodeTemplate
)

// String names the mode for manifests and metrics labels.
func (m NodeMode) String() string {
	switch m {
	case NodeCategory:
		return "category"
	case NodeSourceCategory:
		return "source-category"
	case NodeTemplate:
		return "template"
	default:
		return "unknown"
	}
}

// ParseNodeMode resolves a mode name (the inverse of String).
func ParseNodeMode(s string) (NodeMode, error) {
	switch s {
	case "", "category":
		return NodeCategory, nil
	case "source-category":
		return NodeSourceCategory, nil
	case "template":
		return NodeTemplate, nil
	default:
		return 0, fmt.Errorf("correlate: unknown node mode %q", s)
	}
}

// UnmatchedNode is the template-mode node for bodies matching no
// template in the pinned vocabulary.
const UnmatchedNode = "(unmatched)"

// Config parameterizes a miner. The zero value works: category nodes,
// DefaultWindow, kept entries only.
type Config struct {
	// Window is the co-occurrence window (0 = DefaultWindow). A pair
	// counts iff 0 < later-earlier ≤ Window.
	Window time.Duration
	// NodeMode selects node identity (default NodeCategory).
	NodeMode NodeMode
	// Templates is the pinned template vocabulary for NodeTemplate mode.
	// Pinning it in the config (rather than re-mining on each rebuild)
	// keeps node identities stable across compaction/retention
	// re-baselines — an unstable vocabulary would silently fork nodes.
	Templates []mining.Template
	// IncludeRemoved also counts entries Algorithm 3.1 removed. The
	// default (false) mines the filtered stream — the paper's point is
	// that modeling only becomes tractable after filtering.
	IncludeRemoved bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	return c
}

// Key is the config's identity string, used to decide whether a
// persisted artifact is compatible with a miner's configuration.
func (c Config) Key() string {
	c = c.withDefaults()
	tpl := ""
	if c.NodeMode == NodeTemplate {
		for _, t := range c.Templates {
			tpl += t.String() + "\x00"
		}
	}
	return fmt.Sprintf("w=%d;m=%s;rm=%t;tpl=%q", c.Window.Nanoseconds(), c.NodeMode, c.IncludeRemoved, tpl)
}

// nodeOf maps one entry to its graph node, or ok=false when the entry
// is outside the mined set (removed entries under the default config).
func (c Config) nodeOf(en store.Entry) (string, bool) {
	if !en.Kept && !c.IncludeRemoved {
		return "", false
	}
	switch c.NodeMode {
	case NodeSourceCategory:
		return en.Record.Source + "/" + en.Category, true
	case NodeTemplate:
		for _, t := range c.Templates {
			if t.Matches(en.Record.Body) {
				return t.String(), true
			}
		}
		return UnmatchedNode, true
	default:
		return en.Category, true
	}
}

// edgeKey is one ordered node pair.
type edgeKey struct{ a, b string }

// edgeAccum is the integer edge state: co-occurrence pair count and the
// sum of pair lags in nanoseconds. Int64 addition is commutative and
// associative (even on overflow), which is what makes incremental ==
// batch exact rather than approximate.
type edgeAccum struct {
	Pairs  int64
	LagSum int64
}

// graphState is the maintained integer state: per-node sorted timestamp
// columns plus per-pair accumulators. Both are pure functions of the
// entry multiset (given a config), never of arrival order.
type graphState struct {
	cols  map[string][]int64
	edges map[edgeKey]edgeAccum
}

func newGraphState() *graphState {
	return &graphState{cols: map[string][]int64{}, edges: map[edgeKey]edgeAccum{}}
}

// events returns the total event count across columns.
func (s *graphState) events() int {
	n := 0
	for _, c := range s.cols {
		n += len(c)
	}
	return n
}

// cross counts precedence pairs between two sorted columns: pairs
// (x, y) with x ∈ xs, y ∈ ys and 0 < y-x ≤ window, plus the sum of
// their lags. Two-pointer sweep with a running prefix sum of xs — each
// y's eligible xs form a contiguous window [lo, hi) of xs, so the lag
// sum for y is count*y - sum(xs[lo:hi]).
func cross(xs, ys []int64, window int64) (pairs, lagSum int64) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, 0
	}
	// prefix[i] = sum of xs[:i].
	prefix := make([]int64, len(xs)+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	lo, hi := 0, 0
	for _, y := range ys {
		// xs[lo:] have y - x ≤ window  ⇔  x ≥ y - window.
		for lo < len(xs) && xs[lo] < y-window {
			lo++
		}
		// xs[:hi] have y - x > 0  ⇔  x < y.
		if hi < lo {
			hi = lo
		}
		for hi < len(xs) && xs[hi] < y {
			hi++
		}
		if hi > lo {
			n := int64(hi - lo)
			pairs += n
			lagSum += n*y - (prefix[hi] - prefix[lo])
		}
	}
	return pairs, lagSum
}

// delta is one appended batch reduced to per-node new-event columns
// (each sorted). It is what the miner buffers while a baseline scan is
// in flight.
type delta struct {
	cols map[string][]int64
	n    int // total new events
}

// deltaOf reduces an appended batch to its per-node columns under cfg.
func deltaOf(cfg Config, entries []store.Entry) delta {
	d := delta{cols: map[string][]int64{}}
	for _, en := range entries {
		node, ok := cfg.nodeOf(en)
		if !ok {
			continue
		}
		d.cols[node] = append(d.cols[node], en.Record.Time.UnixNano())
		d.n++
	}
	for node := range d.cols {
		c := d.cols[node]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	return d
}

// fold applies one delta to the state: every edge accumulator gains the
// cross terms the new events introduce, then the new columns merge in.
// Because cross is bilinear over disjoint unions, the result is exactly
// the state a batch mine over the union would build.
func (s *graphState) fold(d delta, window int64) {
	if d.n == 0 {
		return
	}
	// New-vs-old and new-vs-new cross terms. Existing nodes with no new
	// events only gain pairs against nodes that do have new events.
	dnodes := make([]string, 0, len(d.cols))
	for node := range d.cols {
		dnodes = append(dnodes, node)
	}
	sort.Strings(dnodes)
	snodes := make([]string, 0, len(s.cols))
	for node := range s.cols {
		snodes = append(snodes, node)
	}
	sort.Strings(snodes)

	addEdge := func(a, b string, pairs, lagSum int64) {
		if pairs == 0 {
			return
		}
		k := edgeKey{a, b}
		acc := s.edges[k]
		acc.Pairs += pairs
		acc.LagSum += lagSum
		s.edges[k] = acc
	}
	for _, a := range snodes {
		oldA := s.cols[a]
		for _, b := range dnodes {
			// old A → new B.
			p, l := cross(oldA, d.cols[b], window)
			addEdge(a, b, p, l)
		}
	}
	for _, a := range dnodes {
		newA := d.cols[a]
		for _, b := range snodes {
			// new A → old B.
			p, l := cross(newA, s.cols[b], window)
			addEdge(a, b, p, l)
		}
		for _, b := range dnodes {
			// new A → new B (covers self-edges within the batch).
			p, l := cross(newA, d.cols[b], window)
			addEdge(a, b, p, l)
		}
	}
	for node, col := range d.cols {
		s.cols[node] = mergeSortedInt64(s.cols[node], col)
	}
}

// mergeSortedInt64 merges two nondecreasing columns into one. Same
// shape as the standing registry's merge: the common fast path is a
// delta entirely newer than the state.
func mergeSortedInt64(a, b []int64) []int64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int64(nil), b...)
	}
	if a[len(a)-1] <= b[0] {
		return append(a, b...)
	}
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// EdgesFromColumns recomputes every pair accumulator from scratch over
// the given columns — the batch reference the incremental fold must
// agree with, and the merge step for cluster views (per-shard edge
// counts do NOT sum across shards, because a pair's two events can land
// on different shards; merged columns recompute exactly).
func EdgesFromColumns(cols map[string][]int64, window time.Duration) map[edgeKey]edgeAccum {
	w := window.Nanoseconds()
	nodes := make([]string, 0, len(cols))
	for node := range cols {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	edges := map[edgeKey]edgeAccum{}
	for _, a := range nodes {
		for _, b := range nodes {
			p, l := cross(cols[a], cols[b], w)
			if p > 0 {
				edges[edgeKey{a, b}] = edgeAccum{Pairs: p, LagSum: l}
			}
		}
	}
	return edges
}

// columnsOf builds the per-node columns for an entry stream under cfg.
// Scan order is canonical (nondecreasing time), so per-node appends stay
// sorted; out-of-order input is sorted defensively.
func columnsOf(cfg Config, entries []store.Entry) map[string][]int64 {
	cols := map[string][]int64{}
	for _, en := range entries {
		node, ok := cfg.nodeOf(en)
		if !ok {
			continue
		}
		cols[node] = append(cols[node], en.Record.Time.UnixNano())
	}
	for node := range cols {
		c := cols[node]
		if !sort.SliceIsSorted(c, func(i, j int) bool { return c[i] < c[j] }) {
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		}
	}
	return cols
}

// Node is one graph node in the rendered view.
type Node struct {
	Name string `json:"name"`
	// Count is the node's event count in the mined window of history.
	Count int `json:"count"`
}

// Edge is one rendered correlation edge: B follows A within the window
// Pairs times; Confidence is Pairs over A's event count (how often an A
// event "leads to" a B event, the precursor strength); MeanLag is the
// average A→B delay.
type Edge struct {
	Source string `json:"source"`
	Target string `json:"target"`
	Pairs  int64  `json:"pairs"`
	// SourceCount and TargetCount are the endpoint event counts, so a
	// reader can judge support without a second lookup.
	SourceCount int           `json:"source_count"`
	TargetCount int           `json:"target_count"`
	Confidence  float64       `json:"confidence"`
	MeanLag     time.Duration `json:"mean_lag_ns"`
}

// Graph is the rendered correlation graph: a deterministic pure
// function of the integer state. Edges sort by descending Pairs, then
// Source, then Target; nodes sort by name.
type Graph struct {
	Window time.Duration `json:"window_ns"`
	// NodeMode is the node-identity mode the graph was mined under.
	NodeMode string `json:"node_mode"`
	// Events is the total event count across nodes.
	Events int    `json:"events"`
	Nodes  []Node `json:"nodes"`
	Edges  []Edge `json:"edges"`
}

// render builds the Graph view of a state.
func render(cfg Config, s *graphState) Graph {
	cfg = cfg.withDefaults()
	g := Graph{Window: cfg.Window, NodeMode: cfg.NodeMode.String(), Events: s.events()}
	g.Nodes = make([]Node, 0, len(s.cols))
	for node, col := range s.cols {
		g.Nodes = append(g.Nodes, Node{Name: node, Count: len(col)})
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Name < g.Nodes[j].Name })
	g.Edges = make([]Edge, 0, len(s.edges))
	for k, acc := range s.edges {
		if acc.Pairs == 0 {
			continue
		}
		e := Edge{
			Source:      k.a,
			Target:      k.b,
			Pairs:       acc.Pairs,
			SourceCount: len(s.cols[k.a]),
			TargetCount: len(s.cols[k.b]),
			MeanLag:     time.Duration(acc.LagSum / acc.Pairs),
		}
		if e.SourceCount > 0 {
			e.Confidence = float64(acc.Pairs) / float64(e.SourceCount)
		}
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].Pairs != g.Edges[j].Pairs {
			return g.Edges[i].Pairs > g.Edges[j].Pairs
		}
		if g.Edges[i].Source != g.Edges[j].Source {
			return g.Edges[i].Source < g.Edges[j].Source
		}
		return g.Edges[i].Target < g.Edges[j].Target
	})
	return g
}

// GraphFromColumns renders the graph a batch mine over the given
// columns produces — the cluster merge path and the batch reference.
func GraphFromColumns(cfg Config, cols map[string][]int64) Graph {
	cfg = cfg.withDefaults()
	s := &graphState{cols: cols, edges: EdgesFromColumns(cols, cfg.Window)}
	return render(cfg, s)
}

// MineEntries is the from-scratch batch reference: columns then edges
// then render. The differential suites pin the online miner's snapshot
// byte-identical (via JSON) to this after every mutation class.
func MineEntries(cfg Config, entries []store.Entry) Graph {
	cfg = cfg.withDefaults()
	return GraphFromColumns(cfg, columnsOf(cfg, entries))
}

// MineStore batch-mines a store by scanning it — the `logstudy
// correlate` subcommand's path and the rebuild baseline's core.
func MineStore(st Scanner, cfg Config) (Graph, error) {
	cfg = cfg.withDefaults()
	cols, err := scanColumns(st, cfg)
	if err != nil {
		return Graph{}, err
	}
	return GraphFromColumns(cfg, cols), nil
}

// Scanner is the store surface batch mining needs. *store.Store
// satisfies it.
type Scanner interface {
	Scan(f store.Filter, fn func(store.Entry) error) (store.ScanStats, error)
}

// scanColumns streams a store's entries into per-node columns.
func scanColumns(st Scanner, cfg Config) (map[string][]int64, error) {
	cols := map[string][]int64{}
	_, err := st.Scan(store.Filter{}, func(en store.Entry) error {
		node, ok := cfg.nodeOf(en)
		if !ok {
			return nil
		}
		cols[node] = append(cols[node], en.Record.Time.UnixNano())
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Canonical scan order is nondecreasing in time, but be defensive:
	// the state's invariants all assume sorted columns.
	for node := range cols {
		c := cols[node]
		if !sort.SliceIsSorted(c, func(i, j int) bool { return c[i] < c[j] }) {
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		}
	}
	return cols, nil
}

// FilterEdges applies the /api/correlations query knobs to a rendered
// edge list: minimum pair support, minimum confidence, and an optional
// node whose neighborhood (edges touching it) is selected. Order is
// preserved.
func FilterEdges(edges []Edge, minSupport int64, minConfidence float64, node string) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.Pairs < minSupport || e.Confidence < minConfidence {
			continue
		}
		if node != "" && e.Source != node && e.Target != node {
			continue
		}
		out = append(out, e)
	}
	return out
}

// MergeColumns merges per-shard column snapshots into the union's
// columns — the cluster graph is GraphFromColumns over the result,
// which is provably the single-store batch mine of the union (pair
// counting over merged columns is exactly pair counting over the union
// entry set; per-shard edge counts would miss cross-shard pairs).
func MergeColumns(parts []map[string][]int64) map[string][]int64 {
	out := map[string][]int64{}
	for _, p := range parts {
		for node, col := range p {
			out[node] = mergeSortedInt64(out[node], col)
		}
	}
	return out
}
