package correlate

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/mining"
	"whatsupersay/internal/store"
)

// crossBrute is the O(n·m) reference for cross: count every pair with
// 0 < y-x ≤ window.
func crossBrute(xs, ys []int64, window int64) (pairs, lagSum int64) {
	for _, x := range xs {
		for _, y := range ys {
			if d := y - x; d > 0 && d <= window {
				pairs++
				lagSum += d
			}
		}
	}
	return pairs, lagSum
}

func TestCrossMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nx, ny := rng.Intn(12), rng.Intn(12)
		window := int64(1 + rng.Intn(50))
		xs := make([]int64, nx)
		ys := make([]int64, ny)
		for i := range xs {
			xs[i] = int64(rng.Intn(100))
		}
		for i := range ys {
			ys[i] = int64(rng.Intn(100))
		}
		sortInt64(xs)
		sortInt64(ys)
		gp, gl := cross(xs, ys, window)
		wp, wl := crossBrute(xs, ys, window)
		if gp != wp || gl != wl {
			t.Fatalf("trial %d: cross(%v, %v, %d) = (%d, %d), brute (%d, %d)",
				trial, xs, ys, window, gp, gl, wp, wl)
		}
	}
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// randomEntries fabricates entries with duplicate timestamps, several
// categories and sources, and a mix of kept flags.
func randomEntries(rng *rand.Rand, base time.Time, n int) []store.Entry {
	cats := []string{"GM_PAR", "GM_LANAI", "PBS_CHK", "NMI"}
	srcs := []string{"ladm1", "ln12", "ln40"}
	out := make([]store.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Entry{
			Record: logrec.Record{
				Seq:    uint64(i),
				Time:   base.Add(time.Duration(rng.Intn(3600)) * time.Second),
				System: logrec.Liberty,
				Source: srcs[rng.Intn(len(srcs))],
				Body:   fmt.Sprintf("fatal error %d on unit %d", rng.Intn(3), i),
			},
			Category: cats[rng.Intn(len(cats))],
			Kept:     rng.Intn(4) != 0,
		})
	}
	return out
}

func graphJSON(t *testing.T, g Graph) string {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMineEntriesOrderIndependent: the graph is a pure function of the
// entry multiset — shuffling arrival order must not change a byte.
func TestMineEntriesOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	entries := randomEntries(rng, base, 300)
	for _, cfg := range testConfigs() {
		want := graphJSON(t, MineEntries(cfg, entries))
		for trial := 0; trial < 5; trial++ {
			shuffled := append([]store.Entry(nil), entries...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := graphJSON(t, MineEntries(cfg, shuffled)); got != want {
				t.Fatalf("cfg %s: shuffled mine diverged\ngot:  %s\nwant: %s", cfg.Key(), got, want)
			}
		}
	}
}

// TestFoldMatchesBatch: folding random batch splits must equal the
// from-scratch mine — the bilinearity the online miner rests on.
func TestFoldMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 20; trial++ {
		entries := randomEntries(rng, base, 50+rng.Intn(200))
		for _, cfg := range testConfigs() {
			cfg = cfg.withDefaults()
			s := newGraphState()
			for lo := 0; lo < len(entries); {
				hi := lo + 1 + rng.Intn(40)
				if hi > len(entries) {
					hi = len(entries)
				}
				s.fold(deltaOf(cfg, entries[lo:hi]), cfg.Window.Nanoseconds())
				lo = hi
			}
			got := graphJSON(t, render(cfg, s))
			want := graphJSON(t, MineEntries(cfg, entries))
			if got != want {
				t.Fatalf("trial %d cfg %s: incremental fold diverged\ngot:  %s\nwant: %s",
					trial, cfg.Key(), got, want)
			}
		}
	}
}

func testConfigs() []Config {
	tpl := mining.Mine([]string{
		"fatal error 0 on unit 1",
		"fatal error 1 on unit 2",
		"fatal error 2 on unit 3",
	}, mining.Config{Support: 2, MaxTokens: 8})
	return []Config{
		{},
		{Window: 10 * time.Minute},
		{NodeMode: NodeSourceCategory},
		{NodeMode: NodeTemplate, Templates: tpl},
		{IncludeRemoved: true},
	}
}

// TestMergeColumnsEqualsUnion: the cluster merge path — partitioned
// columns merged back must mine exactly the unpartitioned graph.
func TestMergeColumnsEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	entries := randomEntries(rng, base, 400)
	cfg := Config{}.withDefaults()
	want := graphJSON(t, MineEntries(cfg, entries))
	for _, parts := range []int{1, 2, 4, 7} {
		split := make([][]store.Entry, parts)
		for _, en := range entries {
			i := rng.Intn(parts)
			split[i] = append(split[i], en)
		}
		cols := make([]map[string][]int64, parts)
		for i, part := range split {
			cols[i] = columnsOf(cfg, part)
		}
		got := graphJSON(t, GraphFromColumns(cfg, MergeColumns(cols)))
		if got != want {
			t.Fatalf("%d-way merge diverged\ngot:  %s\nwant: %s", parts, got, want)
		}
	}
}

func TestStrictPrecedenceIgnoresTies(t *testing.T) {
	at := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	entries := []store.Entry{
		{Record: logrec.Record{Time: at, System: logrec.Liberty}, Category: "A", Kept: true},
		{Record: logrec.Record{Time: at, System: logrec.Liberty}, Category: "B", Kept: true},
	}
	g := MineEntries(Config{}, entries)
	if len(g.Edges) != 0 {
		t.Fatalf("equal timestamps produced edges: %+v", g.Edges)
	}
}

func TestRenderEdgeFields(t *testing.T) {
	at := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	mk := func(cat string, d time.Duration) store.Entry {
		return store.Entry{Record: logrec.Record{Time: at.Add(d), System: logrec.Liberty}, Category: cat, Kept: true}
	}
	// Two A→B pairs with lags 10m and 20m; one A outside any pair.
	entries := []store.Entry{
		mk("A", 0), mk("B", 10*time.Minute),
		mk("A", 2*time.Hour), mk("B", 2*time.Hour+20*time.Minute),
		mk("A", 6*time.Hour),
	}
	g := MineEntries(Config{}, entries)
	var ab *Edge
	for i := range g.Edges {
		if g.Edges[i].Source == "A" && g.Edges[i].Target == "B" {
			ab = &g.Edges[i]
		}
	}
	if ab == nil {
		t.Fatalf("A→B edge missing: %+v", g.Edges)
	}
	if ab.Pairs != 2 || ab.SourceCount != 3 || ab.TargetCount != 2 {
		t.Fatalf("edge counts: %+v", ab)
	}
	if want := 15 * time.Minute; ab.MeanLag != want {
		t.Fatalf("mean lag %v, want %v", ab.MeanLag, want)
	}
	if want := 2.0 / 3.0; ab.Confidence != want {
		t.Fatalf("confidence %v, want %v", ab.Confidence, want)
	}
}

func TestFilterEdges(t *testing.T) {
	edges := []Edge{
		{Source: "A", Target: "B", Pairs: 10, Confidence: 0.9},
		{Source: "B", Target: "C", Pairs: 2, Confidence: 0.5},
		{Source: "C", Target: "A", Pairs: 7, Confidence: 0.1},
	}
	if got := FilterEdges(edges, 5, 0, ""); len(got) != 2 {
		t.Fatalf("min support filter: %+v", got)
	}
	if got := FilterEdges(edges, 0, 0.4, ""); len(got) != 2 {
		t.Fatalf("min confidence filter: %+v", got)
	}
	got := FilterEdges(edges, 0, 0, "C")
	if len(got) != 2 || got[0].Source != "B" || got[1].Source != "C" {
		t.Fatalf("neighborhood filter: %+v", got)
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	tpl := mining.Mine([]string{"a b", "a c"}, mining.Config{Support: 2, MaxTokens: 8})
	cfgs := []Config{
		{},
		{Window: 10 * time.Minute},
		{NodeMode: NodeSourceCategory},
		{NodeMode: NodeTemplate, Templates: tpl},
		{IncludeRemoved: true},
	}
	seen := map[string]int{}
	for i, c := range cfgs {
		k := c.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("configs %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
	// The default key must be stable against explicit defaults.
	if (Config{}).Key() != (Config{Window: DefaultWindow}).Key() {
		t.Fatal("zero config and explicit-default config have different keys")
	}
}

func TestParseNodeModeRoundTrip(t *testing.T) {
	for _, m := range []NodeMode{NodeCategory, NodeSourceCategory, NodeTemplate} {
		got, err := ParseNodeMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParseNodeMode("bogus"); err == nil {
		t.Fatal("bogus mode parsed")
	}
	if m, err := ParseNodeMode(""); err != nil || m != NodeCategory {
		t.Fatalf("empty mode: %v, %v", m, err)
	}
}
