package correlate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/store"
)

// Graph persistence: the miner writes its integer state as a versioned
// artifact next to the store manifest, with the same atomic-rename
// discipline every other store file uses (store.AtomicWriteFile: tmp →
// fsync → rename → dir fsync). The artifact is keyed by the config and
// the store fingerprint it describes; on reopen, a matching fingerprint
// under a seq-stable check lets the miner install the saved state
// without rescanning (a warm start). A stale or mismatched artifact is
// ignored and overwritten — it is a cache of derived state, never a
// source of truth, so no recovery protocol is needed beyond "rebuild
// from a scan".
//
// Saves run on a dedicated goroutine with a coalescing wake channel:
// observers run synchronously on the append path and must not block on
// disk, so applyDelta only pokes the saver. Close writes a final
// artifact so the fingerprint matches the sealed-on-close store.

// ArtifactName is the graph artifact's filename, next to MANIFEST.
const ArtifactName = "CORRGRAPH"

// artifactVersion is bumped on any encoding change; readers ignore
// other versions (and rebuild from a scan).
const artifactVersion = 1

var mCorrelateSaves = obs.Default.Counter("correlate_saves_total")

// ArtifactPath returns the graph artifact path for a store directory.
func ArtifactPath(storeDir string) string {
	return filepath.Join(storeDir, ArtifactName)
}

// artifactEdge is one persisted edge accumulator.
type artifactEdge struct {
	Source string `json:"source"`
	Target string `json:"target"`
	Pairs  int64  `json:"pairs"`
	LagSum int64  `json:"lag_sum"`
}

// artifact is the on-disk form of the miner's integer state.
type artifact struct {
	Version int `json:"version"`
	// ConfigKey pins the mining configuration; a miner with a different
	// key ignores the artifact.
	ConfigKey string `json:"config_key"`
	// Fingerprint is the store fingerprint the state describes; a warm
	// start requires it to match the open store's.
	Fingerprint uint64 `json:"fingerprint"`
	// Seq is the mutation sequence at save time — informational only
	// (sequence numbers are process-local and reset on reopen).
	Seq   uint64             `json:"seq"`
	Cols  map[string][]int64 `json:"cols"`
	Edges []artifactEdge     `json:"edges"`
}

// loadArtifact reads and validates an artifact file.
func loadArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("correlate: artifact %s: %w", path, err)
	}
	if art.Version != artifactVersion {
		return nil, fmt.Errorf("correlate: artifact %s: version %d, want %d", path, art.Version, artifactVersion)
	}
	return &art, nil
}

// saveLoop is the saver worker: coalesced wakes, one write per wake.
func (m *Miner) saveLoop() {
	defer close(m.saveDone)
	if m.artifactPath == "" {
		return
	}
	for {
		select {
		case <-m.stop:
			return
		case <-m.saveCh:
		}
		m.save()
	}
}

// wakeSave pokes the saver (no-op without an artifact path).
func (m *Miner) wakeSave() {
	if m.artifactPath == "" {
		return
	}
	select {
	case m.saveCh <- struct{}{}:
	default:
	}
}

// save snapshots the state and writes the artifact atomically. The
// fingerprint is read under a seq-stable window and must correspond to
// the same mutation sequence the state reflects (lastSeq), so the saved
// (state, fingerprint) pair is consistent; on a busy store the save
// simply retries a few times and lets the next quiet moment win.
func (m *Miner) save() {
	if m.artifactPath == "" {
		return
	}
	for attempt := 0; attempt < 8; attempt++ {
		s1 := m.st.MutationSeq()
		fp := m.st.Fingerprint()
		if m.st.MutationSeq() != s1 {
			continue
		}
		m.mu.Lock()
		if m.scanning || m.dirty {
			// No installed clean state to persist; the next install will
			// wake the saver again.
			m.mu.Unlock()
			return
		}
		if m.lastSeq != s1 {
			// Mutations are committed that this state has not reflected
			// yet (delivery in flight); retry for a consistent pair.
			m.mu.Unlock()
			continue
		}
		art := &artifact{
			Version:     artifactVersion,
			ConfigKey:   m.cfg.Key(),
			Fingerprint: fp,
			Seq:         s1,
			Cols:        make(map[string][]int64, len(m.state.cols)),
		}
		for node, col := range m.state.cols {
			art.Cols[node] = append([]int64(nil), col...)
		}
		art.Edges = make([]artifactEdge, 0, len(m.state.edges))
		for k, acc := range m.state.edges {
			art.Edges = append(art.Edges, artifactEdge{Source: k.a, Target: k.b, Pairs: acc.Pairs, LagSum: acc.LagSum})
		}
		m.mu.Unlock()

		data, err := json.Marshal(art)
		if err != nil {
			return
		}
		if err := store.AtomicWriteFile(m.artifactPath, data); err != nil {
			return
		}
		mCorrelateSaves.Add(1)
		return
	}
}

// tryWarmStart installs the persisted artifact when it matches this
// miner's config and the open store's fingerprint (checked under a
// seq-stable window). Returns false to fall back to a baseline scan.
func (m *Miner) tryWarmStart() bool {
	if m.artifactPath == "" {
		return false
	}
	art, err := loadArtifact(m.artifactPath)
	if err != nil || art.ConfigKey != m.cfg.Key() {
		return false
	}
	for {
		s1 := m.st.MutationSeq()
		fp := m.st.Fingerprint()
		if m.st.MutationSeq() != s1 {
			continue
		}
		if fp != art.Fingerprint {
			return false
		}
		st := newGraphState()
		st.cols = art.Cols
		for _, e := range art.Edges {
			st.edges[edgeKey{e.Source, e.Target}] = edgeAccum{Pairs: e.Pairs, LagSum: e.LagSum}
		}
		m.mu.Lock()
		if m.st.MutationSeq() != s1 {
			m.mu.Unlock()
			continue
		}
		m.state = st
		m.baseSeq = s1
		m.lastSeq = s1
		for _, bd := range m.buf {
			if bd.seq > s1 {
				m.state.fold(bd.d, m.cfg.Window.Nanoseconds())
				m.deltas++
				mCorrelateDeltas.Add(1)
			}
		}
		m.buf = nil
		m.scanning = false
		m.dirty = false
		m.inScan = false
		m.warmStart = true
		m.version++
		mCorrelateWarmStarts.Add(1)
		m.publishLocked()
		m.mu.Unlock()
		return true
	}
}
