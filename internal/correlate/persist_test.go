package correlate

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/store"
)

// The persistence contract: a sealed store closed cleanly leaves a
// CORRGRAPH artifact whose fingerprint matches the reopened store, so
// the next miner installs it without a scan — and the warm-started
// state is byte-identical to a from-scratch batch mine.

func TestMinerWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(dir, logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Window: 30 * time.Minute}
	m := NewMiner(st, cfg, ArtifactPath(dir))
	st.SetObserver(m.OnMutation)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().WarmStart {
		t.Fatal("first open reported a warm start")
	}

	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := st.Append(minerEntries(base, 0, 9)...); err != nil {
		t.Fatal(err)
	}
	// Shutdown order: seal the tail, then close the miner (final save
	// under the post-seal fingerprint), then the store. Store.Close's own
	// seal is a no-op on the empty tail, so the fingerprint the artifact
	// recorded is the one the reopened store reports.
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	want, _ := json.Marshal(m.Snapshot())
	st.SetObserver(nil)
	m.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ArtifactPath(dir)); err != nil {
		t.Fatalf("artifact missing after close: %v", err)
	}

	st2, _, err := store.Open(dir, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := NewMiner(st2, cfg, ArtifactPath(dir))
	st2.SetObserver(m2.OnMutation)
	defer func() {
		st2.SetObserver(nil)
		m2.Close()
	}()
	if err := m2.Init(); err != nil {
		t.Fatal(err)
	}
	if !m2.Stats().WarmStart {
		t.Fatal("reopen did not warm-start from the artifact")
	}
	got, _ := json.Marshal(m2.Snapshot())
	if string(got) != string(want) {
		t.Fatalf("warm-started graph diverges\ngot:  %s\nwant: %s", got, want)
	}
	checkMinerDifferential(t, "warm start", st2, []*Miner{m2})

	// Deltas keep folding on top of the warm-started state.
	if err := st2.Append(minerEntries(base.Add(2*time.Hour), 100, 5)...); err != nil {
		t.Fatal(err)
	}
	checkMinerDifferential(t, "post-warm-start append", st2, []*Miner{m2})
}

// TestMinerWarmStartRejects pins the guards: a config change or a store
// mutated behind the artifact's back must fall back to a scan (and
// still produce the exact batch answer).
func TestMinerWarmStartRejects(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(dir, logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}
	m := NewMiner(st, cfg, ArtifactPath(dir))
	st.SetObserver(m.OnMutation)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := st.Append(minerEntries(base, 0, 6)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	st.SetObserver(nil)
	m.Close()

	// Mutate the store after the artifact was written: the fingerprint
	// moves, so a matching-config miner must reject the stale artifact.
	if err := st.Append(minerEntries(base.Add(3*time.Hour), 50, 4)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := store.Open(dir, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	// Different config: rejected by key.
	other := NewMiner(st2, Config{Window: 5 * time.Minute}, ArtifactPath(dir))
	st2.SetObserver(other.OnMutation)
	if err := other.Init(); err != nil {
		t.Fatal(err)
	}
	if other.Stats().WarmStart {
		t.Fatal("mismatched config warm-started")
	}
	checkMinerDifferential(t, "config mismatch", st2, []*Miner{other})
	st2.SetObserver(nil)
	other.Close()

	// Same config, stale fingerprint: rejected, rebuilt from scan.
	m2 := NewMiner(st2, cfg, ArtifactPath(dir))
	st2.SetObserver(m2.OnMutation)
	defer func() {
		st2.SetObserver(nil)
		m2.Close()
	}()
	if err := m2.Init(); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().WarmStart {
		t.Fatal("stale artifact warm-started")
	}
	checkMinerDifferential(t, "stale fingerprint", st2, []*Miner{m2})
}

// TestCorruptArtifactIgnored: a truncated or garbage artifact is a
// cache miss, not an error.
func TestCorruptArtifactIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Create(dir, logrec.Liberty, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := os.WriteFile(ArtifactPath(dir), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewMiner(st, Config{}, ArtifactPath(dir))
	st.SetObserver(m.OnMutation)
	defer func() {
		st.SetObserver(nil)
		m.Close()
	}()
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().WarmStart {
		t.Fatal("corrupt artifact warm-started")
	}
	checkMinerDifferential(t, "corrupt artifact", st, []*Miner{m})
}
