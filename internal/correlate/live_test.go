package correlate

import (
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/core"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// libertyEntries runs the study pipeline on simulated Liberty data and
// converts the alert stream into store entries, Kept marking the
// alerts that survived Algorithm 3.1 — the five-system dataset the
// acceptance criterion names.
func libertyEntries(t *testing.T) []store.Entry {
	t.Helper()
	study, err := core.New(simulate.Config{System: logrec.Liberty, Scale: 0.0002, AlertScale: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[uint64]bool, len(study.Filtered))
	for _, a := range study.Filtered {
		kept[a.Record.Seq] = true
	}
	entries := make([]store.Entry, 0, len(study.Alerts))
	for _, a := range study.Alerts {
		entries = append(entries, store.Entry{
			Record:   a.Record,
			Category: a.Category.Name,
			Kept:     kept[a.Record.Seq],
		})
	}
	return entries
}

// TestLibertyGraphFindsGMEdge: the miner rediscovers Figure 3 — a
// GM_PAR → GM_LANAI edge with real support and minutes-scale lag —
// from the filtered Liberty stream.
func TestLibertyGraphFindsGMEdge(t *testing.T) {
	g := MineEntries(Config{}, libertyEntries(t))
	var edge *Edge
	for i := range g.Edges {
		if g.Edges[i].Source == "GM_PAR" && g.Edges[i].Target == "GM_LANAI" {
			edge = &g.Edges[i]
			break
		}
	}
	if edge == nil {
		t.Fatalf("no GM_PAR→GM_LANAI edge mined; edges: %+v", g.Edges)
	}
	if edge.Pairs < int64(DefaultMinEdgeSupport) {
		t.Fatalf("edge support %d too weak: %+v", edge.Pairs, edge)
	}
	if edge.MeanLag <= 0 || edge.MeanLag > time.Hour {
		t.Fatalf("edge lag out of the Figure 3 range: %+v", edge)
	}
}

// TestLibertyGraphPredictorSelected is the acceptance criterion: on one
// of the five study systems' data, AutoEnsemble picks a graph-derived
// predictor as a category's champion and the report carries warnings
// from it.
func TestLibertyGraphPredictorSelected(t *testing.T) {
	entries := libertyEntries(t)
	cfg := Config{}.withDefaults()
	cols := columnsOf(cfg, entries)

	rep := PredictFromColumns(cfg, cols, PredictOptions{})
	var row *ScoreRow
	for i := range rep.Scoreboard {
		if rep.Scoreboard[i].FromGraph && rep.Scoreboard[i].Category == "GM_LANAI" {
			row = &rep.Scoreboard[i]
			break
		}
	}
	if row == nil {
		t.Fatalf("no graph-derived champion for GM_LANAI; scoreboard: %+v", rep.Scoreboard)
	}
	if !strings.Contains(row.Predictor, "GM_PAR") {
		t.Fatalf("GM_LANAI champion is not the GM_PAR edge: %+v", row)
	}
	if row.F1 <= 0 {
		t.Fatalf("graph champion scored zero on holdout: %+v", row)
	}
	if row.Lag <= 0 {
		t.Fatalf("graph champion carries no lead-time estimate: %+v", row)
	}

	// Truncate the stream just after a GM_PAR event: the live view's
	// final-horizon window must then carry a warning issued by the graph
	// champion ("current warnings" in the /api/predict sense).
	lastPar := int64(0)
	for _, ts := range cols["GM_PAR"] {
		lastPar = ts
	}
	if lastPar == 0 {
		t.Fatal("no GM_PAR events")
	}
	cut := make(map[string][]int64, len(cols))
	for node, col := range cols {
		var kept []int64
		for _, ts := range col {
			if ts <= lastPar {
				kept = append(kept, ts)
			}
		}
		if len(kept) > 0 {
			cut[node] = kept
		}
	}
	rep = PredictFromColumns(cfg, cut, PredictOptions{})
	found := false
	for _, w := range rep.Warnings {
		if w.Category == "GM_LANAI" && strings.Contains(w.Predictor, "graph(") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no live graph warning after a GM_PAR event; warnings: %+v", rep.Warnings)
	}
}

// TestPredictFromColumnsDeterministic: same columns, same bytes — the
// purity the cluster merge and the HTTP differential rely on.
func TestPredictFromColumnsDeterministic(t *testing.T) {
	entries := libertyEntries(t)
	cfg := Config{}.withDefaults()
	cols := columnsOf(cfg, entries)
	a := PredictFromColumns(cfg, cols, PredictOptions{})
	b := PredictFromColumns(cfg, cols, PredictOptions{})
	if len(a.Scoreboard) != len(b.Scoreboard) || len(a.Warnings) != len(b.Warnings) || !a.AsOf.Equal(b.AsOf) {
		t.Fatalf("report not deterministic:\n%+v\n%+v", a, b)
	}
	for i := range a.Scoreboard {
		if a.Scoreboard[i] != b.Scoreboard[i] {
			t.Fatalf("scoreboard row %d differs: %+v vs %+v", i, a.Scoreboard[i], b.Scoreboard[i])
		}
	}
}

func TestPredictEmptyColumns(t *testing.T) {
	rep := PredictFromColumns(Config{}, nil, PredictOptions{})
	if rep.Events != 0 || len(rep.Scoreboard) != 0 || len(rep.Warnings) != 0 {
		t.Fatalf("empty columns produced content: %+v", rep)
	}
}

// TestLiveServiceCache: the report recomputes only when the miner's
// version moves.
func TestLiveServiceCache(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.Liberty, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := NewMiner(st, Config{}, "")
	st.SetObserver(m.OnMutation)
	defer func() {
		st.SetObserver(nil)
		m.Close()
	}()
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	svc := NewLiveService(m, PredictOptions{})

	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	if err := st.Append(minerEntries(base, 0, 12)...); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	before := mPredictEvals.Value()
	r1 := svc.Report()
	afterFirst := mPredictEvals.Value()
	if afterFirst != before+1 {
		t.Fatalf("first report ran %d evaluations, want 1", afterFirst-before)
	}
	r2 := svc.Report()
	if got := mPredictEvals.Value(); got != afterFirst {
		t.Fatal("cached report re-evaluated")
	}
	if !r1.AsOf.Equal(r2.AsOf) || r1.Events != r2.Events {
		t.Fatalf("cached report differs: %+v vs %+v", r1, r2)
	}

	if err := st.Append(minerEntries(base.Add(2*time.Hour), 100, 3)...); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, m)
	r3 := svc.Report()
	if got := mPredictEvals.Value(); got != afterFirst+1 {
		t.Fatal("version change did not re-evaluate")
	}
	if r3.Events <= r2.Events {
		t.Fatalf("report did not advance: %+v", r3)
	}
}

// alerts reconstruction sanity: pseudo alerts match tag.Alert shape.
func TestAlertsFromColumns(t *testing.T) {
	cols := map[string][]int64{
		"B": {100, 300},
		"A": {100, 200},
	}
	alerts := alertsFromColumns(cols)
	if len(alerts) != 4 {
		t.Fatalf("got %d alerts", len(alerts))
	}
	wantOrder := []struct {
		ts  int64
		cat string
	}{{100, "A"}, {100, "B"}, {200, "A"}, {300, "B"}}
	for i, w := range wantOrder {
		a := alerts[i]
		if a.Record.Time.UnixNano() != w.ts || a.Category.Name != w.cat {
			t.Fatalf("alert %d = (%d, %s), want (%d, %s)",
				i, a.Record.Time.UnixNano(), a.Category.Name, w.ts, w.cat)
		}
	}
	var _ []tag.Alert = alerts
}
