package correlate

import (
	"sort"
	"sync"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/predict"
	"whatsupersay/internal/tag"
)

// Live prediction: the graph's edges become precursor predictors
// (predict.GraphPrecursor), entered into the AutoEnsemble candidate
// pool next to the rate/EWMA baselines, and the whole pool is trained
// and scored against the miner's own event stream — train on the
// earlier fraction, hold out the rest, keep one champion per category.
// The report is a *pure function* of the miner's integer state: the
// event stream is reconstructed from the timestamp columns (predictors
// only read a category name and a timestamp), ties are broken by node
// name so duplicate timestamps cannot perturb the output, and "now" is
// the newest event in the stream — so the sharded view (merged columns
// through the same function) is identical to the single-store view by
// construction, and differential tests can pin it.

// Prediction telemetry.
var (
	mPredictEvals     = obs.Default.Counter("predict_evaluations_total")
	gPredictChampions = obs.Default.Gauge("predict_champions")
	gPredictWarnings  = obs.Default.Gauge("predict_active_warnings")
)

// Default prediction-evaluation parameters. Horizon and lead mirror the
// study's scale: cascades play out over minutes to an hour.
const (
	DefaultHorizon = time.Hour
	DefaultMinLead = time.Minute
	// DefaultSplitFrac is the train fraction of the stream's time span.
	DefaultSplitFrac = 0.7
	// DefaultMinF1 is the champion floor: categories whose best training
	// F1 is below it are reported unpredictable rather than guessed at.
	DefaultMinF1 = 0.2
	// DefaultMinEdgeConfidence gates which graph edges become candidate
	// predictors — a weak edge is noise, not a precursor.
	DefaultMinEdgeConfidence = 0.25
	// DefaultMinEdgeSupport is the matching pair-count gate.
	DefaultMinEdgeSupport = 3
)

// PredictOptions tune the live evaluation. Zero values take defaults.
type PredictOptions struct {
	Horizon           time.Duration `json:"horizon_ns"`
	MinLead           time.Duration `json:"min_lead_ns"`
	SplitFrac         float64       `json:"split_frac"`
	MinF1             float64       `json:"min_f1"`
	MinEdgeConfidence float64       `json:"min_edge_confidence"`
	MinEdgeSupport    int64         `json:"min_edge_support"`
}

func (o PredictOptions) withDefaults() PredictOptions {
	if o.Horizon <= 0 {
		o.Horizon = DefaultHorizon
	}
	if o.MinLead <= 0 {
		o.MinLead = DefaultMinLead
	}
	if o.SplitFrac <= 0 || o.SplitFrac >= 1 {
		o.SplitFrac = DefaultSplitFrac
	}
	if o.MinF1 <= 0 {
		o.MinF1 = DefaultMinF1
	}
	if o.MinEdgeConfidence <= 0 {
		o.MinEdgeConfidence = DefaultMinEdgeConfidence
	}
	if o.MinEdgeSupport <= 0 {
		o.MinEdgeSupport = DefaultMinEdgeSupport
	}
	return o
}

// ScoreRow is one category's champion on the scoreboard.
type ScoreRow struct {
	Category string `json:"category"`
	// Predictor is the champion's label (e.g. "graph(GM_PAR)").
	Predictor string `json:"predictor"`
	// FromGraph marks champions derived from the correlation graph.
	FromGraph bool `json:"from_graph,omitempty"`
	// Lag is the mined typical precursor lag for graph champions — the
	// expected lead time a warning gives (zero for non-graph champions).
	Lag            time.Duration `json:"lag_ns,omitempty"`
	TrainPrecision float64       `json:"train_precision"`
	TrainRecall    float64       `json:"train_recall"`
	TrainF1        float64       `json:"train_f1"`
	Precision      float64       `json:"precision"`
	Recall         float64       `json:"recall"`
	F1             float64       `json:"f1"`
}

// ActiveWarning is one current warning: an event of Category is
// expected within the horizon after Time.
type ActiveWarning struct {
	Time      time.Time `json:"time"`
	Category  string    `json:"category"`
	Predictor string    `json:"predictor"`
}

// PredictionReport is the /api/predict payload.
type PredictionReport struct {
	// AsOf is the newest event in the evaluated stream — the report's
	// deterministic "now".
	AsOf    time.Time     `json:"as_of"`
	Horizon time.Duration `json:"horizon_ns"`
	Events  int           `json:"events"`
	// Categories is how many event types were evaluated; Scoreboard
	// holds the ones with a champion.
	Categories int        `json:"categories"`
	Scoreboard []ScoreRow `json:"scoreboard"`
	// Warnings are the champions' warnings issued within the final
	// horizon before AsOf — the "expected soon" set.
	Warnings []ActiveWarning `json:"warnings"`
}

// GraphEdgesForPredict converts mined edges into predictor-pool form,
// applying the support/confidence gates and dropping self-edges (a
// category "predicting" itself with zero lead is degenerate, the same
// rule AutoSelect applies to plain Precursors).
func GraphEdgesForPredict(g Graph, minSupport int64, minConfidence float64) []predict.GraphEdge {
	out := make([]predict.GraphEdge, 0, len(g.Edges))
	for _, e := range g.Edges {
		if e.Source == e.Target || e.Pairs < minSupport || e.Confidence < minConfidence {
			continue
		}
		out = append(out, predict.GraphEdge{
			Precursor:  e.Source,
			Target:     e.Target,
			Confidence: e.Confidence,
			Lag:        e.MeanLag,
		})
	}
	return out
}

// alertsFromColumns reconstructs the pseudo alert stream predictors
// consume: one alert per (node, timestamp), sorted by time with node
// name breaking ties so duplicate timestamps are deterministic.
// Predictors read only Category.Name and Record.Time.
func alertsFromColumns(cols map[string][]int64) []tag.Alert {
	n := 0
	for _, col := range cols {
		n += len(col)
	}
	alerts := make([]tag.Alert, 0, n)
	nodes := make([]string, 0, len(cols))
	for node := range cols {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	cats := make(map[string]*catalog.Category, len(nodes))
	for _, node := range nodes {
		cats[node] = &catalog.Category{Name: node}
	}
	for _, node := range nodes {
		for _, ts := range cols[node] {
			alerts = append(alerts, tag.Alert{
				Record:   logrec.Record{Time: time.Unix(0, ts).UTC()},
				Category: cats[node],
			})
		}
	}
	sort.SliceStable(alerts, func(i, j int) bool {
		ti, tj := alerts[i].Record.Time, alerts[j].Record.Time
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return alerts[i].Category.Name < alerts[j].Category.Name
	})
	return alerts
}

// PredictFromColumns runs the full evaluation over one column set and
// its mined graph — the pure function both the single-store and the
// merged cluster views call.
func PredictFromColumns(cfg Config, cols map[string][]int64, opts PredictOptions) PredictionReport {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	mPredictEvals.Add(1)

	g := GraphFromColumns(cfg, cols)
	alerts := alertsFromColumns(cols)
	rep := PredictionReport{Horizon: opts.Horizon, Events: len(alerts), Categories: len(cols)}
	if len(alerts) == 0 {
		rep.Scoreboard = []ScoreRow{}
		rep.Warnings = []ActiveWarning{}
		return rep
	}
	rep.AsOf = alerts[len(alerts)-1].Record.Time

	targets := make([]string, 0, len(cols))
	for node := range cols {
		targets = append(targets, node)
	}
	sort.Strings(targets)

	edges := GraphEdgesForPredict(g, opts.MinEdgeSupport, opts.MinEdgeConfidence)
	candidates := []predict.Candidate{
		{Predictor: predict.RateThreshold{Window: 10 * time.Minute, Count: 3, Cooldown: time.Hour}, Label: "rate-threshold"},
		{Predictor: predict.DefaultEWMA(), Label: "ewma"},
	}
	candidates = append(candidates, predict.GraphCandidates(edges)...)

	sels := predict.AutoSelect(alerts, targets, candidates, opts.SplitFrac, opts.MinLead, opts.Horizon, opts.MinF1)
	rep.Scoreboard = make([]ScoreRow, 0, len(sels))
	labels := make(map[string]string, len(sels))
	for _, s := range sels {
		row := ScoreRow{
			Category:       s.Category,
			Predictor:      s.Label,
			TrainPrecision: s.Train.Precision(),
			TrainRecall:    s.Train.Recall(),
			TrainF1:        f1Of(s.Train),
			Precision:      s.Holdout.Precision(),
			Recall:         s.Holdout.Recall(),
			F1:             f1Of(s.Holdout),
		}
		if gp, ok := s.Predictor.(predict.GraphPrecursor); ok {
			row.FromGraph = true
			row.Lag = gp.Lag
		}
		labels[s.Category] = s.Label
		rep.Scoreboard = append(rep.Scoreboard, row)
	}

	// Current warnings: run the champion ensemble over the full stream
	// and keep warnings issued within the final horizon before AsOf.
	ens := predict.ToEnsemble(sels)
	cutoff := rep.AsOf.Add(-opts.Horizon)
	rep.Warnings = []ActiveWarning{}
	for _, w := range ens.Predict(alerts) {
		if w.Time.Before(cutoff) || w.Time.After(rep.AsOf) {
			continue
		}
		rep.Warnings = append(rep.Warnings, ActiveWarning{
			Time: w.Time, Category: w.Category, Predictor: labels[w.Category],
		})
	}
	gPredictChampions.Set(float64(len(rep.Scoreboard)))
	gPredictWarnings.Set(float64(len(rep.Warnings)))
	return rep
}

// PredictStore runs the full evaluation over a store scan — the batch
// counterpart of LiveService, used by the correlate subcommand.
func PredictStore(st Scanner, cfg Config, opts PredictOptions) (PredictionReport, error) {
	cfg = cfg.withDefaults()
	cols, err := scanColumns(st, cfg)
	if err != nil {
		return PredictionReport{}, err
	}
	return PredictFromColumns(cfg, cols, opts), nil
}

// f1Of mirrors predict's selection criterion for reporting.
func f1Of(e predict.Eval) float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// LiveService serves prediction reports over a miner, recomputing only
// when the miner's state version moves — the evaluation is O(events)
// and the answer is pure, so version-keyed caching is exact, not a
// staleness tradeoff.
type LiveService struct {
	m    *Miner
	opts PredictOptions

	mu      sync.Mutex
	version uint64
	cached  *PredictionReport
}

// NewLiveService wraps a miner. Zero options take defaults.
func NewLiveService(m *Miner, opts PredictOptions) *LiveService {
	return &LiveService{m: m, opts: opts.withDefaults()}
}

// Options returns the (defaulted) evaluation options.
func (s *LiveService) Options() PredictOptions { return s.opts }

// Report returns the current prediction report, recomputed only when
// the miner's state has changed since the last call.
func (s *LiveService) Report() PredictionReport {
	cols, _, version := s.m.snapshotState()
	s.mu.Lock()
	if s.cached != nil && s.version == version {
		rep := *s.cached
		s.mu.Unlock()
		return rep
	}
	s.mu.Unlock()

	rep := PredictFromColumns(s.m.cfg, cols, s.opts)
	s.mu.Lock()
	s.version = version
	s.cached = &rep
	s.mu.Unlock()
	return rep
}
