package corrupt

import (
	"math/rand"
	"strings"
	"testing"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/syslogng"
)

const sample = "Mar  7 14:30:05 tn42 kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)"

func TestTruncateLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := TruncateLine(rng, sample)
	if len(got) >= len(sample) {
		t.Errorf("truncation did not shorten: %d >= %d", len(got), len(sample))
	}
	if !strings.HasPrefix(sample, got) {
		t.Error("truncation must be a prefix of the original")
	}
	if len(got) < len(sample)/2 {
		t.Error("truncation should cut in the second half")
	}
	// Short lines pass through.
	if TruncateLine(rng, "abc") != "abc" {
		t.Error("short lines must be left alone")
	}
}

func TestOverwriteLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	donor := "Mar  7 14:30:06 tn43 kernel: Sys/mosal_iobuf.c [126]: dump iobuf at 0000010188ee7880:"
	got := OverwriteLine(rng, sample, donor)
	if got == sample {
		t.Error("overwrite should change the line")
	}
	// The result is the paper's splice shape: a prefix of the victim
	// followed by a tail of the donor.
	cut := 0
	for cut < len(got) && cut < len(sample) && got[cut] == sample[cut] {
		cut++
	}
	if cut < len(sample)/2 {
		t.Errorf("victim prefix only %d bytes", cut)
	}
	if !strings.Contains(donor, got[cut:]) {
		t.Errorf("tail %q not from donor", got[cut:])
	}
}

func TestScrambleTimestamp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := ScrambleTimestamp(rng, sample)
	if len(got) != len(sample) {
		t.Fatal("scramble must preserve length")
	}
	if got[:15] == sample[:15] {
		t.Error("timestamp region unchanged")
	}
	if got[15:] != sample[15:] {
		t.Error("scramble must only touch the timestamp region")
	}
	// The scrambled line should now fail to parse.
	if _, perr := syslogng.Parse(got, 2005, logrec.Thunderbird); perr == nil {
		t.Error("scrambled timestamp should break parsing")
	}
}

func TestGarbleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	got := GarbleSource(rng, sample)
	if got == sample {
		t.Fatal("garble should change the line")
	}
	rec, perr := syslogng.Parse(got, 2005, logrec.Thunderbird)
	if perr != nil {
		t.Fatalf("garbled-source line should still parse (timestamp intact): %v", perr)
	}
	if rec.Source == "tn42" {
		t.Error("source should no longer be attributable")
	}
	if rec.Body != "VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)" {
		t.Errorf("body must survive source garbling, got %q", rec.Body)
	}
}

func TestGarbageTokenLooksCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tok := GarbageToken(rng, 6)
	if len(tok) != 6 {
		t.Fatalf("token length %d, want 6", len(tok))
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' || c == '.' {
			t.Fatalf("garbage token contains hostname-ish byte %q", c)
		}
	}
	if GarbageToken(rng, 0) == "" {
		t.Error("non-positive length should still produce junk")
	}
}

func TestInjectorApplyRates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lines := make([]string, 20000)
	for i := range lines {
		lines[i] = sample
	}
	inj := DefaultInjector(0.01)
	res := inj.Apply(rng, lines)
	total := res.Total()
	if total < 130 || total > 270 {
		t.Errorf("damaged %d of 20000 at p=0.01, want ~200", total)
	}
	// All four kinds should appear at this volume.
	for _, k := range []Kind{Truncated, Overwritten, BadTimestamp, BadSource} {
		if res.Damaged[k] == 0 {
			t.Errorf("kind %v never applied", k)
		}
	}
	// Nearly every damaged line actually changes; an overwrite can
	// rarely splice identical text back (donor lines are identical
	// here), so allow a tiny slack.
	changed := 0
	for _, l := range lines {
		if l != sample {
			changed++
		}
	}
	if changed > total || total-changed > 5 {
		t.Errorf("changed lines %d vs damaged count %d", changed, total)
	}
}

func TestInjectorZeroProb(t *testing.T) {
	lines := []string{sample, sample}
	res := Injector{Prob: 0}.Apply(rand.New(rand.NewSource(7)), lines)
	if res.Total() != 0 {
		t.Error("zero probability must damage nothing")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	mk := func() []string {
		lines := make([]string, 1000)
		for i := range lines {
			lines[i] = sample
		}
		return lines
	}
	a, b := mk(), mk()
	DefaultInjector(0.05).Apply(rand.New(rand.NewSource(8)), a)
	DefaultInjector(0.05).Apply(rand.New(rand.NewSource(8)), b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at line %d", i)
		}
	}
}

func TestInjectorWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inj := Injector{Prob: 1, Weights: map[Kind]float64{Truncated: 1}}
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = sample
	}
	res := inj.Apply(rng, lines)
	if res.Damaged[Truncated] != 100 {
		t.Errorf("all damage should be truncation, got %v", res.Damaged)
	}
}

func TestMarkCorruptedSources(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	recs := make([]logrec.Record, 5000)
	for i := range recs {
		recs[i] = logrec.Record{Source: "sn373"}
	}
	n := MarkCorruptedSources(rng, recs, 0.02)
	if n < 50 || n > 150 {
		t.Errorf("marked %d of 5000 at p=0.02, want ~100", n)
	}
	marked := 0
	for _, r := range recs {
		if r.Corrupted {
			marked++
			if r.Source == "sn373" {
				t.Fatal("corrupted record retains original source")
			}
		}
	}
	if marked != n {
		t.Errorf("marked %d, reported %d", marked, n)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Truncated: "truncated", Overwritten: "overwritten",
		BadTimestamp: "bad-timestamp", BadSource: "bad-source",
		Kind(0): "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
