// Package corrupt injects the log damage the paper catalogs in Section
// 3.2.1: "We saw messages truncated, partially overwritten, and incorrectly
// timestamped", plus the corrupted source fields that produce the
// unattributable cluster at the bottom of Figure 2(b).
//
// Corruption operates on the wire form (rendered lines), since that is
// where the damage happens — in transit or in the logging daemon's
// buffers — and the parsers then face exactly what the authors faced.
package corrupt

import (
	"math/rand"
	"strings"

	"whatsupersay/internal/logrec"
)

// Kind enumerates the damage classes.
type Kind int

// The observed damage classes.
const (
	// Truncated cuts the line short mid-token (the paper's
	// "VAPI_EAGAI" example).
	Truncated Kind = iota + 1
	// Overwritten splices the tail of a different message onto a
	// truncation point (the "VAPI_EAure = no" and
	// "VAPI_EAGSys/mosal_iobuf.c ..." examples).
	Overwritten
	// BadTimestamp scrambles the timestamp field.
	BadTimestamp
	// BadSource garbles the source field, thwarting attribution.
	BadSource
)

// String names the damage class.
func (k Kind) String() string {
	switch k {
	case Truncated:
		return "truncated"
	case Overwritten:
		return "overwritten"
	case BadTimestamp:
		return "bad-timestamp"
	case BadSource:
		return "bad-source"
	default:
		return "unknown"
	}
}

// Injector applies probabilistic damage to a line stream.
type Injector struct {
	// Prob is the per-line probability of damage.
	Prob float64
	// Weights gives the relative frequency of each damage kind; zero
	// weights disable a kind. Missing map means equal weights over all
	// kinds.
	Weights map[Kind]float64
}

// DefaultInjector returns the corruption mix used by the generator:
// truncation and overwrite dominate, with occasional timestamp and source
// damage.
func DefaultInjector(prob float64) Injector {
	return Injector{
		Prob: prob,
		Weights: map[Kind]float64{
			Truncated:    0.45,
			Overwritten:  0.30,
			BadTimestamp: 0.10,
			BadSource:    0.15,
		},
	}
}

// pick selects a damage kind by weight.
func (inj Injector) pick(rng *rand.Rand) Kind {
	kinds := []Kind{Truncated, Overwritten, BadTimestamp, BadSource}
	if len(inj.Weights) == 0 {
		return kinds[rng.Intn(len(kinds))]
	}
	total := 0.0
	for _, k := range kinds {
		total += inj.Weights[k]
	}
	if total <= 0 {
		return Truncated
	}
	x := rng.Float64() * total
	for _, k := range kinds {
		x -= inj.Weights[k]
		if x < 0 {
			return k
		}
	}
	return kinds[len(kinds)-1]
}

// Result reports what the injector did.
type Result struct {
	// Damaged counts lines damaged, by kind.
	Damaged map[Kind]int
}

// Total returns the total number of damaged lines.
func (r Result) Total() int {
	n := 0
	for _, c := range r.Damaged {
		n += c
	}
	return n
}

// Apply damages lines in place and reports what it did. prev lines supply
// overwrite tails; the first line can only be truncated.
func (inj Injector) Apply(rng *rand.Rand, lines []string) Result {
	res := Result{Damaged: make(map[Kind]int)}
	if inj.Prob <= 0 {
		return res
	}
	for i := range lines {
		if rng.Float64() >= inj.Prob {
			continue
		}
		kind := inj.pick(rng)
		switch kind {
		case Truncated:
			lines[i] = TruncateLine(rng, lines[i])
		case Overwritten:
			donor := lines[rng.Intn(len(lines))]
			lines[i] = OverwriteLine(rng, lines[i], donor)
		case BadTimestamp:
			lines[i] = ScrambleTimestamp(rng, lines[i])
		case BadSource:
			lines[i] = GarbleSource(rng, lines[i])
		}
		res.Damaged[kind]++
	}
	return res
}

// TruncateLine cuts a line at a random point in its second half, mid-token
// when possible.
func TruncateLine(rng *rand.Rand, line string) string {
	if len(line) < 8 {
		return line
	}
	cut := len(line)/2 + rng.Intn(len(line)/2)
	return line[:cut]
}

// OverwriteLine splices the tail of donor onto a truncation point of line,
// reproducing the partially-overwritten messages of Section 3.2.1.
func OverwriteLine(rng *rand.Rand, line, donor string) string {
	if len(line) < 8 || len(donor) < 8 {
		return line
	}
	cut := len(line)/2 + rng.Intn(len(line)/2)
	tailStart := rng.Intn(len(donor) / 2)
	tail := donor[len(donor)/2+tailStart/2:]
	return line[:cut] + tail
}

// ScrambleTimestamp overwrites bytes inside the leading timestamp region
// with junk so the timestamp no longer parses.
func ScrambleTimestamp(rng *rand.Rand, line string) string {
	if len(line) < 15 {
		return line
	}
	b := []byte(line)
	for j := 0; j < 3; j++ {
		b[rng.Intn(14)] = byte('!' + rng.Intn(14))
	}
	return string(b)
}

// GarbleSource replaces the source token (second whitespace field of a
// syslog line) with binary-ish junk, producing the unattributable sources
// of Figure 2(b).
func GarbleSource(rng *rand.Rand, line string) string {
	// Syslog: 15-byte timestamp, space, host.
	if len(line) < 17 {
		return line
	}
	rest := line[16:]
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return line
	}
	junk := GarbageToken(rng, sp)
	return line[:16] + junk + rest[sp:]
}

// garbageAlphabet is the junk-byte pool shared by every corruption site:
// printable punctuation plus the control bytes that real wire damage
// leaves behind.
const garbageAlphabet = "#@!?%^&*~\x7f\x01\x02"

// GarbleByte returns one junk byte from the corruption alphabet — the
// single-byte primitive behind GarbageToken, exported so transport-level
// fault injectors (package faultinject) damage bytes the same way the
// content-level injector does.
func GarbleByte(rng *rand.Rand) byte {
	return garbageAlphabet[rng.Intn(len(garbageAlphabet))]
}

// GarbageToken produces an n-byte token of non-hostname junk.
func GarbageToken(rng *rand.Rand, n int) string {
	if n <= 0 {
		n = 4
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = GarbleByte(rng)
	}
	return string(b)
}

// MarkCorruptedSources relabels a fraction of records' Source fields with
// garbage tokens, for generators that corrupt at the record level (the
// BG/L and SMW paths store into databases rather than text files, but
// still exhibited corrupted attribution).
func MarkCorruptedSources(rng *rand.Rand, recs []logrec.Record, prob float64) int {
	n := 0
	for i := range recs {
		if rng.Float64() < prob {
			recs[i].Source = GarbageToken(rng, 4+rng.Intn(6))
			recs[i].Corrupted = true
			n++
		}
	}
	return n
}
