// Package ddn implements Red Storm's non-syslog logging dialects and
// paths. Red Storm logs arrive three ways (Section 3.1):
//
//   - disk and RAID controller messages from the DDN subsystem (bodies
//     beginning "DMT_..."), relayed over a 100 Mb network to a DDN-specific
//     RAS machine running syslog-ng;
//   - Linux-node syslog (login, Lustre I/O, management nodes), handled by
//     package syslogng with severities stored;
//   - event-router messages from compute nodes, SeaStar NICs, and the
//     management hierarchy (bodies beginning "ec_..."), carried over the
//     reliable TCP RAS network to the System Management Workstation (SMW).
//     This path is not syslog and has no severity analog.
//
// This package renders and parses the SMW event format and provides
// constructors for the DMT_* and ec_* message bodies of Table 4.
package ddn

import (
	"fmt"
	"strings"
	"time"

	"whatsupersay/internal/logrec"
)

// EventTimeLayout is the SMW event log timestamp (one-second granularity).
const EventTimeLayout = "2006-01-02 15:04:05"

// RenderEvent produces the SMW event-log wire form:
//
//	2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop src:::c0-0c1s2 ...
func RenderEvent(r logrec.Record) string {
	return string(AppendEventLine(nil, r))
}

// AppendEventLine is RenderEvent in append form: it appends the event
// line to dst and returns the extended slice (see syslogng.AppendLine
// for the contract).
func AppendEventLine(dst []byte, r logrec.Record) []byte {
	dst = r.Time.AppendFormat(dst, EventTimeLayout)
	dst = append(dst, ' ')
	dst = append(dst, r.Source...)
	dst = append(dst, ' ')
	return append(dst, r.Body...)
}

// ParseError describes an unparseable SMW event line.
type ParseError struct {
	Line   string
	Reason string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("ddn: parse %q: %s", e.Line, e.Reason)
}

// ParseEvent parses one SMW event line. Malformed lines come back as
// Corrupted records with the raw text preserved.
func ParseEvent(line string) (logrec.Record, *ParseError) {
	rec := logrec.Record{System: logrec.RedStorm, Raw: line}
	if len(line) < len(EventTimeLayout)+1 {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "line shorter than timestamp"}
	}
	ts, err := time.Parse(EventTimeLayout, line[:len(EventTimeLayout)])
	if err != nil {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "bad timestamp: " + err.Error()}
	}
	rec.Time = ts.UTC()
	rest := line[len(EventTimeLayout):]
	if !strings.HasPrefix(rest, " ") {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "missing separator"}
	}
	rest = rest[1:]
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		rec.Corrupted = true
		return rec, &ParseError{Line: line, Reason: "missing source field"}
	}
	rec.Source = rest[:sp]
	rec.Body = rest[sp+1:]
	return rec, nil
}

// ParseEventStream parses many SMW lines in order.
func ParseEventStream(lines []string) (recs []logrec.Record, parseErrs int) {
	recs = make([]logrec.Record, 0, len(lines))
	for i, ln := range lines {
		rec, perr := ParseEvent(ln)
		rec.Seq = uint64(i)
		if perr != nil {
			parseErrs++
		}
		recs = append(recs, rec)
	}
	return recs, parseErrs
}

// The DDN subsystem "generates a great variety of alert patterns that all
// mean 'disk failure'" (Section 3.2.1). These constructors produce the
// Table 4 DMT_* body shapes; the variety is deliberate.

// BusParityBody is the DMT_HINT host-bus parity warning (H/BUS_PAR).
func BusParityBody(host, code string, tier, lun int) string {
	return fmt.Sprintf("DMT_HINT Warning: Verify Host %s bus parity error: %s Tier:%d LUN:%d", host, code, tier, lun)
}

// AddrErrBody is the DMT_102 address error (H/ADDR_ERR).
func AddrErrBody(lun, command int, address string, length int) string {
	return fmt.Sprintf("DMT_102 Address error LUN:%d command:%d address:%s length:%d Anonymous", lun, command, address, length)
}

// CmdAbortBody is the DMT_310 command abort (H/CMD_ABORT).
func CmdAbortBody(cmd string, lun, lane, t int) string {
	return fmt.Sprintf("DMT_310 Command Aborted: SCSI cmd:%s LUN %d DMT_310 Lane:%d T:%d", cmd, lun, lane, t)
}

// DiskFailBody is the DMT_DINT failing-disk notice (H/DSK_FAIL).
func DiskFailBody(channel string) string {
	return fmt.Sprintf("DMT_DINT Failing Disk %s", channel)
}

// HeartbeatStopBody is the ec_heartbeat_stop event (I/HBEAT).
func HeartbeatStopBody(src, svc string) string {
	return fmt.Sprintf("ec_heartbeat_stop src:::%s svc:::%s warn node heartbeat_fault", src, svc)
}

// ToastedBody is the ec_console_log PANIC event (I/TOAST).
func ToastedBody(src, svc string) string {
	return fmt.Sprintf("ec_console_log src:::%s svc:::%s PANIC_SP WE ARE TOASTED!", src, svc)
}

// TCPPath is the reliable SMW collection path: unlike the UDP relay it
// never drops messages, which is why the paper's RAS-network logs are
// complete while the syslog paths lose messages under contention.
type TCPPath struct{}

// Deliver returns the stream unchanged (reliable transport).
func (TCPPath) Deliver(recs []logrec.Record) []logrec.Record { return recs }
