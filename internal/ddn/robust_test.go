package ddn

import (
	"testing"
	"testing/quick"
)

// TestParseEventNeverPanicsProperty: arbitrary bytes must not panic the
// SMW event parser, and the raw line must be preserved.
func TestParseEventNeverPanicsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		line := string(junk)
		rec, _ := ParseEvent(line)
		return rec.Raw == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
