package ddn

import "testing"

// FuzzParse: the SMW event-dialect parser must survive arbitrary bytes
// without panicking, preserve the raw line, and flag every failure
// Corrupted.
func FuzzParse(f *testing.F) {
	f.Add("2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop src:::c0-0c1s2 warn node heartbeat_fault")
	f.Add("2006-03-19 04:11:02 c0-0c1s2")
	f.Add("2006-03-19 04:11:02")
	f.Add("")
	f.Add("\x01\x02\x03 not a timestamp at all")
	f.Fuzz(func(t *testing.T, line string) {
		rec, perr := ParseEvent(line)
		if rec.Raw != line {
			t.Fatalf("raw not preserved: %q != %q", rec.Raw, line)
		}
		if (perr != nil) != rec.Corrupted {
			t.Fatalf("parse error %v but Corrupted=%v", perr, rec.Corrupted)
		}
	})
}
