package ddn

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

func mkEvent() logrec.Record {
	return logrec.Record{
		Time:   time.Date(2006, time.March, 19, 4, 11, 2, 0, time.UTC),
		System: logrec.RedStorm,
		Source: "c0-0c1s2",
		Body:   HeartbeatStopBody("c0-0c1s2", "c0-0c1s2"),
	}
}

func TestRenderEvent(t *testing.T) {
	got := RenderEvent(mkEvent())
	want := "2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop src:::c0-0c1s2 svc:::c0-0c1s2 warn node heartbeat_fault"
	if got != want {
		t.Errorf("RenderEvent = %q, want %q", got, want)
	}
}

func TestParseEventRoundTrip(t *testing.T) {
	orig := mkEvent()
	rec, perr := ParseEvent(RenderEvent(orig))
	if perr != nil {
		t.Fatalf("ParseEvent: %v", perr)
	}
	if !rec.Time.Equal(orig.Time) || rec.Source != orig.Source || rec.Body != orig.Body {
		t.Errorf("round trip mismatch: %+v", rec)
	}
	if rec.Severity != logrec.SeverityUnknown {
		t.Error("the TCP path has no severity analog (Section 3.2)")
	}
}

func TestParseEventCorrupt(t *testing.T) {
	cases := []string{
		"",
		"2006-03-19",
		"not-a-date xx:yy:zz c0-0c1s2 body",
		"2006-03-19 04:11:02",  // nothing after timestamp
		"2006-03-19 04:11:02 ", // no source token
	}
	for _, line := range cases {
		rec, perr := ParseEvent(line)
		if perr == nil {
			t.Errorf("ParseEvent(%q) expected error", line)
		}
		if !rec.Corrupted || rec.Raw != line {
			t.Errorf("ParseEvent(%q) must preserve raw and mark corrupted", line)
		}
	}
}

func TestParseEventStream(t *testing.T) {
	lines := []string{RenderEvent(mkEvent()), "junk", RenderEvent(mkEvent())}
	recs, errs := ParseEventStream(lines)
	if len(recs) != 3 || errs != 1 {
		t.Fatalf("got %d/%d, want 3 records 1 error", len(recs), errs)
	}
}

func TestBodyBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_ = rng
	cases := []struct {
		body string
		want string
	}{
		{BusParityBody("2", "0200", 5, 4), "DMT_HINT Warning: Verify Host 2 bus parity error: 0200 Tier:5 LUN:4"},
		{AddrErrBody(0, 28, "f000000", 1), "DMT_102 Address error LUN:0 command:28 address:f000000 length:1 Anonymous"},
		{CmdAbortBody("2A", 2, 3, 299), "DMT_310 Command Aborted: SCSI cmd:2A LUN 2 DMT_310 Lane:3 T:299"},
		{DiskFailBody("2A"), "DMT_DINT Failing Disk 2A"},
		{ToastedBody("c1-2c0s3", "c1-2c0s3"), "ec_console_log src:::c1-2c0s3 svc:::c1-2c0s3 PANIC_SP WE ARE TOASTED!"},
	}
	for _, tc := range cases {
		if tc.body != tc.want {
			t.Errorf("body = %q, want %q", tc.body, tc.want)
		}
	}
}

func TestTCPPathLossless(t *testing.T) {
	recs := make([]logrec.Record, 100)
	out := TCPPath{}.Deliver(recs)
	if len(out) != len(recs) {
		t.Error("TCP path must never drop messages")
	}
}

func TestEventTimestampSecondGranularity(t *testing.T) {
	r := mkEvent()
	r.Time = r.Time.Add(750 * time.Millisecond)
	rec, perr := ParseEvent(RenderEvent(r))
	if perr != nil {
		t.Fatal(perr)
	}
	if rec.Time.Nanosecond() != 0 {
		t.Error("event dialect carries one-second granularity")
	}
	if got := rec.Time.Truncate(time.Second); !got.Equal(r.Time.Truncate(time.Second)) {
		t.Errorf("second-truncated time mismatch: %v vs %v", got, r.Time)
	}
}

func TestHeartbeatBodyMatchesPaperShape(t *testing.T) {
	b := HeartbeatStopBody("c0-0c0s0", "c0-0c0s1")
	if !strings.Contains(b, "src:::c0-0c0s0") || !strings.Contains(b, "svc:::c0-0c0s1") {
		t.Errorf("heartbeat body = %q", b)
	}
	if !strings.Contains(b, "heartbeat_fault") {
		t.Errorf("heartbeat body missing fault marker: %q", b)
	}
}
