// Package tag implements the alert-identification step of the study: the
// expert-rule engine that tags log records as alerts and assigns them to
// categories, reproducing the logsurfer/awk heuristics the administrators
// supplied ("We performed the tagging through a combination of regular
// expression matching and manual intervention", Section 3.2).
//
// It also implements the severity-field baseline the paper compares
// against (Tables 5 and 6): tagging every message at or above a severity
// threshold, which on BG/L yields a 59% false positive rate.
package tag

import (
	"fmt"
	"sort"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/parallel"
)

// Tagging telemetry: records scanned and alerts produced, folded in
// once per TagAll call (never per record).
var (
	mTagRecords = obs.Default.Counter("tag_records_total")
	mTagAlerts  = obs.Default.Counter("tag_alerts_total")
)

// Alert is a record that an expert rule tagged, with its category.
type Alert struct {
	Record   logrec.Record
	Category *catalog.Category
}

// Time returns the alert's timestamp.
func (a Alert) Time() int64 { return a.Record.Time.Unix() }

// Tagger applies a system's expert rule set to records. Rules are tried
// in Table 4 order (descending raw count), and the first match wins — the
// same one-tag-per-message discipline the paper uses ("Two alerts are in
// the same category if they were both tagged by the same expert rule").
type Tagger struct {
	system logrec.System
	rules  []*catalog.Category
}

// NewTagger builds the tagger for one system from the category catalog.
func NewTagger(sys logrec.System) *Tagger {
	return &Tagger{system: sys, rules: catalog.BySystem(sys)}
}

// Rules returns the tagger's rule list in application order.
func (t *Tagger) Rules() []*catalog.Category { return t.rules }

// Tag returns the category tagging rec, or false if no rule matches (the
// record is not an alert).
func (t *Tagger) Tag(rec logrec.Record) (*catalog.Category, bool) {
	for _, c := range t.rules {
		if c.Matches(rec) {
			return c, true
		}
	}
	return nil, false
}

// sampleLimit bounds the records probed by estimateRate.
const sampleLimit = 512

// estimateRate estimates the fraction of records that tag as alerts by
// probing an evenly strided sample, so TagAll can preallocate its
// output instead of growing it from nil through the append ladder. The
// sampled records are re-tagged during the real pass — at most 512
// duplicated Tag calls, noise against millions of records.
func (t *Tagger) estimateRate(recs []logrec.Record) float64 {
	n := len(recs)
	if n == 0 {
		return 0
	}
	sample := n
	if sample > sampleLimit {
		sample = sampleLimit
	}
	stride := n / sample
	hits := 0
	for i := 0; i < sample; i++ {
		if _, ok := t.Tag(recs[i*stride]); ok {
			hits++
		}
	}
	return float64(hits) / float64(sample)
}

// alertCap converts a rate estimate into a preallocation capacity with
// 15% headroom; the slack costs little and avoids a re-grow when the
// sample undershoots.
func alertCap(n int, rate float64) int {
	c := int(float64(n)*rate*1.15) + 8
	if c > n {
		c = n
	}
	return c
}

// TagAll tags a record stream and returns the alerts, in input order.
// The scan is chunk-parallel across GOMAXPROCS workers; chunk results
// are reassembled in sequence order, so the output is identical to
// TagAllSerial on the same records (enforced by test).
func (t *Tagger) TagAll(recs []logrec.Record) []Alert {
	return t.TagAllParallel(recs, parallel.Options{})
}

// TagAllParallel is TagAll with explicit pool options, for callers
// that pin the worker count (benchmarks, equivalence tests).
func (t *Tagger) TagAllParallel(recs []logrec.Record, opts parallel.Options) []Alert {
	sp := obs.Default.StartSpan("tag")
	rate := t.estimateRate(recs)
	out := parallel.FlatMap(len(recs), opts, func(lo, hi int) []Alert {
		out := make([]Alert, 0, alertCap(hi-lo, rate))
		for i := lo; i < hi; i++ {
			if c, ok := t.Tag(recs[i]); ok {
				out = append(out, Alert{Record: recs[i], Category: c})
			}
		}
		return out
	})
	sp.End()
	mTagRecords.Add(int64(len(recs)))
	mTagAlerts.Add(int64(len(out)))
	return out
}

// TagAllSerial is the single-threaded reference path: one pass, output
// preallocated from the sampled alert-rate estimate.
func (t *Tagger) TagAllSerial(recs []logrec.Record) []Alert {
	sp := obs.Default.StartSpan("tag")
	out := make([]Alert, 0, alertCap(len(recs), t.estimateRate(recs)))
	for _, r := range recs {
		if c, ok := t.Tag(r); ok {
			out = append(out, Alert{Record: r, Category: c})
		}
	}
	sp.End()
	mTagRecords.Add(int64(len(recs)))
	mTagAlerts.Add(int64(len(out)))
	return out
}

// CountByCategory tallies alerts per category key, for Table 4.
func CountByCategory(alerts []Alert) map[string]int {
	out := make(map[string]int)
	for _, a := range alerts {
		out[a.Category.Name]++
	}
	return out
}

// CountByType tallies alerts per H/S/I type, for Table 3.
func CountByType(alerts []Alert) map[catalog.Type]int {
	out := make(map[catalog.Type]int)
	for _, a := range alerts {
		out[a.Category.Type]++
	}
	return out
}

// CategoriesObserved returns the number of distinct categories present,
// the "Categories" column of Table 2.
func CategoriesObserved(alerts []Alert) int {
	seen := make(map[string]bool)
	for _, a := range alerts {
		seen[a.Category.Name] = true
	}
	return len(seen)
}

// SeverityTagger is the baseline the paper evaluates and rejects: tag
// every message whose severity is at or above a threshold (e.g. BG/L
// FATAL and FAILURE).
type SeverityTagger struct {
	// Tagged is the set of severities treated as alerts.
	Tagged map[logrec.Severity]bool
}

// NewBGLSeverityTagger returns the Table 5 baseline: FATAL or FAILURE
// means alert.
func NewBGLSeverityTagger() SeverityTagger {
	return SeverityTagger{Tagged: map[logrec.Severity]bool{
		logrec.SevFatal:   true,
		logrec.SevFailure: true,
	}}
}

// Tag reports whether the baseline tags the record.
func (s SeverityTagger) Tag(rec logrec.Record) bool { return s.Tagged[rec.Severity] }

// Confusion compares a baseline tagging against the expert tagging over
// the same records.
type Confusion struct {
	TruePositive  int // expert alert, baseline alert
	FalsePositive int // not an expert alert, baseline alert
	FalseNegative int // expert alert, baseline missed
	TrueNegative  int // neither
}

// FalsePositiveRate returns FP/(TP+FP): the fraction of baseline-tagged
// messages that are not expert alerts. This is the paper's 59.34% number
// for BG/L FATAL/FAILURE tagging.
func (c Confusion) FalsePositiveRate() float64 {
	denom := c.TruePositive + c.FalsePositive
	if denom == 0 {
		return 0
	}
	return float64(c.FalsePositive) / float64(denom)
}

// FalseNegativeRate returns FN/(TP+FN): the fraction of expert alerts the
// baseline misses (0% for BG/L in the paper).
func (c Confusion) FalseNegativeRate() float64 {
	denom := c.TruePositive + c.FalseNegative
	if denom == 0 {
		return 0
	}
	return float64(c.FalseNegative) / float64(denom)
}

// CompareSeverityBaseline evaluates a severity baseline against the expert
// tagger over a record stream.
func CompareSeverityBaseline(recs []logrec.Record, expert *Tagger, baseline SeverityTagger) Confusion {
	var c Confusion
	for _, r := range recs {
		_, isAlert := expert.Tag(r)
		tagged := baseline.Tag(r)
		switch {
		case isAlert && tagged:
			c.TruePositive++
		case !isAlert && tagged:
			c.FalsePositive++
		case isAlert && !tagged:
			c.FalseNegative++
		default:
			c.TrueNegative++
		}
	}
	return c
}

// SeverityBreakdown tallies records and expert alerts per severity level,
// producing the rows of Tables 5 and 6.
type SeverityBreakdown struct {
	Messages map[logrec.Severity]int
	Alerts   map[logrec.Severity]int
	Total    int
	TotalAl  int
}

// BreakdownBySeverity computes the severity distribution over messages and
// expert-tagged alerts.
func BreakdownBySeverity(recs []logrec.Record, expert *Tagger) SeverityBreakdown {
	b := SeverityBreakdown{
		Messages: make(map[logrec.Severity]int),
		Alerts:   make(map[logrec.Severity]int),
	}
	for _, r := range recs {
		b.Messages[r.Severity]++
		b.Total++
		if _, ok := expert.Tag(r); ok {
			b.Alerts[r.Severity]++
			b.TotalAl++
		}
	}
	return b
}

// AwkSource renders a category's rule in the awk-like syntax of Section
// 3.2, e.g.
//
//	($5 ~ /KERNEL/ && /data TLB error interrupt/)
//
// for a facility-constrained BG/L rule, or /kernel: EXT3-fs error/ for a
// plain body rule with a program tag.
func AwkSource(c *catalog.Category) string {
	switch {
	case c.Facility != "":
		return fmt.Sprintf("($5 ~ /%s/ && /%s/)", c.Facility, c.Pattern)
	case c.Program != "":
		return fmt.Sprintf("/%s: %s/", c.Program, c.Pattern)
	default:
		return fmt.Sprintf("/%s/", c.Pattern)
	}
}

// SortAlerts sorts alerts into canonical record order (time, then
// sequence), which the filtering algorithms require.
func SortAlerts(alerts []Alert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		return alerts[i].Record.Before(alerts[j].Record)
	})
}
