package tag_test

import (
	"fmt"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

// ExampleTagger tags raw records with Liberty's expert rules.
func ExampleTagger() {
	tg := tag.NewTagger(logrec.Liberty)
	recs := []logrec.Record{
		{
			Time: time.Date(2005, 3, 7, 12, 0, 0, 0, time.UTC), Source: "ln3",
			Program: "pbs_mom", Body: "task_check, cannot tm_reply to 118552.ladmin2 task 1",
		},
		{
			Time: time.Date(2005, 3, 7, 12, 0, 5, 0, time.UTC), Source: "ln3",
			Program: "sshd", Body: "session opened for user u7 by (uid=0)",
		},
	}
	for _, r := range recs {
		if c, ok := tg.Tag(r); ok {
			fmt.Printf("%s/%s: %s\n", c.Type.Code(), c.Name, r.Body)
		} else {
			fmt.Printf("not an alert: %s\n", r.Body)
		}
	}
	// Output:
	// S/PBS_CHK: task_check, cannot tm_reply to 118552.ladmin2 task 1
	// not an alert: session opened for user u7 by (uid=0)
}

// ExampleAwkSource renders a rule in the paper's awk-like form.
func ExampleAwkSource() {
	tg := tag.NewTagger(logrec.BlueGeneL)
	fmt.Println(tag.AwkSource(tg.Rules()[0]))
	// Output:
	// ($5 ~ /KERNEL/ && /data TLB error interrupt/)
}
