package tag

import (
	"math/rand"
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
)

func recFor(c *catalog.Category, rng *rand.Rand, at time.Time) logrec.Record {
	return logrec.Record{
		Time:     at,
		System:   c.System,
		Source:   "node1",
		Facility: c.Facility,
		Program:  c.Program,
		Severity: c.Severity,
		Body:     c.Gen(rng),
	}
}

// TestEveryCategoryTaggable: each category's generated messages must be
// tagged back to that category by its system's tagger.
func TestEveryCategoryTaggable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	at := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, sys := range logrec.Systems() {
		tg := NewTagger(sys)
		for _, c := range catalog.BySystem(sys) {
			for i := 0; i < 10; i++ {
				got, ok := tg.Tag(recFor(c, rng, at))
				if !ok {
					t.Fatalf("%s: generated record untagged", c.Key())
				}
				if got.Name != c.Name {
					// First-match-wins can shadow a category only if two
					// rules overlap; that would be a catalog bug.
					t.Fatalf("%s: tagged as %s", c.Key(), got.Name)
				}
			}
		}
	}
}

func TestBenignBodiesUntagged(t *testing.T) {
	tg := NewTagger(logrec.Liberty)
	benign := []logrec.Record{
		{Program: "sshd", Body: "session opened for user root by (uid=0)"},
		{Program: "pbs_mom", Body: "Job 123.ladmin2 started, pid = 999"},
		{Program: "kernel", Body: "eth0: no IPv6 routers present"},
		{Body: "task_check, cannot tm_reply to 1.l task 1"}, // right body, wrong program
	}
	for _, r := range benign {
		if c, ok := tg.Tag(r); ok {
			t.Errorf("benign record tagged as %s: %+v", c.Name, r)
		}
	}
}

func TestTagAllAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tg := NewTagger(logrec.Liberty)
	chk, _ := catalog.Lookup(logrec.Liberty, "PBS_CHK")
	par, _ := catalog.Lookup(logrec.Liberty, "GM_PAR")
	at := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	recs := []logrec.Record{
		recFor(chk, rng, at),
		{Program: "sshd", Body: "noise"},
		recFor(par, rng, at.Add(time.Second)),
		recFor(chk, rng, at.Add(2*time.Second)),
	}
	alerts := tg.TagAll(recs)
	if len(alerts) != 3 {
		t.Fatalf("tagged %d, want 3", len(alerts))
	}
	byCat := CountByCategory(alerts)
	if byCat["PBS_CHK"] != 2 || byCat["GM_PAR"] != 1 {
		t.Errorf("category counts = %v", byCat)
	}
	byType := CountByType(alerts)
	if byType[catalog.Software] != 2 || byType[catalog.Hardware] != 1 {
		t.Errorf("type counts = %v", byType)
	}
	if CategoriesObserved(alerts) != 2 {
		t.Errorf("observed categories = %d, want 2", CategoriesObserved(alerts))
	}
}

func TestSeverityTagger(t *testing.T) {
	st := NewBGLSeverityTagger()
	if !st.Tag(logrec.Record{Severity: logrec.SevFatal}) {
		t.Error("FATAL should be tagged")
	}
	if !st.Tag(logrec.Record{Severity: logrec.SevFailure}) {
		t.Error("FAILURE should be tagged")
	}
	if st.Tag(logrec.Record{Severity: logrec.SevInfoBGL}) {
		t.Error("INFO should not be tagged")
	}
	if st.Tag(logrec.Record{}) {
		t.Error("unknown severity should not be tagged")
	}
}

func TestCompareSeverityBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tg := NewTagger(logrec.BlueGeneL)
	dtlb, _ := catalog.Lookup(logrec.BlueGeneL, "KERNDTLB")
	at := time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC)

	recs := []logrec.Record{
		recFor(dtlb, rng, at), // TP: FATAL alert
		{Severity: logrec.SevFatal, Facility: "KERNEL", Body: "benign fatal chatter"},    // FP
		{Severity: logrec.SevInfoBGL, Facility: "KERNEL", Body: "informational message"}, // TN
	}
	conf := CompareSeverityBaseline(recs, tg, NewBGLSeverityTagger())
	if conf.TruePositive != 1 || conf.FalsePositive != 1 || conf.TrueNegative != 1 || conf.FalseNegative != 0 {
		t.Errorf("confusion = %+v", conf)
	}
	if fp := conf.FalsePositiveRate(); fp != 0.5 {
		t.Errorf("FP rate = %v, want 0.5", fp)
	}
	if fn := conf.FalseNegativeRate(); fn != 0 {
		t.Errorf("FN rate = %v, want 0", fn)
	}
}

func TestConfusionRatesEmpty(t *testing.T) {
	var c Confusion
	if c.FalsePositiveRate() != 0 || c.FalseNegativeRate() != 0 {
		t.Error("empty confusion must have zero rates")
	}
}

func TestBreakdownBySeverity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tg := NewTagger(logrec.BlueGeneL)
	dtlb, _ := catalog.Lookup(logrec.BlueGeneL, "KERNDTLB")
	at := time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC)
	recs := []logrec.Record{
		recFor(dtlb, rng, at),
		{Severity: logrec.SevInfoBGL, Body: "noise"},
		{Severity: logrec.SevInfoBGL, Body: "noise"},
	}
	b := BreakdownBySeverity(recs, tg)
	if b.Total != 3 || b.TotalAl != 1 {
		t.Errorf("totals = %d/%d", b.Total, b.TotalAl)
	}
	if b.Messages[logrec.SevFatal] != 1 || b.Messages[logrec.SevInfoBGL] != 2 {
		t.Errorf("message breakdown = %v", b.Messages)
	}
	if b.Alerts[logrec.SevFatal] != 1 || b.Alerts[logrec.SevInfoBGL] != 0 {
		t.Errorf("alert breakdown = %v", b.Alerts)
	}
}

func TestAwkSource(t *testing.T) {
	dtlb, _ := catalog.Lookup(logrec.BlueGeneL, "KERNDTLB")
	if got := AwkSource(dtlb); got != "($5 ~ /KERNEL/ && /data TLB error interrupt/)" {
		t.Errorf("AwkSource(KERNDTLB) = %q", got)
	}
	chk, _ := catalog.Lookup(logrec.Spirit, "PBS_CHK")
	if got := AwkSource(chk); got != "/pbs_mom: task_check, cannot tm_reply/" {
		t.Errorf("AwkSource(PBS_CHK) = %q", got)
	}
	ecc, _ := catalog.Lookup(logrec.Thunderbird, "ECC")
	if got := AwkSource(ecc); got != "/EventID: 1404/" {
		t.Errorf("AwkSource(ECC) = %q", got)
	}
}

func TestSortAlerts(t *testing.T) {
	at := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	c, _ := catalog.Lookup(logrec.Liberty, "PBS_CHK")
	alerts := []Alert{
		{Record: logrec.Record{Time: at.Add(5 * time.Second), Seq: 1}, Category: c},
		{Record: logrec.Record{Time: at, Seq: 2}, Category: c},
		{Record: logrec.Record{Time: at, Seq: 0}, Category: c},
	}
	SortAlerts(alerts)
	if alerts[0].Record.Seq != 0 || alerts[1].Record.Seq != 2 || alerts[2].Record.Seq != 1 {
		t.Errorf("sort order wrong: %v %v %v", alerts[0].Record.Seq, alerts[1].Record.Seq, alerts[2].Record.Seq)
	}
	if alerts[0].Time() != at.Unix() {
		t.Error("Alert.Time() must expose the record time")
	}
}

// TestRuleOrderMatchesTable4: rules apply in descending raw-count order.
func TestRuleOrderMatchesTable4(t *testing.T) {
	rules := NewTagger(logrec.Thunderbird).Rules()
	if rules[0].Name != "VAPI" {
		t.Errorf("first Thunderbird rule = %s, want VAPI", rules[0].Name)
	}
	if rules[len(rules)-1].Name != "NMI" {
		t.Errorf("last Thunderbird rule = %s, want NMI", rules[len(rules)-1].Name)
	}
}

// TestOverlappingPatternDisambiguation: Spirit's EXT_FS and Thunderbird's
// EXT_FS share a pattern but live on different systems; and APPSEV vs
// APPRES differ only in LOGIN vs LOAD.
func TestOverlappingPatternDisambiguation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tg := NewTagger(logrec.BlueGeneL)
	sev, _ := catalog.Lookup(logrec.BlueGeneL, "APPSEV")
	res, _ := catalog.Lookup(logrec.BlueGeneL, "APPRES")
	at := time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC)
	if got, _ := tg.Tag(recFor(sev, rng, at)); got.Name != "APPSEV" {
		t.Errorf("LOGIN_MESSAGE variant tagged %s", got.Name)
	}
	if got, _ := tg.Tag(recFor(res, rng, at)); got.Name != "APPRES" {
		t.Errorf("LOAD_MESSAGE variant tagged %s", got.Name)
	}
}
