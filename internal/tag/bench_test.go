package tag

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/parallel"
)

// benchRecords builds a synthetic record stream for one system without
// pulling in the full generator: alertFrac of the records carry bodies
// drawn from the system's own categories (matching lines), the rest a
// benign body no rule matches (non-matching lines).
func benchRecords(sys logrec.System, n int, alertFrac float64, seed int64) []logrec.Record {
	rng := rand.New(rand.NewSource(seed))
	cats := catalog.BySystem(sys)
	recs := make([]logrec.Record, n)
	base := time.Date(2005, time.June, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		r := logrec.Record{
			System: sys,
			Time:   base.Add(time.Duration(i) * time.Second),
			Source: fmt.Sprintf("n%d", rng.Intn(512)),
			Seq:    uint64(i),
		}
		if rng.Float64() < alertFrac {
			c := cats[rng.Intn(len(cats))]
			r.Body = c.Gen(rng)
			r.Facility = c.Facility
			r.Program = c.Program
			r.Severity = c.Severity
		} else {
			r.Body = fmt.Sprintf("session opened for user user%d by (uid=0)", rng.Intn(400))
			r.Program = "sshd"
		}
		recs[i] = r
	}
	return recs
}

// TestTagAllMatchesSerial: the parallel scan returns exactly the serial
// result — same alerts, same order — across chunk sizes and worker
// counts, for every system.
func TestTagAllMatchesSerial(t *testing.T) {
	for _, sys := range logrec.Systems() {
		tg := NewTagger(sys)
		recs := benchRecords(sys, 20000, 0.2, int64(sys))
		want := tg.TagAllSerial(recs)
		if len(want) == 0 {
			t.Fatalf("%v: no alerts in bench stream", sys)
		}
		for _, opts := range []parallel.Options{
			{Workers: 1, ChunkSize: 100},
			{Workers: 4, ChunkSize: 333},
			{Workers: 8, ChunkSize: 4096},
			{Workers: 3, ChunkSize: 19997},
			{},
		} {
			got := tg.TagAllParallel(recs, opts)
			if len(got) != len(want) {
				t.Fatalf("%v opts %+v: %d alerts, want %d", sys, opts, len(got), len(want))
			}
			for i := range got {
				if got[i].Record.Seq != want[i].Record.Seq || got[i].Category != want[i].Category {
					t.Fatalf("%v opts %+v: alert %d diverged (seq %d/%d cat %s/%s)",
						sys, opts, i, got[i].Record.Seq, want[i].Record.Seq,
						got[i].Category.Name, want[i].Category.Name)
				}
			}
		}
	}
}

// TestTagAllPreallocation: the serial path's output capacity comes from
// the sampled estimate, not append doubling — growth stays within the
// estimate's headroom for a uniform stream.
func TestTagAllPreallocation(t *testing.T) {
	tg := NewTagger(logrec.Liberty)
	recs := benchRecords(logrec.Liberty, 50000, 0.1, 3)
	out := tg.TagAllSerial(recs)
	if cap(out) > len(recs) {
		t.Errorf("capacity %d exceeds record count %d", cap(out), len(recs))
	}
	// The estimate is 15% headroom plus binomial sampling noise on 512
	// probes (sd ~13% relative at a 10% alert rate); anything past 75%
	// slack means the sample isn't driving the capacity at all.
	if len(out) > 0 && float64(cap(out)) > float64(len(out))*1.75 {
		t.Errorf("capacity %d vs %d alerts: preallocation estimate too loose", cap(out), len(out))
	}
}

// BenchmarkTagger times Tag per system on matching and non-matching
// lines separately: the non-matching case is the prefilter's win (the
// regexp engine never runs), the matching case its overhead ceiling.
func BenchmarkTagger(b *testing.B) {
	for _, sys := range logrec.Systems() {
		tg := NewTagger(sys)
		match := benchRecords(sys, 4096, 1, 17)
		miss := benchRecords(sys, 4096, 0, 17)
		b.Run(sys.ShortName()+"/match", func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				if _, ok := tg.Tag(match[i%len(match)]); ok {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no matches in matching stream")
			}
		})
		b.Run(sys.ShortName()+"/miss", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := tg.Tag(miss[i%len(miss)]); ok {
					b.Fatal("match in non-matching stream")
				}
			}
		})
	}
}

// BenchmarkTagAll times the full scan, serial vs parallel.
func BenchmarkTagAll(b *testing.B) {
	tg := NewTagger(logrec.Spirit)
	recs := benchRecords(logrec.Spirit, 100000, 0.15, 5)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tg.TagAllSerial(recs)
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tg.TagAll(recs)
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
