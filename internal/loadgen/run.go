package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whatsupersay/internal/stats"
)

// PathStats aggregates one request path's outcomes over a step.
type PathStats struct {
	Requests        int64 `json:"requests"`
	OK              int64 `json:"ok"`
	Backpressure429 int64 `json:"backpressure_429"`
	Unavailable503  int64 `json:"unavailable_503"`
	ClientErr4xx    int64 `json:"client_err_4xx"`
	ServerErr5xx    int64 `json:"server_err_5xx"`
	NetErrors       int64 `json:"net_errors"`
	// Retries counts requests that were 429 resends of rejected sources.
	Retries int64 `json:"retries"`
	// LatencyQuantiles maps "p50"-style labels to seconds, over every
	// request that got an HTTP response.
	LatencyQuantiles map[string]float64 `json:"latency_quantiles,omitempty"`
	MeanLatencySec   float64            `json:"mean_latency_sec"`
}

// ErrorFraction is the share of requests that did not return 200.
func (s PathStats) ErrorFraction() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Requests-s.OK) / float64(s.Requests)
}

// StepReport is one schedule step's measurements.
type StepReport struct {
	Index int `json:"index"`
	// Mode is "closed" (send-on-response) or "open" (paced offered load).
	Mode string `json:"mode"`
	// OfferedPerSec is the target ingest rate in batches/sec (0 when
	// closed); AchievedPerSec is the measured rate of batches fully
	// delivered (200, possibly after 429 retries).
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	DurationSec    float64 `json:"duration_sec"`

	Ingest PathStats `json:"ingest"`
	Query  PathStats `json:"query"`

	// RecordsAppended sums the server's "appended" acknowledgments;
	// RecordsPerSec and RecordsPerSecPerCore normalize it.
	RecordsAppended    int64   `json:"records_appended"`
	RecordsPerSec      float64 `json:"records_per_sec"`
	RecordsPerSecCore  float64 `json:"records_per_sec_per_core"`
	BatchesDelivered   int64   `json:"batches_delivered"`
	BatchesAbandoned   int64   `json:"batches_abandoned"`
	RejectedSourceHits int64   `json:"rejected_source_hits"`
}

// Saturation names the knee step of a ramp.
type Saturation struct {
	StepIndex      int     `json:"step_index"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	ErrorFraction  float64 `json:"error_fraction"`
	Reason         string  `json:"reason"`
}

// Report is one complete load run, as stored in the bench ledger's
// load_reports section.
type Report struct {
	System          string       `json:"system"`
	Seed            int64        `json:"seed"`
	Scale           float64      `json:"scale"`
	Shards          int          `json:"shards"`
	Ingesters       int          `json:"ingesters"`
	Queriers        int          `json:"queriers"`
	BatchLines      int          `json:"batch_lines"`
	PlanFingerprint string       `json:"plan_fingerprint"`
	Cores           int          `json:"cores"`
	Steps           []StepReport `json:"steps"`
	Saturation      *Saturation  `json:"saturation,omitempty"`
}

// FindKnee returns the first open-loop step that fails the saturation
// criteria, or nil if the ramp never saturated.
func FindKnee(steps []StepReport, kneeFrac, maxErrFrac float64) *Saturation {
	for _, s := range steps {
		if s.Mode != "open" {
			continue
		}
		sat := &Saturation{
			StepIndex:      s.Index,
			OfferedPerSec:  s.OfferedPerSec,
			AchievedPerSec: s.AchievedPerSec,
			ErrorFraction:  s.Ingest.ErrorFraction(),
		}
		if s.OfferedPerSec > 0 && s.AchievedPerSec < kneeFrac*s.OfferedPerSec {
			sat.Reason = fmt.Sprintf("achieved %.1f < %.0f%% of offered %.1f batches/sec",
				s.AchievedPerSec, kneeFrac*100, s.OfferedPerSec)
			return sat
		}
		if f := s.Ingest.ErrorFraction(); f > maxErrFrac {
			sat.Reason = fmt.Sprintf("ingest error fraction %.2f > %.2f", f, maxErrFrac)
			return sat
		}
	}
	return nil
}

// pathCollector accumulates one path's outcomes under a mutex; the
// request rates here are far below contention territory.
type pathCollector struct {
	mu        sync.Mutex
	stats     PathStats
	latencies []float64
}

func (c *pathCollector) observe(status int, latency time.Duration, retry bool, netErr bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Requests++
	if retry {
		c.stats.Retries++
	}
	if netErr {
		c.stats.NetErrors++
		return
	}
	c.latencies = append(c.latencies, latency.Seconds())
	switch {
	case status == http.StatusOK:
		c.stats.OK++
	case status == http.StatusTooManyRequests:
		c.stats.Backpressure429++
	case status == http.StatusServiceUnavailable:
		c.stats.Unavailable503++
	case status >= 500:
		c.stats.ServerErr5xx++
	case status >= 400:
		c.stats.ClientErr4xx++
	}
}

func (c *pathCollector) finish(quantiles []float64) PathStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	if len(c.latencies) > 0 {
		xs := append([]float64(nil), c.latencies...)
		sort.Float64s(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		out.MeanLatencySec = sum / float64(len(xs))
		// stats.Percentile speaks 0–100; Config.Quantiles are fractions.
		ps := make([]float64, len(quantiles))
		for i, q := range quantiles {
			ps[i] = q * 100
		}
		out.LatencyQuantiles = make(map[string]float64, len(quantiles))
		for i, v := range stats.Percentiles(xs, ps) {
			out.LatencyQuantiles[quantileLabel(quantiles[i])] = v
		}
	}
	return out
}

func quantileLabel(q float64) string {
	s := strconv.FormatFloat(q*100, 'f', -1, 64)
	return "p" + strings.ReplaceAll(s, ".", "_")
}

// ingestReply is the subset of the (single-store or sharded) ingest
// response the harness consumes. RejectedSources is keyed by shard id
// (always "0" on the single-store path) — the uniform 429 retry
// contract.
type ingestReply struct {
	Appended        int                 `json:"appended"`
	Rejected        map[string]int      `json:"rejected"`
	RejectedSources map[string][]string `json:"rejected_sources"`

	retryAfterVal time.Duration
}

// Runner drives one plan against one live endpoint.
type Runner struct {
	Plan    *Plan
	BaseURL string
	// Client is the HTTP client (default: a dedicated client with the
	// plan's timeout and enough idle conns for every worker).
	Client *http.Client
	// Shards is recorded in the report (0 = single store).
	Shards int
}

// Run executes the plan's schedule and assembles the report. It returns
// early (with partial steps) only if ctx is canceled.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.Plan.Config
	client := r.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Ingesters + cfg.Queriers + 2
		client = &http.Client{Timeout: cfg.Timeout, Transport: tr}
	}
	rep := &Report{
		System:          cfg.System.ShortName(),
		Seed:            cfg.Seed,
		Scale:           cfg.Scale,
		Shards:          r.Shards,
		Ingesters:       cfg.Ingesters,
		Queriers:        cfg.Queriers,
		BatchLines:      cfg.BatchLines,
		PlanFingerprint: r.Plan.Fingerprint(),
		Cores:           runtime.GOMAXPROCS(0),
	}
	var nextBatch atomic.Int64
	for i, step := range r.Plan.Steps {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		sr := r.runStep(ctx, client, i, step, &nextBatch)
		rep.Steps = append(rep.Steps, sr)
	}
	rep.Saturation = FindKnee(rep.Steps, cfg.KneeFraction, cfg.MaxErrFraction)
	return rep, nil
}

func (r *Runner) runStep(ctx context.Context, client *http.Client, index int, step Step, nextBatch *atomic.Int64) StepReport {
	cfg := r.Plan.Config
	mode := "closed"
	if step.Offered > 0 {
		mode = "open"
	}
	sr := StepReport{Index: index, Mode: mode, OfferedPerSec: step.Offered}

	stepCtx, cancel := context.WithTimeout(ctx, step.Duration)
	defer cancel()
	ingestC := &pathCollector{}
	queryC := &pathCollector{}
	var appended, delivered, abandoned, rejectedHits atomic.Int64

	// Open-loop pacing: a pacer emits send tokens at the offered rate
	// into a buffer big enough to never drop one — a slow server makes
	// tokens back up, which is exactly what "offered load" means.
	var tokens chan struct{}
	if step.Offered > 0 {
		capacity := int(step.Offered*step.Duration.Seconds()) + cfg.Ingesters + 1
		tokens = make(chan struct{}, capacity)
		interval := time.Duration(float64(time.Second) / step.Offered)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stepCtx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Ingesters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tokens != nil {
					select {
					case <-stepCtx.Done():
						return
					case <-tokens:
					}
				} else if stepCtx.Err() != nil {
					return
				}
				b := r.Plan.Batches[int(nextBatch.Add(1)-1)%len(r.Plan.Batches)]
				n, hits, ok := r.sendBatch(stepCtx, client, b, ingestC)
				appended.Add(n)
				rejectedHits.Add(hits)
				if ok {
					delivered.Add(1)
				} else if stepCtx.Err() == nil {
					abandoned.Add(1)
				}
			}
		}()
	}
	var nextQuery atomic.Int64
	for w := 0; w < cfg.Queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for stepCtx.Err() == nil {
				op := r.Plan.Queries[int(nextQuery.Add(1)-1)%len(r.Plan.Queries)]
				r.sendQuery(stepCtx, client, op, queryC)
			}
		}()
	}

	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0).Seconds()

	sr.DurationSec = elapsed
	sr.Ingest = ingestC.finish(cfg.Quantiles)
	sr.Query = queryC.finish(cfg.Quantiles)
	sr.RecordsAppended = appended.Load()
	sr.BatchesDelivered = delivered.Load()
	sr.BatchesAbandoned = abandoned.Load()
	sr.RejectedSourceHits = rejectedHits.Load()
	if elapsed > 0 {
		sr.AchievedPerSec = float64(sr.BatchesDelivered) / elapsed
		sr.RecordsPerSec = float64(sr.RecordsAppended) / elapsed
		sr.RecordsPerSecCore = sr.RecordsPerSec / float64(runtime.GOMAXPROCS(0))
	}
	return sr
}

// sendBatch posts one batch, following the uniform 429 contract: sleep
// Retry-After seconds, then resend only the rejected sources' lines.
// Returns the records acknowledged, how many lines the rejected-source
// filter salvaged for resend, and whether the batch fully landed.
func (r *Runner) sendBatch(ctx context.Context, client *http.Client, b Batch, col *pathCollector) (appended, rejectedHits int64, delivered bool) {
	lines, sources := b.Lines, b.Sources
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		status, reply, err := r.postIngest(ctx, client, lines, col, attempt > 0)
		if err != nil {
			return appended, rejectedHits, false
		}
		if reply != nil {
			appended += int64(reply.Appended)
		}
		switch status {
		case http.StatusOK:
			return appended, rejectedHits, true
		case http.StatusTooManyRequests:
			if reply == nil || len(reply.RejectedSources) == 0 {
				return appended, rejectedHits, false
			}
			rejected := make(map[string]bool)
			for _, srcs := range reply.RejectedSources {
				for _, s := range srcs {
					rejected[s] = true
				}
			}
			var keptLines, keptSources []string
			for i, ln := range lines {
				if rejected[sources[i]] {
					keptLines = append(keptLines, ln)
					keptSources = append(keptSources, sources[i])
				}
			}
			rejectedHits += int64(len(keptLines))
			if len(keptLines) == 0 {
				// Nothing this batch sent was named rejected: the partial
				// append landed everything attributable to us.
				return appended, rejectedHits, true
			}
			lines, sources = keptLines, keptSources
			if !sleepRetryAfter(ctx, reply.retryAfterVal) {
				return appended, rejectedHits, false
			}
		default:
			return appended, rejectedHits, false
		}
	}
	return appended, rejectedHits, false
}

// retryAfter rides along on ingestReply after header parsing.
func (rep *ingestReply) setRetryAfter(h string) {
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs > 0 {
		rep.retryAfterVal = time.Duration(secs) * time.Second
	} else {
		rep.retryAfterVal = time.Second
	}
}

func sleepRetryAfter(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (r *Runner) postIngest(ctx context.Context, client *http.Client, lines []string, col *pathCollector, isRetry bool) (int, *ingestReply, error) {
	body := strings.Join(lines, "\n") + "\n"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+"/api/ingest", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	t0 := time.Now()
	resp, err := client.Do(req)
	latency := time.Since(t0)
	if err != nil {
		// A context-canceled send at step end is schedule mechanics, not a
		// server failure; don't bill it to the error counters.
		if ctx.Err() == nil {
			col.observe(0, latency, isRetry, true)
		}
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	col.observe(resp.StatusCode, latency, isRetry, false)
	var reply ingestReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return resp.StatusCode, nil, nil
	}
	reply.setRetryAfter(resp.Header.Get("Retry-After"))
	return resp.StatusCode, &reply, nil
}

func (r *Runner) sendQuery(ctx context.Context, client *http.Client, op QueryOp, col *pathCollector) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+op.Path, nil)
	if err != nil {
		return
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	latency := time.Since(t0)
	if err != nil {
		if ctx.Err() == nil {
			col.observe(0, latency, false, true)
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	col.observe(resp.StatusCode, latency, false, false)
}
