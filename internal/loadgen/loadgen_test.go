package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

const testScale = 0.0002

func testConfig() Config {
	return Config{
		System:     logrec.Liberty,
		Seed:       7,
		Scale:      testScale,
		BatchLines: 50,
	}
}

// TestPlanDeterminism pins the loadgen reproducibility contract: the
// same seed + workload config produces an identical offered-load
// schedule and identical synthetic record stream, no matter how many
// workers the generator or the harness uses.
func TestPlanDeterminism(t *testing.T) {
	base := testConfig()

	cfgA := base
	cfgA.SimWorkers = 1
	cfgA.Ingesters = 2
	cfgA.Queriers = 1

	cfgB := base
	cfgB.SimWorkers = 4
	cfgB.Ingesters = 16
	cfgB.Queriers = 8

	planA, err := BuildPlan(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := BuildPlan(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	if fa, fb := planA.Fingerprint(), planB.Fingerprint(); fa != fb {
		t.Fatalf("plan fingerprint differs across worker counts: %s vs %s", fa, fb)
	}
	if len(planA.Batches) != len(planB.Batches) {
		t.Fatalf("batch counts differ: %d vs %d", len(planA.Batches), len(planB.Batches))
	}
	for i := range planA.Batches {
		if planA.Batches[i].Body() != planB.Batches[i].Body() {
			t.Fatalf("batch %d content differs", i)
		}
	}
	if len(planA.Steps) != len(planB.Steps) {
		t.Fatalf("schedules differ in length")
	}
	for i := range planA.Steps {
		if planA.Steps[i] != planB.Steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, planA.Steps[i], planB.Steps[i])
		}
	}
	for i := range planA.Queries {
		if planA.Queries[i] != planB.Queries[i] {
			t.Fatalf("query %d differs: %+v vs %+v", i, planA.Queries[i], planB.Queries[i])
		}
	}

	// A different seed must change the content.
	cfgC := base
	cfgC.Seed = 8
	planC, err := BuildPlan(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if planA.Fingerprint() == planC.Fingerprint() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanSchedule(t *testing.T) {
	cfg := testConfig()
	cfg.StepDuration = time.Second
	cfg.RampSteps = 3
	cfg.StartRate = 2
	cfg.RampFactor = 2
	p, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Offered: 0, Duration: time.Second},
		{Offered: 2, Duration: time.Second},
		{Offered: 4, Duration: time.Second},
		{Offered: 8, Duration: time.Second},
	}
	if len(p.Steps) != len(want) {
		t.Fatalf("got %d steps, want %d", len(p.Steps), len(want))
	}
	for i := range want {
		if p.Steps[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, p.Steps[i], want[i])
		}
	}
	for i, b := range p.Batches {
		if len(b.Lines) != len(b.Sources) {
			t.Fatalf("batch %d: %d lines but %d sources", i, len(b.Lines), len(b.Sources))
		}
	}
}

func TestFindKnee(t *testing.T) {
	mk := func(mode string, offered, achieved float64, reqs, ok int64) StepReport {
		return StepReport{Mode: mode, OfferedPerSec: offered, AchievedPerSec: achieved,
			Ingest: PathStats{Requests: reqs, OK: ok}}
	}
	steps := []StepReport{
		mk("closed", 0, 50, 100, 100),
		mk("open", 4, 4, 8, 8),
		mk("open", 8, 7.9, 16, 16),
		mk("open", 16, 9, 32, 20),
	}
	sat := FindKnee(steps, 0.9, 0.1)
	if sat == nil {
		t.Fatal("knee not found")
	}
	if sat.OfferedPerSec != 16 {
		t.Fatalf("knee at offered %v, want 16", sat.OfferedPerSec)
	}
	if FindKnee(steps[:3], 0.9, 0.1) != nil {
		t.Fatal("found a knee in an unsaturated ramp")
	}
}

// TestRunnerAgainstStub drives the full runner against a scripted
// server: the first ingest attempt of every third batch gets a 429
// naming one rejected source, and the retry must carry only that
// source's lines.
func TestRunnerAgainstStub(t *testing.T) {
	cfg := testConfig()
	cfg.Ingesters = 3
	cfg.Queriers = 2
	cfg.StepDuration = 300 * time.Millisecond
	cfg.RampSteps = 1
	cfg.StartRate = 20
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var ingests, queries atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/ingest" {
			queries.Add(1)
			fmt.Fprint(w, `{}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		n := ingests.Add(1)
		if n%3 == 0 && len(lines) > 1 {
			// Reject the first line's source; accept the rest.
			src := sourceOfLine(t, plan, lines[0])
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]any{
				"appended":         len(lines) - 1,
				"rejected":         map[string]int{"0": 1},
				"rejected_sources": map[string][]string{"0": {src}},
			})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"appended": len(lines)})
	}))
	defer srv.Close()

	runner := &Runner{Plan: plan, BaseURL: srv.URL}
	rep, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(rep.Steps))
	}
	if rep.Steps[0].Mode != "closed" || rep.Steps[1].Mode != "open" {
		t.Fatalf("step modes wrong: %s/%s", rep.Steps[0].Mode, rep.Steps[1].Mode)
	}
	total := rep.Steps[0].Ingest.Requests + rep.Steps[1].Ingest.Requests
	if total == 0 {
		t.Fatal("no ingest requests recorded")
	}
	if rep.Steps[0].Ingest.OK == 0 || rep.Steps[0].RecordsAppended == 0 {
		t.Fatalf("closed step recorded no successes: %+v", rep.Steps[0])
	}
	if rep.Steps[0].Ingest.Backpressure429 == 0 {
		t.Fatalf("stub 429s not observed: %+v", rep.Steps[0].Ingest)
	}
	if got := rep.Steps[0].Ingest.LatencyQuantiles["p50"]; got <= 0 {
		t.Fatalf("p50 latency missing: %+v", rep.Steps[0].Ingest.LatencyQuantiles)
	}
	if rep.PlanFingerprint != plan.Fingerprint() {
		t.Fatal("report does not carry the plan fingerprint")
	}
	if rep.Steps[0].RejectedSourceHits == 0 && rep.Steps[1].RejectedSourceHits == 0 {
		t.Fatal("retry loop never filtered rejected sources")
	}
}

// sourceOfLine maps a wire line back to its planned source.
func sourceOfLine(t *testing.T, plan *Plan, line string) string {
	t.Helper()
	for _, b := range plan.Batches {
		for i, ln := range b.Lines {
			if ln == line {
				return b.Sources[i]
			}
		}
	}
	t.Fatalf("line not in plan: %q", line)
	return ""
}
