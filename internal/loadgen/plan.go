// Package loadgen is the serve tier's load harness: K concurrent
// synthetic ingesters and M concurrent queriers drive a live endpoint
// through a closed-loop warmup step followed by an open-loop ramp,
// measuring per-path latency quantiles, records/sec per core, error
// class counts, and the saturation knee.
//
// Everything the harness sends is derived from one seeded
// simulate.Generate call, so a (System, Scale, Seed, BatchLines) tuple
// fully determines the byte content of every ingest batch, the URL of
// every query, and the offered-load schedule — independent of worker
// counts on either the generator or the harness side. Plan.Fingerprint
// pins that contract.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net/url"
	"strings"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
)

// Config parameterizes one load run. Zero fields get defaults.
type Config struct {
	// System selects the synthetic workload's machine.
	System logrec.System
	// Seed drives both content generation and query-plan sampling.
	Seed int64
	// Scale is the simulate volume scale (default 0.0005 — enough lines
	// to sustain a ramp without minutes of generation).
	Scale float64
	// SimWorkers bounds generator goroutines (0 = GOMAXPROCS). A
	// throughput knob only: the plan is identical at any value.
	SimWorkers int

	// Ingesters (K) and Queriers (M) are the concurrent client counts
	// (defaults 8 and 4).
	Ingesters int
	Queriers  int
	// BatchLines is how many log lines ride in one POST /api/ingest
	// (default 200).
	BatchLines int

	// StepDuration is how long each load step runs (default 2s).
	StepDuration time.Duration
	// RampSteps is how many open-loop steps follow the closed-loop
	// warmup (default 4).
	RampSteps int
	// StartRate is the first open-loop step's offered ingest load in
	// batches/sec (default 4); each later step multiplies by RampFactor
	// (default 2).
	StartRate  float64
	RampFactor float64

	// Quantiles are the latency percentiles reported per path (default
	// 0.5, 0.9, 0.99).
	Quantiles []float64
	// Timeout bounds each HTTP request (default 15s).
	Timeout time.Duration
	// KneeFraction and MaxErrFraction define saturation: the knee is the
	// first open-loop step whose achieved/offered ratio drops below
	// KneeFraction (default 0.9) or whose ingest error fraction exceeds
	// MaxErrFraction (default 0.1).
	KneeFraction   float64
	MaxErrFraction float64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.0005
	}
	if c.Ingesters <= 0 {
		c.Ingesters = 8
	}
	if c.Queriers < 0 {
		c.Queriers = 0
	} else if c.Queriers == 0 {
		c.Queriers = 4
	}
	if c.BatchLines <= 0 {
		c.BatchLines = 200
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 2 * time.Second
	}
	if c.RampSteps <= 0 {
		c.RampSteps = 4
	}
	if c.StartRate <= 0 {
		c.StartRate = 4
	}
	if c.RampFactor <= 1 {
		c.RampFactor = 2
	}
	if len(c.Quantiles) == 0 {
		c.Quantiles = []float64{0.5, 0.9, 0.99}
	}
	if c.Timeout <= 0 {
		c.Timeout = 15 * time.Second
	}
	if c.KneeFraction <= 0 || c.KneeFraction >= 1 {
		c.KneeFraction = 0.9
	}
	if c.MaxErrFraction <= 0 {
		c.MaxErrFraction = 0.1
	}
	return c
}

// Batch is one ingest request's payload: a contiguous slice of the
// generated log plus each line's source, which the 429 retry loop needs
// to resend only the rejected sources' lines.
type Batch struct {
	Index   int
	Lines   []string
	Sources []string
}

// Body renders the batch as the POST /api/ingest wire form.
func (b Batch) Body() string { return strings.Join(b.Lines, "\n") + "\n" }

// QueryOp is one querier request: a path + encoded query string under
// the serve API root.
type QueryOp struct {
	Path string
}

// Step is one entry in the offered-load schedule. Offered is the target
// ingest rate in batches/sec; 0 means closed loop (every ingester sends
// as fast as responses return).
type Step struct {
	Offered  float64
	Duration time.Duration
}

// Plan is the fully materialized, deterministic run: content, queries,
// and schedule.
type Plan struct {
	Config  Config
	Batches []Batch
	Queries []QueryOp
	Steps   []Step
	// Records and Lines echo the generator totals for reporting.
	Records int
	Lines   int
}

// BuildPlan generates the synthetic content and derives the query mix
// and ramp schedule. The result depends only on Config fields that name
// the workload — not on SimWorkers, Ingesters, or Queriers.
func BuildPlan(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	out, err := simulate.Generate(simulate.Config{
		System:  cfg.System,
		Scale:   cfg.Scale,
		Seed:    cfg.Seed,
		Workers: cfg.SimWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if len(out.Lines) == 0 {
		return nil, fmt.Errorf("loadgen: scale %v generated no lines", cfg.Scale)
	}
	p := &Plan{Config: cfg, Records: len(out.Records), Lines: len(out.Lines)}

	// Chunk the log into batches, carrying per-line sources alongside.
	for start := 0; start < len(out.Lines); start += cfg.BatchLines {
		end := min(start+cfg.BatchLines, len(out.Lines))
		b := Batch{Index: len(p.Batches), Lines: out.Lines[start:end]}
		b.Sources = make([]string, 0, end-start)
		for _, r := range out.Records[start:end] {
			b.Sources = append(b.Sources, r.Source)
		}
		p.Batches = append(p.Batches, b)
	}

	// Distinct sources in first-appearance order, so the query sampler is
	// deterministic regardless of how the generator parallelized.
	seen := make(map[string]bool)
	var sources []string
	for _, r := range out.Records {
		if r.Source != "" && !seen[r.Source] {
			seen[r.Source] = true
			sources = append(sources, r.Source)
		}
	}

	// The query mix cycles aggregate and point-query shapes with
	// parameters drawn from a seeded RNG distinct from the generator's.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10adc0de))
	const queryOps = 64
	for i := 0; i < queryOps; i++ {
		var op QueryOp
		switch i % 4 {
		case 0:
			op.Path = "/api/aggregate?topk=5&quantiles=0.5,0.9,0.99"
		case 1:
			v := url.Values{}
			v.Set("source", sources[rng.Intn(len(sources))])
			v.Set("limit", "100")
			op.Path = "/api/query?" + v.Encode()
		case 2:
			v := url.Values{}
			v.Set("source", sources[rng.Intn(len(sources))])
			v.Set("topk", "3")
			op.Path = "/api/aggregate?" + v.Encode()
		default:
			op.Path = "/api/query?kept=true&limit=50"
		}
		p.Queries = append(p.Queries, op)
	}

	// Schedule: one closed-loop warmup step, then the geometric ramp.
	p.Steps = append(p.Steps, Step{Offered: 0, Duration: cfg.StepDuration})
	rate := cfg.StartRate
	for i := 0; i < cfg.RampSteps; i++ {
		p.Steps = append(p.Steps, Step{Offered: rate, Duration: cfg.StepDuration})
		rate *= cfg.RampFactor
	}
	return p, nil
}

// Fingerprint hashes everything the plan would put on the wire — batch
// bytes, per-line sources, query URLs, and the offered-load schedule —
// into a stable hex token. Two plans with equal fingerprints drive a
// server identically.
func (p *Plan) Fingerprint() string {
	h := fnv.New64a()
	for _, b := range p.Batches {
		for _, ln := range b.Lines {
			h.Write([]byte(ln))
			h.Write([]byte{'\n'})
		}
		for _, s := range b.Sources {
			h.Write([]byte(s))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xff})
	}
	for _, q := range p.Queries {
		h.Write([]byte(q.Path))
		h.Write([]byte{'\n'})
	}
	for _, s := range p.Steps {
		fmt.Fprintf(h, "%b/%d\n", math.Float64bits(s.Offered), s.Duration.Nanoseconds())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
