package store

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// enc is an append-only encoder for the store's wire formats. Integers
// are unsigned varints unless a fixed width is structural (frame
// headers, the segment footer); strings are length-prefixed.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) u32(v uint32)     { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)     { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) byte(c byte)      { e.b = append(e.b, c) }
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec decodes the wire formats with sticky error handling: the first
// malformed field poisons the decoder and every later read returns the
// zero value, so decode paths can run straight-line and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: corrupt %s at offset %d", what, d.off)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// The two posting-set encodings: a delta-encoded ordinal list for
// sparse sets and raw bitmap words for dense ones — the classic
// compressed-bitmap trade collapsed to its two extreme cases.
const (
	postList   = 0
	postBitmap = 1
)

// appendPostings encodes the sorted ordinal set ords over a universe of
// n records, choosing the denser-friendly bitmap form once the set
// covers more than 1/16 of the universe (a varint delta costs ≥ 1 byte
// per member; a bitmap costs n/8 bytes regardless).
func appendPostings(e *enc, ords []uint32, n int) {
	if len(ords) > n/16 && n >= 64 {
		e.byte(postBitmap)
		words := make([]uint64, (n+63)/64)
		for _, o := range ords {
			words[o/64] |= 1 << (o % 64)
		}
		e.uvarint(uint64(len(words)))
		for _, w := range words {
			e.u64(w)
		}
		return
	}
	e.byte(postList)
	e.uvarint(uint64(len(ords)))
	prev := uint32(0)
	for _, o := range ords {
		e.uvarint(uint64(o - prev))
		prev = o
	}
}

// decodePostings reads one posting set back as a sorted ordinal slice.
func decodePostings(d *dec) []uint32 {
	switch d.byte() {
	case postBitmap:
		nw := d.uvarint()
		if d.err != nil || nw > uint64(len(d.b)-d.off)/8 {
			d.fail("posting bitmap")
			return nil
		}
		var ords []uint32
		for w := uint64(0); w < nw; w++ {
			if d.off+8 > len(d.b) {
				d.fail("posting bitmap word")
				return nil
			}
			word := binary.LittleEndian.Uint64(d.b[d.off:])
			d.off += 8
			for word != 0 {
				ords = append(ords, uint32(w*64)+uint32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		return ords
	case postList:
		cnt := d.uvarint()
		if d.err != nil || cnt > uint64(len(d.b)-d.off) {
			d.fail("posting list")
			return nil
		}
		ords := make([]uint32, 0, cnt)
		cur := uint32(0)
		for i := uint64(0); i < cnt; i++ {
			cur += uint32(d.uvarint())
			ords = append(ords, cur)
		}
		if d.err != nil {
			return nil
		}
		return ords
	default:
		d.fail("posting tag")
		return nil
	}
}

// unionSorted merges sorted ordinal lists into one sorted, deduplicated
// list (k-way, but k is the number of requested predicate values —
// small — so repeated two-way merges are fine).
func unionSorted(lists [][]uint32) []uint32 {
	var out []uint32
	for _, l := range lists {
		out = mergeTwo(out, l)
	}
	return out
}

func mergeTwo(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return append([]uint32(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// intersectSorted intersects two sorted ordinal lists.
func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// dict interns strings during a segment build, assigning dense ids in
// first-seen order.
type dict struct {
	vals []string
	ids  map[string]uint32
}

func (d *dict) id(s string) uint32 {
	if d.ids == nil {
		d.ids = make(map[string]uint32)
	}
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

// appendDict encodes a string table.
func appendDict(e *enc, vals []string) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.str(v)
	}
}

// decodeDict reads a string table back.
func decodeDict(d *dec) []string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail("dict")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.str())
	}
	if d.err != nil {
		return nil
	}
	return out
}
