package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"whatsupersay/internal/logrec"
)

// Segment wire format (little-endian, varint-heavy):
//
//	header   magic "ALSG" | version u8 | system u8
//	records  count entries back-to-back, sorted by (time, seq):
//	           seq uvarint | Δt-nanos-from-min uvarint |
//	           sourceID catID progID facID uvarint | severity uvarint |
//	           flags u8 (kept, corrupted) | body string
//	dicts    four string tables: sources, categories, programs, facilities
//	postings per source id, per category id: posting set over record
//	         ordinals; then distinct severities, each (value, posting set)
//	sparse   one entry per indexInterval records: (byte offset into the
//	index    records region, Δt-nanos of the block's first record) —
//	         enough to seek a time-range scan or decode one index block
//	         for a postings hit without touching the rest of the segment
//	footer   fixed 64 bytes: recordsOff dictsOff postingsOff indexOff
//	         count u64 ×5 | minNanos maxNanos u64 ×2 | crc32(file[:crc])
//	         u32 | magic "GSLA" u32
//
// The footer checksum covers every byte before it, so a torn or bit-
// flipped segment is detected on open and excluded wholesale; records
// are only ever served from segments whose checksum verified.

const (
	segMagic    = "ALSG"
	segEndMagic = "GSLA"
	segVersion  = 1
	segHdrLen   = 6
	// footer: 5 offsets/counts + 2 timestamps (u64) + crc (u32) + magic (u32).
	segFooterLen = 5*8 + 2*8 + 4 + 4

	// indexInterval is the sparse-index stride: one index point per this
	// many records. Postings scans decode at most indexInterval-1 extra
	// records to reach a hit; time seeks land within one block.
	indexInterval = 64
)

// Entry is one stored alert: the tagged record, its category, and
// whether it survived Algorithm 3.1 (the simultaneous filter). Record.Raw
// is not persisted — the structured fields are the unit of analysis, and
// the wire text is reproducible from the generator when needed.
type Entry struct {
	Record   logrec.Record
	Category string
	Kept     bool
}

// entryBefore orders entries canonically: time, then sequence number.
func entryBefore(a, b Entry) bool { return a.Record.Before(b.Record) }

// sortEntries sorts entries into canonical order.
func sortEntries(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool { return entryBefore(entries[i], entries[j]) })
}

// segment is one sealed, immutable, checksum-verified block of entries.
// The encoded blob is memory-mapped (see mmap.go); records are decoded
// on demand during scans, postings and dictionaries are decoded once at
// open (into heap copies, so only record decoding touches the mapping).
type segment struct {
	name string
	// num is the seal sequence number parsed from name (-1 if the name
	// is not of the seg-%08d.seg form); Open's dup-window subtraction
	// compares it against the wal epoch.
	num  int
	sys  logrec.System
	blob []byte
	// ref owns blob's mapping lifetime; nil for heap-backed blobs.
	ref *blobRef

	count              int
	minNanos, maxNanos int64
	recordsOff         int

	sources, categories  []string
	programs, facilities []string
	srcIDs, catIDs       map[string]uint32
	srcPost, catPost     [][]uint32
	sevPost              map[logrec.Severity][]uint32
	// maxSev is the largest severity value any record carries — the
	// columnar scan sizes its ordinal count array by it.
	maxSev logrec.Severity

	// idxOffsets[i] / idxNanos[i] locate record ordinal i*indexInterval.
	idxOffsets []uint32
	idxNanos   []int64
}

const entryFlagKept, entryFlagCorrupted = 1, 2

// buildSegment encodes entries (which must be sorted; Seal sorts) into
// the segment wire form.
func buildSegment(sys logrec.System, entries []Entry) []byte {
	var (
		e                enc
		srcD, catD       dict
		progD, facD      dict
		sevOrds          = map[logrec.Severity][]uint32{}
		idxOffs          []uint32
		idxNanos         []int64
		minN             = entries[0].Record.Time.UnixNano()
		maxN             = entries[len(entries)-1].Record.Time.UnixNano()
		srcOrds, catOrds [][]uint32
	)
	e.b = append(e.b, segMagic...)
	e.byte(segVersion)
	e.byte(byte(sys))

	recordsOff := len(e.b)
	post := func(lists *[][]uint32, id uint32, ord uint32) {
		for uint32(len(*lists)) <= id {
			*lists = append(*lists, nil)
		}
		(*lists)[id] = append((*lists)[id], ord)
	}
	for i, en := range entries {
		nanos := en.Record.Time.UnixNano()
		if i%indexInterval == 0 {
			idxOffs = append(idxOffs, uint32(len(e.b)-recordsOff))
			idxNanos = append(idxNanos, nanos)
		}
		srcID := srcD.id(en.Record.Source)
		catID := catD.id(en.Category)
		post(&srcOrds, srcID, uint32(i))
		post(&catOrds, catID, uint32(i))
		sevOrds[en.Record.Severity] = append(sevOrds[en.Record.Severity], uint32(i))

		e.uvarint(en.Record.Seq)
		e.uvarint(uint64(nanos - minN))
		e.uvarint(uint64(srcID))
		e.uvarint(uint64(catID))
		e.uvarint(uint64(progD.id(en.Record.Program)))
		e.uvarint(uint64(facD.id(en.Record.Facility)))
		e.uvarint(uint64(en.Record.Severity))
		var flags byte
		if en.Kept {
			flags |= entryFlagKept
		}
		if en.Record.Corrupted {
			flags |= entryFlagCorrupted
		}
		e.byte(flags)
		e.str(en.Record.Body)
	}

	dictsOff := len(e.b)
	appendDict(&e, srcD.vals)
	appendDict(&e, catD.vals)
	appendDict(&e, progD.vals)
	appendDict(&e, facD.vals)

	postingsOff := len(e.b)
	for _, ords := range srcOrds {
		appendPostings(&e, ords, len(entries))
	}
	for _, ords := range catOrds {
		appendPostings(&e, ords, len(entries))
	}
	sevs := make([]logrec.Severity, 0, len(sevOrds))
	for s := range sevOrds {
		sevs = append(sevs, s)
	}
	sort.Slice(sevs, func(i, j int) bool { return sevs[i] < sevs[j] })
	e.uvarint(uint64(len(sevs)))
	for _, s := range sevs {
		e.uvarint(uint64(s))
		appendPostings(&e, sevOrds[s], len(entries))
	}

	indexOff := len(e.b)
	e.uvarint(uint64(len(idxOffs)))
	for i := range idxOffs {
		e.uvarint(uint64(idxOffs[i]))
		e.uvarint(uint64(idxNanos[i] - minN))
	}

	e.u64(uint64(recordsOff))
	e.u64(uint64(dictsOff))
	e.u64(uint64(postingsOff))
	e.u64(uint64(indexOff))
	e.u64(uint64(len(entries)))
	e.u64(uint64(minN))
	e.u64(uint64(maxN))
	e.u32(crc32.ChecksumIEEE(e.b))
	e.b = append(e.b, segEndMagic...)
	return e.b
}

// parseSegment validates blob (magic, version, footer checksum) and
// decodes its metadata — dictionaries, postings, sparse index. Records
// stay encoded. Any validation failure returns an error; a segment that
// fails here is never served from.
func parseSegment(name string, blob []byte) (*segment, error) {
	if len(blob) < segHdrLen+segFooterLen {
		return nil, fmt.Errorf("store: segment %s: truncated (%d bytes)", name, len(blob))
	}
	if string(blob[:4]) != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad magic", name)
	}
	if blob[4] != segVersion {
		return nil, fmt.Errorf("store: segment %s: unsupported version %d", name, blob[4])
	}
	if string(blob[len(blob)-4:]) != segEndMagic {
		return nil, fmt.Errorf("store: segment %s: torn tail (end marker missing)", name)
	}
	crcOff := len(blob) - 8
	wantCRC := binary.LittleEndian.Uint32(blob[crcOff:])
	if got := crc32.ChecksumIEEE(blob[:crcOff]); got != wantCRC {
		return nil, fmt.Errorf("store: segment %s: checksum mismatch (got %08x want %08x)", name, got, wantCRC)
	}

	f := blob[len(blob)-segFooterLen : crcOff]
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(f[i*8:]) }
	g := &segment{
		name:       name,
		num:        segNum(name),
		sys:        logrec.System(blob[5]),
		blob:       blob,
		recordsOff: int(u(0)),
		count:      int(u(4)),
		minNanos:   int64(u(5)),
		maxNanos:   int64(u(6)),
	}
	dictsOff, postingsOff, indexOff := int(u(1)), int(u(2)), int(u(3))
	bodyLen := len(blob) - segFooterLen
	if g.recordsOff != segHdrLen || dictsOff < g.recordsOff || postingsOff < dictsOff ||
		indexOff < postingsOff || indexOff > bodyLen {
		return nil, fmt.Errorf("store: segment %s: inconsistent section offsets", name)
	}

	d := &dec{b: blob, off: dictsOff}
	g.sources = decodeDict(d)
	g.categories = decodeDict(d)
	g.programs = decodeDict(d)
	g.facilities = decodeDict(d)
	if d.err != nil || d.off != postingsOff {
		return nil, fmt.Errorf("store: segment %s: bad dictionaries", name)
	}
	g.srcIDs = indexStrings(g.sources)
	g.catIDs = indexStrings(g.categories)

	g.srcPost = make([][]uint32, len(g.sources))
	for i := range g.srcPost {
		g.srcPost[i] = decodePostings(d)
	}
	g.catPost = make([][]uint32, len(g.categories))
	for i := range g.catPost {
		g.catPost[i] = decodePostings(d)
	}
	nSev := d.uvarint()
	if d.err == nil && nSev <= 256 {
		g.sevPost = make(map[logrec.Severity][]uint32, nSev)
		for i := uint64(0); i < nSev; i++ {
			sev := logrec.Severity(d.uvarint())
			g.sevPost[sev] = decodePostings(d)
			if sev > g.maxSev {
				g.maxSev = sev
			}
		}
	} else {
		d.fail("severity postings")
	}
	if d.err != nil || d.off != indexOff {
		return nil, fmt.Errorf("store: segment %s: bad postings", name)
	}

	nIdx := d.uvarint()
	want := (g.count + indexInterval - 1) / indexInterval
	if d.err != nil || int(nIdx) != want {
		return nil, fmt.Errorf("store: segment %s: bad sparse index", name)
	}
	g.idxOffsets = make([]uint32, 0, nIdx)
	g.idxNanos = make([]int64, 0, nIdx)
	for i := uint64(0); i < nIdx; i++ {
		g.idxOffsets = append(g.idxOffsets, uint32(d.uvarint()))
		g.idxNanos = append(g.idxNanos, g.minNanos+int64(d.uvarint()))
	}
	if d.err != nil || d.off != bodyLen {
		return nil, fmt.Errorf("store: segment %s: bad sparse index", name)
	}
	return g, nil
}

func indexStrings(vals []string) map[string]uint32 {
	m := make(map[string]uint32, len(vals))
	for i, v := range vals {
		m[v] = uint32(i)
	}
	return m
}

// raw is one record decoded without materialization: fixed fields as
// values, the body left as a [bodyOff, bodyOff+bodyLen) view into the
// segment blob. Decoding a raw touches no heap — the columnar scan's
// ~0 allocs/record claim rests on it — and materialize turns one into
// an Entry with exactly one allocation (the body string).
type raw struct {
	seq              uint64
	nanos            int64
	srcID, catID     uint32
	progID, facID    uint32
	sev              logrec.Severity
	flags            byte
	bodyOff, bodyLen int
}

// decodeRawAt decodes the record at absolute blob offset off into raw
// form, returning the offset of the record after it. Field order and
// bounds semantics mirror buildSegment; the dictionary-id range checks
// keep a corrupted-but-CRC-colliding blob from indexing out of range.
func (g *segment) decodeRawAt(off int) (raw, int, error) {
	var r raw
	b := g.blob
	bad := func(what string) (raw, int, error) {
		return raw{}, 0, fmt.Errorf("store: segment %s: bad %s at offset %d", g.name, what, off)
	}
	if off < 0 || off > len(b) {
		return bad("record offset")
	}
	v, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return bad("seq")
	}
	r.seq, off = v, off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 {
		return bad("time")
	}
	r.nanos, off = g.minNanos+int64(v), off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 || v >= uint64(len(g.sources)) {
		return bad("source id")
	}
	r.srcID, off = uint32(v), off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 || v >= uint64(len(g.categories)) {
		return bad("category id")
	}
	r.catID, off = uint32(v), off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 || v >= uint64(len(g.programs)) {
		return bad("program id")
	}
	r.progID, off = uint32(v), off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 || v >= uint64(len(g.facilities)) {
		return bad("facility id")
	}
	r.facID, off = uint32(v), off+n
	if v, n = binary.Uvarint(b[off:]); n <= 0 {
		return bad("severity")
	}
	r.sev, off = logrec.Severity(v), off+n
	if off >= len(b) {
		return bad("flags")
	}
	r.flags, off = b[off], off+1
	if v, n = binary.Uvarint(b[off:]); n <= 0 {
		return bad("body length")
	}
	off += n
	if v > uint64(len(b)-off) {
		return bad("body")
	}
	r.bodyOff, r.bodyLen = off, int(v)
	return r, off + int(v), nil
}

// materialize builds the Entry a raw record denotes. The body string is
// the one allocation; every other string is a shared dictionary value.
func (g *segment) materialize(r raw) Entry {
	return Entry{
		Record: logrec.Record{
			Seq:       r.seq,
			Time:      time.Unix(0, r.nanos).UTC(),
			System:    g.sys,
			Source:    g.sources[r.srcID],
			Facility:  g.facilities[r.facID],
			Severity:  r.sev,
			Program:   g.programs[r.progID],
			Body:      string(g.blob[r.bodyOff : r.bodyOff+r.bodyLen]),
			Corrupted: r.flags&entryFlagCorrupted != 0,
		},
		Category: g.categories[r.catID],
		Kept:     r.flags&entryFlagKept != 0,
	}
}

// decodeAt decodes the record at absolute blob offset off, returning
// the entry and the offset of the record after it.
func (g *segment) decodeAt(off int) (Entry, int, error) {
	r, next, err := g.decodeRawAt(off)
	if err != nil {
		return Entry{}, 0, err
	}
	return g.materialize(r), next, nil
}

// entries decodes every record in the segment, in stored (canonical)
// order — the bulk path compaction and Open's dup-window subtraction
// use, where postings planning would only add overhead.
func (g *segment) entries() ([]Entry, error) {
	out := make([]Entry, 0, g.count)
	off := g.recordsOff
	for i := 0; i < g.count; i++ {
		en, next, err := g.decodeAt(off)
		if err != nil {
			return nil, err
		}
		out = append(out, en)
		off = next
	}
	return out, nil
}

// candidates plans the postings side of a scan: for each dimension the
// filter constrains, union the requested values' posting sets, then
// intersect across dimensions. It returns (nil, false) when the filter
// names no indexed dimension (the scan must walk the time range) and
// (possibly empty, true) when postings fully decide the candidate set.
func (g *segment) candidates(f Filter) ([]uint32, bool) {
	constrained := false
	var acc []uint32
	apply := func(lists [][]uint32) {
		u := unionSorted(lists)
		if !constrained {
			acc, constrained = u, true
			return
		}
		acc = intersectSorted(acc, u)
	}
	if len(f.Sources) > 0 {
		lists := make([][]uint32, 0, len(f.Sources))
		for _, s := range f.Sources {
			if id, ok := g.srcIDs[s]; ok {
				lists = append(lists, g.srcPost[id])
			}
		}
		apply(lists)
	}
	if len(f.Categories) > 0 {
		lists := make([][]uint32, 0, len(f.Categories))
		for _, c := range f.Categories {
			if id, ok := g.catIDs[c]; ok {
				lists = append(lists, g.catPost[id])
			}
		}
		apply(lists)
	}
	if len(f.Severities) > 0 {
		lists := make([][]uint32, 0, len(f.Severities))
		for _, s := range f.Severities {
			if p, ok := g.sevPost[s]; ok {
				lists = append(lists, p)
			}
		}
		apply(lists)
	}
	return acc, constrained
}

// matchRaw applies the predicates postings do not cover — the Kept flag
// and the body-substring predicate — to a raw record. The body bytes
// are compared in place against bodyPat (the filter's BodyContains,
// converted once per walk), so neither predicate allocates.
func (g *segment) matchRaw(f *Filter, r raw, bodyPat []byte) bool {
	if f.Kept != nil && *f.Kept != (r.flags&entryFlagKept != 0) {
		return false
	}
	return len(bodyPat) == 0 || bytes.Contains(g.blob[r.bodyOff:r.bodyOff+r.bodyLen], bodyPat)
}

// walk drives a segment scan in raw form: postings planning, sparse-
// index seeking, time pruning, and predicate matching all happen here,
// and every matching record is handed to visit without materialization.
// Both read paths sit on top of it — the entry scan materializes each
// match, the columnar scan counts ordinals — which is what guarantees
// the two report identical ScanStats for identical filters.
func (g *segment) walk(f Filter, st *ScanStats, visit func(raw) error) error {
	ords, constrained := g.candidates(f)
	if constrained {
		return g.walkOrdinals(ords, f, st, visit)
	}
	return g.walkRange(f, st, visit)
}

// walkRange walks the time window sequentially, seeking the start block
// through the sparse index and stopping at the first record past To.
func (g *segment) walkRange(f Filter, st *ScanStats, visit func(raw) error) error {
	bodyPat := bodyPattern(f)
	var fromN, toN int64
	block := 0
	if !f.From.IsZero() {
		fromN = f.From.UnixNano()
		// Last index block whose first record is at or before From.
		block = sort.Search(len(g.idxNanos), func(i int) bool { return g.idxNanos[i] > fromN })
		if block > 0 {
			block--
		}
	}
	if !f.To.IsZero() {
		toN = f.To.UnixNano()
	}
	if block >= len(g.idxOffsets) {
		return nil
	}
	off := g.recordsOff + int(g.idxOffsets[block])
	start := off
	defer func() { st.BytesScanned += int64(off - start) }()
	for ord := block * indexInterval; ord < g.count; ord++ {
		r, next, err := g.decodeRawAt(off)
		if err != nil {
			return err
		}
		off = next
		st.RecordsScanned++
		if toN != 0 && r.nanos >= toN {
			return nil
		}
		if fromN != 0 && r.nanos < fromN {
			continue
		}
		if !g.matchRaw(&f, r, bodyPat) {
			continue
		}
		st.Matched++
		if err := visit(r); err != nil {
			return err
		}
	}
	return nil
}

// walkOrdinals decodes exactly the index blocks containing candidate
// ordinals, sequentially within each block.
func (g *segment) walkOrdinals(ords []uint32, f Filter, st *ScanStats, visit func(raw) error) error {
	bodyPat := bodyPattern(f)
	var fromN, toN int64
	if !f.From.IsZero() {
		fromN = f.From.UnixNano()
	}
	if !f.To.IsZero() {
		toN = f.To.UnixNano()
	}
	i := 0
	for i < len(ords) {
		block := int(ords[i]) / indexInterval
		// Time-prune whole blocks: the block's records span
		// [idxNanos[block], idxNanos[block+1]).
		if toN != 0 && g.idxNanos[block] >= toN {
			return nil // blocks are time-ordered; nothing later can match
		}
		end := i
		for end < len(ords) && int(ords[end])/indexInterval == block {
			end++
		}
		if fromN != 0 && block+1 < len(g.idxNanos) && g.idxNanos[block+1] <= fromN {
			i = end // the whole block predates the window
			continue
		}
		off := g.recordsOff + int(g.idxOffsets[block])
		start := off
		want := ords[i:end]
		for ord := block * indexInterval; len(want) > 0 && ord < g.count; ord++ {
			r, next, err := g.decodeRawAt(off)
			if err != nil {
				return err
			}
			off = next
			st.RecordsScanned++
			if uint32(ord) != want[0] {
				continue
			}
			want = want[1:]
			if (fromN != 0 && r.nanos < fromN) || (toN != 0 && r.nanos >= toN) || !g.matchRaw(&f, r, bodyPat) {
				continue
			}
			st.Matched++
			if err := visit(r); err != nil {
				return err
			}
		}
		st.BytesScanned += int64(off - start)
		i = end
	}
	return nil
}

// bodyPattern converts the filter's body predicate for in-place byte
// comparison (one small allocation per segment walk, amortized to ~0
// per record).
func bodyPattern(f Filter) []byte {
	if f.BodyContains == "" {
		return nil
	}
	return []byte(f.BodyContains)
}

// scan emits the segment's entries matching f, in canonical order,
// accounting its work in st. The caller has already pruned the segment
// against the filter's time range.
func (g *segment) scan(f Filter, st *ScanStats, emit func(Entry) error) error {
	return g.walk(f, st, func(r raw) error { return emit(g.materialize(r)) })
}

// scanColumns folds the segment's matching records into sc without
// materializing any of them: dictionary-ordinal counts, severity-value
// counts, the Kept tally, and the timestamp column.
func (g *segment) scanColumns(f Filter, st *ScanStats, sc *SegmentColumns) error {
	return g.walk(f, st, func(r raw) error {
		sc.Matched++
		if r.flags&entryFlagKept != 0 {
			sc.Kept++
		}
		sc.SrcCounts[r.srcID]++
		sc.CatCounts[r.catID]++
		for int(r.sev) >= len(sc.SevCounts) {
			sc.SevCounts = append(sc.SevCounts, 0)
		}
		sc.SevCounts[r.sev]++
		sc.Times = append(sc.Times, r.nanos)
		return nil
	})
}
