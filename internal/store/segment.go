package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"whatsupersay/internal/logrec"
)

// Segment wire format (little-endian, varint-heavy):
//
//	header   magic "ALSG" | version u8 | system u8
//	records  count entries back-to-back, sorted by (time, seq):
//	           seq uvarint | Δt-nanos-from-min uvarint |
//	           sourceID catID progID facID uvarint | severity uvarint |
//	           flags u8 (kept, corrupted) | body string
//	dicts    four string tables: sources, categories, programs, facilities
//	postings per source id, per category id: posting set over record
//	         ordinals; then distinct severities, each (value, posting set)
//	sparse   one entry per indexInterval records: (byte offset into the
//	index    records region, Δt-nanos of the block's first record) —
//	         enough to seek a time-range scan or decode one index block
//	         for a postings hit without touching the rest of the segment
//	footer   fixed 64 bytes: recordsOff dictsOff postingsOff indexOff
//	         count u64 ×5 | minNanos maxNanos u64 ×2 | crc32(file[:crc])
//	         u32 | magic "GSLA" u32
//
// The footer checksum covers every byte before it, so a torn or bit-
// flipped segment is detected on open and excluded wholesale; records
// are only ever served from segments whose checksum verified.

const (
	segMagic    = "ALSG"
	segEndMagic = "GSLA"
	segVersion  = 1
	segHdrLen   = 6
	// footer: 5 offsets/counts + 2 timestamps (u64) + crc (u32) + magic (u32).
	segFooterLen = 5*8 + 2*8 + 4 + 4

	// indexInterval is the sparse-index stride: one index point per this
	// many records. Postings scans decode at most indexInterval-1 extra
	// records to reach a hit; time seeks land within one block.
	indexInterval = 64
)

// Entry is one stored alert: the tagged record, its category, and
// whether it survived Algorithm 3.1 (the simultaneous filter). Record.Raw
// is not persisted — the structured fields are the unit of analysis, and
// the wire text is reproducible from the generator when needed.
type Entry struct {
	Record   logrec.Record
	Category string
	Kept     bool
}

// entryBefore orders entries canonically: time, then sequence number.
func entryBefore(a, b Entry) bool { return a.Record.Before(b.Record) }

// sortEntries sorts entries into canonical order.
func sortEntries(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool { return entryBefore(entries[i], entries[j]) })
}

// segment is one sealed, immutable, checksum-verified block of entries.
// The encoded blob stays resident; records are decoded on demand during
// scans, postings and dictionaries are decoded once at open.
type segment struct {
	name string
	// num is the seal sequence number parsed from name (-1 if the name
	// is not of the seg-%08d.seg form); Open's dup-window subtraction
	// compares it against the wal epoch.
	num  int
	sys  logrec.System
	blob []byte

	count              int
	minNanos, maxNanos int64
	recordsOff         int

	sources, categories  []string
	programs, facilities []string
	srcIDs, catIDs       map[string]uint32
	srcPost, catPost     [][]uint32
	sevPost              map[logrec.Severity][]uint32

	// idxOffsets[i] / idxNanos[i] locate record ordinal i*indexInterval.
	idxOffsets []uint32
	idxNanos   []int64
}

const entryFlagKept, entryFlagCorrupted = 1, 2

// buildSegment encodes entries (which must be sorted; Seal sorts) into
// the segment wire form.
func buildSegment(sys logrec.System, entries []Entry) []byte {
	var (
		e                enc
		srcD, catD       dict
		progD, facD      dict
		sevOrds          = map[logrec.Severity][]uint32{}
		idxOffs          []uint32
		idxNanos         []int64
		minN             = entries[0].Record.Time.UnixNano()
		maxN             = entries[len(entries)-1].Record.Time.UnixNano()
		srcOrds, catOrds [][]uint32
	)
	e.b = append(e.b, segMagic...)
	e.byte(segVersion)
	e.byte(byte(sys))

	recordsOff := len(e.b)
	post := func(lists *[][]uint32, id uint32, ord uint32) {
		for uint32(len(*lists)) <= id {
			*lists = append(*lists, nil)
		}
		(*lists)[id] = append((*lists)[id], ord)
	}
	for i, en := range entries {
		nanos := en.Record.Time.UnixNano()
		if i%indexInterval == 0 {
			idxOffs = append(idxOffs, uint32(len(e.b)-recordsOff))
			idxNanos = append(idxNanos, nanos)
		}
		srcID := srcD.id(en.Record.Source)
		catID := catD.id(en.Category)
		post(&srcOrds, srcID, uint32(i))
		post(&catOrds, catID, uint32(i))
		sevOrds[en.Record.Severity] = append(sevOrds[en.Record.Severity], uint32(i))

		e.uvarint(en.Record.Seq)
		e.uvarint(uint64(nanos - minN))
		e.uvarint(uint64(srcID))
		e.uvarint(uint64(catID))
		e.uvarint(uint64(progD.id(en.Record.Program)))
		e.uvarint(uint64(facD.id(en.Record.Facility)))
		e.uvarint(uint64(en.Record.Severity))
		var flags byte
		if en.Kept {
			flags |= entryFlagKept
		}
		if en.Record.Corrupted {
			flags |= entryFlagCorrupted
		}
		e.byte(flags)
		e.str(en.Record.Body)
	}

	dictsOff := len(e.b)
	appendDict(&e, srcD.vals)
	appendDict(&e, catD.vals)
	appendDict(&e, progD.vals)
	appendDict(&e, facD.vals)

	postingsOff := len(e.b)
	for _, ords := range srcOrds {
		appendPostings(&e, ords, len(entries))
	}
	for _, ords := range catOrds {
		appendPostings(&e, ords, len(entries))
	}
	sevs := make([]logrec.Severity, 0, len(sevOrds))
	for s := range sevOrds {
		sevs = append(sevs, s)
	}
	sort.Slice(sevs, func(i, j int) bool { return sevs[i] < sevs[j] })
	e.uvarint(uint64(len(sevs)))
	for _, s := range sevs {
		e.uvarint(uint64(s))
		appendPostings(&e, sevOrds[s], len(entries))
	}

	indexOff := len(e.b)
	e.uvarint(uint64(len(idxOffs)))
	for i := range idxOffs {
		e.uvarint(uint64(idxOffs[i]))
		e.uvarint(uint64(idxNanos[i] - minN))
	}

	e.u64(uint64(recordsOff))
	e.u64(uint64(dictsOff))
	e.u64(uint64(postingsOff))
	e.u64(uint64(indexOff))
	e.u64(uint64(len(entries)))
	e.u64(uint64(minN))
	e.u64(uint64(maxN))
	e.u32(crc32.ChecksumIEEE(e.b))
	e.b = append(e.b, segEndMagic...)
	return e.b
}

// parseSegment validates blob (magic, version, footer checksum) and
// decodes its metadata — dictionaries, postings, sparse index. Records
// stay encoded. Any validation failure returns an error; a segment that
// fails here is never served from.
func parseSegment(name string, blob []byte) (*segment, error) {
	if len(blob) < segHdrLen+segFooterLen {
		return nil, fmt.Errorf("store: segment %s: truncated (%d bytes)", name, len(blob))
	}
	if string(blob[:4]) != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad magic", name)
	}
	if blob[4] != segVersion {
		return nil, fmt.Errorf("store: segment %s: unsupported version %d", name, blob[4])
	}
	if string(blob[len(blob)-4:]) != segEndMagic {
		return nil, fmt.Errorf("store: segment %s: torn tail (end marker missing)", name)
	}
	crcOff := len(blob) - 8
	wantCRC := binary.LittleEndian.Uint32(blob[crcOff:])
	if got := crc32.ChecksumIEEE(blob[:crcOff]); got != wantCRC {
		return nil, fmt.Errorf("store: segment %s: checksum mismatch (got %08x want %08x)", name, got, wantCRC)
	}

	f := blob[len(blob)-segFooterLen : crcOff]
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(f[i*8:]) }
	g := &segment{
		name:       name,
		num:        segNum(name),
		sys:        logrec.System(blob[5]),
		blob:       blob,
		recordsOff: int(u(0)),
		count:      int(u(4)),
		minNanos:   int64(u(5)),
		maxNanos:   int64(u(6)),
	}
	dictsOff, postingsOff, indexOff := int(u(1)), int(u(2)), int(u(3))
	bodyLen := len(blob) - segFooterLen
	if g.recordsOff != segHdrLen || dictsOff < g.recordsOff || postingsOff < dictsOff ||
		indexOff < postingsOff || indexOff > bodyLen {
		return nil, fmt.Errorf("store: segment %s: inconsistent section offsets", name)
	}

	d := &dec{b: blob, off: dictsOff}
	g.sources = decodeDict(d)
	g.categories = decodeDict(d)
	g.programs = decodeDict(d)
	g.facilities = decodeDict(d)
	if d.err != nil || d.off != postingsOff {
		return nil, fmt.Errorf("store: segment %s: bad dictionaries", name)
	}
	g.srcIDs = indexStrings(g.sources)
	g.catIDs = indexStrings(g.categories)

	g.srcPost = make([][]uint32, len(g.sources))
	for i := range g.srcPost {
		g.srcPost[i] = decodePostings(d)
	}
	g.catPost = make([][]uint32, len(g.categories))
	for i := range g.catPost {
		g.catPost[i] = decodePostings(d)
	}
	nSev := d.uvarint()
	if d.err == nil && nSev <= 256 {
		g.sevPost = make(map[logrec.Severity][]uint32, nSev)
		for i := uint64(0); i < nSev; i++ {
			sev := logrec.Severity(d.uvarint())
			g.sevPost[sev] = decodePostings(d)
		}
	} else {
		d.fail("severity postings")
	}
	if d.err != nil || d.off != indexOff {
		return nil, fmt.Errorf("store: segment %s: bad postings", name)
	}

	nIdx := d.uvarint()
	want := (g.count + indexInterval - 1) / indexInterval
	if d.err != nil || int(nIdx) != want {
		return nil, fmt.Errorf("store: segment %s: bad sparse index", name)
	}
	g.idxOffsets = make([]uint32, 0, nIdx)
	g.idxNanos = make([]int64, 0, nIdx)
	for i := uint64(0); i < nIdx; i++ {
		g.idxOffsets = append(g.idxOffsets, uint32(d.uvarint()))
		g.idxNanos = append(g.idxNanos, g.minNanos+int64(d.uvarint()))
	}
	if d.err != nil || d.off != bodyLen {
		return nil, fmt.Errorf("store: segment %s: bad sparse index", name)
	}
	return g, nil
}

func indexStrings(vals []string) map[string]uint32 {
	m := make(map[string]uint32, len(vals))
	for i, v := range vals {
		m[v] = uint32(i)
	}
	return m
}

// decodeAt decodes the record at absolute blob offset off, returning
// the entry and the offset of the record after it.
func (g *segment) decodeAt(off int) (Entry, int, error) {
	d := &dec{b: g.blob, off: off}
	seq := d.uvarint()
	nanos := g.minNanos + int64(d.uvarint())
	srcID, catID := d.uvarint(), d.uvarint()
	progID, facID := d.uvarint(), d.uvarint()
	sev := d.uvarint()
	flags := d.byte()
	body := d.str()
	if d.err != nil {
		return Entry{}, 0, d.err
	}
	if srcID >= uint64(len(g.sources)) || catID >= uint64(len(g.categories)) ||
		progID >= uint64(len(g.programs)) || facID >= uint64(len(g.facilities)) {
		return Entry{}, 0, fmt.Errorf("store: segment %s: dict id out of range at offset %d", g.name, off)
	}
	return Entry{
		Record: logrec.Record{
			Seq:       seq,
			Time:      time.Unix(0, nanos).UTC(),
			System:    g.sys,
			Source:    g.sources[srcID],
			Facility:  g.facilities[facID],
			Severity:  logrec.Severity(sev),
			Program:   g.programs[progID],
			Body:      body,
			Corrupted: flags&entryFlagCorrupted != 0,
		},
		Category: g.categories[catID],
		Kept:     flags&entryFlagKept != 0,
	}, d.off, nil
}

// entries decodes every record in the segment, in stored (canonical)
// order — the bulk path compaction and Open's dup-window subtraction
// use, where postings planning would only add overhead.
func (g *segment) entries() ([]Entry, error) {
	out := make([]Entry, 0, g.count)
	off := g.recordsOff
	for i := 0; i < g.count; i++ {
		en, next, err := g.decodeAt(off)
		if err != nil {
			return nil, err
		}
		out = append(out, en)
		off = next
	}
	return out, nil
}

// candidates plans the postings side of a scan: for each dimension the
// filter constrains, union the requested values' posting sets, then
// intersect across dimensions. It returns (nil, false) when the filter
// names no indexed dimension (the scan must walk the time range) and
// (possibly empty, true) when postings fully decide the candidate set.
func (g *segment) candidates(f Filter) ([]uint32, bool) {
	constrained := false
	var acc []uint32
	apply := func(lists [][]uint32) {
		u := unionSorted(lists)
		if !constrained {
			acc, constrained = u, true
			return
		}
		acc = intersectSorted(acc, u)
	}
	if len(f.Sources) > 0 {
		lists := make([][]uint32, 0, len(f.Sources))
		for _, s := range f.Sources {
			if id, ok := g.srcIDs[s]; ok {
				lists = append(lists, g.srcPost[id])
			}
		}
		apply(lists)
	}
	if len(f.Categories) > 0 {
		lists := make([][]uint32, 0, len(f.Categories))
		for _, c := range f.Categories {
			if id, ok := g.catIDs[c]; ok {
				lists = append(lists, g.catPost[id])
			}
		}
		apply(lists)
	}
	if len(f.Severities) > 0 {
		lists := make([][]uint32, 0, len(f.Severities))
		for _, s := range f.Severities {
			if p, ok := g.sevPost[s]; ok {
				lists = append(lists, p)
			}
		}
		apply(lists)
	}
	return acc, constrained
}

// scan emits the segment's entries matching f, in canonical order,
// accounting its work in st. The caller has already pruned the segment
// against the filter's time range.
func (g *segment) scan(f Filter, st *ScanStats, emit func(Entry) error) error {
	ords, constrained := g.candidates(f)
	if constrained {
		return g.scanOrdinals(ords, f, st, emit)
	}
	return g.scanRange(f, st, emit)
}

// scanRange walks the time window sequentially, seeking the start block
// through the sparse index and stopping at the first record past To.
func (g *segment) scanRange(f Filter, st *ScanStats, emit func(Entry) error) error {
	block := 0
	if !f.From.IsZero() {
		from := f.From.UnixNano()
		// Last index block whose first record is at or before From.
		block = sort.Search(len(g.idxNanos), func(i int) bool { return g.idxNanos[i] > from })
		if block > 0 {
			block--
		}
	}
	if block >= len(g.idxOffsets) {
		return nil
	}
	off := g.recordsOff + int(g.idxOffsets[block])
	start := off
	defer func() { st.BytesScanned += int64(off - start) }()
	for ord := block * indexInterval; ord < g.count; ord++ {
		en, next, err := g.decodeAt(off)
		if err != nil {
			return err
		}
		off = next
		st.RecordsScanned++
		if !f.To.IsZero() && !en.Record.Time.Before(f.To) {
			return nil
		}
		if !f.From.IsZero() && en.Record.Time.Before(f.From) {
			continue
		}
		if !f.matchUnindexed(en) {
			continue
		}
		st.Matched++
		if err := emit(en); err != nil {
			return err
		}
	}
	return nil
}

// scanOrdinals decodes exactly the index blocks containing candidate
// ordinals, sequentially within each block.
func (g *segment) scanOrdinals(ords []uint32, f Filter, st *ScanStats, emit func(Entry) error) error {
	var fromN, toN int64
	if !f.From.IsZero() {
		fromN = f.From.UnixNano()
	}
	if !f.To.IsZero() {
		toN = f.To.UnixNano()
	}
	i := 0
	for i < len(ords) {
		block := int(ords[i]) / indexInterval
		// Time-prune whole blocks: the block's records span
		// [idxNanos[block], idxNanos[block+1]).
		if toN != 0 && g.idxNanos[block] >= toN {
			return nil // blocks are time-ordered; nothing later can match
		}
		end := i
		for end < len(ords) && int(ords[end])/indexInterval == block {
			end++
		}
		if fromN != 0 && block+1 < len(g.idxNanos) && g.idxNanos[block+1] <= fromN {
			i = end // the whole block predates the window
			continue
		}
		off := g.recordsOff + int(g.idxOffsets[block])
		start := off
		want := ords[i:end]
		for ord := block * indexInterval; len(want) > 0 && ord < g.count; ord++ {
			en, next, err := g.decodeAt(off)
			if err != nil {
				return err
			}
			off = next
			st.RecordsScanned++
			if uint32(ord) != want[0] {
				continue
			}
			want = want[1:]
			nanos := en.Record.Time.UnixNano()
			if (fromN != 0 && nanos < fromN) || (toN != 0 && nanos >= toN) || !f.matchUnindexed(en) {
				continue
			}
			st.Matched++
			if err := emit(en); err != nil {
				return err
			}
		}
		st.BytesScanned += int64(off - start)
		i = end
	}
	return nil
}
