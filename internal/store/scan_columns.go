package store

import (
	"errors"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
)

// The columnar read path. Scan materializes an Entry per match — a body
// string allocation and a 100-odd-byte struct copy per record — which
// aggregation immediately boils back down to counts and timestamps.
// ScanColumns serves the same filters without materializing anything:
// sealed segments are walked in raw form (see segment.walk) and folded
// into per-segment SegmentColumns — dictionary-ordinal count arrays
// plus a contiguous timestamp slab — while the unsealed tail, which has
// no columnar form, is handed over entry by entry. The query engine
// turns a ColumnVisitor into a mergeable Partial in one pass.

// ErrNotIndexAnswerable rejects a columnar scan whose filter needs
// record bytes the indexes do not cover (a message predicate). Callers
// route such filters to Scan; Filter.IndexAnswerable is the planning
// predicate.
var ErrNotIndexAnswerable = errors.New("store: filter is not index-answerable (message predicate present)")

var mScanColumnsSegments = obs.Default.Counter("store_scan_columns_segments_total")

// SegmentColumns is one sealed segment's matched records in columnar
// form. Counts are keyed by dictionary ordinal (SrcCounts[i] counts
// matches of Sources[i]) or by raw severity value (SevCounts[v] counts
// matches with Severity v). Times is the matched timestamp column in
// canonical segment order — nondecreasing Unix nanos. The dictionary
// slices are shared with the segment and must not be mutated.
type SegmentColumns struct {
	System     logrec.System
	Sources    []string
	Categories []string

	Matched   int
	Kept      int
	SrcCounts []int
	CatCounts []int
	SevCounts []int
	Times     []int64
}

// ColumnVisitor consumes one columnar scan. SealedColumns is called
// once per scanned segment with at least one match — the SegmentColumns
// is only valid for the duration of the call (its backing arrays are
// not retained by the store, but visitors must copy anything they keep
// beyond the callback, Times included). TailEntry is called once per
// matching unsealed-tail entry, after all segments.
type ColumnVisitor interface {
	SealedColumns(sc *SegmentColumns) error
	TailEntry(en Entry) error
}

// newSegmentColumns sizes a columnar accumulator for one segment.
func newSegmentColumns(g *segment) *SegmentColumns {
	return &SegmentColumns{
		System:     g.sys,
		Sources:    g.sources,
		Categories: g.categories,
		SrcCounts:  make([]int, len(g.sources)),
		CatCounts:  make([]int, len(g.categories)),
		SevCounts:  make([]int, int(g.maxSev)+1),
	}
}

// ScanColumns streams every entry matching f to v in columnar form:
// sealed segments first (in seal order, each folded to a
// SegmentColumns), then the unsealed tail entry by entry. The filter
// must be index-answerable (ErrNotIndexAnswerable otherwise). The
// returned stats are identical to what Scan would report for the same
// filter against the same content — both paths share segment.walk — so
// callers can switch paths without changing any observable accounting.
func (s *Store) ScanColumns(f Filter, v ColumnVisitor) (ScanStats, error) {
	if !f.IndexAnswerable() {
		return ScanStats{}, ErrNotIndexAnswerable
	}
	sp := obs.Default.StartSpan("store_scan_columns")
	defer sp.End()

	s.mu.RLock()
	segs := append([]*segment(nil), s.segs...)
	tail := append([]Entry(nil), s.tail...)
	retainAll(segs)
	s.mu.RUnlock()
	defer releaseAll(segs)

	var st ScanStats
	st.Segments = len(segs)
	for _, g := range segs {
		if !f.From.IsZero() && g.maxNanos < f.From.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		if !f.To.IsZero() && g.minNanos >= f.To.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		st.SegmentsScanned++
		sc := newSegmentColumns(g)
		if err := g.scanColumns(f, &st, sc); err != nil {
			return st, err
		}
		if sc.Matched == 0 {
			continue
		}
		if err := v.SealedColumns(sc); err != nil {
			return st, err
		}
	}
	st.TailEntries = len(tail)
	for _, en := range tail {
		st.RecordsScanned++
		if !f.match(en) {
			continue
		}
		st.Matched++
		if err := v.TailEntry(en); err != nil {
			return st, err
		}
	}
	mScanColumnsSegments.Add(int64(st.SegmentsScanned))
	mScanRecords.Add(int64(st.RecordsScanned))
	mScanBytes.Add(st.BytesScanned)
	return st, nil
}
