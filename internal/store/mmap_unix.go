//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform maps segments (the
// lifetime tests skip their mapping assertions when it is false).
const mmapSupported = true

// mmapFile maps path read-only and returns the mapped bytes plus the
// unmap function that releases them. Empty files come back as a nil
// slice with a no-op unmap: mapping zero bytes is an error on several
// platforms, and a zero-length segment never validates anyway.
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func([]byte) error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: %s: %d bytes does not fit an int", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, syscall.Munmap, nil
}
