package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

// buildSealed creates a store whose entries are all sealed into small
// segments (flushEvery each), plus an optional unsealed tail.
func buildSealed(t *testing.T, dir string, entries []Entry, flushEvery, tail int) *Store {
	t.Helper()
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: flushEvery})
	if err != nil {
		t.Fatal(err)
	}
	sealed := entries[:len(entries)-tail]
	if err := st.Append(sealed...); err != nil {
		t.Fatal(err)
	}
	for st.TailLen() > 0 {
		if err := st.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if tail > 0 {
		if err := st.Append(entries[len(entries)-tail:]...); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestCompactMergesAdjacentSegments(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 1000, 31)
	st := buildSealed(t, dir, entries, 100, 50)
	defer st.Close()
	if n := len(st.Segments()); n != 10 {
		t.Fatalf("precondition: want 10 segments, got %d", n)
	}

	cst, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Target = 4×100, so 10 segments of ~100 merge into runs of ≤400
	// entries: at least one merge must have happened, and the final
	// inventory must be strictly smaller.
	if cst.Compactions == 0 || cst.SegmentsIn < 2 {
		t.Fatalf("no merge happened: %+v", cst)
	}
	after := st.Segments()
	if len(after) >= 10 {
		t.Fatalf("segments not reduced: %d", len(after))
	}
	// No merged segment exceeds the target; no run of two adjacent
	// segments still fits under it (Compact runs to fixpoint).
	for i, g := range after {
		if g.Records > 400 {
			t.Errorf("segment %d has %d entries, target 400", i, g.Records)
		}
		if i > 0 && after[i-1].Records+g.Records <= 400 {
			t.Errorf("segments %d,%d (%d+%d entries) still mergeable", i-1, i, after[i-1].Records, g.Records)
		}
	}
	// Content is untouched: every entry exactly once, tail intact.
	if got := collect(t, st, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("compaction changed the entry set: got %d, want %d", len(got), len(entries))
	}
	if st.TailLen() != 50 {
		t.Fatalf("tail = %d, want 50", st.TailLen())
	}
	// A second pass is a no-op.
	cst, err = st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Compactions != 0 {
		t.Fatalf("second compact not a no-op: %+v", cst)
	}
	// No staging or manifest leftovers.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left: %v", tmps)
	}
	cm, err := readCompactManifest(dir)
	if err != nil || len(cm.Pending) != 0 {
		t.Fatalf("manifest not cleared: %+v err %v", cm, err)
	}
}

// TestCompactedStoreAnswersFiltersIdentically is the property test: for
// a battery of filters, a compacted store and an uncompacted copy of
// the same data return identical results — compaction is a pure layout
// optimization.
func TestCompactedStoreAnswersFiltersIdentically(t *testing.T) {
	entries := makeEntries(t, 1500, 33)
	plain := buildSealed(t, t.TempDir(), entries, 128, 70)
	defer plain.Close()
	compacted := buildSealed(t, t.TempDir(), entries, 128, 70)
	defer compacted.Close()
	if _, err := compacted.Compact(); err != nil {
		t.Fatal(err)
	}
	if a, b := len(plain.Segments()), len(compacted.Segments()); b >= a {
		t.Fatalf("compaction did not reduce segments: %d vs %d", a, b)
	}

	mid := entries[len(entries)/2].Record.Time
	late := entries[3*len(entries)/4].Record.Time
	kept, notKept := true, false
	filters := []Filter{
		{},
		{From: mid},
		{To: mid},
		{From: mid, To: late},
		{Categories: []string{"ECC"}},
		{Sources: []string{"sn373", "cn12"}},
		{Severities: []logrec.Severity{logrec.SevFatal}},
		{Kept: &kept},
		{Kept: &notKept, Categories: []string{"KERNDTLB"}, From: mid},
		{Sources: []string{"sm0"}, Severities: []logrec.Severity{logrec.SevErr}, From: mid, To: late},
	}
	ref := entriesNoRaw(entries)
	for i, f := range filters {
		want := linearFilter(ref, f)
		a := collect(t, plain, f)
		b := collect(t, compacted, f)
		if len(a) == 0 && len(b) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("filter %d: plain %d entries, compacted %d — diverged", i, len(a), len(b))
		}
		if !reflect.DeepEqual(b, want) {
			t.Errorf("filter %d: compacted store diverges from linear reference", i)
		}
	}
}

func TestCompactedStoreReopens(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 800, 35)
	st := buildSealed(t, dir, entries, 100, 30)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.SupersededSegments != 0 || rep.TailDedupedEntries != 0 || len(rep.CorruptSegments) != 0 {
		t.Fatalf("clean reopen reported anomalies: %+v", rep)
	}
	if got := collect(t, st2, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("reopened compacted store lost entries: %d of %d", len(got), len(entries))
	}
}

func TestApplyRetentionDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 900, 37)
	st := buildSealed(t, dir, entries, 150, 0)
	defer st.Close()
	segs := st.Segments()
	if len(segs) != 6 {
		t.Fatalf("want 6 segments, got %d", len(segs))
	}
	// Horizon between the 2nd and 3rd segments: the first two age out.
	horizon := segs[2].Start
	rst, err := st.ApplyRetention(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if rst.SegmentsDropped == 0 {
		t.Fatalf("nothing dropped: %+v", rst)
	}
	for _, g := range st.Segments() {
		if g.End.Before(horizon) {
			t.Errorf("segment %s (end %v) survived a %v horizon", g.Name, g.End, horizon)
		}
	}
	// Survivors are exactly the entries of the kept segments.
	wantLen := len(entries)
	for _, g := range segs[:rst.SegmentsDropped] {
		wantLen -= g.Records
	}
	if got := collect(t, st, Filter{}); len(got) != wantLen || st.Len() != wantLen {
		t.Fatalf("retained %d entries, want %d", len(got), wantLen)
	}
	// Idempotent at the same horizon.
	rst, err = st.ApplyRetention(horizon)
	if err != nil || rst.SegmentsDropped != 0 {
		t.Fatalf("second pass dropped %+v (err %v)", rst, err)
	}
}

func TestRetentionHorizonIsDataRelative(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 600, 39) // 2004-era data
	st := buildSealed(t, dir, entries, 100, 0)
	defer st.Close()
	st.opts.Retention = time.Hour
	horizon, ok := st.retentionHorizon()
	if !ok {
		t.Fatal("retention configured but no horizon")
	}
	newest := entries[len(entries)-1].Record.Time
	if want := newest.Add(-time.Hour); !horizon.Equal(want) {
		t.Fatalf("horizon %v, want newest-1h %v (log time, not wall time)", horizon, want)
	}
	// A wall-clock horizon would be ~22 years past this data and drop
	// everything; the data-relative one must keep the newest segment.
	if _, err := st.ApplyRetention(horizon); err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("data-relative retention emptied a historical store")
	}
}

func TestBackgroundMaintenanceCompacts(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 600, 41)
	st := buildSealed(t, dir, entries, 60, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, err := Open(dir, Options{CompactEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(st2.Segments()) > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never compacted: %d segments", len(st2.Segments()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := collect(t, st2, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("background compaction changed the entry set")
	}
}

func TestAppendDoesNotMutateCallerSlice(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, logrec.Thunderbird, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batch := makeEntries(t, 5, 43)
	for i := range batch {
		batch[i].Record.System = logrec.Liberty // wrong on purpose
		batch[i].Record.Raw = fmt.Sprintf("raw line %d", i)
	}
	want := append([]Entry(nil), batch...)
	if err := st.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, want) {
		t.Fatal("Append mutated the caller's slice")
	}
	// The store still normalized its own copy.
	got := collect(t, st, Filter{})
	for _, en := range got {
		if en.Record.System != logrec.Thunderbird || en.Record.Raw != "" {
			t.Fatalf("stored entry not normalized: %+v", en.Record)
		}
	}
}

func TestFingerprintTracksMutations(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	entries := makeEntries(t, 450, 45)

	fp0 := st.Fingerprint()
	if fp1 := st.Fingerprint(); fp1 != fp0 {
		t.Fatal("fingerprint not stable on an unchanged store")
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	fp1 := st.Fingerprint()
	if fp1 == fp0 {
		t.Fatal("append did not change the fingerprint")
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	fp2 := st.Fingerprint()
	if fp2 == fp1 {
		t.Fatal("seal did not change the fingerprint")
	}
	if cst, err := st.Compact(); err != nil || cst.Compactions == 0 {
		t.Fatalf("compact: %+v err %v", cst, err)
	}
	if fp3 := st.Fingerprint(); fp3 == fp2 {
		t.Fatal("compaction did not change the fingerprint")
	}
}

func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 100, 47)
	st := buildSealed(t, dir, entries, 100, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed seal and a crashed wal rewrite leave these behind.
	for _, name := range []string{"seg-00000009.seg.tmp", walName + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.TempFilesRemoved != 2 {
		t.Fatalf("TempFilesRemoved = %d, want 2", rep.TempFilesRemoved)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("stale temp files survived open: %v", tmps)
	}
	if got := collect(t, st2, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatal("sweep touched live data")
	}
}

// TestConcurrentAppendScanSealCompact is the -race stress test: four
// appenders, two scanners, a sealer, and a compactor hammer one store;
// afterwards every acknowledged entry is present exactly once.
func TestConcurrentAppendScanSealCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 200, CompactTarget: 800})
	if err != nil {
		t.Fatal(err)
	}

	const (
		appenders  = 4
		perBatch   = 25
		numBatches = 16
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var appended []Entry

	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < numBatches; b++ {
				batch := makeEntries(t, perBatch, int64(100+a*numBatches+b))
				for i := range batch {
					// Disambiguate across goroutines: unique seq per appender.
					batch[i].Record.Seq = uint64(a*1_000_000 + b*1_000 + i)
				}
				if err := st.Append(batch...); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				appended = append(appended, batch...)
				mu.Unlock()
			}
		}(a)
	}
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // sealer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Seal(); err != nil {
				t.Errorf("seal: %v", err)
				return
			}
		}
	}()
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() { // scanner
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Scan(Filter{Sources: []string{"sn373"}}, func(Entry) error { return nil }); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}

	// Wait for the appenders (first 4 Adds), then stop the loops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		mu.Lock()
		n := len(appended)
		mu.Unlock()
		if n == appenders*perBatch*numBatches {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rep.CorruptSegments) != 0 || rep.TailDroppedBytes != 0 {
		t.Fatalf("dirty reopen after clean close: %+v", rep)
	}
	got := collect(t, st2, Filter{})
	want := entriesNoRaw(appended)
	sortEntries(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("exactly-once violated: got %d entries, want %d", len(got), len(want))
	}
}
