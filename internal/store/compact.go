package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"whatsupersay/internal/obs"
)

// Compaction and retention: the maintenance side of the store. Every
// FlushEvery entries the ingest path seals another small segment, so a
// long-lived store accumulates segments without bound and every query
// pays a per-segment scan. Compaction merges runs of adjacent (in time
// order) small segments into one large sorted segment; retention drops
// whole segments whose newest record has aged past a horizon measured
// in log time. Both reuse the seal path's durability protocol —
// temp-file, fsync, rename, directory fsync — plus one extra artifact,
// the COMPACT manifest, so Open can tell "replaced by compaction" from
// "corrupt".
//
// Commit protocol for one merge (inputs in1..inK -> output out):
//
//	1. stage   write out's bytes to out.tmp, fsync (no rename yet)
//	2. intend  append {output: out, inputs: [in1..inK]} to COMPACT
//	           (atomic write) — the point of no return
//	3. commit  rename out.tmp -> out, fsync dir
//	4. gc      unlink in1..inK, fsync dir
//	5. clear   rewrite COMPACT empty; rewrite the wal (nextSeg advanced,
//	           so the epoch header must advance with it)
//
// A kill anywhere leaves a recoverable state: before step 3 the output
// name is absent (or only a *.tmp, swept on open), so the manifest
// record is dead weight and the inputs remain authoritative; at or
// after step 3 the output is present and checksum-valid, so the inputs
// are superseded and Open deletes any that survive. Either way exactly
// one copy of every entry is served.

// compactManifestName is the superseded-segment manifest: a JSON file
// listing compactions that have been declared (step 2) but whose
// cleanup (steps 3-5) may not have finished.
const compactManifestName = "COMPACT"

// compactRecord declares one compaction: Output supersedes Inputs the
// moment Output exists and parses.
type compactRecord struct {
	Output string   `json:"output"`
	Inputs []string `json:"inputs"`
}

// compactManifest is the on-disk COMPACT content.
type compactManifest struct {
	Pending []compactRecord `json:"pending,omitempty"`
}

func readCompactManifest(dir string) (compactManifest, error) {
	var m compactManifest
	data, err := os.ReadFile(filepath.Join(dir, compactManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("store: bad compact manifest: %w", err)
	}
	return m, nil
}

func writeCompactManifest(dir string, m compactManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return AtomicWriteFile(filepath.Join(dir, compactManifestName), append(data, '\n'))
}

// Maintenance telemetry.
var (
	mCompactions      = obs.Default.Counter("store_compactions_total")
	mCompactSegsIn    = obs.Default.Counter("store_compact_segments_in_total")
	mCompactEntries   = obs.Default.Counter("store_compact_entries_total")
	mRetentionSegs    = obs.Default.Counter("store_retention_segments_total")
	mRetentionEntries = obs.Default.Counter("store_retention_entries_total")
)

// CompactStats accounts one Compact call.
type CompactStats struct {
	// Compactions is how many merges ran (each replaces a run of input
	// segments with one output segment).
	Compactions int `json:"compactions"`
	// SegmentsIn is the total input segments consumed across all merges.
	SegmentsIn int `json:"segments_in"`
	// EntriesMerged is the total entries rewritten.
	EntriesMerged int `json:"entries_merged"`
}

// RetentionStats accounts one ApplyRetention call.
type RetentionStats struct {
	SegmentsDropped int `json:"segments_dropped"`
	EntriesDropped  int `json:"entries_dropped"`
}

// Compact merges runs of adjacent small segments until no run of two or
// more adjacent segments fits within the compaction target
// (Options.CompactTarget entries). Queries keep flowing throughout:
// the merge reads immutable sealed segments under a read lock, and only
// the commit takes the write lock. Safe for concurrent use with every
// other store method; concurrent Compact/ApplyRetention calls serialize
// behind compactMu.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	sp := obs.Default.StartSpan("store_compact")
	defer sp.End()

	var st CompactStats
	for {
		merged, n, seq, err := s.compactOnce()
		if err != nil {
			return st, err
		}
		if !merged {
			return st, nil
		}
		st.Compactions++
		st.SegmentsIn += n.segments
		st.EntriesMerged += n.entries
		mCompactions.Add(1)
		mCompactSegsIn.Add(int64(n.segments))
		mCompactEntries.Add(int64(n.entries))
		// compactOnce released mu before returning; safe to notify. The
		// entry set is unchanged, but the fingerprint moved and derived
		// state keyed by layout must refresh.
		s.notify(Mutation{Kind: MutationCompact, Seq: seq})
	}
}

type mergeSize struct{ segments, entries int }

// pickCompactRun chooses the longest run of two or more adjacent
// segments whose combined entry count stays at or under target,
// scanning oldest-first so cold data coalesces before hot data. It
// returns the run's [start, end) indexes into segs, or ok=false.
func pickCompactRun(segs []*segment, target int) (start, end int, ok bool) {
	bestLen := 1
	for i := 0; i < len(segs); i++ {
		total := 0
		j := i
		for ; j < len(segs); j++ {
			if total+segs[j].count > target {
				break
			}
			total += segs[j].count
		}
		if j-i > bestLen {
			start, end, bestLen = i, j, j-i
		}
	}
	return start, end, bestLen > 1
}

// compactOnce performs one merge if a candidate run exists.
//
// The caller holds compactMu, which is what makes the optimistic
// read-merge-commit below sound: appends and seals can run concurrently
// (they only grow the inventory; sortSegments keeps newly sealed
// segments after the ones merged here, since seals are newer in both
// time and name), but nothing else can remove or replace the run's
// segments between the snapshot and the commit.
func (s *Store) compactOnce() (bool, mergeSize, uint64, error) {
	// Snapshot the run under a read lock; segments are immutable so the
	// merge itself needs no lock at all.
	s.mu.RLock()
	start, end, ok := pickCompactRun(s.segs, s.opts.compactTarget())
	var run []*segment
	if ok {
		run = append([]*segment(nil), s.segs[start:end]...)
		retainAll(run)
	}
	s.mu.RUnlock()
	if !ok {
		return false, mergeSize{}, 0, nil
	}
	// The snapshot reference keeps the run's mappings alive for the
	// merge read below even if something else could drop them; the
	// store's own references are released separately at commit.
	defer releaseAll(run)

	var merged []Entry
	inputs := make([]string, 0, len(run))
	for _, g := range run {
		ents, err := g.entries()
		if err != nil {
			return false, mergeSize{}, 0, fmt.Errorf("store: compact read %s: %w", g.name, err)
		}
		merged = append(merged, ents...)
		inputs = append(inputs, g.name)
	}
	sortEntries(merged)
	blob := buildSegment(s.sys, merged)

	s.mu.Lock()
	defer s.mu.Unlock()

	name := fmt.Sprintf(segPattern, s.nextSeg)
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"

	// 1. stage
	if err := writeFileSync(tmp, blob); err != nil {
		return false, mergeSize{}, 0, fmt.Errorf("store: compact stage %s: %w", name, err)
	}
	if err := s.crashPoint(crashCompactTmpWritten); err != nil {
		return false, mergeSize{}, 0, err
	}
	// 2. intend
	cm, err := readCompactManifest(s.dir)
	if err != nil {
		return false, mergeSize{}, 0, err
	}
	cm.Pending = append(cm.Pending, compactRecord{Output: name, Inputs: inputs})
	if err := writeCompactManifest(s.dir, cm); err != nil {
		return false, mergeSize{}, 0, err
	}
	if err := s.crashPoint(crashCompactManifestWritten); err != nil {
		return false, mergeSize{}, 0, err
	}
	// 3. commit
	if err := os.Rename(tmp, path); err != nil {
		return false, mergeSize{}, 0, err
	}
	if err := syncDir(s.dir); err != nil {
		return false, mergeSize{}, 0, err
	}
	if err := s.crashPoint(crashCompactOutputRenamed); err != nil {
		return false, mergeSize{}, 0, err
	}
	// 4. gc
	for _, in := range inputs {
		if err := os.Remove(filepath.Join(s.dir, in)); err != nil {
			return false, mergeSize{}, 0, err
		}
	}
	if err := syncDir(s.dir); err != nil {
		return false, mergeSize{}, 0, err
	}
	if err := s.crashPoint(crashCompactInputsRemoved); err != nil {
		return false, mergeSize{}, 0, err
	}
	// 5. clear
	if err := writeCompactManifest(s.dir, compactManifest{}); err != nil {
		return false, mergeSize{}, 0, err
	}

	g, err := openSegmentFile(path)
	if err != nil {
		return false, mergeSize{}, 0, fmt.Errorf("store: compact %s: self-check failed: %w", name, err)
	}
	// Replace the run in place. Concurrent seals may have appended new
	// segments since the snapshot; the run's indexes are still valid
	// because sortSegments keeps order stable and newer segments sort
	// after (the run's segments themselves are unchanged — compactMu
	// guarantees that). Locate the run by identity to be robust anyway.
	keep := s.segs[:0]
	inRun := make(map[*segment]bool, len(run))
	for _, g := range run {
		inRun[g] = true
	}
	for _, old := range s.segs {
		if !inRun[old] {
			keep = append(keep, old)
		}
	}
	s.segs = append(keep, g)
	sortSegments(s.segs)
	// Drop the inventory's references to the superseded inputs. Their
	// files are already unlinked; the mappings stay valid until every
	// in-flight scan that snapshotted them releases its own reference.
	releaseAll(run)
	s.nextSeg++
	// nextSeg advanced, so the wal's epoch header is stale; refresh it
	// (also re-covers the tail, unchanged by compaction).
	if err := s.rewriteWalLocked(); err != nil {
		return false, mergeSize{}, 0, err
	}
	s.publishSizes()
	return true, mergeSize{segments: len(run), entries: len(merged)}, s.mutSeq.Add(1), nil
}

// ApplyRetention drops every sealed segment whose newest record is
// older than horizon. The tail is never trimmed (it is still in
// flight). Whole-segment granularity keeps the operation O(dropped): no
// rewrite, just unlink — a segment straddling the horizon survives
// until all of it has aged out.
func (s *Store) ApplyRetention(horizon time.Time) (RetentionStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	st, seq, err := s.applyRetentionLocked(horizon)
	if err == nil && st.SegmentsDropped > 0 {
		// mu is released; notify (still under compactMu, see notify).
		// Retention genuinely shrinks the entry set — incremental views
		// must rebuild from a scan.
		s.notify(Mutation{Kind: MutationRetention, Seq: seq})
	}
	return st, err
}

func (s *Store) applyRetentionLocked(horizon time.Time) (RetentionStats, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var st RetentionStats
	h := horizon.UnixNano()
	keep := s.segs[:0]
	var dropped []*segment
	for _, g := range s.segs {
		if g.maxNanos >= h {
			keep = append(keep, g)
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, g.name)); err != nil {
			return st, 0, err
		}
		dropped = append(dropped, g)
		st.SegmentsDropped++
		st.EntriesDropped += g.count
	}
	if st.SegmentsDropped == 0 {
		return st, 0, nil
	}
	s.segs = keep
	// As with compaction gc: the files are unlinked, the mappings live
	// until the last in-flight scan holding a snapshot reference ends.
	releaseAll(dropped)
	if err := syncDir(s.dir); err != nil {
		return st, 0, err
	}
	mRetentionSegs.Add(int64(st.SegmentsDropped))
	mRetentionEntries.Add(int64(st.EntriesDropped))
	s.publishSizes()
	return st, s.mutSeq.Add(1), nil
}

// retentionHorizon computes the data-relative horizon: the newest
// stored record's time minus Options.Retention. Log time, not wall
// time — the paper's data is from 2004-2005, and a wall-clock horizon
// would empty every historical store on open. Returns ok=false when
// retention is off or the store is empty.
func (s *Store) retentionHorizon() (time.Time, bool) {
	if s.opts.Retention <= 0 {
		return time.Time{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var newest int64
	for _, g := range s.segs {
		if g.maxNanos > newest {
			newest = g.maxNanos
		}
	}
	for _, en := range s.tail {
		if n := en.Record.Time.UnixNano(); n > newest {
			newest = n
		}
	}
	if newest == 0 {
		return time.Time{}, false
	}
	return unixNano(newest).Add(-s.opts.Retention), true
}

// Maintain runs one retention pass (when configured) and one full
// compaction pass — the unit of work the background loop and the
// `logstudy compact` subcommand share.
func (s *Store) Maintain() (CompactStats, RetentionStats, error) {
	var rst RetentionStats
	if horizon, ok := s.retentionHorizon(); ok {
		var err error
		if rst, err = s.ApplyRetention(horizon); err != nil {
			return CompactStats{}, rst, err
		}
	}
	cst, err := s.Compact()
	return cst, rst, err
}

// startBackground launches the maintenance loop when CompactEvery asks
// for one; called once from Open.
func (s *Store) startBackground() {
	if s.opts.CompactEvery <= 0 {
		return
	}
	s.bgStop = make(chan struct{})
	s.bgDone = make(chan struct{})
	go func() {
		defer close(s.bgDone)
		t := time.NewTicker(s.opts.CompactEvery)
		defer t.Stop()
		for {
			select {
			case <-s.bgStop:
				return
			case <-t.C:
				// Best-effort: a maintenance failure (e.g. disk full)
				// must not kill the serving path; the next tick retries.
				s.Maintain()
			}
		}
	}()
}

// stopBackground stops the maintenance loop and waits for it to exit;
// safe to call when none is running.
func (s *Store) stopBackground() {
	if s.bgStop == nil {
		return
	}
	close(s.bgStop)
	<-s.bgDone
	s.bgStop, s.bgDone = nil, nil
}
