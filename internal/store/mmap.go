package store

import (
	"os"
	"path/filepath"
	"sync/atomic"

	"whatsupersay/internal/obs"
)

// Sealed-segment bytes are memory-mapped, not read eagerly: opening a
// store touches no record data, repeated scans hit the page cache
// instead of re-allocated heap blobs, and cold segments cost address
// space rather than RSS. The mapping's lifetime is refcounted:
//
//   - the store holds one reference per segment in its inventory,
//     released when compaction supersedes the segment, retention drops
//     it, or the store closes;
//   - every scan retains the segments it snapshots before dropping the
//     store lock and releases them when it finishes, so maintenance can
//     remove a segment from the inventory (and unlink its file — POSIX
//     keeps a mapping valid after unlink) while a scan is mid-segment,
//     and the unmap happens only after the last reader is done.
//
// Platforms without mmap (see mmap_other.go) fall back to an eager
// read; the refcounting machinery is then inert but harmless.

// Mapping telemetry plus a test hook: unmapCount lets the lifetime
// tests assert "unmapped exactly when the last reference dropped"
// without racing the obs registry shared by other tests.
var (
	gMappedSegments = obs.Default.Gauge("store_mapped_segments")
	unmapCount      atomic.Int64
)

// blobRef is the refcounted owner of one segment's backing bytes.
type blobRef struct {
	data   []byte
	unmap  func([]byte) error
	mapped bool
	refs   atomic.Int32
}

// newBlobRef wraps data with an initial reference count of one (the
// inventory's reference). unmap is nil for heap-backed blobs.
func newBlobRef(data []byte, unmap func([]byte) error) *blobRef {
	r := &blobRef{data: data, unmap: unmap, mapped: unmap != nil}
	r.refs.Store(1)
	if r.mapped {
		gMappedSegments.Add(1)
	}
	return r
}

func (r *blobRef) retain() { r.refs.Add(1) }

// release drops one reference; the last release unmaps. Calling release
// more times than retain+1 is a bug (the count would go negative and
// the mapping would have been freed under a holder).
func (r *blobRef) release() {
	if r.refs.Add(-1) != 0 {
		return
	}
	if r.mapped {
		gMappedSegments.Add(-1)
		unmapCount.Add(1)
		r.unmap(r.data)
	}
	r.data = nil
}

// retain/release on a segment forward to its blob's refcount; segments
// parsed from heap bytes (tests, fallback platforms) have no ref and
// these are no-ops.
func (g *segment) retain() {
	if g.ref != nil {
		g.ref.retain()
	}
}

func (g *segment) release() {
	if g.ref != nil {
		g.ref.release()
	}
}

// retainAll / releaseAll bracket a scan's segment snapshot.
func retainAll(segs []*segment) {
	for _, g := range segs {
		g.retain()
	}
}

func releaseAll(segs []*segment) {
	for _, g := range segs {
		g.release()
	}
}

// openBlob maps (or, without mmap, reads) path and hands ownership to a
// fresh blobRef.
func openBlob(path string) (*blobRef, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		// The mmap syscall itself can fail on exotic filesystems even
		// where the file is readable; degrade to an eager read rather
		// than refusing to serve the segment.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, err
		}
		return newBlobRef(data, nil), nil
	}
	return newBlobRef(data, unmap), nil
}

// openSegmentFile maps path and parses it as a segment, releasing the
// mapping if the bytes do not validate. It is the seal and compaction
// self-check path; Open inlines the same steps because it needs to
// distinguish I/O failures (fatal) from validation failures
// (quarantine).
func openSegmentFile(path string) (*segment, error) {
	ref, err := openBlob(path)
	if err != nil {
		return nil, err
	}
	g, err := parseSegment(filepath.Base(path), ref.data)
	if err != nil {
		ref.release()
		return nil, err
	}
	g.ref = ref
	return g, nil
}
