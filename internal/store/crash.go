package store

import "sync/atomic"

// Crash points let the fault-injection tests kill a store mid-protocol
// with byte-exact precision: production code calls crashPoint at every
// named window between durability steps, and a test installs a hook
// that returns an error at the window under test. The code paths treat
// that error exactly like a process death — no cleanup, no compensating
// writes — so the directory the test then reopens is the directory a
// real kill at that instant would have left behind.
//
// The hook receives the store directory as well as the window name so
// multi-store tests (the shard cluster's per-shard kill tests) can
// target one store while its siblings keep running. It is stored behind
// an atomic pointer because those tests install and clear it while
// other stores' goroutines may be mid-operation; production cost is one
// atomic load per window.

// crashHook, when non-nil, is consulted at every crash point. Returning
// a non-nil error simulates a kill at that window.
var crashHook atomic.Pointer[func(dir, point string) error]

// SetCrashHook installs (or, with nil, clears) the crash-window hook.
// Test-only seam: it exists so tests outside this package — the shard
// cluster's per-shard kill tests — can reuse the crash-point machinery.
// Production code never calls it.
func SetCrashHook(h func(dir, point string) error) {
	if h == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&h)
}

// Crash point names, one per window between durability steps. The
// comments give the on-disk state a kill at that window leaves.
const (
	// crashSealBeforeSegment: wal complete, segment absent.
	crashSealBeforeSegment = "seal.before-segment"
	// crashSealSegmentRenamed: segment durable, wal still holds the
	// sealed batch (the dup window recovery must subtract).
	crashSealSegmentRenamed = "seal.segment-renamed"
	// crashWalTmpWritten: wal.log.tmp durable, wal.log still the old
	// contents (the window the old truncate-then-write code lost data
	// in; now it loses nothing either way).
	crashWalTmpWritten = "wal.tmp-written"
	// crashWalRenamed: the new wal is in place; steady state.
	crashWalRenamed = "wal.renamed"
	// crashCompactTmpWritten: merged segment staged as *.seg.tmp only.
	crashCompactTmpWritten = "compact.tmp-written"
	// crashCompactManifestWritten: COMPACT names the output, but the
	// output file itself has not been renamed into place.
	crashCompactManifestWritten = "compact.manifest-written"
	// crashCompactOutputRenamed: output and inputs both present, the
	// window where recovery must drop the superseded inputs.
	crashCompactOutputRenamed = "compact.output-renamed"
	// crashCompactInputsRemoved: inputs unlinked, manifest record still
	// pending.
	crashCompactInputsRemoved = "compact.inputs-removed"
)

// CrashPoints lists every named crash window, for tests that sweep them.
func CrashPoints() []string {
	return []string{
		crashSealBeforeSegment, crashSealSegmentRenamed,
		crashWalTmpWritten, crashWalRenamed,
		crashCompactTmpWritten, crashCompactManifestWritten,
		crashCompactOutputRenamed, crashCompactInputsRemoved,
	}
}

// crashPoint simulates a kill at the named window when the test hook
// asks for one; in production it is an atomic load and a nil check.
func (s *Store) crashPoint(name string) error {
	h := crashHook.Load()
	if h == nil {
		return nil
	}
	return (*h)(s.dir, name)
}
