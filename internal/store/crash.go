package store

// Crash points let the fault-injection tests kill a store mid-protocol
// with byte-exact precision: production code calls crashPoint at every
// named window between durability steps, and a test installs a hook
// that returns an error at the window under test. The code paths treat
// that error exactly like a process death — no cleanup, no compensating
// writes — so the directory the test then reopens is the directory a
// real kill at that instant would have left behind.
//
// The hook is package-private on purpose: it exists only for the crash
// tests in this package, costs one nil check per window in production,
// and can never be reached from outside internal/store.

// crashHook, when non-nil, is consulted at every crash point. Returning
// a non-nil error simulates a kill at that window.
var crashHook func(point string) error

// Crash point names, one per window between durability steps. The
// comments give the on-disk state a kill at that window leaves.
const (
	// crashSealBeforeSegment: wal complete, segment absent.
	crashSealBeforeSegment = "seal.before-segment"
	// crashSealSegmentRenamed: segment durable, wal still holds the
	// sealed batch (the dup window recovery must subtract).
	crashSealSegmentRenamed = "seal.segment-renamed"
	// crashWalTmpWritten: wal.log.tmp durable, wal.log still the old
	// contents (the window the old truncate-then-write code lost data
	// in; now it loses nothing either way).
	crashWalTmpWritten = "wal.tmp-written"
	// crashWalRenamed: the new wal is in place; steady state.
	crashWalRenamed = "wal.renamed"
	// crashCompactTmpWritten: merged segment staged as *.seg.tmp only.
	crashCompactTmpWritten = "compact.tmp-written"
	// crashCompactManifestWritten: COMPACT names the output, but the
	// output file itself has not been renamed into place.
	crashCompactManifestWritten = "compact.manifest-written"
	// crashCompactOutputRenamed: output and inputs both present, the
	// window where recovery must drop the superseded inputs.
	crashCompactOutputRenamed = "compact.output-renamed"
	// crashCompactInputsRemoved: inputs unlinked, manifest record still
	// pending.
	crashCompactInputsRemoved = "compact.inputs-removed"
)

// crashPoint simulates a kill at the named window when the test hook
// asks for one; in production it is a nil check.
func crashPoint(name string) error {
	if crashHook == nil {
		return nil
	}
	return crashHook(name)
}
