package store

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

// Mapping-lifetime tests: maintenance (compaction, retention) must
// never unmap a segment while a scan holds it, and must unmap it once
// the last reader lets go. They run under -race via verify-race, which
// is where a refcount mistake would surface as a use-after-unmap read
// of g.blob. On platforms without mmap the unmap counter never moves
// and the tests reduce to the blocking-scan correctness checks.

// blockingScan starts a Scan whose first emit parks until release is
// closed, then counts the rest. The returned channels report entry to
// the parked state and the final (count, error).
func blockingScan(s *Store, release <-chan struct{}) (entered <-chan struct{}, done <-chan int) {
	ent := make(chan struct{})
	res := make(chan int, 1)
	go func() {
		n := 0
		_, err := s.Scan(Filter{}, func(Entry) error {
			if n == 0 {
				close(ent)
				<-release
			}
			n++
			return nil
		})
		if err != nil {
			n = -1
		}
		res <- n
	}()
	return ent, res
}

// TestCompactionDefersUnmapToLastReader: a scan snapshots the
// pre-compaction segments; compaction supersedes them, removes them
// from the inventory, and unlinks their files — but the unmap must wait
// for the scan to finish, and the scan must read every entry intact
// from the superseded mappings.
func TestCompactionDefersUnmapToLastReader(t *testing.T) {
	entries := makeEntries(t, 600, 11)
	s, err := Create(t.TempDir(), logrec.Thunderbird, Options{FlushEvery: 100, CompactTarget: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	segsBefore := len(s.Segments())
	if segsBefore < 2 {
		t.Fatalf("need several segments, have %d", segsBefore)
	}

	release := make(chan struct{})
	entered, done := blockingScan(s, release)
	<-entered

	before := unmapCount.Load()
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsIn != segsBefore {
		t.Fatalf("compaction consumed %d segments, want %d", cs.SegmentsIn, segsBefore)
	}
	if d := unmapCount.Load() - before; d != 0 {
		t.Fatalf("%d segments unmapped while a scan held them", d)
	}

	close(release)
	if n := <-done; n != len(entries) {
		t.Fatalf("scan under compaction saw %d entries, want %d", n, len(entries))
	}
	// The scan's release was the last reference to each superseded
	// segment; every one of their mappings must now be gone.
	if mmapSupported {
		if d := unmapCount.Load() - before; d != int64(segsBefore) {
			t.Fatalf("unmapped %d segments after scan release, want %d", d, segsBefore)
		}
	}
}

// TestRetentionDefersUnmapToLastReader is the same contract for
// retention drops: the horizon removes every sealed segment from the
// inventory, the in-flight scan still completes over the dropped
// mappings, and the unmaps land only on its release.
func TestRetentionDefersUnmapToLastReader(t *testing.T) {
	entries := makeEntries(t, 400, 12)
	s, err := Create(t.TempDir(), logrec.Thunderbird, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	segsBefore := len(s.Segments())

	release := make(chan struct{})
	entered, done := blockingScan(s, release)
	<-entered

	before := unmapCount.Load()
	horizon := entries[len(entries)-1].Record.Time.Add(time.Hour)
	rs, err := s.ApplyRetention(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SegmentsDropped != segsBefore {
		t.Fatalf("retention dropped %d segments, want %d", rs.SegmentsDropped, segsBefore)
	}
	if d := unmapCount.Load() - before; d != 0 {
		t.Fatalf("%d segments unmapped while a scan held them", d)
	}

	close(release)
	if n := <-done; n != len(entries) {
		t.Fatalf("scan under retention saw %d entries, want %d", n, len(entries))
	}
	if mmapSupported {
		if d := unmapCount.Load() - before; d != int64(segsBefore) {
			t.Fatalf("unmapped %d segments after scan release, want %d", d, segsBefore)
		}
	}
}

// TestCloseUnmapsInventory: closing the store (which seals the tail)
// drops every inventory reference and unmaps every sealed segment.
func TestCloseUnmapsInventory(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	entries := makeEntries(t, 300, 13)
	s, err := Create(t.TempDir(), logrec.Thunderbird, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	segs := len(s.Segments())
	before := unmapCount.Load()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := unmapCount.Load() - before; d != int64(segs) {
		t.Fatalf("close unmapped %d segments, want %d", d, segs)
	}
}

// countingVisitor tallies a ScanColumns pass.
type countingVisitor struct {
	sealedMatched int
	sealedKept    int
	tail          int
}

func (v *countingVisitor) SealedColumns(sc *SegmentColumns) error {
	v.sealedMatched += sc.Matched
	v.sealedKept += sc.Kept
	if len(sc.Times) != sc.Matched {
		return errors.New("times length diverges from matched count")
	}
	return nil
}

func (v *countingVisitor) TailEntry(Entry) error {
	v.tail++
	return nil
}

// TestScanColumnsStatsMatchScan: the columnar walk reports the exact
// ScanStats the row scan does — same pruning, same records scanned,
// same matches — for a spread of filters, over segments plus a tail.
func TestScanColumnsStatsMatchScan(t *testing.T) {
	entries := makeEntries(t, 500, 14)
	s, err := Create(t.TempDir(), logrec.Thunderbird, Options{FlushEvery: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if s.TailLen() == 0 {
		t.Fatal("fixture needs a wal tail")
	}

	kept := true
	mid := entries[250].Record.Time
	for i, f := range []Filter{
		{},
		{Categories: []string{"ECC"}},
		{Sources: []string{"sn373", "cn12"}},
		{Severities: []logrec.Severity{logrec.SevFatal}},
		{Kept: &kept},
		{From: mid},
		{To: mid},
		{Categories: []string{"GM_PAR"}, From: mid, Kept: &kept},
	} {
		rowStats, err := s.Scan(f, func(Entry) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		var v countingVisitor
		colStats, err := s.ScanColumns(f, &v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rowStats, colStats) {
			t.Errorf("filter %d: stats diverged\ncolumnar: %+v\nrow:      %+v", i, colStats, rowStats)
		}
		if v.sealedMatched+v.tail != rowStats.Matched {
			t.Errorf("filter %d: visitor saw %d+%d matches, scan matched %d",
				i, v.sealedMatched, v.tail, rowStats.Matched)
		}
	}
}

// TestScanColumnsRejectsBodyFilter: the planner contract at the store
// layer — a body predicate is not index-answerable and the columnar
// scan must refuse it rather than silently ignore it.
func TestScanColumnsRejectsBodyFilter(t *testing.T) {
	s, err := Create(t.TempDir(), logrec.Thunderbird, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var v countingVisitor
	if _, err := s.ScanColumns(Filter{BodyContains: "x"}, &v); !errors.Is(err, ErrNotIndexAnswerable) {
		t.Fatalf("ScanColumns(body filter) = %v, want ErrNotIndexAnswerable", err)
	}
}
