package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

// makeEntries builds a deterministic synthetic entry stream: n entries
// over a few hours, a handful of sources/categories/severities, ~40%
// kept, already in canonical order.
func makeEntries(t *testing.T, n int, seed int64) []Entry {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	sources := []string{"sn373", "admin1", "cn12", "cn13", "sm0"}
	cats := []string{"ECC", "KERNDTLB", "PBS_CON", "GM_PAR"}
	sevs := []logrec.Severity{logrec.SeverityUnknown, logrec.SevErr, logrec.SevFatal}
	out := make([]Entry, 0, n)
	cur := base
	for i := 0; i < n; i++ {
		cur = cur.Add(time.Duration(rng.Intn(30)) * time.Second)
		out = append(out, Entry{
			Record: logrec.Record{
				Seq:      uint64(i),
				Time:     cur,
				System:   logrec.Thunderbird,
				Source:   sources[rng.Intn(len(sources))],
				Severity: sevs[rng.Intn(len(sevs))],
				Program:  "kernel",
				Body:     fmt.Sprintf("synthetic body %d %08x", i, rng.Uint32()),
			},
			Category: cats[rng.Intn(len(cats))],
			Kept:     rng.Float64() < 0.4,
		})
	}
	return out
}

// collect scans the store with f and returns the matches in canonical
// order (the engine's contract, replicated here for direct store tests).
func collect(t *testing.T, s *Store, f Filter) []Entry {
	t.Helper()
	var got []Entry
	if _, err := s.Scan(f, func(en Entry) error {
		got = append(got, en)
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	sortEntries(got)
	return got
}

// linearFilter is the reference implementation Scan must agree with.
func linearFilter(entries []Entry, f Filter) []Entry {
	var out []Entry
	for _, en := range entries {
		if f.match(en) {
			out = append(out, en)
		}
	}
	return out
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 1000, 1)
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	// 1000 entries at FlushEvery=300 → 3 sealed segments + 100 in the tail.
	if got := len(st.Segments()); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	if got := st.TailLen(); got != 100 {
		t.Fatalf("tail = %d, want 100", got)
	}
	if got := collect(t, st, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("pre-close scan mismatch: got %d entries", len(got))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.Segments != 4 || rep.TailEntries != 0 || len(rep.CorruptSegments) != 0 {
		t.Fatalf("open report = %+v", rep)
	}
	if st2.System() != logrec.Thunderbird {
		t.Fatalf("system = %v", st2.System())
	}
	if got := collect(t, st2, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("post-reopen scan mismatch: got %d entries, want %d", len(got), len(entries))
	}
}

// entriesNoRaw strips the fields the store intentionally does not
// persist (Record.Raw) so DeepEqual compares what the store promises.
func entriesNoRaw(entries []Entry) []Entry {
	out := make([]Entry, len(entries))
	for i, en := range entries {
		en.Record.Raw = ""
		out[i] = en
	}
	return out
}

func TestScanMatchesLinearReference(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 2000, 7)
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	ref := entriesNoRaw(entries)
	mid := entries[len(entries)/2].Record.Time
	late := entries[3*len(entries)/4].Record.Time
	kept, notKept := true, false
	filters := []Filter{
		{},
		{From: mid},
		{To: mid},
		{From: mid, To: late},
		{Categories: []string{"ECC"}},
		{Categories: []string{"ECC", "GM_PAR"}},
		{Sources: []string{"sn373"}},
		{Sources: []string{"sn373", "cn12"}, Categories: []string{"PBS_CON"}},
		{Severities: []logrec.Severity{logrec.SevFatal}},
		{Kept: &kept},
		{Kept: &notKept, Categories: []string{"KERNDTLB"}, From: mid},
		{Sources: []string{"no-such-node"}},
		{Categories: []string{"ECC"}, Severities: []logrec.Severity{logrec.SevErr, logrec.SeverityUnknown}, From: mid, To: late},
	}
	for i, f := range filters {
		want := linearFilter(ref, f)
		got := collect(t, st, f)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("filter %d: got %d entries, want %d", i, len(got), len(want))
		}
	}
}

func TestScanStatsPruning(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 900, 3)
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	// A window entirely before the log prunes every segment.
	stt, err := st.Scan(Filter{To: entries[0].Record.Time}, func(Entry) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stt.SegmentsPruned != stt.Segments || stt.SegmentsScanned != 0 {
		t.Errorf("want all %d segments pruned, got %+v", stt.Segments, stt)
	}
	// A narrow window in the last segment prunes the earlier ones.
	last := entries[len(entries)-1].Record.Time
	stt, err = st.Scan(Filter{From: last}, func(Entry) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stt.SegmentsScanned != 1 || stt.SegmentsPruned != 2 {
		t.Errorf("want 1 scanned / 2 pruned, got %+v", stt)
	}
	// A predicate scan decodes only the blocks holding candidates.
	stt, err = st.Scan(Filter{Sources: []string{"sm0"}}, func(Entry) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stt.Matched == 0 || stt.RecordsScanned >= len(entries) {
		t.Errorf("postings scan should skip blocks: %+v", stt)
	}
}

func TestTailSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 120, 5)
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: drop the store without Close, so nothing sealed.
	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep.Segments != 0 || rep.TailEntries != len(entries) || rep.TailDroppedBytes != 0 {
		t.Fatalf("open report = %+v", rep)
	}
	if got := collect(t, st2, Filter{}); !reflect.DeepEqual(got, entriesNoRaw(entries)) {
		t.Fatalf("tail recovery mismatch: got %d entries", len(got))
	}
}

func TestCreateRefusesOtherSystem(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, logrec.Spirit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, logrec.Liberty, Options{}); err == nil {
		t.Fatal("creating a liberty store over a spirit store must fail")
	}
	// Same system reopens.
	st2, err := Create(dir, logrec.Spirit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

func TestOpenWithoutManifestFails(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("open of a non-store directory must fail")
	}
}

func TestSealIsAtomicOnDisk(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 100, 9)
	st, err := Create(dir, logrec.Thunderbird, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 sealed segment, got %v", segs)
	}
}

func TestPostingsCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		var ords []uint32
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				ords = append(ords, uint32(i))
			}
		}
		var e enc
		appendPostings(&e, ords, n)
		d := &dec{b: e.b}
		got := decodePostings(d)
		if d.err != nil {
			t.Fatalf("trial %d: decode error %v", trial, d.err)
		}
		if len(got) == 0 && len(ords) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ords) {
			t.Fatalf("trial %d: postings round-trip mismatch", trial)
		}
	}
}
