package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"whatsupersay/internal/logrec"
)

// The write-ahead tail: entries appended since the last seal live in
// wal.log as self-delimiting, self-checking frames
//
//	length u32 | crc32(payload) u32 | payload
//
// so replay on open can stop exactly at the first torn or damaged byte.
// A crash (or a fault-injected tear/garble) loses at most the frames at
// and after the damage point — never a sealed segment, and never a
// frame whose checksum does not verify.
//
// Frame zero is always a header frame ("WALH" + the store's seal epoch,
// the nextSeg value at the instant the wal was last rewritten). The
// epoch is what makes seal crash-recovery exact: a seal commits its
// segment first and rewrites the wal second, so a kill between the two
// leaves a wal whose epoch trails the segment inventory — the signal
// that the wal still carries frames for entries the just-committed
// segment already holds, which Open then subtracts (see Open).

const (
	walFrameHdr = 8
	// walMaxFrame bounds a frame's claimed payload length; anything
	// larger is treated as damage rather than an allocation request.
	walMaxFrame = 1 << 24
	// walHeaderMagic opens the mandatory first frame of every wal.
	walHeaderMagic = "WALH"
)

// appendWalHeader encodes the mandatory header frame that opens every
// wal: the seal epoch, CRC-framed like any other frame so a torn or
// garbled header reads as damage, never as a bogus epoch.
func appendWalHeader(b []byte, epoch int) []byte {
	var p enc
	p.b = append(p.b, walHeaderMagic...)
	p.uvarint(uint64(epoch))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.b)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(p.b))
	return append(b, p.b...)
}

// appendWalFrame encodes one entry as a wal frame onto b. The payload
// is self-contained (absolute timestamp, full strings): wal entries
// predate the dictionaries a seal would build.
func appendWalFrame(b []byte, en Entry) []byte {
	var p enc
	p.uvarint(en.Record.Seq)
	p.varint(en.Record.Time.UnixNano())
	p.str(en.Record.Source)
	p.str(en.Category)
	p.str(en.Record.Program)
	p.str(en.Record.Facility)
	p.str(en.Record.Body)
	p.uvarint(uint64(en.Record.Severity))
	var flags byte
	if en.Kept {
		flags |= entryFlagKept
	}
	if en.Record.Corrupted {
		flags |= entryFlagCorrupted
	}
	p.byte(flags)

	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.b)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(p.b))
	return append(b, p.b...)
}

// decodeWalEntry decodes one frame payload.
func decodeWalEntry(p []byte, sys logrec.System) (Entry, error) {
	d := &dec{b: p}
	var en Entry
	en.Record.Seq = d.uvarint()
	nanos := d.varint()
	en.Record.Source = d.str()
	en.Category = d.str()
	en.Record.Program = d.str()
	en.Record.Facility = d.str()
	en.Record.Body = d.str()
	en.Record.Severity = logrec.Severity(d.uvarint())
	flags := d.byte()
	if d.err != nil {
		return Entry{}, d.err
	}
	if d.off != len(p) {
		return Entry{}, fmt.Errorf("store: wal frame has %d trailing bytes", len(p)-d.off)
	}
	en.Record.Time = unixNano(nanos)
	en.Record.System = sys
	en.Record.Corrupted = flags&entryFlagCorrupted != 0
	en.Kept = flags&entryFlagKept != 0
	return en, nil
}

// replayWal decodes raw wal bytes into entries, stopping at the first
// frame that is torn (short) or fails its checksum. It returns the
// entries recovered, the seal epoch from the header frame (-1 when raw
// is empty or the header itself is damaged), the byte offset of the
// first damaged frame (== len(raw) for a clean tail), and a description
// of the damage when there is any.
func replayWal(raw []byte, sys logrec.System) (entries []Entry, epoch, good int, damage error) {
	epoch = -1
	off := 0
	for off < len(raw) {
		if len(raw)-off < walFrameHdr {
			return entries, epoch, off, fmt.Errorf("torn frame header (%d trailing bytes)", len(raw)-off)
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		sum := binary.LittleEndian.Uint32(raw[off+4:])
		if n > walMaxFrame || n > len(raw)-off-walFrameHdr {
			return entries, epoch, off, fmt.Errorf("torn frame at offset %d (claims %d bytes)", off, n)
		}
		payload := raw[off+walFrameHdr : off+walFrameHdr+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return entries, epoch, off, fmt.Errorf("frame checksum mismatch at offset %d", off)
		}
		if off == 0 {
			// Frame zero must be the header; a wal without one cannot be
			// trusted (its epoch, and so its dedup story, is unknown).
			if len(payload) < len(walHeaderMagic) || string(payload[:4]) != walHeaderMagic {
				return entries, epoch, off, fmt.Errorf("missing wal header frame")
			}
			d := &dec{b: payload, off: len(walHeaderMagic)}
			e := d.uvarint()
			if d.err != nil || d.off != len(payload) {
				return entries, epoch, off, fmt.Errorf("corrupt wal header frame")
			}
			epoch = int(e)
			off += walFrameHdr + n
			continue
		}
		en, err := decodeWalEntry(payload, sys)
		if err != nil {
			return entries, epoch, off, fmt.Errorf("frame at offset %d: %w", off, err)
		}
		entries = append(entries, en)
		off += walFrameHdr + n
	}
	return entries, epoch, off, nil
}
