package store

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/logrec"
)

// The crash-safety contract under test, using the chaos harness from
// PR 1: after torn writes or in-flight corruption, reopening the store
// (a) loses at most the unsealed tail at and after the damage point,
// (b) never serves a record whose enclosing checksum failed, and
// (c) reports exactly what it dropped.

// damageFile rewrites path through a fault-injected reader.
func damageFile(t *testing.T, path string, cfg faultinject.ReaderConfig) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged, err := io.ReadAll(cfg.Wrap(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildCrashedStore appends entries without ever sealing and abandons
// the store (no Close), leaving everything in the wal tail.
func buildCrashedStore(t *testing.T, dir string, entries []Entry) {
	t.Helper()
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
}

func TestWalTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 200, 21)
	buildCrashedStore(t, dir, entries)
	walPath := filepath.Join(dir, walName)

	// Tear the last 37 bytes off the wal — a writer that died mid-frame.
	damageFile(t, walPath, faultinject.ReaderConfig{Seed: 1, TearTailBytes: 37})
	torn, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}

	st, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rep.TailDroppedBytes == 0 || rep.TailDamage == "" {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	got := collect(t, st, Filter{})
	// At most the torn suffix is lost: what survives is an exact prefix.
	if len(got) >= len(entries) || len(got) == 0 {
		t.Fatalf("recovered %d of %d entries; want a proper nonempty prefix", len(got), len(entries))
	}
	if want := entriesNoRaw(entries)[:len(got)]; !reflect.DeepEqual(got, want) {
		t.Fatal("recovered tail is not a prefix of what was appended")
	}
	// The wal was physically truncated at the damage point.
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != torn.Size()-rep.TailDroppedBytes {
		t.Fatalf("wal size %d after truncation, want %d", after.Size(), torn.Size()-rep.TailDroppedBytes)
	}
}

func TestWalGarbledFrameDetectedByChecksum(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 300, 23)
	buildCrashedStore(t, dir, entries)
	walPath := filepath.Join(dir, walName)

	// Flip bytes mid-stream: the damaged frame's CRC fails, and replay
	// must stop there rather than deliver a garbled record.
	damageFile(t, walPath, faultinject.ReaderConfig{Seed: 3, GarbleProb: 0.0005})

	st, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := collect(t, st, Filter{})
	want := entriesNoRaw(entries)
	if len(got) == len(entries) {
		// The garble dice may have missed; force a hit for determinism's
		// sake would need a fixed offset — with seed 3 at this size it hits.
		t.Fatalf("expected garbling to damage the wal (seed drift?); recovered all %d", len(got))
	}
	if rep.TailDamage == "" || rep.TailDroppedBytes == 0 {
		t.Fatalf("damage not reported: %+v", rep)
	}
	if !reflect.DeepEqual(got, want[:len(got)]) {
		t.Fatal("a garbled record leaked past its checksum")
	}
}

func TestCorruptSegmentQuarantinedOnOpen(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 600, 25)
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}

	// Garble the middle segment's bytes in flight.
	damageFile(t, segs[1], faultinject.ReaderConfig{Seed: 5, GarbleProb: 0.001})

	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	name := filepath.Base(segs[1])
	if _, ok := rep.CorruptSegments[name]; !ok || rep.Segments != 2 {
		t.Fatalf("corrupt segment not reported: %+v", rep)
	}
	if _, err := os.Stat(segs[1] + ".corrupt"); err != nil {
		t.Fatalf("corrupt segment not quarantined: %v", err)
	}
	// Every served record comes from a checksum-verified segment: the
	// survivors are exactly the first and third seal batches.
	got := collect(t, st2, Filter{})
	want := append(append([]Entry(nil), entriesNoRaw(entries)[:200]...), entriesNoRaw(entries)[400:]...)
	sortEntries(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %d entries, want %d from the two intact segments", len(got), len(want))
	}
}

func TestTornSegmentWriteDetected(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 200, 27)
	st, err := Create(dir, logrec.Thunderbird, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}

	// Tear the footer off — the torn write rename-into-place protects
	// against, reproduced by force.
	damageFile(t, segs[0], faultinject.ReaderConfig{Seed: 7, TearTailBytes: 50})

	st2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rep.CorruptSegments) != 1 || rep.Segments != 0 {
		t.Fatalf("torn segment not dropped: %+v", rep)
	}
	if got := collect(t, st2, Filter{}); len(got) != 0 {
		t.Fatalf("served %d records from a torn segment", len(got))
	}
	// The store stays writable after quarantine: new appends seal into a
	// fresh segment number that does not collide.
	if err := st2.Append(entries[:10]...); err != nil {
		t.Fatal(err)
	}
	if err := st2.Seal(); err != nil {
		t.Fatal(err)
	}
	if n := st2.Len(); n != 10 {
		t.Fatalf("post-recovery store has %d entries, want 10", n)
	}
}
