package store

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"whatsupersay/internal/logrec"
)

// Byte-exact kill simulation: crashHook makes the production code
// return at a named window between durability steps without any
// cleanup, the test abandons the store (no Close), and reopening the
// directory must recover to exactly-once — every acknowledged entry
// present, none duplicated, regardless of which window the kill hit.

var errKill = errors.New("simulated kill")

// killAt installs a hook that simulates a kill at the named window and
// uninstalls it when the test ends (and before any reopen).
func killAt(t *testing.T, point string) {
	t.Helper()
	SetCrashHook(func(_, p string) error {
		if p == point {
			return errKill
		}
		return nil
	})
	t.Cleanup(func() { SetCrashHook(nil) })
}

// reopenAndCheck clears the hook, reopens dir, and asserts the full
// scan returns exactly want (each acknowledged entry once).
func reopenAndCheck(t *testing.T, dir string, want []Entry) *OpenReport {
	t.Helper()
	SetCrashHook(nil)
	st, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer st.Close()
	got := collect(t, st, Filter{})
	wantSorted := entriesNoRaw(want)
	sortEntries(wantSorted)
	if !reflect.DeepEqual(got, wantSorted) {
		t.Fatalf("exactly-once violated: recovered %d entries, want %d", len(got), len(wantSorted))
	}
	// Recovery must also leave a normalized directory: no temp files, no
	// pending compaction records.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp files left after recovery: %v", tmps)
	}
	if cm, err := readCompactManifest(dir); err != nil || len(cm.Pending) != 0 {
		t.Fatalf("compact manifest not cleared: %+v err %v", cm, err)
	}
	return rep
}

// sealKilledStore appends entries, then triggers a seal that dies at
// the point window. The hook is installed only for the seal itself:
// Create also rewrites the wal (normalizing a fresh store), and a kill
// there would fail setup, not the operation under test.
func sealKilledStore(t *testing.T, dir string, entries []Entry, point string) {
	t.Helper()
	st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(entries...); err != nil {
		t.Fatal(err)
	}
	killAt(t, point)
	if err := st.Seal(); !errors.Is(err, errKill) {
		t.Fatalf("seal survived the kill: %v", err)
	}
	// Abandoned: no Close, like a real process death.
}

func TestKillBeforeSegmentWrite(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 150, 51)
	sealKilledStore(t, dir, entries, crashSealBeforeSegment)
	rep := reopenAndCheck(t, dir, entries)
	// Nothing sealed; everything rides the wal.
	if rep.Segments != 0 || rep.TailEntries != len(entries) || rep.TailDedupedEntries != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestKillAfterSegmentRenamed covers the dup window: the segment is
// durable but the wal still carries the sealed batch. Recovery must
// subtract the wal copies rather than serve them twice.
func TestKillAfterSegmentRenamed(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 150, 53)
	sealKilledStore(t, dir, entries, crashSealSegmentRenamed)
	rep := reopenAndCheck(t, dir, entries)
	if rep.Segments != 1 || rep.TailEntries != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.TailDedupedEntries != len(entries) {
		t.Fatalf("TailDedupedEntries = %d, want %d (the whole sealed batch)", rep.TailDedupedEntries, len(entries))
	}
}

// TestKillAfterWalTmpWritten is the window the old truncate-then-write
// protocol lost acknowledged entries in: the replacement wal is staged
// but not yet renamed. Both wals exist; the old one is still live.
func TestKillAfterWalTmpWritten(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 150, 55)
	sealKilledStore(t, dir, entries, crashWalTmpWritten)
	rep := reopenAndCheck(t, dir, entries)
	// Segment committed; the stale wal's frames are subtracted, and the
	// staged wal.log.tmp is swept.
	if rep.Segments != 1 || rep.TailDedupedEntries != len(entries) || rep.TempFilesRemoved != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestKillAfterWalRenamed(t *testing.T) {
	dir := t.TempDir()
	entries := makeEntries(t, 150, 57)
	sealKilledStore(t, dir, entries, crashWalRenamed)
	rep := reopenAndCheck(t, dir, entries)
	// The rewrite completed before the kill: steady state, no repair.
	if rep.Segments != 1 || rep.TailEntries != 0 || rep.TailDedupedEntries != 0 || rep.TempFilesRemoved != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestKillDuringAppendSealWindows drives the same windows through
// Append's automatic seal (tail reaching FlushEvery), with a remainder
// left in the tail — the remainder must survive alongside the sealed
// prefix.
func TestKillDuringAppendSealWindows(t *testing.T) {
	for _, point := range []string{
		crashSealBeforeSegment,
		crashSealSegmentRenamed,
		crashWalTmpWritten,
		crashWalRenamed,
	} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			entries := makeEntries(t, 130, 59)
			st, err := Create(dir, logrec.Thunderbird, Options{FlushEvery: 100})
			if err != nil {
				t.Fatal(err)
			}
			killAt(t, point)
			// The 130-entry batch crosses FlushEvery, so Append seals 100
			// and dies at the window; 30 remain unsealed.
			if err := st.Append(entries...); !errors.Is(err, errKill) {
				t.Fatalf("append survived the kill: %v", err)
			}
			reopenAndCheck(t, dir, entries)
		})
	}
}

// compactKilledStore builds a sealed multi-segment store and triggers a
// compaction that dies at the point window (installed only once setup
// is done — seals also cross the wal crash points). Returns the number
// of segments the doomed merge consumed.
func compactKilledStore(t *testing.T, dir string, entries []Entry, point string) int {
	t.Helper()
	st := buildSealed(t, dir, entries, 100, 0)
	killAt(t, point)
	nIn, _, _ := func() (int, int, bool) {
		st.mu.RLock()
		defer st.mu.RUnlock()
		a, b, ok := pickCompactRun(st.segs, st.opts.compactTarget())
		return b - a, a, ok
	}()
	if nIn < 2 {
		t.Fatalf("no compactable run in fixture (%d)", nIn)
	}
	if _, err := st.Compact(); !errors.Is(err, errKill) {
		t.Fatalf("compact survived the kill: %v", err)
	}
	return nIn
}

func TestKillMidCompaction(t *testing.T) {
	cases := []struct {
		point string
		// wantSuperseded: the kill left committed-but-undeleted inputs
		// that recovery must remove (the never-double-serve half of the
		// contract); elsewhere the inputs are still authoritative (the
		// never-lose half).
		wantSuperseded bool
	}{
		{crashCompactTmpWritten, false},
		{crashCompactManifestWritten, false},
		{crashCompactOutputRenamed, true},
		{crashCompactInputsRemoved, false},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			entries := makeEntries(t, 800, 61)
			nIn := compactKilledStore(t, dir, entries, tc.point)
			rep := reopenAndCheck(t, dir, entries)
			if tc.wantSuperseded && rep.SupersededSegments != nIn {
				t.Fatalf("SupersededSegments = %d, want %d", rep.SupersededSegments, nIn)
			}
			if !tc.wantSuperseded && rep.SupersededSegments != 0 {
				t.Fatalf("SupersededSegments = %d, want 0", rep.SupersededSegments)
			}
		})
	}
}

// TestKillMidCompactionThenCompactAgain reopens after every kill window
// and finishes the job: the store must compact cleanly on the second
// attempt, ending in the same state an uninterrupted run reaches.
func TestKillMidCompactionThenCompactAgain(t *testing.T) {
	for _, point := range []string{
		crashCompactTmpWritten,
		crashCompactManifestWritten,
		crashCompactOutputRenamed,
		crashCompactInputsRemoved,
	} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			entries := makeEntries(t, 800, 63)
			compactKilledStore(t, dir, entries, point)
			SetCrashHook(nil)
			st, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if _, err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			got := collect(t, st, Filter{})
			want := entriesNoRaw(entries)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-recovery compaction broke the entry set: %d of %d", len(got), len(want))
			}
		})
	}
}
