package store

import (
	"whatsupersay/internal/tag"
)

// FromAlerts converts the batch pipeline's output — the tagged alert
// stream and its Algorithm 3.1 survivors — into store entries: one per
// raw alert, with Kept marking the survivors. Survivorship is matched
// by record sequence number, which is unique within a stream.
//
// This is the single conversion point both `build-store` and the serve
// ingest path go through, and the pivot of the differential guarantee:
// an aggregation over a store must equal the same aggregation over
// FromAlerts of the batch pipeline on the same records.
func FromAlerts(alerts, filtered []tag.Alert) []Entry {
	kept := make(map[uint64]bool, len(filtered))
	for _, a := range filtered {
		kept[a.Record.Seq] = true
	}
	out := make([]Entry, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, Entry{
			Record:   a.Record,
			Category: a.Category.Name,
			Kept:     kept[a.Record.Seq],
		})
	}
	return out
}
