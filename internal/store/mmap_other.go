//go:build !unix

package store

import "os"

const mmapSupported = false

// mmapFile on platforms without mmap reads the file eagerly; the blob
// is heap-backed and the unmap is a no-op (refcounting still runs, it
// just frees nothing — the garbage collector does).
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
