// Package store is an embedded, append-only, time-partitioned segment
// store for tagged and filtered alerts — the persistence tier under the
// query engine (internal/query) and the `logstudy serve` / `build-store`
// subcommands. A store is a directory:
//
//	MANIFEST            store identity (format version, system)
//	seg-00000000.seg    sealed, immutable, checksum-footed segments
//	seg-00000001.seg      (sorted records + dictionaries + posting sets
//	...                    + sparse time index; see segment.go)
//	wal.log             the unsealed tail, as CRC-framed appends
//
// Crash safety: segments are written to a temp file, fsynced, renamed
// into place, and the directory fsynced, so a sealed segment is either
// wholly present and checksum-valid or absent. The tail rides in the
// wal; on open, replay stops at the first torn or corrupt frame and the
// file is truncated there, so a crash (or a fault-injected tear) loses
// at most the damaged suffix of the unsealed tail — and a record is
// never served unless its enclosing checksum verified. Segments whose
// footer checksum fails are quarantined (renamed *.corrupt) and
// reported, never silently read around.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
)

// Store telemetry, on the process registry so `logstudy -http` exposes
// it alongside the pipeline stages.
var (
	mScanSegments = obs.Default.Counter("store_scan_segments_total")
	mScanRecords  = obs.Default.Counter("store_scan_records_total")
	mScanBytes    = obs.Default.Counter("store_scan_bytes_total")
	mSealEntries  = obs.Default.Counter("store_seal_entries_total")
	gSegments     = obs.Default.Gauge("store_segments")
	gTailEntries  = obs.Default.Gauge("store_tail_entries")
)

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
	segPattern   = "seg-%08d.seg"
)

// DefaultFlushEvery is the default segment size, in entries.
const DefaultFlushEvery = 50000

// Options tune a store.
type Options struct {
	// FlushEvery seals the tail into a segment once it holds this many
	// entries (default DefaultFlushEvery).
	FlushEvery int
	// SyncAppends fsyncs the wal after every Append batch. Off by
	// default: the durability unit is then the seal (always fsynced),
	// and an OS crash may lose the buffered tail — the same trade
	// syslog itself makes. Process crashes lose nothing either way.
	SyncAppends bool
}

func (o Options) flushEvery() int {
	if o.FlushEvery > 0 {
		return o.FlushEvery
	}
	return DefaultFlushEvery
}

// manifest is the store's on-disk identity.
type manifest struct {
	Version int    `json:"version"`
	System  string `json:"system"`
}

// OpenReport says what Open found and, after damage, what it dropped —
// the operator-facing accounting the fault model requires.
type OpenReport struct {
	// Segments and TailEntries are the healthy inventory.
	Segments    int
	TailEntries int
	// CorruptSegments lists segments that failed validation and were
	// quarantined as *.corrupt (name -> reason).
	CorruptSegments map[string]string
	// TailDroppedBytes is how much of the wal was truncated as torn or
	// corrupt; TailDamage describes the first bad frame when nonzero.
	TailDroppedBytes int64
	TailDamage       string
}

// Store is one open alert store. All methods are safe for concurrent
// use: appends and seals serialize behind a mutex, scans snapshot the
// immutable segment list and the tail and then run lock-free.
type Store struct {
	dir  string
	sys  logrec.System
	opts Options

	mu      sync.RWMutex
	segs    []*segment
	tail    []Entry
	wal     *os.File
	nextSeg int
}

// Create initializes a store directory for sys (creating it if needed)
// and opens it. Creating over an existing store of the same system
// reopens it for appending; a different system is an error.
func Create(dir string, sys logrec.System, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := readManifest(dir)
	switch {
	case err == nil:
		if m.System != sys.ShortName() {
			return nil, fmt.Errorf("store: %s already holds a %s store", dir, m.System)
		}
	case errors.Is(err, fs.ErrNotExist):
		if err := writeManifest(dir, manifest{Version: segVersion, System: sys.ShortName()}); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	st, _, err := Open(dir, opts)
	return st, err
}

// Open opens an existing store directory, validating every sealed
// segment's checksum and replaying (and, if damaged, truncating) the
// wal tail. The report says what was recovered and what was dropped.
func Open(dir string, opts Options) (*Store, *OpenReport, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	sys, err := logrec.ParseSystem(m.System)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, sys: sys, opts: opts}
	rep := &OpenReport{CorruptSegments: map[string]string{}}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	for _, path := range names {
		name := filepath.Base(path)
		var n int
		if _, err := fmt.Sscanf(name, segPattern, &n); err == nil && n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		g, err := parseSegment(name, blob)
		if err != nil {
			// Quarantine, never serve: keep the bytes for forensics but
			// move them out of the segment namespace.
			rep.CorruptSegments[name] = err.Error()
			if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
				return nil, nil, rerr
			}
			continue
		}
		s.segs = append(s.segs, g)
	}
	rep.Segments = len(s.segs)

	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	entries, good, damage := replayWal(raw, sys)
	if damage != nil {
		rep.TailDroppedBytes = int64(len(raw) - good)
		rep.TailDamage = damage.Error()
		if err := os.Truncate(walPath, int64(good)); err != nil {
			return nil, nil, err
		}
	}
	s.tail = entries
	rep.TailEntries = len(entries)

	s.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s.publishSizes()
	return s, rep, nil
}

// System returns the machine whose alerts the store holds.
func (s *Store) System() logrec.System { return s.sys }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the total entry count, sealed plus tail.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.tail)
	for _, g := range s.segs {
		n += g.count
	}
	return n
}

// Append durably logs entries to the wal and adds them to the tail,
// sealing a segment whenever the tail reaches FlushEvery entries. The
// entries' System field is normalized to the store's system.
func (s *Store) Append(entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var frames []byte
	for i := range entries {
		entries[i].Record.System = s.sys
		frames = appendWalFrame(frames, entries[i])
	}
	if _, err := s.wal.Write(frames); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if s.opts.SyncAppends {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	s.tail = append(s.tail, entries...)
	for len(s.tail) >= s.opts.flushEvery() {
		if err := s.sealLocked(s.opts.flushEvery()); err != nil {
			return err
		}
	}
	s.publishSizes()
	return nil
}

// Seal flushes the whole tail into a sealed segment (no-op when empty).
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealLocked(len(s.tail)); err != nil {
		return err
	}
	s.publishSizes()
	return nil
}

// sealLocked seals the first n tail entries: sort, encode, write to a
// temp file, fsync, rename into place, fsync the directory, then drop
// the sealed prefix and rewrite the wal to the remainder.
func (s *Store) sealLocked(n int) error {
	if n <= 0 || len(s.tail) == 0 {
		return nil
	}
	if n > len(s.tail) {
		n = len(s.tail)
	}
	sp := obs.Default.StartSpan("store_seal")
	defer sp.End()

	// Seal the n oldest entries by canonical order, keeping the rest.
	sortEntries(s.tail)
	batch, rest := s.tail[:n], s.tail[n:]
	blob := buildSegment(s.sys, batch)

	name := fmt.Sprintf(segPattern, s.nextSeg)
	path := filepath.Join(s.dir, name)
	if err := atomicWrite(path, blob); err != nil {
		return fmt.Errorf("store: seal %s: %w", name, err)
	}
	g, err := parseSegment(name, blob)
	if err != nil {
		// Can't happen for bytes we just built; treat as corruption bug.
		return fmt.Errorf("store: seal %s: self-check failed: %w", name, err)
	}
	s.segs = append(s.segs, g)
	s.nextSeg++
	mSealEntries.Add(int64(n))

	// The wal now only needs to cover the remainder.
	s.tail = append([]Entry(nil), rest...)
	return s.rewriteWalLocked()
}

// rewriteWalLocked replaces the wal's contents with frames for the
// current tail (typically empty right after a seal).
func (s *Store) rewriteWalLocked() error {
	var frames []byte
	for _, en := range s.tail {
		frames = appendWalFrame(frames, en)
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if len(frames) > 0 {
		if _, err := s.wal.Write(frames); err != nil {
			return err
		}
	}
	return s.wal.Sync()
}

// Close seals any remaining tail and closes the wal.
func (s *Store) Close() error {
	if err := s.Seal(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// Filter selects entries for Scan. Zero fields are unconstrained; the
// time window is [From, To).
type Filter struct {
	From, To   time.Time
	Sources    []string
	Categories []string
	Severities []logrec.Severity
	// Kept, when non-nil, selects only entries that survived (true) or
	// were removed by (false) Algorithm 3.1.
	Kept *bool
}

// matchUnindexed applies the predicates postings do not cover (the Kept
// flag) to a decoded entry. Time and the indexed dimensions are handled
// by the segment scan itself; the tail scan calls match instead.
func (f Filter) matchUnindexed(en Entry) bool {
	return f.Kept == nil || *f.Kept == en.Kept
}

// match applies every predicate to a decoded entry (the tail path,
// where nothing is indexed).
func (f Filter) match(en Entry) bool {
	t := en.Record.Time
	if !f.From.IsZero() && t.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !t.Before(f.To) {
		return false
	}
	if len(f.Sources) > 0 && !containsStr(f.Sources, en.Record.Source) {
		return false
	}
	if len(f.Categories) > 0 && !containsStr(f.Categories, en.Category) {
		return false
	}
	if len(f.Severities) > 0 && !containsSev(f.Severities, en.Record.Severity) {
		return false
	}
	return f.matchUnindexed(en)
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsSev(xs []logrec.Severity, x logrec.Severity) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ScanStats accounts one scan's work — the observability the query
// layer reports per request.
type ScanStats struct {
	Segments        int   `json:"segments"`
	SegmentsScanned int   `json:"segments_scanned"`
	SegmentsPruned  int   `json:"segments_pruned"`
	TailEntries     int   `json:"tail_entries"`
	RecordsScanned  int   `json:"records_scanned"`
	BytesScanned    int64 `json:"bytes_scanned"`
	Matched         int   `json:"matched"`
}

// Scan streams every entry matching f to fn: sealed segments first (in
// seal order, each internally time-sorted), then the unsealed tail.
// Callers needing global canonical order sort the collected results
// (the query engine does). fn returning an error aborts the scan.
func (s *Store) Scan(f Filter, fn func(Entry) error) (ScanStats, error) {
	sp := obs.Default.StartSpan("store_scan")
	defer sp.End()

	s.mu.RLock()
	segs := append([]*segment(nil), s.segs...)
	tail := append([]Entry(nil), s.tail...)
	s.mu.RUnlock()

	var st ScanStats
	st.Segments = len(segs)
	for _, g := range segs {
		if !f.From.IsZero() && g.maxNanos < f.From.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		if !f.To.IsZero() && g.minNanos >= f.To.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		st.SegmentsScanned++
		if err := g.scan(f, &st, fn); err != nil {
			return st, err
		}
	}
	st.TailEntries = len(tail)
	for _, en := range tail {
		st.RecordsScanned++
		if !f.match(en) {
			continue
		}
		st.Matched++
		if err := fn(en); err != nil {
			return st, err
		}
	}
	mScanSegments.Add(int64(st.SegmentsScanned))
	mScanRecords.Add(int64(st.RecordsScanned))
	mScanBytes.Add(st.BytesScanned)
	return st, nil
}

// SegmentInfo describes one sealed segment for the /api/segments view.
type SegmentInfo struct {
	Name       string    `json:"name"`
	Records    int       `json:"records"`
	Bytes      int       `json:"bytes"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	Sources    int       `json:"sources"`
	Categories int       `json:"categories"`
}

// Segments lists the sealed segments in seal order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, g := range s.segs {
		out = append(out, SegmentInfo{
			Name:       g.name,
			Records:    g.count,
			Bytes:      len(g.blob),
			Start:      unixNano(g.minNanos),
			End:        unixNano(g.maxNanos),
			Sources:    len(g.sources),
			Categories: len(g.categories),
		})
	}
	return out
}

// TailLen returns the unsealed tail's entry count.
func (s *Store) TailLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tail)
}

// publishSizes refreshes the store gauges; callers hold mu.
func (s *Store) publishSizes() {
	gSegments.Set(float64(len(s.segs)))
	gTailEntries.Set(float64(len(s.tail)))
}

func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// atomicWrite writes data to path via a temp file, fsync, and rename,
// then fsyncs the directory so the rename itself is durable.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("bad manifest: %w", err)
	}
	if m.Version != segVersion {
		return m, fmt.Errorf("manifest version %d not supported", m.Version)
	}
	return m, nil
}

func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, manifestName), append(data, '\n'))
}
