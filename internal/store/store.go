// Package store is an embedded, append-only, time-partitioned segment
// store for tagged and filtered alerts — the persistence tier under the
// query engine (internal/query) and the `logstudy serve` / `build-store`
// subcommands. A store is a directory:
//
//	MANIFEST            store identity (format version, system)
//	seg-00000000.seg    sealed, immutable, checksum-footed segments
//	seg-00000001.seg      (sorted records + dictionaries + posting sets
//	...                    + sparse time index; see segment.go)
//	wal.log             the unsealed tail, as CRC-framed appends
//
// Crash safety: segments are written to a temp file, fsynced, renamed
// into place, and the directory fsynced, so a sealed segment is either
// wholly present and checksum-valid or absent. The tail rides in the
// wal; on open, replay stops at the first torn or corrupt frame and the
// file is truncated there, so a crash (or a fault-injected tear) loses
// at most the damaged suffix of the unsealed tail — and a record is
// never served unless its enclosing checksum verified. Segments whose
// footer checksum fails are quarantined (renamed *.corrupt) and
// reported, never silently read around.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
)

// Store telemetry, on the process registry so `logstudy -http` exposes
// it alongside the pipeline stages.
var (
	mScanSegments = obs.Default.Counter("store_scan_segments_total")
	mScanRecords  = obs.Default.Counter("store_scan_records_total")
	mScanBytes    = obs.Default.Counter("store_scan_bytes_total")
	mSealEntries  = obs.Default.Counter("store_seal_entries_total")
	gSegments     = obs.Default.Gauge("store_segments")
	gTailEntries  = obs.Default.Gauge("store_tail_entries")
)

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
	segPattern   = "seg-%08d.seg"
)

// DefaultFlushEvery is the default segment size, in entries.
const DefaultFlushEvery = 50000

// DefaultCompactFactor is the default merged-segment size goal,
// expressed as a multiple of FlushEvery: compaction merges runs of
// adjacent segments while the combined entry count stays at or under
// CompactFactor × FlushEvery.
const DefaultCompactFactor = 4

// Options tune a store.
type Options struct {
	// FlushEvery seals the tail into a segment once it holds this many
	// entries (default DefaultFlushEvery).
	FlushEvery int
	// SyncAppends fsyncs the wal after every Append batch. Off by
	// default: the durability unit is then the seal (always fsynced),
	// and an OS crash may lose the buffered tail — the same trade
	// syslog itself makes. Process crashes lose nothing either way.
	SyncAppends bool
	// CompactTarget is the merged-segment size goal, in entries:
	// Compact merges runs of two or more adjacent segments while their
	// combined entry count stays at or under it (default
	// DefaultCompactFactor × FlushEvery).
	CompactTarget int
	// CompactEvery, when positive, runs retention and compaction in a
	// background goroutine on this interval until Close.
	CompactEvery time.Duration
	// Retention, when positive, is the time horizon retention enforces:
	// sealed segments whose newest record is older than the newest
	// stored record minus Retention are dropped wholesale. The horizon
	// is measured in log time, not wall time, so a historical store is
	// trimmed relative to its own newest data rather than emptied.
	Retention time.Duration
}

func (o Options) flushEvery() int {
	if o.FlushEvery > 0 {
		return o.FlushEvery
	}
	return DefaultFlushEvery
}

func (o Options) compactTarget() int {
	if o.CompactTarget > 0 {
		return o.CompactTarget
	}
	return DefaultCompactFactor * o.flushEvery()
}

// manifest is the store's on-disk identity.
type manifest struct {
	Version int    `json:"version"`
	System  string `json:"system"`
}

// OpenReport says what Open found and, after damage, what it dropped —
// the operator-facing accounting the fault model requires.
type OpenReport struct {
	// Segments and TailEntries are the healthy inventory.
	Segments    int
	TailEntries int
	// CorruptSegments lists segments that failed validation and were
	// quarantined as *.corrupt (name -> reason).
	CorruptSegments map[string]string
	// TailDroppedBytes is how much of the wal was truncated as torn or
	// corrupt; TailDamage describes the first bad frame when nonzero.
	TailDroppedBytes int64
	TailDamage       string
	// TempFilesRemoved counts stale *.tmp files (a crashed seal,
	// compaction, or wal rewrite) swept on open.
	TempFilesRemoved int
	// SupersededSegments counts input segments of a committed
	// compaction that a crash left on disk; they were deleted, never
	// served (their contents live on in the compaction output).
	SupersededSegments int
	// TailDedupedEntries counts wal frames dropped because a seal's
	// segment committed but its wal rewrite did not — the entries were
	// already durable in the segment, and serving the wal copy too
	// would double-count them.
	TailDedupedEntries int
}

// Store is one open alert store. All methods are safe for concurrent
// use: appends and seals serialize behind a mutex, scans snapshot the
// immutable segment list and the tail and then run lock-free.
// Compaction and retention additionally serialize behind compactMu and
// hold mu only to commit, so queries keep flowing while a merge runs.
type Store struct {
	dir  string
	sys  logrec.System
	opts Options

	mu      sync.RWMutex
	segs    []*segment
	tail    []Entry
	wal     *os.File
	nextSeg int

	// compactMu serializes compaction and retention passes with each
	// other (never held while waiting on mu readers; lock order is
	// always compactMu before mu).
	compactMu sync.Mutex

	// obsState carries the mutation observer (see observer.go).
	// Notifications fire after mu is released, never under it.
	obsState

	// Background maintenance loop (Options.CompactEvery).
	bgStop chan struct{}
	bgDone chan struct{}
}

// Create initializes a store directory for sys (creating it if needed)
// and opens it. Creating over an existing store of the same system
// reopens it for appending; a different system is an error.
func Create(dir string, sys logrec.System, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := readManifest(dir)
	switch {
	case err == nil:
		if m.System != sys.ShortName() {
			return nil, fmt.Errorf("store: %s already holds a %s store", dir, m.System)
		}
	case errors.Is(err, fs.ErrNotExist):
		if err := writeManifest(dir, manifest{Version: segVersion, System: sys.ShortName()}); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	st, _, err := Open(dir, opts)
	return st, err
}

// Open opens an existing store directory: it sweeps temp files a crash
// left staged, resolves any compaction the crash interrupted (serving
// either the superseded inputs or the merged output, never both and
// never neither), validates every sealed segment's checksum, and
// replays the wal tail — subtracting frames whose entries a
// crash-windowed seal already committed to a segment. The report says
// what was recovered and what was dropped. When Options.CompactEvery is
// positive the background maintenance loop starts before Open returns.
func Open(dir string, opts Options) (*Store, *OpenReport, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	sys, err := logrec.ParseSystem(m.System)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, sys: sys, opts: opts}
	rep := &OpenReport{CorruptSegments: map[string]string{}}

	// Stale temp files are always garbage: a *.tmp is only ever a
	// staging file that a completed operation would have renamed away.
	if rep.TempFilesRemoved, err = sweepTempFiles(dir); err != nil {
		return nil, nil, err
	}

	// Read and parse every segment first; quarantine decisions wait
	// until compaction recovery has said which names are superseded.
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	type parsed struct {
		path string
		g    *segment
		err  error
	}
	byName := make(map[string]parsed, len(names))
	for _, path := range names {
		name := filepath.Base(path)
		if n := segNum(name); n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		// Map, don't read: opening a store touches only segment metadata.
		// An I/O failure is fatal; a validation failure releases the
		// mapping here and quarantines the file below.
		ref, err := openBlob(path)
		if err != nil {
			return nil, nil, err
		}
		g, perr := parseSegment(name, ref.data)
		if perr != nil {
			ref.release()
		} else {
			g.ref = ref
		}
		byName[name] = parsed{path: path, g: g, err: perr}
	}

	// Resolve compactions the crash interrupted. A record whose output
	// segment is present and checksum-valid committed: its inputs are
	// superseded and must never be served again (deleting them is the
	// step the crash skipped). A record whose output is missing or
	// invalid never committed: the inputs remain authoritative and the
	// record is simply dropped (its staged temp was swept above).
	cm, err := readCompactManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(cm.Pending) > 0 {
		for _, rec := range cm.Pending {
			out, ok := byName[rec.Output]
			if !ok || out.err != nil {
				continue
			}
			for _, in := range rec.Inputs {
				p, ok := byName[in]
				if !ok {
					continue
				}
				if err := os.Remove(p.path); err != nil {
					return nil, nil, err
				}
				if p.g != nil {
					p.g.release()
				}
				delete(byName, in)
				rep.SupersededSegments++
			}
		}
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
		if err := writeCompactManifest(dir, compactManifest{}); err != nil {
			return nil, nil, err
		}
	}

	for _, path := range names {
		name := filepath.Base(path)
		p, ok := byName[name]
		if !ok {
			continue // superseded and deleted above
		}
		if p.err != nil {
			// Quarantine, never serve: keep the bytes for forensics but
			// move them out of the segment namespace.
			rep.CorruptSegments[name] = p.err.Error()
			if rerr := os.Rename(p.path, p.path+".corrupt"); rerr != nil {
				return nil, nil, rerr
			}
			continue
		}
		s.segs = append(s.segs, p.g)
	}
	sortSegments(s.segs)
	rep.Segments = len(s.segs)

	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	entries, epoch, good, damage := replayWal(raw, sys)
	if damage != nil {
		rep.TailDroppedBytes = int64(len(raw) - good)
		rep.TailDamage = damage.Error()
	}
	// The seal dup window: the wal's epoch trailing the segment
	// inventory means segments numbered >= epoch sealed after this wal
	// was written, so their entries still have frames here. Subtract
	// them (as a multiset, preserving wal order) so nothing is served
	// twice. In the steady state epoch == nextSeg and this is free.
	if epoch >= 0 && epoch < s.nextSeg && len(entries) > 0 {
		sealed := make(map[string]int)
		for _, g := range s.segs {
			if g.num < epoch {
				continue
			}
			segEntries, err := g.entries()
			if err != nil {
				return nil, nil, err
			}
			for _, en := range segEntries {
				sealed[entryKey(en)]++
			}
		}
		kept := entries[:0]
		for _, en := range entries {
			if k := entryKey(en); sealed[k] > 0 {
				sealed[k]--
				rep.TailDedupedEntries++
				continue
			}
			kept = append(kept, en)
		}
		entries = kept
	}
	s.tail = entries
	rep.TailEntries = len(entries)

	// Normalize the wal: after recovery it must be exactly a header at
	// the current epoch plus one frame per tail entry. When it already
	// is (the common clean-open case), keep the file and just reopen
	// the append handle.
	if damage != nil || epoch != s.nextSeg || rep.TailDedupedEntries > 0 {
		if err := s.rewriteWalLocked(); err != nil {
			return nil, nil, err
		}
	} else if s.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return nil, nil, err
	}
	s.publishSizes()
	s.startBackground()
	return s, rep, nil
}

// segNum extracts the sequence number from a segment file name, or -1.
func segNum(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, segPattern, &n); err != nil {
		return -1
	}
	return n
}

// sortSegments orders a segment list by time (then name): the order
// scans walk them in and the order compaction calls "adjacent".
func sortSegments(segs []*segment) {
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].minNanos != segs[j].minNanos {
			return segs[i].minNanos < segs[j].minNanos
		}
		return segs[i].name < segs[j].name
	})
}

// sweepTempFiles removes stale *.tmp staging files left by a crash.
func sweepTempFiles(dir string) (int, error) {
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return 0, err
	}
	for _, path := range tmps {
		if err := os.Remove(path); err != nil {
			return 0, err
		}
	}
	return len(tmps), nil
}

// entryKey is an entry's full-content identity, used only by the seal
// dup-window subtraction in Open.
func entryKey(en Entry) string {
	return fmt.Sprintf("%d\x00%d\x00%s\x00%s\x00%s\x00%s\x00%s\x00%d\x00%t\x00%t",
		en.Record.Seq, en.Record.Time.UnixNano(), en.Record.Source, en.Category,
		en.Record.Program, en.Record.Facility, en.Record.Body,
		en.Record.Severity, en.Record.Corrupted, en.Kept)
}

// System returns the machine whose alerts the store holds.
func (s *Store) System() logrec.System { return s.sys }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the total entry count, sealed plus tail.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.tail)
	for _, g := range s.segs {
		n += g.count
	}
	return n
}

// Append durably logs entries to the wal and adds them to the tail,
// sealing a segment whenever the tail reaches FlushEvery entries. The
// caller's slice is never written to: entries are copied before the
// store normalizes them (System pinned to the store's system, Raw
// dropped — the store does not persist wire text), so callers can
// safely reuse their batch buffers.
func (s *Store) Append(entries ...Entry) error {
	if len(entries) == 0 {
		return nil
	}
	batch := make([]Entry, len(entries))
	copy(batch, entries)
	var frames []byte
	for i := range batch {
		batch[i].Record.System = s.sys
		batch[i].Record.Raw = ""
		frames = appendWalFrame(frames, batch[i])
	}
	appendSeq, sealSeq, err := func() (uint64, uint64, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, err := s.wal.Write(frames); err != nil {
			return 0, 0, fmt.Errorf("store: wal append: %w", err)
		}
		if s.opts.SyncAppends {
			if err := s.wal.Sync(); err != nil {
				return 0, 0, err
			}
		}
		s.tail = append(s.tail, batch...)
		// Seq assignment happens here, after the effects and under mu —
		// the ordering MutationSeq documents.
		aSeq := s.mutSeq.Add(1)
		var sSeq uint64
		for len(s.tail) >= s.opts.flushEvery() {
			if err := s.sealLocked(s.opts.flushEvery()); err != nil {
				return aSeq, sSeq, err
			}
			sSeq = s.mutSeq.Add(1)
		}
		s.publishSizes()
		return aSeq, sSeq, nil
	}()
	if appendSeq != 0 {
		// Notify outside mu: observers may re-enter the store (Scan,
		// Fingerprint). The appended batch commits before any seal it
		// triggered, so the append notification goes first. Notify even
		// when a subsequent seal failed — the append itself committed.
		s.notify(Mutation{Kind: MutationAppend, Seq: appendSeq, Entries: batch})
		if sealSeq != 0 {
			s.notify(Mutation{Kind: MutationSeal, Seq: sealSeq})
		}
	}
	return err
}

// Seal flushes the whole tail into a sealed segment (no-op when empty).
func (s *Store) Seal() error {
	sealSeq, err := func() (uint64, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := len(s.tail)
		if err := s.sealLocked(n); err != nil {
			return 0, err
		}
		s.publishSizes()
		if n == 0 {
			return 0, nil
		}
		return s.mutSeq.Add(1), nil
	}()
	if err != nil {
		return err
	}
	if sealSeq != 0 {
		s.notify(Mutation{Kind: MutationSeal, Seq: sealSeq})
	}
	return nil
}

// sealLocked seals the first n tail entries: sort, encode, write to a
// temp file, fsync, rename into place, fsync the directory, then drop
// the sealed prefix and rewrite the wal to the remainder. The two
// durability steps are ordered segment-first: a kill between them
// leaves a wal whose epoch trails the inventory, which Open detects and
// dedupes, so a crash anywhere in the seal neither loses nor
// double-serves an acknowledged entry.
func (s *Store) sealLocked(n int) error {
	if n <= 0 || len(s.tail) == 0 {
		return nil
	}
	if n > len(s.tail) {
		n = len(s.tail)
	}
	sp := obs.Default.StartSpan("store_seal")
	defer sp.End()

	// Seal the n oldest entries by canonical order, keeping the rest.
	sortEntries(s.tail)
	batch, rest := s.tail[:n], s.tail[n:]
	blob := buildSegment(s.sys, batch)

	if err := s.crashPoint(crashSealBeforeSegment); err != nil {
		return err
	}
	name := fmt.Sprintf(segPattern, s.nextSeg)
	path := filepath.Join(s.dir, name)
	if err := AtomicWriteFile(path, blob); err != nil {
		return fmt.Errorf("store: seal %s: %w", name, err)
	}
	if err := s.crashPoint(crashSealSegmentRenamed); err != nil {
		return err
	}
	// Self-check by reopening the durable file — this is also what maps
	// the new segment, releasing the heap blob built above to the GC.
	g, err := openSegmentFile(path)
	if err != nil {
		// Can't happen for bytes we just built; treat as corruption bug.
		return fmt.Errorf("store: seal %s: self-check failed: %w", name, err)
	}
	s.segs = append(s.segs, g)
	sortSegments(s.segs)
	s.nextSeg++
	mSealEntries.Add(int64(n))

	// The wal now only needs to cover the remainder.
	s.tail = append([]Entry(nil), rest...)
	return s.rewriteWalLocked()
}

// rewriteWalLocked atomically replaces the wal with a header at the
// current epoch plus frames for the current tail (typically empty right
// after a seal): the new contents are staged in wal.log.tmp, fsynced,
// renamed over wal.log, and the append handle reopened on the new
// inode. The old wal stays intact until the rename, so a kill anywhere
// in the rewrite leaves either the old wal or the new one — never the
// truncated-but-unwritten middle state the previous truncate-then-write
// protocol could die in.
func (s *Store) rewriteWalLocked() error {
	frames := appendWalHeader(nil, s.nextSeg)
	for _, en := range s.tail {
		frames = appendWalFrame(frames, en)
	}
	walPath := filepath.Join(s.dir, walName)
	tmp := walPath + ".tmp"
	if err := writeFileSync(tmp, frames); err != nil {
		return fmt.Errorf("store: wal rewrite: %w", err)
	}
	if err := s.crashPoint(crashWalTmpWritten); err != nil {
		return err
	}
	if s.wal != nil {
		s.wal.Close() // the inode is about to be replaced
		s.wal = nil
	}
	if err := os.Rename(tmp, walPath); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.crashPoint(crashWalRenamed); err != nil {
		return err
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.wal = f
	return nil
}

// Close stops background maintenance, seals any remaining tail, closes
// the wal, and releases the store's segment mappings. In-flight scans
// finish safely on their own references; the store itself is unusable
// afterwards (scans see an empty inventory).
func (s *Store) Close() error {
	s.stopBackground()
	err := s.Seal()
	s.mu.Lock()
	releaseAll(s.segs)
	s.segs = nil
	s.mu.Unlock()
	if err != nil {
		if s.wal != nil {
			s.wal.Close()
		}
		return err
	}
	return s.wal.Close()
}

// Fingerprint identifies the store's queryable content: it changes on
// every append, seal, compaction, and retention pass, and only then.
// Segment names are never reused, and within one segment inventory the
// tail can only grow, so (inventory, tail length) pins the content —
// the invalidation key the query layer's aggregate cache relies on.
func (s *Store) Fingerprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := fnv.New64a()
	var buf [8]byte
	for _, g := range s.segs {
		io.WriteString(h, g.name)
		binary.LittleEndian.PutUint64(buf[:], uint64(g.count))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(s.tail)))
	h.Write(buf[:])
	return h.Sum64()
}

// Filter selects entries for Scan. Zero fields are unconstrained; the
// time window is [From, To).
type Filter struct {
	From, To   time.Time
	Sources    []string
	Categories []string
	Severities []logrec.Severity
	// Kept, when non-nil, selects only entries that survived (true) or
	// were removed by (false) Algorithm 3.1.
	Kept *bool
	// BodyContains, when nonempty, selects entries whose message body
	// contains it as a substring. It is the one predicate the segment
	// indexes cannot answer: scans check it against the body bytes in
	// place, and the columnar path refuses filters that set it (see
	// IndexAnswerable and ScanColumns).
	BodyContains string
}

// IndexAnswerable reports whether every predicate in f is answerable
// from segment metadata alone — the time window (sparse index +
// min/max), Sources/Categories/Severities (postings), and Kept (a
// record flag). A body predicate needs the message bytes, so filters
// that set BodyContains take the row-decode path.
func (f Filter) IndexAnswerable() bool { return f.BodyContains == "" }

// matchUnindexed applies the predicates postings do not cover (the Kept
// flag, the body substring) to a decoded entry. Time and the indexed
// dimensions are handled by the segment scan itself; the tail scan
// calls match instead.
func (f Filter) matchUnindexed(en Entry) bool {
	if f.Kept != nil && *f.Kept != en.Kept {
		return false
	}
	return f.BodyContains == "" || strings.Contains(en.Record.Body, f.BodyContains)
}

// Match reports whether en satisfies every predicate in f — the
// entry-at-a-time form of the filter, exported for layers that classify
// entries outside a scan (the standing-query registry applies it to
// each appended entry to decide which materialized aggregates the
// entry's delta touches).
func (f Filter) Match(en Entry) bool { return f.match(en) }

// match applies every predicate to a decoded entry (the tail path,
// where nothing is indexed).
func (f Filter) match(en Entry) bool {
	t := en.Record.Time
	if !f.From.IsZero() && t.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !t.Before(f.To) {
		return false
	}
	if len(f.Sources) > 0 && !containsStr(f.Sources, en.Record.Source) {
		return false
	}
	if len(f.Categories) > 0 && !containsStr(f.Categories, en.Category) {
		return false
	}
	if len(f.Severities) > 0 && !containsSev(f.Severities, en.Record.Severity) {
		return false
	}
	return f.matchUnindexed(en)
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsSev(xs []logrec.Severity, x logrec.Severity) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ScanStats accounts one scan's work — the observability the query
// layer reports per request.
type ScanStats struct {
	Segments        int   `json:"segments"`
	SegmentsScanned int   `json:"segments_scanned"`
	SegmentsPruned  int   `json:"segments_pruned"`
	TailEntries     int   `json:"tail_entries"`
	RecordsScanned  int   `json:"records_scanned"`
	BytesScanned    int64 `json:"bytes_scanned"`
	Matched         int   `json:"matched"`
}

// Scan streams every entry matching f to fn: sealed segments first (in
// seal order, each internally time-sorted), then the unsealed tail.
// Callers needing global canonical order sort the collected results
// (the query engine does). fn returning an error aborts the scan.
func (s *Store) Scan(f Filter, fn func(Entry) error) (ScanStats, error) {
	sp := obs.Default.StartSpan("store_scan")
	defer sp.End()

	s.mu.RLock()
	segs := append([]*segment(nil), s.segs...)
	tail := append([]Entry(nil), s.tail...)
	retainAll(segs)
	s.mu.RUnlock()
	defer releaseAll(segs)

	var st ScanStats
	st.Segments = len(segs)
	for _, g := range segs {
		if !f.From.IsZero() && g.maxNanos < f.From.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		if !f.To.IsZero() && g.minNanos >= f.To.UnixNano() {
			st.SegmentsPruned++
			continue
		}
		st.SegmentsScanned++
		if err := g.scan(f, &st, fn); err != nil {
			return st, err
		}
	}
	st.TailEntries = len(tail)
	for _, en := range tail {
		st.RecordsScanned++
		if !f.match(en) {
			continue
		}
		st.Matched++
		if err := fn(en); err != nil {
			return st, err
		}
	}
	mScanSegments.Add(int64(st.SegmentsScanned))
	mScanRecords.Add(int64(st.RecordsScanned))
	mScanBytes.Add(st.BytesScanned)
	return st, nil
}

// SegmentInfo describes one sealed segment for the /api/segments view.
type SegmentInfo struct {
	Name       string    `json:"name"`
	Records    int       `json:"records"`
	Bytes      int       `json:"bytes"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	Sources    int       `json:"sources"`
	Categories int       `json:"categories"`
}

// Segments lists the sealed segments in seal order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentInfo, 0, len(s.segs))
	for _, g := range s.segs {
		out = append(out, SegmentInfo{
			Name:       g.name,
			Records:    g.count,
			Bytes:      len(g.blob),
			Start:      unixNano(g.minNanos),
			End:        unixNano(g.maxNanos),
			Sources:    len(g.sources),
			Categories: len(g.categories),
		})
	}
	return out
}

// TailLen returns the unsealed tail's entry count.
func (s *Store) TailLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tail)
}

// publishSizes refreshes the store gauges; callers hold mu.
func (s *Store) publishSizes() {
	gSegments.Set(float64(len(s.segs)))
	gTailEntries.Set(float64(len(s.tail)))
}

func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// writeFileSync writes data to path (create or truncate) and fsyncs it.
// On error the partial file is removed.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// AtomicWriteFile writes data to path via a temp file, fsync, and
// rename, then fsyncs the directory so the rename itself is durable.
// Exported for sibling storage layers (the shard router's cluster
// manifest) that need the same crash-safety discipline as the store's
// own manifests.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("bad manifest: %w", err)
	}
	if m.Version != segVersion {
		return m, fmt.Errorf("manifest version %d not supported", m.Version)
	}
	return m, nil
}

func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return AtomicWriteFile(filepath.Join(dir, manifestName), append(data, '\n'))
}
