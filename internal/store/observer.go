package store

import (
	"sync"
	"sync/atomic"
)

// Mutation notification: the hook the standing-query layer hangs off.
// The store invokes its observer after a mutation has committed — the
// wal write for an append, the rename for a seal, the manifest-clear
// for a compaction, the unlink for a retention pass — never before, so
// an observer always describes durable state. The observer runs outside
// the store's locks (an observer is free to call back into Scan or
// Fingerprint) but under a dedicated notify mutex, so notifications for
// one store are totally ordered and never concurrent with each other.

// MutationKind says which operation committed.
type MutationKind int

const (
	// MutationAppend: entries joined the tail. Mutation.Entries holds
	// the appended batch (post-normalization: System pinned, Raw
	// dropped) — the delta an incremental view folds in.
	MutationAppend MutationKind = iota
	// MutationSeal: tail entries moved into a sealed segment. The entry
	// set is unchanged (no delta to apply); the fingerprint moved.
	MutationSeal
	// MutationCompact: adjacent segments merged. The entry set is
	// unchanged, but derived state keyed by physical layout must
	// refresh.
	MutationCompact
	// MutationRetention: whole segments aged out. The entry set
	// genuinely shrank; incremental views must rebuild from a scan.
	MutationRetention
)

// String names the kind for logs and metrics labels.
func (k MutationKind) String() string {
	switch k {
	case MutationAppend:
		return "append"
	case MutationSeal:
		return "seal"
	case MutationCompact:
		return "compact"
	case MutationRetention:
		return "retention"
	default:
		return "unknown"
	}
}

// Mutation describes one committed store mutation.
type Mutation struct {
	Kind MutationKind
	// Seq is the store's mutation sequence number, assigned inside the
	// committing critical section: if a scan can see a mutation's
	// effects, MutationSeq() has already advanced past its Seq. That
	// ordering is what lets an incremental view install a scanned
	// baseline and then apply exactly the deltas the scan missed —
	// "apply iff Seq > the baseline's fence" is race-free no matter how
	// notification delivery interleaves (see internal/query's standing
	// registry).
	Seq uint64
	// Entries is the appended batch for MutationAppend, nil otherwise.
	Entries []Entry
}

// Observer receives committed-mutation notifications. Implementations
// must not block for long — notifications are delivered synchronously
// on the mutating goroutine (after locks are released), so a slow
// observer slows appends.
type Observer func(Mutation)

// SetObserver installs the store's mutation observer (nil to remove).
// At most one observer is supported; layers that need fan-out multiplex
// behind their own func. The observer starts receiving mutations that
// commit after SetObserver returns; a caller that needs a consistent
// baseline should install the observer first and then scan — any
// mutation between the scan and the install would otherwise be lost,
// while the reverse order at worst delivers a delta the baseline
// already covers to an observer that must handle replays anyway (the
// standing-query registry instead serializes registration against
// notifications at its own layer).
func (s *Store) SetObserver(fn Observer) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observer = fn
}

// notify delivers one mutation to the observer, if any. Callers must
// not hold mu — observers may re-enter the store's read side (Scan,
// ScanColumns, Fingerprint). Compaction and retention notify while
// still holding compactMu, so observers must not call Compact,
// ApplyRetention, or Maintain.
func (s *Store) notify(m Mutation) {
	s.obsMu.Lock()
	fn := s.observer
	if fn != nil {
		// Deliver under obsMu so notifications are totally ordered —
		// concurrent appends cannot interleave their observers.
		fn(m)
	}
	s.obsMu.Unlock()
}

// obsState is embedded in Store (declared here to keep the observer
// machinery in one file).
type obsState struct {
	obsMu    sync.Mutex
	observer Observer
	// mutSeq is the mutation sequence counter. It advances inside the
	// committing critical section (under mu), *after* the mutation's
	// effects are applied — so a reader that loads the counter and then
	// scans is guaranteed the scan covers every mutation whose Seq it
	// observed, and none it did not (mutations are atomic with respect
	// to scans). Atomic so MutationSeq never touches mu and can be read
	// from contexts that must not block on the store.
	mutSeq atomic.Uint64
}

// MutationSeq returns the sequence number of the most recently committed
// mutation (0 before any). Lock-free: a load racing a commit returns
// either side of it, and the standing-query registry's fenced
// scan-retry protocol is correct for both (see internal/query).
func (s *Store) MutationSeq() uint64 { return s.mutSeq.Load() }
