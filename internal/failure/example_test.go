package failure_test

import (
	"fmt"
	"math/rand"
	"time"

	"whatsupersay/internal/failure"
)

// ExampleBurst shows storm reporting: a handful of root failures expand
// into heavily redundant message streams — the structure that makes
// filtering necessary (Section 3.3).
func ExampleBurst() {
	rng := rand.New(rand.NewSource(1))
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 30)
	b := failure.Burst{RootRatePerHour: 0.02, MeanSize: 500, MeanGap: time.Second}
	events := b.Events(rng, start, end)
	roots := failure.Poisson{RatePerHour: 0.02}.Events(rand.New(rand.NewSource(1)), start, end)
	fmt.Printf("roots: %d, messages: >100x more: %v\n", len(roots), len(events) > 100*len(roots))
	// Output:
	// roots: 24, messages: >100x more: true
}

// ExampleRegimeShift realizes the Figure 2(a) step change.
func ExampleRegimeShift() {
	rng := rand.New(rand.NewSource(2))
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	shift := start.AddDate(0, 0, 15)
	end := start.AddDate(0, 0, 30)
	p := failure.RegimeShift{Steps: []failure.Step{
		{From: start, RatePerHour: 10},
		{From: shift, RatePerHour: 40},
	}}
	events := p.Events(rng, start, end)
	var before, after int
	for _, e := range events {
		if e.Before(shift) {
			before++
		} else {
			after++
		}
	}
	fmt.Printf("rate roughly quadruples: %v\n", after > 3*before && after < 5*before)
	// Output:
	// rate roughly quadruples: true
}
