package failure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var (
	winStart = time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	winEnd   = winStart.AddDate(0, 0, 30)
)

func sortedInWindow(t *testing.T, events []time.Time, start, end time.Time) {
	t.Helper()
	for i, ev := range events {
		if ev.Before(start) || !ev.Before(end) {
			t.Fatalf("event %d at %v outside window [%v, %v)", i, ev, start, end)
		}
		if i > 0 && ev.Before(events[i-1]) {
			t.Fatalf("events out of order at %d: %v < %v", i, ev, events[i-1])
		}
	}
}

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Poisson{RatePerHour: 10}
	events := p.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winEnd)
	expected := 10.0 * winEnd.Sub(winStart).Hours()
	got := float64(len(events))
	// Poisson(7200): 4 sigma is ~340.
	if math.Abs(got-expected) > 4*math.Sqrt(expected) {
		t.Errorf("Poisson produced %v events, expected ~%v", got, expected)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if ev := (Poisson{RatePerHour: 0}).Events(rng, winStart, winEnd); ev != nil {
		t.Error("zero rate must produce no events")
	}
	if ev := (Poisson{RatePerHour: 5}).Events(rng, winEnd, winStart); ev != nil {
		t.Error("inverted window must produce no events")
	}
}

func TestPoissonInterarrivalsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Poisson{RatePerHour: 60} // mean gap one minute
	events := p.Events(rng, winStart, winEnd)
	if len(events) < 1000 {
		t.Fatalf("need a large sample, got %d", len(events))
	}
	var sum float64
	for i := 1; i < len(events); i++ {
		sum += events[i].Sub(events[i-1]).Seconds()
	}
	mean := sum / float64(len(events)-1)
	if math.Abs(mean-60) > 6 {
		t.Errorf("mean interarrival %.1f s, want ~60 s", mean)
	}
}

func TestNonHomogeneousRespectsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	halfway := winStart.Add(winEnd.Sub(winStart) / 2)
	p := NonHomogeneous{
		Rate: func(t time.Time) float64 {
			if t.Before(halfway) {
				return 2
			}
			return 20
		},
		MaxRatePerHour: 20,
	}
	events := p.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winEnd)
	var before, after int
	for _, ev := range events {
		if ev.Before(halfway) {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatal("both halves should have events")
	}
	ratio := float64(after) / float64(before)
	if ratio < 5 || ratio > 20 {
		t.Errorf("rate ratio %.1f, want ~10", ratio)
	}
}

func TestStepRate(t *testing.T) {
	steps := []Step{
		{From: winStart, RatePerHour: 1},
		{From: winStart.AddDate(0, 0, 10), RatePerHour: 5},
	}
	fn, maxRate := StepRate(steps)
	if maxRate != 5 {
		t.Errorf("max rate = %v, want 5", maxRate)
	}
	if got := fn(winStart.Add(time.Hour)); got != 1 {
		t.Errorf("rate in first step = %v, want 1", got)
	}
	if got := fn(winStart.AddDate(0, 0, 20)); got != 5 {
		t.Errorf("rate in second step = %v, want 5", got)
	}
	if got := fn(winStart.Add(-time.Hour)); got != 1 {
		t.Errorf("rate before first step = %v, want first step's 1", got)
	}
}

func TestRegimeShiftStepChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shift := winStart.AddDate(0, 0, 15)
	p := RegimeShift{Steps: []Step{
		{From: winStart, RatePerHour: 5},
		{From: shift, RatePerHour: 50},
	}}
	events := p.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winEnd)
	var before, after int
	for _, ev := range events {
		if ev.Before(shift) {
			before++
		} else {
			after++
		}
	}
	// Equal durations: after/before should be ~10x.
	ratio := float64(after) / float64(before)
	if ratio < 6 || ratio > 16 {
		t.Errorf("regime ratio %.1f, want ~10", ratio)
	}
}

func TestLognormalGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Lognormal{Mu: math.Log(120), Sigma: 0.5}
	events := p.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winEnd)
	if len(events) < 1000 {
		t.Fatalf("expected many events, got %d", len(events))
	}
	// Median gap should be close to exp(mu) = 120 s.
	gaps := make([]float64, 0, len(events)-1)
	for i := 1; i < len(events); i++ {
		gaps = append(gaps, events[i].Sub(events[i-1]).Seconds())
	}
	var logSum float64
	for _, gp := range gaps {
		logSum += math.Log(gp)
	}
	if med := math.Exp(logSum / float64(len(gaps))); math.Abs(med-120) > 15 {
		t.Errorf("geometric mean gap %.1f s, want ~120 s", med)
	}
}

func TestBurstExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := Burst{RootRatePerHour: 1, MeanSize: 50, MeanGap: time.Second}
	root := winStart
	events := b.Expand(rng, root, winEnd)
	if len(events) == 0 || !events[0].Equal(root) {
		t.Fatal("burst must include its root as the first event")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Before(events[i-1]) {
			t.Fatal("burst events must be ordered")
		}
	}
}

func TestBurstMeanSize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := Burst{RootRatePerHour: 2, MeanSize: 30, MeanGap: 200 * time.Millisecond}
	events := b.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winEnd)
	roots := Poisson{RatePerHour: 2}.Events(rand.New(rand.NewSource(6)), winStart, winEnd)
	// Events per root should be near MeanSize (loose bound; geometric).
	perRoot := float64(len(events)) / float64(len(roots))
	if perRoot < 15 || perRoot > 60 {
		t.Errorf("mean burst size %.1f, want ~30", perRoot)
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const mean = 12.0
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += geometric(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.5 {
		t.Errorf("geometric mean %.2f, want ~%.1f", got, mean)
	}
	if geometric(rng, 0.5) != 1 {
		t.Error("mean <= 1 must return exactly 1")
	}
}

func TestCascadeCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := Cascade{
		Primary:        Poisson{RatePerHour: 0.5},
		TriggerProb:    0.8,
		MeanLag:        5 * time.Minute,
		SecondaryBurst: Burst{MeanSize: 3, MeanGap: time.Second},
	}
	ev := c.Events(rng, winStart, winEnd)
	if len(ev.Primary) == 0 {
		t.Fatal("expected primaries")
	}
	if len(ev.Secondary) == 0 {
		t.Fatal("expected triggered secondaries")
	}
	// Most secondaries should fall within an hour after some primary.
	near := 0
	for _, s := range ev.Secondary {
		for _, p := range ev.Primary {
			d := s.Sub(p)
			if d >= 0 && d < time.Hour {
				near++
				break
			}
		}
	}
	if frac := float64(near) / float64(len(ev.Secondary)); frac < 0.9 {
		t.Errorf("only %.0f%% of secondaries near a primary, want >90%%", 100*frac)
	}
}

func TestCascadeSpontaneous(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := Cascade{
		Primary:                Poisson{RatePerHour: 0}, // no primaries at all
		TriggerProb:            1,
		MeanLag:                time.Minute,
		SecondaryBurst:         Burst{MeanSize: 2, MeanGap: time.Second},
		SpontaneousRatePerHour: 1,
	}
	ev := c.Events(rng, winStart, winEnd)
	if len(ev.Primary) != 0 {
		t.Fatal("expected no primaries")
	}
	if len(ev.Secondary) == 0 {
		t.Error("spontaneous secondaries must still occur")
	}
	sortedInWindow(t, ev.Secondary, winStart, winEnd)
}

func TestChronicClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := Chronic{
		Onset:            winStart.AddDate(0, 0, -5), // before window
		Resolved:         winStart.AddDate(0, 0, 5),
		StormRatePerHour: 100,
	}
	events := p.Events(rng, winStart, winEnd)
	sortedInWindow(t, events, winStart, winStart.AddDate(0, 0, 5))
	if len(events) == 0 {
		t.Fatal("chronic storm inside window must produce events")
	}
	// Entirely outside the window: nothing.
	outside := Chronic{Onset: winEnd, Resolved: winEnd.AddDate(0, 0, 3), StormRatePerHour: 100}
	if ev := outside.Events(rng, winStart, winEnd); len(ev) != 0 {
		t.Error("storm outside window must be empty")
	}
}

func TestMerge(t *testing.T) {
	a := []time.Time{winStart, winStart.Add(3 * time.Second)}
	b := []time.Time{winStart.Add(time.Second), winStart.Add(5 * time.Second)}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Before(m[i-1]) {
			t.Fatal("merge must be sorted")
		}
	}
	if got := Merge(); len(got) != 0 {
		t.Error("empty merge must be empty")
	}
}

func TestProcessesDeterministic(t *testing.T) {
	run := func(seed int64) []time.Time {
		rng := rand.New(rand.NewSource(seed))
		return Burst{RootRatePerHour: 3, MeanSize: 10, MeanGap: time.Second}.Events(rng, winStart, winEnd)
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
}

func TestPoissonPropertySortedWithinWindow(t *testing.T) {
	f := func(seed int64, rate uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Poisson{RatePerHour: float64(rate%50) + 0.1}
		events := p.Events(rng, winStart, winStart.AddDate(0, 0, 2))
		for i, ev := range events {
			if ev.Before(winStart) || !ev.Before(winStart.AddDate(0, 0, 2)) {
				return false
			}
			if i > 0 && ev.Before(events[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
