// Package failure implements the stochastic event processes that drive the
// synthetic log generator. Each process produces a sequence of event times
// inside a window; the simulator maps events to nodes and message templates.
//
// The processes encode the timing structures the paper observes:
//
//   - independent, exponential interarrivals (Thunderbird ECC, Figure 5);
//   - bursty, heavily redundant reporting (Spirit disk storms, Red Storm
//     BUS_PAR), which is what makes filtering necessary (Section 3.3);
//   - cascades, where one root event triggers correlated secondaries
//     (Liberty's GM_PAR/GM_LANAI pairing, Figure 3; the PBS bug, Figure 4);
//   - regime shifts, where the base rate changes abruptly at a point in
//     time (Liberty's OS upgrade, Figure 2(a));
//   - lognormal interarrivals with heavy tails (Section 4's fitted-but-
//     poorly-fitting models).
package failure

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Process generates event times within [start, end), sorted ascending.
// Implementations must be deterministic given the rng state.
type Process interface {
	Events(rng *rand.Rand, start, end time.Time) []time.Time
}

// Poisson is a homogeneous Poisson process.
type Poisson struct {
	// RatePerHour is the expected number of events per hour.
	RatePerHour float64
}

// Events draws exponential interarrivals until the window is exhausted.
func (p Poisson) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	if p.RatePerHour <= 0 || !start.Before(end) {
		return nil
	}
	meanGap := time.Duration(float64(time.Hour) / p.RatePerHour)
	var out []time.Time
	t := start
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		t = t.Add(gap)
		if !t.Before(end) {
			return out
		}
		out = append(out, t)
	}
}

// RateFunc gives an instantaneous rate (events per hour) at a time.
type RateFunc func(t time.Time) float64

// NonHomogeneous is a nonhomogeneous Poisson process realized by thinning
// (Lewis & Shedler): candidates are drawn at MaxRatePerHour and kept with
// probability Rate(t)/MaxRatePerHour.
type NonHomogeneous struct {
	// Rate is the instantaneous rate; it must never exceed MaxRatePerHour.
	Rate RateFunc
	// MaxRatePerHour bounds Rate over the window.
	MaxRatePerHour float64
}

// Events realizes the process over the window.
func (p NonHomogeneous) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	if p.MaxRatePerHour <= 0 || p.Rate == nil || !start.Before(end) {
		return nil
	}
	meanGap := time.Duration(float64(time.Hour) / p.MaxRatePerHour)
	var out []time.Time
	t := start
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		t = t.Add(gap)
		if !t.Before(end) {
			return out
		}
		if r := p.Rate(t); r > 0 && rng.Float64() < r/p.MaxRatePerHour {
			out = append(out, t)
		}
	}
}

// Step is one piece of a piecewise-constant rate schedule.
type Step struct {
	// From is the time the rate takes effect.
	From time.Time
	// RatePerHour applies from From until the next step (or the end of
	// the window).
	RatePerHour float64
}

// StepRate builds a RateFunc from a piecewise-constant schedule along with
// the maximum rate, suitable for NonHomogeneous. Steps must be in ascending
// time order; times before the first step get the first step's rate.
func StepRate(steps []Step) (RateFunc, float64) {
	maxRate := 0.0
	for _, s := range steps {
		if s.RatePerHour > maxRate {
			maxRate = s.RatePerHour
		}
	}
	fn := func(t time.Time) float64 {
		rate := 0.0
		if len(steps) > 0 {
			rate = steps[0].RatePerHour
		}
		for _, s := range steps {
			if !t.Before(s.From) {
				rate = s.RatePerHour
			}
		}
		return rate
	}
	return fn, maxRate
}

// RegimeShift is a convenience process: a piecewise-constant-rate Poisson
// process, used for Figure 2(a)'s OS-upgrade step change.
type RegimeShift struct {
	Steps []Step
}

// Events realizes the schedule piece by piece with homogeneous processes,
// which is exact for piecewise-constant rates.
func (p RegimeShift) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	if len(p.Steps) == 0 || !start.Before(end) {
		return nil
	}
	var out []time.Time
	for i, s := range p.Steps {
		segStart := s.From
		if segStart.Before(start) {
			segStart = start
		}
		segEnd := end
		if i+1 < len(p.Steps) && p.Steps[i+1].From.Before(end) {
			segEnd = p.Steps[i+1].From
		}
		if !segStart.Before(segEnd) {
			continue
		}
		out = append(out, Poisson{RatePerHour: s.RatePerHour}.Events(rng, segStart, segEnd)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Lognormal draws interarrival gaps from a lognormal distribution; the
// resulting point process has the heavy-tailed spacing the paper fits (and
// rejects) in Section 4.
type Lognormal struct {
	// Mu and Sigma parameterize ln(gap seconds) ~ Normal(Mu, Sigma).
	Mu, Sigma float64
}

// Events draws gaps until the window is exhausted.
func (p Lognormal) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	if p.Sigma <= 0 || !start.Before(end) {
		return nil
	}
	var out []time.Time
	t := start
	for {
		gapSec := math.Exp(rng.NormFloat64()*p.Sigma + p.Mu)
		t = t.Add(time.Duration(gapSec * float64(time.Second)))
		if !t.Before(end) {
			return out
		}
		out = append(out, t)
	}
}

// Burst models storm reporting: root occurrences arrive as a Poisson
// process, and each root emits a geometric number of repeats with short
// exponential spacing. This is the shape of the Spirit cciss storms and
// Thunderbird's VAPI error floods — millions of near-duplicate alerts from
// a handful of root failures.
type Burst struct {
	// RootRatePerHour is the arrival rate of storms.
	RootRatePerHour float64
	// MeanSize is the mean number of messages per storm (geometric).
	MeanSize float64
	// MeanGap is the mean spacing between messages inside a storm.
	MeanGap time.Duration
}

// Events realizes roots and expands each into a burst. Events stay inside
// the window; a burst begun near the end is truncated.
func (p Burst) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	roots := Poisson{RatePerHour: p.RootRatePerHour}.Events(rng, start, end)
	var out []time.Time
	for _, root := range roots {
		out = append(out, p.Expand(rng, root, end)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Expand emits the messages of a single storm rooted at root, truncated at
// end. The root itself is included.
func (p Burst) Expand(rng *rand.Rand, root, end time.Time) []time.Time {
	size := geometric(rng, p.MeanSize)
	out := make([]time.Time, 0, size)
	t := root
	for i := 0; i < size; i++ {
		if !t.Before(end) {
			break
		}
		out = append(out, t)
		gap := time.Duration(rng.ExpFloat64() * float64(p.MeanGap))
		t = t.Add(gap)
	}
	return out
}

// geometric draws a geometric variate with the given mean, minimum 1.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Geometric on {1,2,...} with success probability 1/mean.
	pSucc := 1 / mean
	n := 1
	for rng.Float64() > pSucc {
		n++
		if n > 10_000_000 {
			break // safety bound; unreachable for sane means
		}
	}
	return n
}

// Cascade couples two event classes: each primary event triggers, with
// probability TriggerProb, a run of secondary events after a lag. Figure 3
// (GM_PAR vs GM_LANAI) shows exactly this: the two categories are clearly
// correlated but neither always follows the other.
type Cascade struct {
	// Primary drives the root class.
	Primary Process
	// TriggerProb is the chance a primary spawns secondaries.
	TriggerProb float64
	// MeanLag is the mean delay from a primary to its first secondary.
	MeanLag time.Duration
	// SecondaryBurst expands each trigger into secondary events.
	SecondaryBurst Burst
	// SpontaneousRatePerHour adds secondaries with no primary, so the
	// correlation is imperfect in both directions (as in Figure 3).
	SpontaneousRatePerHour float64
}

// CascadeEvents is the realization of a Cascade: primary and secondary
// streams, separately sorted.
type CascadeEvents struct {
	Primary   []time.Time
	Secondary []time.Time
}

// Events realizes both streams over the window.
func (c Cascade) Events(rng *rand.Rand, start, end time.Time) CascadeEvents {
	var ev CascadeEvents
	ev.Primary = c.Primary.Events(rng, start, end)
	for _, p := range ev.Primary {
		if rng.Float64() >= c.TriggerProb {
			continue
		}
		lag := time.Duration(rng.ExpFloat64() * float64(c.MeanLag))
		first := p.Add(lag)
		if !first.Before(end) {
			continue
		}
		ev.Secondary = append(ev.Secondary, c.SecondaryBurst.Expand(rng, first, end)...)
	}
	if c.SpontaneousRatePerHour > 0 {
		ev.Secondary = append(ev.Secondary,
			Poisson{RatePerHour: c.SpontaneousRatePerHour}.Events(rng, start, end)...)
	}
	sort.Slice(ev.Secondary, func(i, j int) bool { return ev.Secondary[i].Before(ev.Secondary[j]) })
	return ev
}

// Chronic models a single persistently failing component (Spirit's sn373):
// between Onset and Resolved the node emits messages at StormRatePerHour
// with near-continuous redundancy; outside that interval it is silent.
type Chronic struct {
	Onset, Resolved  time.Time
	StormRatePerHour float64
}

// Events realizes the chronic storm clipped to the window.
func (p Chronic) Events(rng *rand.Rand, start, end time.Time) []time.Time {
	s := p.Onset
	if s.Before(start) {
		s = start
	}
	e := p.Resolved
	if e.After(end) {
		e = end
	}
	if !s.Before(e) {
		return nil
	}
	return Poisson{RatePerHour: p.StormRatePerHour}.Events(rng, s, e)
}

// Merge combines sorted event streams into one sorted stream.
func Merge(streams ...[]time.Time) []time.Time {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]time.Time, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
