// Package obs is the pipeline's observability layer: named counters,
// gauges, latency/size histograms, and stage-scoped spans, kept cheap
// enough to leave enabled in the hot paths. Every instrument is a single
// cache-line-friendly struct updated with atomic operations — no locks,
// no allocation, no channels on the record path — so instrumentation
// does not perturb the BENCH_pipeline.json numbers (the overhead model
// is documented in DESIGN.md §8 and pinned by benchmarks in this
// package).
//
// One registry, three views:
//
//   - Snapshot / WriteJSONFile: a machine-readable dump at process exit
//     (the `logstudy -metrics <path>` flag).
//   - WritePrometheus: Prometheus text exposition, served alongside
//     net/http/pprof by Handler (the `logstudy -http <addr>` flag).
//   - WriteSummary: a human-readable stage table (verbose mode).
//
// Metric names follow the Prometheus convention (`snake_case` with a
// `_total` / `_seconds` / `_bytes` unit suffix). A name may carry an
// embedded label clause — `bench_speedup{system="liberty",stage="tag"}`
// — which the Prometheus writer splits back into base name and labels;
// this is what lets internal/bench record its per-stage results through
// the same registry and schema as production telemetry.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count, safe for concurrent use.
// A nil *Counter is a valid no-op, so a disabled registry costs one
// branch per update.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (queue depth, speedup,
// utilization). A nil *Gauge is a valid no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(x))
	}
}

// Add adjusts the gauge by delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Unit declares how a histogram's raw int64 observations are scaled for
// export and display.
type Unit int

const (
	// None exports raw values unscaled.
	None Unit = iota
	// Seconds means observations are nanoseconds, exported as seconds.
	Seconds
	// Bytes means observations are byte counts.
	Bytes
)

// String returns the unit suffix used in summaries.
func (u Unit) String() string {
	switch u {
	case Seconds:
		return "seconds"
	case Bytes:
		return "bytes"
	default:
		return ""
	}
}

// scale converts a raw observation into the export unit.
func (u Unit) scale(v float64) float64 {
	if u == Seconds {
		return v / 1e9
	}
	return v
}

// histBuckets is the number of power-of-two buckets. Bucket i holds
// values in [2^(i-1), 2^i); bucket 0 holds v <= 0; the last bucket is
// the overflow. 2^45 ns ≈ 9.7 h and 2^45 bytes = 32 TiB, comfortably
// past anything a pipeline stage produces.
const histBuckets = 46

// Histogram is a fixed-bucket power-of-two histogram over int64
// observations (nanoseconds for latencies, bytes for sizes). Observe is
// three uncontended-atomic adds; there is no lock and no allocation.
// The bucket layout trades resolution (one bucket per binade) for a
// bounded, allocation-free footprint; quantiles are estimated by
// geometric interpolation within a bucket, which is exact enough for a
// stage table and honest about being an estimate.
type Histogram struct {
	unit    Unit
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets + 1]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > histBuckets {
		b = histBuckets
	}
	return b
}

// Observe records one raw value. A nil *Histogram is a valid no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start, for Seconds
// histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations in the export unit.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.unit.scale(float64(h.sum.Load()))
}

// Quantile estimates the q-quantile (0 < q <= 1) in the export unit,
// interpolating geometrically within the winning bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(int64(1) << (i - 1))
			hi := lo * 2
			// Position of the target rank within this bucket.
			frac := float64(rank-(cum-n)) / float64(n)
			return h.unit.scale(lo * math.Pow(hi/lo, frac))
		}
	}
	return h.unit.scale(float64(int64(1) << (histBuckets - 1)))
}

// Registry holds a process's instruments by name. Lookups take a
// read-lock; hot paths should resolve their instruments once (package
// init or per-run setup) and update through the returned pointers,
// which are lock-free. A nil *Registry hands back nil instruments,
// whose methods are all no-ops — the disable switch.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the pipeline stages record into
// and the logstudy flags export.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// unit on first use. The unit is fixed at creation; later callers get
// the existing histogram regardless of the unit they pass.
func (r *Registry) Histogram(name string, unit Unit) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{unit: unit}
		r.hists[name] = h
	}
	return h
}

// Span is one timed occurrence of a named pipeline stage. Ending a span
// records its latency into the stage's `stage_<name>_seconds` histogram
// and bumps `stage_<name>_total` — the naming convention WriteSummary
// keys on.
type Span struct {
	h     *Histogram
	c     *Counter
	start time.Time
}

// StartSpan opens a span for the named stage.
func (r *Registry) StartSpan(stage string) Span {
	return Span{
		h:     r.Histogram("stage_"+stage+"_seconds", Seconds),
		c:     r.Counter("stage_" + stage + "_total"),
		start: time.Now(),
	}
}

// End closes the span, recording its duration; it returns the duration
// for callers that also want it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.c.Inc()
	s.h.Observe(int64(d))
	return d
}
