package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's debug surface: Prometheus text metrics
// at /metrics and the standard net/http/pprof endpoints under
// /debug/pprof/. It is wired on an explicit mux (never the default one)
// so importing this package does not grow the global handler set.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "logstudy debug endpoint\n\n  /metrics        Prometheus text format\n  /debug/pprof/   runtime profiles\n")
	})
	return mux
}

// Serve starts the debug endpoint on addr in a background goroutine and
// returns the bound address (useful with ":0") and a shutdown func.
func Serve(addr string, r *Registry) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
