package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", Seconds).Observe(5)
	sp := r.StartSpan("s")
	sp.End()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	r.WritePrometheus(io.Discard)
	r.WriteSummary(io.Discard)
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", Seconds)
	// 1000 observations of ~1ms and 10 of ~1s.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(time.Second))
	}
	if got := h.Count(); got != 1010 {
		t.Fatalf("count = %d", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Errorf("p50 = %g, want ~1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 0.5 || p999 > 2 {
		t.Errorf("p99.9 = %g, want ~1s", p999)
	}
	wantSum := 1000*0.001 + 10*1.0
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
}

func TestHistogramEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", None)
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 62) // overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("median of {<=0, <=0, huge} = %g, want 0", q)
	}
}

func TestSpanRecordsStage(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("tag")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Errorf("span duration %v too short", d)
	}
	sums := r.StageSummaries()
	if len(sums) != 1 || sums[0].Stage != "tag" || sums[0].Count != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].TotalSec <= 0 {
		t.Error("span total not recorded")
	}
}

func TestSnapshotAndJSONFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("lines_total").Add(42)
	r.Gauge(`bench_speedup{system="liberty",stage="tag"}`).Set(2.5)
	r.Histogram("sz_bytes", Bytes).Observe(100)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["lines_total"] != 42 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges[`bench_speedup{system="liberty",stage="tag"}`] != 2.5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	hs := s.Histograms["sz_bytes"]
	if hs.Count != 1 || hs.Sum != 100 || hs.Unit != "bytes" {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("lines_total").Add(7)
	r.Gauge(`speedup{stage="tag"}`).Set(3)
	h := r.Histogram("lat_seconds", Seconds)
	h.Observe(int64(time.Millisecond))
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lines_total counter",
		"lines_total 7",
		"# TYPE speedup gauge",
		`speedup{stage="tag"} 3`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 1") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
		_ = body
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total")
			h := r.Histogram("h_seconds", Seconds)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", Seconds).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// The overhead model of DESIGN.md §9: these pin the per-operation cost
// of the instruments left enabled in the hot paths.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x", Seconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StartSpan("s").End()
	}
}
