package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot: Count
// observations were at most LE (in the histogram's export unit).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the exportable state of one histogram.
type HistogramSnapshot struct {
	Unit    string   `json:"unit,omitempty"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// the payload of the `-metrics` JSON file.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// snapshotHistogram freezes one histogram.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Unit:  h.unit.String(),
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		// LE is the bucket's exclusive upper bound 2^i (0 for the v<=0
		// bucket), scaled into the export unit.
		le := 0.0
		if i > 0 {
			le = h.unit.scale(float64(int64(1) << i))
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, Count: cum})
	}
	return s
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	return s
}

// WriteJSONFile writes the snapshot to path, pretty-printed.
func (r *Registry) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitName separates an embedded label clause from a metric name:
// `x_total{a="b"}` → ("x_total", `a="b"`). Names without a clause
// return empty labels.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promLabels joins an embedded label clause with an extra label.
func promLabels(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// sortedKeys returns map keys in lexical order, for stable exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and cumulative-bucket
// histograms, with embedded label clauses preserved.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	typed := map[string]bool{}
	typeLine := func(base, kind string) {
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
			typed[base] = true
		}
	}
	for _, name := range sortedKeys(counters) {
		base, labels := splitName(name)
		typeLine(base, "counter")
		fmt.Fprintf(w, "%s%s %d\n", base, promLabels(labels, ""), counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		base, labels := splitName(name)
		typeLine(base, "gauge")
		fmt.Fprintf(w, "%s%s %g\n", base, promLabels(labels, ""), gauges[name].Value())
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		base, labels := splitName(name)
		typeLine(base, "histogram")
		var cum int64
		for i := 0; i <= histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			le := 0.0
			if i > 0 {
				le = h.unit.scale(float64(int64(1) << i))
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, promLabels(labels, fmt.Sprintf("le=%q", fmt.Sprintf("%g", le))), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, promLabels(labels, `le="+Inf"`), h.Count())
		fmt.Fprintf(w, "%s_sum%s %g\n", base, promLabels(labels, ""), h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", base, promLabels(labels, ""), h.Count())
	}
}

// StageSummary is one row of the human-readable stage table: the
// aggregate of every span of one stage.
type StageSummary struct {
	Stage    string
	Count    int64
	TotalSec float64
	MeanSec  float64
	P50Sec   float64
	P99Sec   float64
}

// StageSummaries aggregates the `stage_*_seconds` span histograms,
// sorted by total time descending (the expensive stages first).
func (r *Registry) StageSummaries() []StageSummary {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	var out []StageSummary
	for name, h := range r.hists {
		base, _ := splitName(name)
		if !strings.HasPrefix(base, "stage_") || !strings.HasSuffix(base, "_seconds") {
			continue
		}
		if h.Count() == 0 {
			continue
		}
		s := StageSummary{
			Stage:    strings.TrimSuffix(strings.TrimPrefix(base, "stage_"), "_seconds"),
			Count:    h.Count(),
			TotalSec: h.Sum(),
			P50Sec:   h.Quantile(0.50),
			P99Sec:   h.Quantile(0.99),
		}
		s.MeanSec = s.TotalSec / float64(s.Count)
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSec != out[j].TotalSec {
			return out[i].TotalSec > out[j].TotalSec
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WriteSummary renders the stage table and the non-zero counters — the
// verbose-mode view printed by `logstudy ingest -v` / `bench -v`.
func (r *Registry) WriteSummary(w io.Writer) {
	stages := r.StageSummaries()
	if len(stages) > 0 {
		fmt.Fprintf(w, "%-12s %8s %12s %12s %12s %12s\n",
			"stage", "runs", "total", "mean", "p50", "p99")
		for _, s := range stages {
			fmt.Fprintf(w, "%-12s %8d %12s %12s %12s %12s\n",
				s.Stage, s.Count,
				fmtSeconds(s.TotalSec), fmtSeconds(s.MeanSec),
				fmtSeconds(s.P50Sec), fmtSeconds(s.P99Sec))
		}
	}
	snap := r.Snapshot()
	first := true
	for _, name := range sortedKeys(snap.Counters) {
		v := snap.Counters[name]
		if v == 0 {
			continue
		}
		if first {
			fmt.Fprintln(w, "\ncounters:")
			first = false
		}
		fmt.Fprintf(w, "  %-44s %d\n", name, v)
	}
}

// fmtSeconds renders a duration in seconds with a sensible magnitude.
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
