package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
)

// Fault-path telemetry: how often the resilience machinery actually
// fires. These are per-event (rare by construction), not per-line.
var (
	mRetries     = obs.Default.Counter("ingest_retries_total")
	mQuarantined = obs.Default.Counter("ingest_quarantined_total")
	mPanics      = obs.Default.Counter("ingest_parser_panics_total")
	mCheckpoints = obs.Default.Counter("ingest_checkpoints_total")
)

// Resilient ingestion: the paper's logs arrive damaged (Section 3.2.1)
// and its collection windows span 558 days (Table 2) — at that scale the
// ingest process itself fails mid-run: readers hiccup, disks die, parser
// bugs surface on line 400 million. ReadResilient survives all of it:
// transient reader errors are retried with exponential backoff, damaged
// lines are quarantined (preserved, never dropped) under an error
// budget, parser panics are contained per line, context cancellation is
// honored between lines, and a checkpoint carrying the sequence number
// and YearTracker state lets a killed run resume exactly where it died.

// ErrBudgetExceeded reports that a run quarantined more lines than its
// error budget allows — the signal that the input is damaged beyond what
// the operator declared tolerable, not just routinely corrupted.
var ErrBudgetExceeded = errors.New("ingest: quarantined lines exceed error budget")

// Checkpoint is the complete resumable state of an ingestion run. A run
// killed at any point can be restarted from its last checkpoint against
// the same stream and deliver exactly the records the uninterrupted run
// would have, because the only state ingestion carries across lines is
// captured here: the count of fully delivered lines, the next sequence
// number, and the YearTracker's position (which is what makes a resumed
// Spirit-scale ingest stamp post-New-Year records with the right year).
type Checkpoint struct {
	// Lines is the number of physical lines fully delivered.
	Lines int `json:"lines"`
	// Seq is the next sequence number to assign.
	Seq uint64 `json:"seq"`
	// Year and LastMonth restore the YearTracker.
	Year      int        `json:"year"`
	LastMonth time.Month `json:"last_month"`
	// Stats is the cumulative run statistics at the checkpoint.
	Stats Stats `json:"stats"`
	// Quarantined is the cumulative count of quarantined lines.
	Quarantined int `json:"quarantined"`
	// Retries is the cumulative count of retried transient read errors.
	Retries int `json:"retries"`
	// Panics is the cumulative count of parser panics contained.
	Panics int `json:"panics"`
}

// SaveCheckpoint atomically writes a checkpoint file (write temp +
// rename), so a crash mid-save never leaves a torn checkpoint — the
// harness injects exactly that kind of failure elsewhere.
func SaveCheckpoint(path string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint file. A missing file returns
// os.ErrNotExist, which callers treat as "start fresh".
func LoadCheckpoint(path string) (Checkpoint, error) {
	var cp Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return cp, err
	}
	if err := json.Unmarshal(data, &cp); err != nil {
		return cp, fmt.Errorf("ingest: corrupt checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// ResilientOptions configures fault tolerance. The zero value retries
// transient errors a few times, has no error budget, and starts fresh.
type ResilientOptions struct {
	// MaxRetries bounds retries per transient reader error (default 5).
	MaxRetries int
	// RetryBase is the first backoff delay, doubling per attempt
	// (default 50ms).
	RetryBase time.Duration
	// MaxErrors is the error budget: the run aborts with
	// ErrBudgetExceeded once more than MaxErrors lines have been
	// quarantined. Zero or negative means unlimited — corruption is an
	// object of study, so the default is to keep going.
	MaxErrors int
	// Quarantine receives each damaged line (raw, newline-terminated):
	// unparseable, oversized, or panic-inducing. The record is still
	// delivered to the callback — quarantine is a copy for later study,
	// not a diversion. Nil disables.
	Quarantine io.Writer
	// Resume restores a prior run's state; the first Resume.Lines
	// physical lines of the stream are skipped (re-framed but not
	// re-parsed or re-delivered).
	Resume *Checkpoint
	// CheckpointEvery invokes OnCheckpoint after every N delivered
	// lines (and once at the end). Zero disables periodic checkpoints.
	CheckpointEvery int
	// OnCheckpoint persists a checkpoint; an error aborts the run.
	OnCheckpoint func(Checkpoint) error
	// Sleep replaces time.Sleep in backoff, for tests. Nil uses
	// time.Sleep; context cancellation interrupts either way.
	Sleep func(time.Duration)
}

// temporary is the conventional retryable-error classification
// (net.Error and faultinject.TransientError both satisfy it).
type temporary interface{ Temporary() bool }

// IsTransient reports whether a read error is worth retrying.
func IsTransient(err error) bool {
	var t temporary
	return errors.As(err, &t) && t.Temporary()
}

// retryReader absorbs transient errors below the line framer: a failed
// Read is retried with exponential backoff, so the scanner above only
// ever sees data, EOF, or a permanent error.
type retryReader struct {
	r       io.Reader
	ctx     context.Context
	max     int
	base    time.Duration
	sleep   func(time.Duration)
	retries *int
}

func (rr *retryReader) Read(p []byte) (int, error) {
	delay := rr.base
	for attempt := 0; ; attempt++ {
		n, err := rr.r.Read(p)
		if err == nil || !IsTransient(err) {
			return n, err
		}
		if n > 0 {
			// Deliver the data; if the fault is real it resurfaces on
			// the next call with nothing read.
			return n, nil
		}
		if attempt >= rr.max {
			return 0, err
		}
		*rr.retries++
		mRetries.Inc()
		select {
		case <-rr.ctx.Done():
			return 0, rr.ctx.Err()
		default:
		}
		rr.sleep(delay)
		delay *= 2
	}
}

// safeParse contains parser panics to the offending line: a panicking
// parse yields a Corrupted record carrying the raw line, exactly like
// any other unparseable input.
func (rd Reader) safeParse(line string, years *YearTracker) (rec logrec.Record, perr, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			rec = logrec.Record{System: rd.System, Raw: line, Corrupted: true}
			perr, panicked = true, true
		}
	}()
	rec, perr = rd.parseLine(line, years)
	return rec, perr, false
}

// ReadResilient ingests the stream with full fault tolerance, streaming
// records to fn in arrival order. It returns the final checkpoint —
// valid for resumption whether the run completed, was cancelled, hit its
// error budget, or died on a permanent reader error — and the first
// fatal error, if any. A record is covered by the checkpoint only after
// fn has accepted it, so a resumed run never skips or double-delivers.
func (rd Reader) ReadResilient(ctx context.Context, r io.Reader, fn func(logrec.Record) error, opts ResilientOptions) (Checkpoint, error) {
	sp := obs.Default.StartSpan("ingest")
	defer sp.End()
	if ctx == nil {
		ctx = context.Background()
	}
	maxRetries := opts.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 5
	}
	base := opts.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	maxLine := rd.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	start := rd.Start
	if start.IsZero() {
		start = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	}

	var cp Checkpoint
	years := NewYearTracker(start)
	if opts.Resume != nil {
		cp = *opts.Resume
		years = RestoreYearTracker(cp.Year, cp.LastMonth)
	} else {
		cp.Year, cp.LastMonth = years.State()
	}

	retries := cp.Retries
	rr := &retryReader{r: r, ctx: ctx, max: maxRetries, base: base, sleep: sleep, retries: &retries}
	ls := newLineScanner(rr, maxLine)
	defer ls.release()

	// snap keeps the checkpoint internally consistent on every exit
	// path. The YearTracker state is safe to snapshot even when the
	// last parsed line was not delivered (fn error): re-parsing the same
	// line on resume is idempotent, because the tracker only advances on
	// a month jump and the rejected line's month is now LastMonth.
	snap := func() {
		cp.Retries = retries
		cp.Year, cp.LastMonth = years.State()
	}

	// Skip the lines a prior run already delivered. The stream is
	// re-framed with the same capping rules, so line boundaries — and
	// therefore everything downstream — are identical to the first run.
	for skipped := 0; skipped < cp.Lines; skipped++ {
		if _, _, err := ls.next(); err != nil {
			if err == io.EOF {
				return cp, fmt.Errorf("ingest %v: stream ended at line %d, before resume point %d", rd.System, skipped, cp.Lines)
			}
			return cp, fmt.Errorf("ingest %v: replaying to resume point: %w", rd.System, err)
		}
	}

	checkpoint := func() error {
		snap()
		mCheckpoints.Inc()
		if opts.OnCheckpoint != nil {
			return opts.OnCheckpoint(cp)
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			snap()
			return cp, err
		}
		raw, oversized, rerr := ls.next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			snap()
			return cp, fmt.Errorf("ingest %v: %w", rd.System, rerr)
		}
		line := string(raw)
		mLineBytes.Observe(int64(len(raw)))
		rec, perr, panicked := rd.safeParse(line, years)
		if oversized {
			rec.Corrupted = true
			perr = true
		}
		rec.Seq = cp.Seq
		if err := fn(rec); err != nil {
			snap()
			return cp, err
		}
		// The record is delivered: fold the line into the checkpoint.
		cp.Seq++
		cp.Lines++
		cp.Stats.Lines++
		mLines.Inc()
		if oversized {
			cp.Stats.Oversized++
			mOversized.Inc()
		}
		if panicked {
			cp.Panics++
			mPanics.Inc()
		}
		if perr {
			cp.Stats.ParseErrors++
			mParseErrs.Inc()
			cp.Quarantined++
			mQuarantined.Inc()
			if opts.Quarantine != nil {
				if _, err := io.WriteString(opts.Quarantine, line+"\n"); err != nil {
					snap()
					return cp, fmt.Errorf("ingest %v: quarantine: %w", rd.System, err)
				}
			}
			if opts.MaxErrors > 0 && cp.Quarantined > opts.MaxErrors {
				snap()
				return cp, fmt.Errorf("%w: %d > %d", ErrBudgetExceeded, cp.Quarantined, opts.MaxErrors)
			}
		}
		if opts.CheckpointEvery > 0 && cp.Lines%opts.CheckpointEvery == 0 {
			if err := checkpoint(); err != nil {
				return cp, fmt.Errorf("ingest %v: checkpoint: %w", rd.System, err)
			}
		}
	}
	if err := checkpoint(); err != nil {
		return cp, fmt.Errorf("ingest %v: checkpoint: %w", rd.System, err)
	}
	return cp, nil
}
