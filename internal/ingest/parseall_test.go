package ingest_test

// Equivalence property tests for the chunk-parallel parser: ParseAll and
// ReadAllParallel must be byte-identical to the serial reader for every
// system's traffic and for adversarial year-rollover streams, across
// chunk sizes and worker counts. The serial path is the specification;
// the parallel path is only an optimization.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/parallel"
	"whatsupersay/internal/simulate"
)

var parseOpts = []parallel.Options{
	{Workers: 1, ChunkSize: 1},
	{Workers: 1, ChunkSize: 1000},
	{Workers: 2, ChunkSize: 3},
	{Workers: 4, ChunkSize: 257},
	{Workers: 8, ChunkSize: 4096},
	{},
}

func firstDiff(t *testing.T, got, want []logrec.Record, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: record %d diverged\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestParseAllMatchesSerial: on each system's generated traffic
// (including injected corruption), ParseAll reproduces the streaming
// reader record-for-record and stat-for-stat under every pool shape.
func TestParseAllMatchesSerial(t *testing.T) {
	for _, sys := range logrec.Systems() {
		out, err := simulate.Generate(simulate.Config{
			System: sys, Scale: 0.0002, Seed: 42, CorruptionProb: 0.01,
		})
		if err != nil {
			t.Fatalf("%v: generate: %v", sys, err)
		}
		// Re-split on newlines so corrupted lines with embedded breaks
		// frame identically for the streaming and in-memory paths.
		lines := strings.Split(strings.Join(out.Lines, "\n"), "\n")
		rd := ingest.Reader{System: sys, Start: out.Start}

		want, wantStats, err := rd.Read(strings.NewReader(strings.Join(lines, "\n") + "\n"))
		if err != nil {
			t.Fatalf("%v: serial read: %v", sys, err)
		}
		for _, opts := range parseOpts {
			got, gotStats := rd.ParseAll(lines, opts)
			label := fmt.Sprintf("%v opts %+v", sys, opts)
			firstDiff(t, got, want, label)
			if gotStats != wantStats {
				t.Fatalf("%s: stats %+v, want %+v", label, gotStats, wantStats)
			}
		}
	}
}

// TestReadAllParallelMatchesReadAll: the whole-stream entry point —
// framing, parsing, oversized capping, dialect tally, canonical sort —
// agrees with the serial ReadAll.
func TestReadAllParallelMatchesReadAll(t *testing.T) {
	for _, sys := range logrec.Systems() {
		out, err := simulate.Generate(simulate.Config{
			System: sys, Scale: 0.0002, Seed: 7, CorruptionProb: 0.02,
		})
		if err != nil {
			t.Fatalf("%v: generate: %v", sys, err)
		}
		text := strings.Join(out.Lines, "\n") + "\n"
		want, wantStats, err := ingest.ReadAll(strings.NewReader(text), sys, out.Start)
		if err != nil {
			t.Fatalf("%v: serial: %v", sys, err)
		}
		for _, opts := range parseOpts {
			got, gotStats, err := ingest.ReadAllParallel(strings.NewReader(text), sys, out.Start, opts)
			if err != nil {
				t.Fatalf("%v: parallel: %v", sys, err)
			}
			label := fmt.Sprintf("%v opts %+v", sys, opts)
			firstDiff(t, got, want, label)
			if gotStats != wantStats {
				t.Fatalf("%s: stats %+v, want %+v", label, gotStats, wantStats)
			}
		}
	}
}

// rolloverLines builds a BSD-syslog stream that crosses New Year twice
// (the Spirit shape: a 558-day window spans two rollovers), with
// corrupted lines scattered through it — including immediately before
// and after the month jumps, where they stress the stitch: a failed
// parse must keep the pre-advance year while its clean neighbors shift.
func rolloverLines() []string {
	months := []time.Month{
		time.October, time.November, time.December, // year 0
		time.January, time.February, time.June, time.November, time.December, // year 1
		time.January, time.March, // year 2
	}
	var lines []string
	day := 0
	for mi, m := range months {
		for i := 0; i < 9; i++ {
			ts := time.Date(2004, m, 1+i%27, 3, 4, 5, 0, time.UTC)
			lines = append(lines, fmt.Sprintf("%s sn%d sshd: session opened %d",
				ts.Format("Jan _2 15:04:05"), day%317, day))
			day++
		}
		// Corruption at every month seam.
		lines = append(lines, fmt.Sprintf("#### garbage at seam %d ####", mi))
	}
	return lines
}

// TestParseAllYearRollover: the year stitch. Chunk sizes are chosen so
// boundaries land before, on, and after the rollover records, and the
// test asserts the stream really did advance two years serially (so the
// stitch is exercised, not vacuous).
func TestParseAllYearRollover(t *testing.T) {
	lines := rolloverLines()
	start := time.Date(2004, time.October, 1, 0, 0, 0, 0, time.UTC)
	rd := ingest.Reader{System: logrec.Spirit, Start: start}

	want, wantStats, err := rd.Read(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("serial read: %v", err)
	}
	maxYear := 0
	for _, r := range want {
		if !r.Corrupted && r.Time.Year() > maxYear {
			maxYear = r.Time.Year()
		}
	}
	if maxYear != start.Year()+2 {
		t.Fatalf("serial stream ends in year %d, want %d: rollover not exercised", maxYear, start.Year()+2)
	}
	if wantStats.ParseErrors == 0 {
		t.Fatal("no corrupted lines in rollover stream: stitch not stressed")
	}

	for cs := 1; cs <= len(lines)+1; cs++ {
		for _, workers := range []int{1, 3, 8} {
			opts := parallel.Options{Workers: workers, ChunkSize: cs}
			got, gotStats := rd.ParseAll(lines, opts)
			label := fmt.Sprintf("chunk=%d workers=%d", cs, workers)
			firstDiff(t, got, want, label)
			if gotStats != wantStats {
				t.Fatalf("%s: stats %+v, want %+v", label, gotStats, wantStats)
			}
		}
	}
}

// BenchmarkParseAll times serial vs chunk-parallel parsing of a
// Thunderbird-shaped stream.
func BenchmarkParseAll(b *testing.B) {
	out, err := simulate.Generate(simulate.Config{System: logrec.Thunderbird, Scale: 0.001, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rd := ingest.Reader{System: logrec.Thunderbird, Start: out.Start}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rd.ParseAll(out.Lines, parallel.Options{Workers: 1})
		}
		b.ReportMetric(float64(len(out.Lines))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rd.ParseAll(out.Lines, parallel.Options{})
		}
		b.ReportMetric(float64(len(out.Lines))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
