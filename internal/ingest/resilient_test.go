package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/faultinject"
	"whatsupersay/internal/logrec"
)

// chaosInput builds a clean, parseable syslog stream large enough that
// the seeded injector damages a meaningful number of lines.
func chaosInput(n int) string {
	var b strings.Builder
	base := time.Date(2005, 3, 7, 14, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		fmt.Fprintf(&b, "%s ln%02d kernel: GM: LANai is not running message %d\n",
			ts.Format("Jan  2 15:04:05"), i%40, i)
	}
	return b.String()
}

// noSleep replaces backoff sleeps in tests.
func noSleep(time.Duration) {}

// collect gathers records through a ReadResilient run.
func collect(t *testing.T, rd Reader, r *strings.Reader, cfg faultinject.ReaderConfig, opts ResilientOptions) ([]logrec.Record, Checkpoint, error) {
	t.Helper()
	var recs []logrec.Record
	opts.Sleep = noSleep
	cp, err := rd.ReadResilient(context.Background(), cfg.Wrap(r), func(rec logrec.Record) error {
		recs = append(recs, rec)
		return nil
	}, opts)
	return recs, cp, err
}

// TestResilientChaosRun is the headline acceptance test: a stream beset
// by transient errors, short reads, byte garbling, a torn final line,
// and an oversized line completes without aborting, and the quarantine
// holds exactly the damaged lines.
func TestResilientChaosRun(t *testing.T) {
	input := chaosInput(600)
	// Splice in an oversized line mid-stream.
	lines := strings.SplitAfter(input, "\n")
	huge := "Mar  7 14:05:00 ln00 kernel: " + strings.Repeat("A", 3000) + "\n"
	lines[300] = huge + lines[300]
	input = strings.Join(lines, "")

	cfg := faultinject.ReaderConfig{
		Seed:             7,
		ShortReads:       true,
		TransientErrProb: 0.05,
		GarbleProb:       0.0008,
		TearTailBytes:    25, // tears the final line mid-record
	}
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC), MaxLineBytes: 2048}
	var quarantine bytes.Buffer
	var recs []logrec.Record
	cp, err := rd.ReadResilient(context.Background(), cfg.Wrap(strings.NewReader(input)),
		func(rec logrec.Record) error {
			recs = append(recs, rec)
			return nil
		},
		ResilientOptions{Quarantine: &quarantine, Sleep: noSleep})
	if err != nil {
		t.Fatalf("chaos run aborted: %v", err)
	}
	if cp.Retries == 0 {
		t.Error("no transient errors were retried; fault injection not exercised")
	}
	if cp.Stats.Oversized != 1 {
		t.Errorf("oversized = %d, want 1", cp.Stats.Oversized)
	}
	if len(recs) != cp.Stats.Lines {
		t.Fatalf("delivered %d records for %d lines", len(recs), cp.Stats.Lines)
	}

	// Quarantine exactness: the quarantined lines are exactly the raw
	// forms of the corrupted records, in order, and nothing else.
	var wantQ []string
	for _, r := range recs {
		if r.Corrupted {
			wantQ = append(wantQ, r.Raw)
		}
	}
	if len(wantQ) == 0 {
		t.Fatal("injector damaged nothing; raise probabilities")
	}
	gotQ := strings.Split(strings.TrimSuffix(quarantine.String(), "\n"), "\n")
	if !reflect.DeepEqual(gotQ, wantQ) {
		t.Errorf("quarantine mismatch: got %d lines, want %d", len(gotQ), len(wantQ))
	}
	if cp.Quarantined != len(wantQ) {
		t.Errorf("cp.Quarantined = %d, want %d", cp.Quarantined, len(wantQ))
	}

	// Clean lines must have survived the chaos intact: every
	// non-corrupted record still parses to the expected shape.
	for _, r := range recs {
		if !r.Corrupted && r.Source == "" {
			t.Fatalf("clean record lost its source: %q", r.Raw)
		}
	}
}

// TestResilientResumeAfterKill: a run killed mid-stream (consumer
// failure) and resumed from its checkpoint delivers byte-identical
// records to an uninterrupted run over the same damaged stream.
func TestResilientResumeAfterKill(t *testing.T) {
	input := chaosInput(500)
	cfg := faultinject.ReaderConfig{Seed: 13, ShortReads: true, TransientErrProb: 0.04, GarbleProb: 0.001, TearTailBytes: 10}
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}

	full, fullCP, err := collect(t, rd, strings.NewReader(input), cfg, ResilientOptions{})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Killed run: the consumer dies at record 173.
	kill := errors.New("killed")
	var first []logrec.Record
	cp, err := rd.ReadResilient(context.Background(), cfg.Wrap(strings.NewReader(input)),
		func(rec logrec.Record) error {
			if len(first) == 173 {
				return kill
			}
			first = append(first, rec)
			return nil
		}, ResilientOptions{Sleep: noSleep})
	if !errors.Is(err, kill) {
		t.Fatalf("killed run: err = %v", err)
	}
	if cp.Lines != 173 {
		t.Fatalf("checkpoint covers %d lines, want 173", cp.Lines)
	}

	// Resumed run over a fresh, identically-faulted stream.
	rest, restCP, err := collect(t, rd, strings.NewReader(input), cfg, ResilientOptions{Resume: &cp})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got := append(append([]logrec.Record(nil), first...), rest...)
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("kill+resume records differ from uninterrupted run: %d vs %d records", len(got), len(full))
	}
	if restCP.Stats != fullCP.Stats {
		t.Errorf("resumed final stats %+v != uninterrupted %+v", restCP.Stats, fullCP.Stats)
	}
}

// TestResilientResumeAfterHardReaderFailure: the disk dies mid-run
// (permanent read error); the returned checkpoint resumes against a
// healthy stream and the union matches an undamaged run.
func TestResilientResumeAfterHardReaderFailure(t *testing.T) {
	input := chaosInput(400)
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}

	full, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}

	dying := faultinject.ReaderConfig{Seed: 3, FailAfterBytes: int64(len(input) / 3)}
	var first []logrec.Record
	cp, err := rd.ReadResilient(context.Background(), dying.Wrap(strings.NewReader(input)),
		func(rec logrec.Record) error {
			first = append(first, rec)
			return nil
		}, ResilientOptions{Sleep: noSleep})
	if !errors.Is(err, faultinject.ErrHardFailure) {
		t.Fatalf("err = %v, want ErrHardFailure", err)
	}
	if len(first) != cp.Lines {
		t.Fatalf("checkpoint %d lines != %d delivered", cp.Lines, len(first))
	}

	rest, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{Resume: &cp})
	if err != nil {
		t.Fatal(err)
	}
	got := append(first, rest...)
	if !reflect.DeepEqual(got, full) {
		t.Fatalf("hard-failure resume differs: %d vs %d records", len(got), len(full))
	}
}

// TestResilientErrorBudget: more damage than the budget tolerates aborts
// with ErrBudgetExceeded; unlimited budget does not.
func TestResilientErrorBudget(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.WriteString("complete garbage that cannot parse\n")
	}
	rd := Reader{System: logrec.Liberty}
	_, cp, err := collect(t, rd, strings.NewReader(b.String()), faultinject.ReaderConfig{}, ResilientOptions{MaxErrors: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if cp.Quarantined != 11 {
		t.Errorf("aborted at %d quarantined, want 11 (budget 10 exceeded)", cp.Quarantined)
	}
	recs, _, err := collect(t, rd, strings.NewReader(b.String()), faultinject.ReaderConfig{}, ResilientOptions{})
	if err != nil {
		t.Fatalf("unlimited budget aborted: %v", err)
	}
	if len(recs) != 50 {
		t.Errorf("delivered %d, want all 50", len(recs))
	}
}

// TestResilientContextCancel: cancellation between lines stops the run
// with a checkpoint that resumes cleanly.
func TestResilientContextCancel(t *testing.T) {
	input := chaosInput(300)
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	ctx, cancel := context.WithCancel(context.Background())
	var first []logrec.Record
	cp, err := rd.ReadResilient(ctx, strings.NewReader(input), func(rec logrec.Record) error {
		first = append(first, rec)
		if len(first) == 100 {
			cancel()
		}
		return nil
	}, ResilientOptions{Sleep: noSleep})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	rest, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{Resume: &cp})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := append(first, rest...); !reflect.DeepEqual(got, full) {
		t.Fatal("cancel+resume differs from uninterrupted run")
	}
}

// TestResilientPanicRecovery: a parser panic is contained to its line —
// the run continues and the line is quarantined. The panic is forced
// through safeParse with a nil YearTracker (a deliberate internal
// misuse standing in for a real parser bug).
func TestResilientPanicRecovery(t *testing.T) {
	rd := Reader{System: logrec.Liberty}
	rec, perr, panicked := rd.safeParse("Mar  7 14:30:05 ln1 kernel: boom", nil)
	if !panicked {
		t.Fatal("expected a contained panic (nil YearTracker)")
	}
	if !perr || !rec.Corrupted {
		t.Error("panicking line must come back as a corrupted parse error")
	}
	if rec.Raw != "Mar  7 14:30:05 ln1 kernel: boom" {
		t.Errorf("raw line not preserved: %q", rec.Raw)
	}
	if rec.System != logrec.Liberty {
		t.Error("system not stamped on panic record")
	}
}

// TestResilientYearRolloverAcrossResume: the checkpoint carries the
// YearTracker, so a resume after New Year stamps the right year — the
// Spirit 558-day scenario.
func TestResilientYearRolloverAcrossResume(t *testing.T) {
	input := strings.Join([]string{
		"Dec 30 10:00:00 sn300 kernel: a",
		"Dec 31 10:00:00 sn300 kernel: b",
		"Jan  2 10:00:00 sn300 kernel: c",
		"Jan  3 10:00:00 sn300 kernel: d",
	}, "\n") + "\n"
	rd := Reader{System: logrec.Spirit, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}

	// Kill after the rollover already happened (3 records in).
	kill := errors.New("killed")
	var first []logrec.Record
	cp, err := rd.ReadResilient(context.Background(), strings.NewReader(input), func(rec logrec.Record) error {
		if len(first) == 3 {
			return kill
		}
		first = append(first, rec)
		return nil
	}, ResilientOptions{Sleep: noSleep})
	if !errors.Is(err, kill) {
		t.Fatal(err)
	}
	rest, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{Resume: &cp})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0].Time.Year() != 2006 {
		t.Fatalf("resumed record year = %v, want 2006", rest[0].Time)
	}
}

// TestCheckpointFileRoundTrip: Save/Load preserve every field and the
// write is atomic (no torn .tmp left behind).
func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	want := Checkpoint{
		Lines: 42, Seq: 42, Year: 2006, LastMonth: time.February,
		Stats:       Stats{Lines: 42, ParseErrors: 3, Oversized: 1, Syslog: 40, RAS: 1, Event: 1},
		Quarantined: 3, Retries: 7, Panics: 1,
	}
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind")
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint must not load silently")
	}
}

// TestOversizedLineContinues: the satellite fix — an oversized line
// becomes one Corrupted record (capped prefix) and ingestion continues,
// in the plain ReadFunc path too.
func TestOversizedLineContinues(t *testing.T) {
	lines := []string{
		"Mar  7 14:30:05 ln1 kernel: before",
		"Mar  7 14:30:06 ln1 kernel: " + strings.Repeat("B", 5000),
		"Mar  7 14:30:07 ln1 kernel: after",
	}
	input := strings.Join(lines, "\n") + "\n"
	rd := Reader{System: logrec.Liberty, MaxLineBytes: 100, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	recs, stats, err := rd.Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("oversized line aborted the stream: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if stats.Oversized != 1 || stats.ParseErrors != 1 {
		t.Errorf("stats = %+v, want 1 oversized / 1 parse error", stats)
	}
	if !recs[1].Corrupted {
		t.Error("oversized record not marked corrupted")
	}
	if len(recs[1].Raw) != 100 {
		t.Errorf("capped prefix = %d bytes, want 100", len(recs[1].Raw))
	}
	// The capped prefix still recovered the timestamp and source.
	if recs[1].Source != "ln1" {
		t.Errorf("oversized record lost its source: %q", recs[1].Source)
	}
	if recs[2].Body != "after" || recs[2].Corrupted {
		t.Error("line after the oversized one was damaged")
	}
	// Sequence numbers are contiguous: nothing was dropped or split.
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
	}
}

// TestTornFinalLine: a final line with no newline (torn tail) is still
// delivered, matching the old Scanner behavior.
func TestTornFinalLine(t *testing.T) {
	input := "Mar  7 14:30:05 ln1 kernel: complete\nMar  7 14:30:06 ln1 ker"
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	recs, stats, err := rd.Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || stats.Lines != 2 {
		t.Fatalf("records = %d, lines = %d; want 2, 2", len(recs), stats.Lines)
	}
	if recs[1].Raw != "Mar  7 14:30:06 ln1 ker" {
		t.Errorf("torn line raw = %q", recs[1].Raw)
	}
}

// TestResilientCheckpointEvery: periodic checkpoints fire on schedule
// and each is a valid resume point.
func TestResilientCheckpointEvery(t *testing.T) {
	input := chaosInput(100)
	rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)}
	var cps []Checkpoint
	_, err := rd.ReadResilient(context.Background(), strings.NewReader(input),
		func(logrec.Record) error { return nil },
		ResilientOptions{CheckpointEvery: 30, OnCheckpoint: func(cp Checkpoint) error {
			cps = append(cps, cp)
			return nil
		}, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	// 30, 60, 90, plus the final one at 100.
	if len(cps) != 4 {
		t.Fatalf("checkpoints = %d, want 4", len(cps))
	}
	full, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mid := cps[1]
	rest, _, err := collect(t, rd, strings.NewReader(input), faultinject.ReaderConfig{}, ResilientOptions{Resume: &mid})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rest, full[60:]) {
		t.Error("resume from periodic checkpoint diverges")
	}
}
