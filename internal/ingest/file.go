package ingest

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"whatsupersay/internal/logrec"
)

// Logs on disk are routinely gzipped (Table 2 reports compressed sizes
// because that is how the archives are kept); the file helpers here make
// .gz transparent for both the CLI and library users.

// Open opens a log file for reading, transparently decompressing .gz.
// The returned closer closes both layers.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: open %s: %w", path, err)
	}
	return &readCloser{Reader: zr, closers: []io.Closer{zr, f}}, nil
}

// Create opens a log file for writing, transparently compressing .gz and
// buffering either way. Close flushes everything.
func Create(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		return &writeCloser{Writer: zw, closers: []io.Closer{zw, f}}, nil
	}
	bw := bufio.NewWriter(f)
	return &writeCloser{Writer: bw, closers: []io.Closer{flushCloser{bw}, f}}, nil
}

type readCloser struct {
	io.Reader
	closers []io.Closer
}

func (rc *readCloser) Close() error {
	var first error
	for _, c := range rc.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type writeCloser struct {
	io.Writer
	closers []io.Closer
}

func (wc *writeCloser) Close() error {
	var first error
	for _, c := range wc.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushCloser adapts a bufio.Writer to io.Closer.
type flushCloser struct{ w *bufio.Writer }

func (f flushCloser) Close() error { return f.w.Flush() }

// ReadTree ingests a per-source directory tree — the layout the study's
// logging servers produced ("the logging servers ... place them in a
// directory structure according to the source node", Section 3.1): every
// regular file under dir (any depth, .gz transparent) is read as one
// source's log, and the merged record stream is returned in canonical
// time order with sequence numbers reassigned globally.
func ReadTree(dir string, sys logrec.System, start time.Time) ([]logrec.Record, Stats, error) {
	var (
		all   []logrec.Record
		stats Stats
	)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		r, err := Open(path)
		if err != nil {
			return err
		}
		recs, st, err := ReadAll(r, sys, start)
		r.Close()
		if err != nil {
			return fmt.Errorf("ingest %s: %w", path, err)
		}
		stats.add(st)
		all = append(all, recs...)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	logrec.SortRecords(all)
	for i := range all {
		all[i].Seq = uint64(i)
	}
	return all, stats, nil
}

// WriteTree writes records into the per-source directory layout: one
// file per source under dir (gzipped when gz is set), named
// <source>.log[.gz]; records with empty or corrupted sources go to
// _unattributed.log. render must produce the record's wire line.
func WriteTree(dir string, recs []logrec.Record, render func(logrec.Record) string, gz bool) error {
	bySource := make(map[string][]string)
	for _, r := range recs {
		name := r.Source
		if name == "" || !plainToken(name) {
			name = "_unattributed"
		}
		bySource[name] = append(bySource[name], render(r))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for src, lines := range bySource {
		name := src + ".log"
		if gz {
			name += ".gz"
		}
		if _, err := WriteLines(filepath.Join(dir, name), lines); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
	}
	return nil
}

// plainToken reports whether a source is safe as a file name.
func plainToken(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
		default:
			return false
		}
	}
	return s != "" && s[0] != '.'
}

// WriteLines writes a log (one message per line) to path, gzipping when
// the path ends in .gz. It returns the number of bytes written before
// compression.
func WriteLines(path string, lines []string) (int64, error) {
	w, err := Create(path)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, l := range lines {
		wn, err := io.WriteString(w, l)
		if err != nil {
			w.Close()
			return n, err
		}
		n += int64(wn)
		if _, err := io.WriteString(w, "\n"); err != nil {
			w.Close()
			return n, err
		}
		n++
	}
	return n, w.Close()
}
