package ingest

import (
	"io"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/parallel"
	"whatsupersay/internal/syslogng"
)

// Chunk-parallel parsing. Per-line parsing is embarrassingly parallel
// except for one strand of sequential state: the BSD-timestamp year
// tracker, which infers the missing year from stream order. ParseAll
// parallelizes anyway by exploiting the tracker's structure: within a
// chunk, only the *first* advancing record's rollover decision depends
// on state carried in from earlier chunks (every later decision
// compares against a month seen inside the chunk). So each chunk is
// parsed optimistically against the window-start state, and a cheap
// sequential stitch afterwards computes, per chunk, a constant year
// delta for the records before and after its first advancing record —
// re-parsing a line only when its effective year actually shifts,
// which in practice is no line at all (rollovers are rare and chunk
// counts small). The result is byte-identical to the serial Reader
// (enforced by property tests across chunk sizes and worker counts).

// parsedChunk is one worker's output plus the year bookkeeping the
// stitch needs.
type parsedChunk struct {
	recs  []logrec.Record
	stats Stats
	// yearUsed[i] is the effective year line i was parsed with, or -1
	// for non-syslog lines (whose wire form carries its own year).
	yearUsed []int
	// advIdx is the index of the first record that advanced the year
	// tracker (syslog dialect, clean parse), or -1 if none did.
	advIdx int
	// advMonth is that record's month.
	advMonth time.Month
	// endYear/endMonth are the tracker's state after the chunk, under
	// the optimistic assumption that it entered at the window start.
	endYear  int
	endMonth time.Month
}

// rollsOver reports the tracker's New-Year inference: month jumped
// backward by more than six months.
func rollsOver(last, m time.Month) bool {
	return m < last && last-m > 6
}

// ParseAll parses an in-memory slice of raw lines into records,
// chunk-parallel, assigning sequence numbers in slice order. It is the
// batch analogue of ReadFunc: identical records, identical stats.
func (rd Reader) ParseAll(lines []string, opts parallel.Options) ([]logrec.Record, Stats) {
	sp := obs.Default.StartSpan("parse")
	defer sp.End()
	start := rd.Start
	if start.IsZero() {
		start = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	startYear, startMonth := start.Year(), start.Month()

	n := len(lines)
	chunks := make([]parsedChunk, opts.Chunks(n))
	cs := opts.ChunkSize
	if cs <= 0 {
		cs = parallel.DefaultChunkSize
	}
	parallel.Do(n, opts, func(lo, hi int) {
		pc := parsedChunk{
			recs:     make([]logrec.Record, 0, hi-lo),
			yearUsed: make([]int, hi-lo),
			advIdx:   -1,
		}
		years := NewYearTracker(start)
		for i := lo; i < hi; i++ {
			rec, perr := rd.parseLine(lines[i], years)
			k := i - lo
			pc.yearUsed[k] = -1
			if !(rd.System == logrec.BlueGeneL || sniffRAS(lines[i]) || sniffEvent(lines[i])) {
				// Syslog-dialect line: its effective year is whatever
				// the tracker held when it was (re)parsed.
				pc.yearUsed[k] = years.year
				if perr {
					// Failed lines do not advance the tracker; their
					// (possibly zero) time used the pre-advance year.
					pc.yearUsed[k] = years.year
				} else if pc.advIdx < 0 {
					pc.advIdx = k
					pc.advMonth = rec.Time.Month()
				}
			}
			rec.Seq = uint64(i)
			pc.stats.Lines++
			if perr {
				pc.stats.ParseErrors++
			}
			pc.recs = append(pc.recs, rec)
		}
		pc.endYear, pc.endMonth = years.State()
		chunks[lo/cs] = pc
	})

	// Sequential stitch: thread the real tracker state through the
	// chunks and repair any line whose effective year shifted.
	recs := make([]logrec.Record, 0, n)
	var stats Stats
	year, month := startYear, startMonth
	for ci := range chunks {
		pc := &chunks[ci]
		preDelta := year - startYear
		postDelta := preDelta
		if pc.advIdx >= 0 {
			dAssumed, dActual := 0, 0
			if rollsOver(startMonth, pc.advMonth) {
				dAssumed = 1
			}
			if rollsOver(month, pc.advMonth) {
				dActual = 1
			}
			postDelta += dActual - dAssumed
		}
		if preDelta != 0 || postDelta != 0 {
			lo := ci * cs
			for k := range pc.recs {
				if pc.yearUsed[k] < 0 {
					continue
				}
				delta := preDelta
				if pc.advIdx >= 0 && k >= pc.advIdx {
					delta = postDelta
				}
				if delta == 0 {
					continue
				}
				rec, _ := rd.reparse(lines[lo+k], pc.yearUsed[k]+delta)
				rec.Seq = pc.recs[k].Seq
				pc.recs[k] = rec
			}
		}
		if pc.advIdx >= 0 {
			year = pc.endYear + postDelta
			month = pc.endMonth
		}
		recs = append(recs, pc.recs...)
		stats.add(pc.stats)
	}
	// One fold into the ingest counters per call, not per line: the
	// batch path is the benched hot loop.
	recordStats(stats)
	return recs, stats
}

// reparse re-runs the syslog parse of one line with its corrected
// effective year (the stitch path). The serial reader's final answer
// for a syslog line is always syslogng.Parse(line, effectiveYear), so
// calling it directly reproduces the serial record exactly.
func (rd Reader) reparse(line string, year int) (logrec.Record, bool) {
	rec, perr := syslogng.Parse(line, year, rd.System)
	rec.System = rd.System
	return rec, perr != nil
}

// ReadAllParallel ingests a whole stream like ReadAll — same records,
// same canonical sort, same stats — but parses chunk-parallel after a
// single streaming pass that splits lines. Oversized lines keep the
// streaming path's semantics: capped, marked corrupted, counted.
func ReadAllParallel(r io.Reader, sys logrec.System, start time.Time, opts parallel.Options) ([]logrec.Record, Stats, error) {
	rd := Reader{System: sys, Start: start}
	maxLine := rd.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	ls := newLineScanner(r, maxLine)
	defer ls.release()
	var lines []string
	var oversized []int
	for i := 0; ; i++ {
		raw, over, err := ls.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, Stats{}, err
		}
		if over {
			oversized = append(oversized, i)
		}
		lines = append(lines, string(raw))
	}
	recs, stats := rd.ParseAll(lines, opts)
	for _, i := range oversized {
		if !recs[i].Corrupted {
			recs[i].Corrupted = true
			stats.ParseErrors++
			mParseErrs.Inc()
		}
		stats.Oversized++
		mOversized.Inc()
	}
	tallyDialects(recs, sys, &stats)
	logrec.SortRecords(recs)
	return recs, stats, nil
}

// tallyDialects fills the per-dialect stats the way ReadAll does.
func tallyDialects(recs []logrec.Record, sys logrec.System, stats *Stats) {
	for i := range recs {
		switch {
		case sniffRAS(recs[i].Raw) || (sys == logrec.BlueGeneL && !recs[i].Corrupted):
			stats.RAS++
		case sniffEvent(recs[i].Raw):
			stats.Event++
		default:
			stats.Syslog++
		}
	}
}
