package ingest

import (
	"path/filepath"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/syslogng"
)

// TestTreeRoundTrip writes a synthetic Liberty log into the per-source
// directory layout of Section 3.1, ingests it back, and checks the
// merged stream is complete and canonically ordered.
func TestTreeRoundTrip(t *testing.T) {
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: 0.00005, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	render := func(r logrec.Record) string {
		if r.Raw != "" {
			return r.Raw
		}
		return syslogng.Render(r, false)
	}
	if err := WriteTree(filepath.Join(dir, "liberty"), out.Records, render, true); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := ReadTree(filepath.Join(dir, "liberty"), logrec.Liberty, out.Start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != len(out.Records) {
		t.Fatalf("tree ingested %d lines, want %d", stats.Lines, len(out.Records))
	}
	if !logrec.IsSorted(recs) {
		t.Fatal("merged stream not sorted")
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("global sequence numbering broken at %d", i)
		}
	}
	// Corrupted sources land in the unattributed file rather than
	// producing garbage file names.
	if _, err := Open(filepath.Join(dir, "liberty", "_unattributed.log.gz")); err != nil {
		t.Log("no unattributed file (no source corruption at this scale) — acceptable")
	}
}

func TestReadTreeMissingDir(t *testing.T) {
	if _, _, err := ReadTree(filepath.Join(t.TempDir(), "nope"), logrec.Liberty, time.Now()); err == nil {
		t.Error("missing directory must error")
	}
}

func TestPlainToken(t *testing.T) {
	cases := map[string]bool{
		"ln1": true, "tbird-admin1": true, "R02-M1-N0": true,
		"": false, ".hidden": false, "a/b": false, "x y": false, "#@!": false,
	}
	for in, want := range cases {
		if got := plainToken(in); got != want {
			t.Errorf("plainToken(%q) = %v, want %v", in, got, want)
		}
	}
}
