package ingest_test

import (
	"path/filepath"
	"testing"
	"time"

	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/syslogng"
)

// TestTreeRoundTrip writes a synthetic Liberty log into the per-source
// directory layout of Section 3.1, ingests it back, and checks the
// merged stream is complete and canonically ordered.
func TestTreeRoundTrip(t *testing.T) {
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: 0.00005, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	render := func(r logrec.Record) string {
		if r.Raw != "" {
			return r.Raw
		}
		return syslogng.Render(r, false)
	}
	if err := ingest.WriteTree(filepath.Join(dir, "liberty"), out.Records, render, true); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := ingest.ReadTree(filepath.Join(dir, "liberty"), logrec.Liberty, out.Start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != len(out.Records) {
		t.Fatalf("tree ingested %d lines, want %d", stats.Lines, len(out.Records))
	}
	if !logrec.IsSorted(recs) {
		t.Fatal("merged stream not sorted")
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("global sequence numbering broken at %d", i)
		}
	}
	// Corrupted sources land in the unattributed file rather than
	// producing garbage file names.
	if _, err := ingest.Open(filepath.Join(dir, "liberty", "_unattributed.log.gz")); err != nil {
		t.Log("no unattributed file (no source corruption at this scale) — acceptable")
	}
}

func TestReadTreeMissingDir(t *testing.T) {
	if _, _, err := ingest.ReadTree(filepath.Join(t.TempDir(), "nope"), logrec.Liberty, time.Now()); err == nil {
		t.Error("missing directory must error")
	}
}
