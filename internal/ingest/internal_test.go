package ingest

// Tests of unexported helpers. Anything that imports package simulate
// must live in the external ingest_test package instead: simulate now
// depends on ingest (parseLines runs through ParseAll), so an internal
// test file importing simulate would close an import cycle.

import "testing"

func TestSniffers(t *testing.T) {
	cases := []struct {
		line       string
		ras, event bool
	}{
		{"2005-06-03-15.42.50.363779 R02-M1-N0 RAS KERNEL FATAL x", true, false},
		{"2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop x", false, true},
		{"Mar  7 14:30:05 ln42 kernel: x", false, false},
		{"", false, false},
		{"2006-03-19", false, false},
	}
	for _, tc := range cases {
		if got := sniffRAS(tc.line); got != tc.ras {
			t.Errorf("sniffRAS(%q) = %v", tc.line, got)
		}
		if got := sniffEvent(tc.line); got != tc.event {
			t.Errorf("sniffEvent(%q) = %v", tc.line, got)
		}
	}
}

func TestPlainToken(t *testing.T) {
	cases := map[string]bool{
		"ln1": true, "tbird-admin1": true, "R02-M1-N0": true,
		"": false, ".hidden": false, "a/b": false, "x y": false, "#@!": false,
	}
	for in, want := range cases {
		if got := plainToken(in); got != want {
			t.Errorf("plainToken(%q) = %v, want %v", in, got, want)
		}
	}
}
