package ingest

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

func TestWriteLinesPlainAndGz(t *testing.T) {
	dir := t.TempDir()
	lines := []string{"Mar  7 14:30:05 ln1 kernel: a", "Mar  7 14:30:06 ln1 kernel: b"}

	for _, name := range []string{"log.txt", "log.txt.gz"} {
		path := filepath.Join(dir, name)
		n, err := WriteLines(path, lines)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantBytes := int64(len(lines[0]) + len(lines[1]) + 2)
		if n != wantBytes {
			t.Errorf("%s: wrote %d uncompressed bytes, want %d", name, n, wantBytes)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("%s open: %v", name, err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
		if got := string(data); got != strings.Join(lines, "\n")+"\n" {
			t.Errorf("%s round trip = %q", name, got)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("missing file must error")
	}
	// A .gz file with non-gzip content must fail at open.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.gz")
	if err := os.WriteFile(bad, []byte("this is not gzip data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("corrupt gzip must error at open")
	}
}

func TestGzRoundTripThroughReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.log.gz")
	lines := []string{
		"Mar  7 14:30:05 ln1 pbs_mom: task_check, cannot tm_reply to 1.l task 1",
		"Mar  7 14:30:06 ln2 kernel: eth0: link up",
	}
	if _, err := WriteLines(path, lines); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, stats, err := ReadAll(r, logrec.Liberty, time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != 2 || len(recs) != 2 {
		t.Errorf("ingested %d lines", stats.Lines)
	}
	if recs[0].Program != "pbs_mom" {
		t.Errorf("record = %+v", recs[0])
	}
}
