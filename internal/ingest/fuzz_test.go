package ingest

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
)

// FuzzReadFunc: on arbitrary byte input the streaming reader must never
// panic, never error (framing and parsing are total — only real reader
// failures surface), never drop a line, and always preserve what it
// read: one record per framed line, sequence numbers contiguous, and the
// raw form of every non-oversized line intact.
func FuzzReadFunc(f *testing.F) {
	f.Add([]byte("Mar  7 14:30:05 ln42 kernel: GM: LANai is not running\n"))
	f.Add([]byte("2005-06-03-15.42.50.363779 R02-M1-N0 RAS KERNEL FATAL data TLB error interrupt\n"))
	f.Add([]byte("2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop warn node heartbeat_fault\n"))
	f.Add([]byte("<6>Mar 19 04:12:00 ddn1 DMT_DINT Failing Disk 2A\n"))
	f.Add([]byte("torn line with no newline"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0x00, 0xff, 0x0a, 0x7f, 0x0a})
	f.Add(bytes.Repeat([]byte("x"), 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := Reader{System: logrec.Liberty, Start: time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC), MaxLineBytes: 128}
		var recs []logrec.Record
		var stats Stats
		err := rd.ReadFunc(bytes.NewReader(data), func(rec logrec.Record) error {
			recs = append(recs, rec)
			return nil
		}, &stats)
		if err != nil {
			t.Fatalf("ReadFunc errored on byte input: %v", err)
		}
		if len(recs) != stats.Lines {
			t.Fatalf("delivered %d records for %d lines", len(recs), stats.Lines)
		}
		// No line vanishes: the framer must account for every
		// newline-delimited line in the input.
		wantLines := bytes.Count(data, []byte{'\n'})
		if len(data) > 0 && data[len(data)-1] != '\n' {
			wantLines++ // torn tail still delivered
		}
		if stats.Lines != wantLines {
			t.Fatalf("framed %d lines, input has %d", stats.Lines, wantLines)
		}
		for i, r := range recs {
			if r.Seq != uint64(i) {
				t.Fatalf("seq[%d] = %d: drop or split detected", i, r.Seq)
			}
			if len(r.Raw) > 128 {
				t.Fatalf("record %d exceeds MaxLineBytes: %d bytes", i, len(r.Raw))
			}
			if !strings.Contains(string(data), r.Raw) && !r.Corrupted {
				t.Fatalf("clean record %d carries raw text not present in input", i)
			}
		}
	})
}
