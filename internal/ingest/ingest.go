// Package ingest reads system-log text — real or synthetic — into the
// structured record model, handling the practical problems Section 3.2.1
// catalogs: mixed dialects within one system's log (Red Storm's syslog
// and SMW event streams arrive interleaved), BSD timestamps with no year
// across multi-year windows (Spirit's 558-day log crosses two New
// Years), and corrupted lines that must be preserved rather than
// dropped, because corruption is itself an object of study.
//
// The readers are streaming: they work line-by-line over an io.Reader and
// never hold the whole log in memory beyond the returned records.
package ingest

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"

	"whatsupersay/internal/ddn"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/rasdb"
	"whatsupersay/internal/syslogng"
)

// Ingestion telemetry. The streaming paths (ReadFunc, ReadResilient)
// update the counters per line — each update is one atomic add on a
// pointer resolved once at init — and the batch path (ParseAll) folds
// its per-chunk stats in once at the end, so the instrumented parse
// stage stays within the bench overhead budget (DESIGN.md §9).
var (
	mLines     = obs.Default.Counter("ingest_lines_total")
	mParseErrs = obs.Default.Counter("ingest_parse_errors_total")
	mOversized = obs.Default.Counter("ingest_oversized_total")
	mLineBytes = obs.Default.Histogram("ingest_line_bytes", obs.Bytes)
)

// recordStats folds one batch run's stats into the ingest counters.
func recordStats(s Stats) {
	mLines.Add(int64(s.Lines))
	mParseErrs.Add(int64(s.ParseErrors))
	mOversized.Add(int64(s.Oversized))
}

// Stats summarizes one ingestion run.
type Stats struct {
	// Lines is the total lines read.
	Lines int
	// ParseErrors counts lines that failed to parse (returned as
	// Corrupted records, never dropped).
	ParseErrors int
	// Oversized counts lines longer than MaxLineBytes; each comes back
	// as one Corrupted record carrying the capped prefix, with the
	// remainder of the physical line discarded.
	Oversized int
	// ByDialect counts lines per detected dialect.
	Syslog, RAS, Event int
}

// add accumulates other into s (used when merging per-file stats and
// when resuming from a checkpoint).
func (s *Stats) add(other Stats) {
	s.Lines += other.Lines
	s.ParseErrors += other.ParseErrors
	s.Oversized += other.Oversized
	s.Syslog += other.Syslog
	s.RAS += other.RAS
	s.Event += other.Event
}

// Dialect sniffing: each wire format has an unambiguous leading shape.

// sniffRAS detects the BG/L RAS timestamp "2005-06-03-15.42.50.363779".
func sniffRAS(line string) bool {
	if len(line) < len(rasdb.TimeLayout) {
		return false
	}
	return line[4] == '-' && line[7] == '-' && line[10] == '-' &&
		line[13] == '.' && line[16] == '.' && line[19] == '.'
}

// sniffEvent detects the SMW event timestamp "2006-03-19 04:11:02".
func sniffEvent(line string) bool {
	if len(line) < len(ddn.EventTimeLayout) {
		return false
	}
	return line[4] == '-' && line[7] == '-' && line[10] == ' ' &&
		line[13] == ':' && line[16] == ':'
}

// Dialect labels the wire format of one raw line, as sniffed from its
// leading shape: "ras", "event", or (the fallback) "syslog". It is the
// classification ReadAll's per-dialect stats use, exported so streaming
// consumers can tally the same way.
func Dialect(raw string) string {
	switch {
	case sniffRAS(raw):
		return "ras"
	case sniffEvent(raw):
		return "event"
	default:
		return "syslog"
	}
}

// YearTracker infers the missing year of BSD-syslog timestamps from
// stream order: when the month jumps backward by more than six months,
// the stream has crossed New Year.
type YearTracker struct {
	year      int
	lastMonth time.Month
}

// NewYearTracker starts tracking at the window's first instant.
func NewYearTracker(start time.Time) *YearTracker {
	return &YearTracker{year: start.Year(), lastMonth: start.Month()}
}

// State exposes the tracker's position so it can be checkpointed.
func (y *YearTracker) State() (year int, lastMonth time.Month) {
	return y.year, y.lastMonth
}

// RestoreYearTracker reconstructs a tracker from checkpointed state.
func RestoreYearTracker(year int, lastMonth time.Month) *YearTracker {
	return &YearTracker{year: year, lastMonth: lastMonth}
}

// Year returns the year to use for a record bearing the given month, and
// advances the tracker.
func (y *YearTracker) Year(m time.Month) int {
	if m < y.lastMonth && y.lastMonth-m > 6 {
		y.year++
	}
	y.lastMonth = m
	return y.year
}

// Reader ingests one system's log.
type Reader struct {
	// System stamps ingested records.
	System logrec.System
	// Start anchors year inference for BSD timestamps; it should be the
	// collection window's start (Table 2).
	Start time.Time
	// MaxLineBytes bounds one line (default 1 MiB); a longer line comes
	// back as one Corrupted record carrying the capped prefix, with the
	// remainder of the physical line discarded — ingestion continues.
	MaxLineBytes int
}

// lineScanner reads capped newline-delimited lines without ever aborting
// the stream: an oversized line is capped at max bytes (the rest of the
// physical line is discarded) and reported truncated, and a final line
// with no trailing newline — a torn tail — is still delivered. Only real
// reader errors surface.
type lineScanner struct {
	br  *bufio.Reader
	max int
	buf []byte
}

// scannerPool recycles lineScanners — the 64 KiB bufio buffer and the
// line scratch buffer dominate the framer's allocations, and ingestion
// creates one scanner per file segment (many, when resuming). A pooled
// scanner whose scratch grew past maxPooledBuf is dropped rather than
// pinned in the pool.
var scannerPool = sync.Pool{New: func() any { return new(lineScanner) }}

const maxPooledBuf = 1 << 20

func newLineScanner(r io.Reader, max int) *lineScanner {
	ls := scannerPool.Get().(*lineScanner)
	if ls.br == nil {
		ls.br = bufio.NewReaderSize(r, 64*1024)
	} else {
		ls.br.Reset(r)
	}
	ls.max = max
	ls.buf = ls.buf[:0]
	return ls
}

// release returns the scanner to the pool. The caller must not touch the
// scanner — or any []byte returned by next — afterwards.
func (ls *lineScanner) release() {
	if cap(ls.buf) > maxPooledBuf {
		ls.buf = nil
	}
	scannerPool.Put(ls)
}

// next returns the next line without its terminator, plus whether the
// line was oversized-and-capped. At end of stream it returns io.EOF.
func (ls *lineScanner) next() (line []byte, oversized bool, err error) {
	ls.buf = ls.buf[:0]
	discarding := false
	for {
		frag, ferr := ls.br.ReadSlice('\n')
		if !discarding {
			ls.buf = append(ls.buf, frag...)
			if len(ls.buf) > ls.max {
				// Cap the line; keep consuming to the newline so the
				// next call starts on the next physical line.
				ls.buf = ls.buf[:ls.max]
				oversized = true
				discarding = true
			}
		}
		switch {
		case ferr == nil:
			return ls.trim(), oversized, nil
		case ferr == bufio.ErrBufferFull:
			continue
		case ferr == io.EOF:
			if len(ls.buf) == 0 {
				return nil, false, io.EOF
			}
			return ls.trim(), oversized, nil
		default:
			return nil, false, ferr
		}
	}
}

// trim strips the trailing newline (and a preceding carriage return)
// from the buffered line.
func (ls *lineScanner) trim() []byte {
	b := ls.buf
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// Read ingests the whole stream, assigning sequence numbers in arrival
// order.
func (rd Reader) Read(r io.Reader) ([]logrec.Record, Stats, error) {
	var (
		recs  []logrec.Record
		stats Stats
	)
	err := rd.ReadFunc(r, func(rec logrec.Record) error {
		recs = append(recs, rec)
		return nil
	}, &stats)
	return recs, stats, err
}

// ReadFunc streams records to fn as they are parsed; fn returning an
// error aborts ingestion. stats may be nil.
func (rd Reader) ReadFunc(r io.Reader, fn func(logrec.Record) error, stats *Stats) error {
	if stats == nil {
		stats = &Stats{}
	}
	maxLine := rd.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 1 << 20
	}
	start := rd.Start
	if start.IsZero() {
		start = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	years := NewYearTracker(start)
	ls := newLineScanner(r, maxLine)
	defer ls.release()
	seq := uint64(0)
	for {
		raw, oversized, rerr := ls.next()
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return fmt.Errorf("ingest %v: %w", rd.System, rerr)
		}
		line := string(raw)
		mLineBytes.Observe(int64(len(raw)))
		rec, perr := rd.parseLine(line, years)
		if oversized {
			// The capped prefix may still have parsed a timestamp and
			// source, but the record is damaged by definition.
			rec.Corrupted = true
			perr = true
			stats.Oversized++
			mOversized.Inc()
		}
		rec.Seq = seq
		seq++
		stats.Lines++
		mLines.Inc()
		if perr {
			stats.ParseErrors++
			mParseErrs.Inc()
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// parseLine dispatches one line by sniffed dialect and updates dialect
// stats implicitly through the record.
func (rd Reader) parseLine(line string, years *YearTracker) (logrec.Record, bool) {
	switch {
	case rd.System == logrec.BlueGeneL || sniffRAS(line):
		rec, perr := rasdb.Parse(line)
		rec.System = rd.System
		return rec, perr != nil
	case sniffEvent(line):
		rec, perr := ddn.ParseEvent(line)
		rec.System = rd.System
		return rec, perr != nil
	default:
		// Two-phase parse for year inference: parse with the current
		// year, then re-parse if the tracker advances.
		rec, perr := syslogng.Parse(line, years.year, rd.System)
		if perr == nil {
			if y := years.Year(rec.Time.Month()); y != rec.Time.Year() {
				rec, perr = syslogng.Parse(line, y, rd.System)
			}
		}
		rec.System = rd.System
		return rec, perr != nil
	}
}

// ReadAll ingests, sorts canonically, and reports dialect stats — the
// common entry point for analysis.
func ReadAll(r io.Reader, sys logrec.System, start time.Time) ([]logrec.Record, Stats, error) {
	rd := Reader{System: sys, Start: start}
	var stats Stats
	var recs []logrec.Record
	err := rd.ReadFunc(r, func(rec logrec.Record) error {
		switch {
		case sniffRAS(rec.Raw) || (sys == logrec.BlueGeneL && !rec.Corrupted):
			stats.RAS++
		case sniffEvent(rec.Raw):
			stats.Event++
		default:
			stats.Syslog++
		}
		recs = append(recs, rec)
		return nil
	}, &stats)
	if err != nil {
		return nil, stats, err
	}
	logrec.SortRecords(recs)
	return recs, stats, nil
}
