package ingest_test

import (
	"strings"
	"testing"
	"time"

	"whatsupersay/internal/ingest"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/tag"
)

func TestYearTracker(t *testing.T) {
	y := ingest.NewYearTracker(time.Date(2004, time.December, 12, 0, 0, 0, 0, time.UTC))
	if got := y.Year(time.December); got != 2004 {
		t.Errorf("December = %d, want 2004", got)
	}
	if got := y.Year(time.January); got != 2005 {
		t.Errorf("January = %d, want 2005 (rollover)", got)
	}
	if got := y.Year(time.March); got != 2005 {
		t.Errorf("March = %d, want 2005", got)
	}
	// A small backward jump (out-of-order delivery) must NOT roll over.
	if got := y.Year(time.February); got != 2005 {
		t.Errorf("February after March = %d, want 2005", got)
	}
	// Crossing into the next year again.
	y.Year(time.December)
	if got := y.Year(time.January); got != 2006 {
		t.Errorf("second rollover = %d, want 2006", got)
	}
}

func TestReadMixedDialects(t *testing.T) {
	input := strings.Join([]string{
		"Mar 19 04:10:00 rslogin1 kernel: LustreError: 1:(x.c:2) type == y",
		"2006-03-19 04:11:02 c0-0c1s2 ec_heartbeat_stop src:::c0-0c1s2 svc:::c0-0c1s2 warn node heartbeat_fault",
		"<2>Mar 19 04:12:00 ddn1 DMT_DINT Failing Disk 2A",
		"total garbage line",
	}, "\n") + "\n"
	recs, stats, err := ingest.ReadAll(strings.NewReader(input), logrec.RedStorm, time.Date(2006, 3, 19, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != 4 {
		t.Fatalf("lines = %d", stats.Lines)
	}
	if stats.ParseErrors != 1 {
		t.Errorf("parse errors = %d, want 1", stats.ParseErrors)
	}
	if stats.Event != 1 {
		t.Errorf("event lines = %d, want 1", stats.Event)
	}
	if stats.Syslog != 3 { // two syslog + the garbage falls to syslog
		t.Errorf("syslog lines = %d, want 3", stats.Syslog)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	// The SMW line parsed with its own dialect.
	var foundEvent bool
	for _, r := range recs {
		if strings.Contains(r.Body, "heartbeat_fault") && r.Source == "c0-0c1s2" {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Error("event line not parsed correctly")
	}
}

func TestReadYearRollover(t *testing.T) {
	// Spirit-style: window starts Jan 2005, log runs past New Year 2006.
	input := strings.Join([]string{
		"Dec 30 10:00:00 sn300 kernel: a",
		"Jan  2 10:00:00 sn300 kernel: b",
	}, "\n") + "\n"
	recs, _, err := ingest.ReadAll(strings.NewReader(input), logrec.Spirit, time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Time.Year() != 2005 || recs[0].Time.Month() != time.December {
		t.Errorf("first record year = %d", recs[0].Time.Year())
	}
	if recs[1].Time.Year() != 2006 {
		t.Errorf("post-rollover year = %d, want 2006", recs[1].Time.Year())
	}
	// Sorted output: December 2005 before January 2006.
	if !recs[0].Time.Before(recs[1].Time) {
		t.Error("rollover broke ordering")
	}
}

func TestReadBGL(t *testing.T) {
	input := "2005-06-03-15.42.50.363779 R02-M1-N0 RAS KERNEL FATAL data TLB error interrupt\n"
	recs, stats, err := ingest.ReadAll(strings.NewReader(input), logrec.BlueGeneL, time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RAS != 1 {
		t.Errorf("RAS lines = %d", stats.RAS)
	}
	if recs[0].Severity != logrec.SevFatal || recs[0].Facility != "KERNEL" {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestReadFuncAbort(t *testing.T) {
	rd := ingest.Reader{System: logrec.Liberty}
	input := "Mar  7 14:30:05 ln1 kernel: a\nMar  7 14:30:06 ln1 kernel: b\n"
	calls := 0
	err := rd.ReadFunc(strings.NewReader(input), func(logrec.Record) error {
		calls++
		if calls == 1 {
			return errAbort
		}
		return nil
	}, nil)
	if err == nil {
		t.Fatal("callback error must propagate")
	}
	if calls != 1 {
		t.Errorf("ingestion continued after abort: %d calls", calls)
	}
}

var errAbort = &abortErr{}

type abortErr struct{}

func (*abortErr) Error() string { return "abort" }

// TestRoundTripGeneratedLog is the integration contract: text written by
// the generator, ingested cold, reproduces the same alert stream the
// in-memory pipeline sees.
func TestRoundTripGeneratedLog(t *testing.T) {
	out, err := simulate.Generate(simulate.Config{System: logrec.Liberty, Scale: 0.0001, AlertScale: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(out.Lines, "\n") + "\n"
	recs, stats, err := ingest.ReadAll(strings.NewReader(text), logrec.Liberty, out.Start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != len(out.Lines) {
		t.Fatalf("ingested %d of %d lines", stats.Lines, len(out.Lines))
	}
	tg := tag.NewTagger(logrec.Liberty)
	ingested := tg.TagAll(recs)
	direct := tg.TagAll(out.Records)
	if len(ingested) != len(direct) {
		t.Errorf("ingested alerts = %d, direct pipeline = %d", len(ingested), len(direct))
	}
}
