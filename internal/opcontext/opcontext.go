// Package opcontext implements the paper's central recommendation:
// operational context (Figure 1 and Section 3.2.1). "The most salient
// missing data is operational context, which captures the system's
// expected behavior. ... It may be sufficient to record only a few bytes
// of data: the time and cause of system state changes."
//
// The package provides the operational state machine that Figure 1
// sketches (the basis of the Red Storm RAS metrics being standardized by
// LANL, LLNL, and SNL), a transition log, and an annotator that
// disambiguates alerts by the state in effect when they fired — the
// "ciodb exited normally" example from the paper becomes decidable.
package opcontext

import (
	"fmt"
	"sort"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

// State is one operational state from the Figure 1 diagram.
type State int

// The operational states. Production vs engineering is the paper's
// top-level split; downtime divides into scheduled and unscheduled.
const (
	// ProductionUptime: the machine is serving production users; alerts
	// are significant.
	ProductionUptime State = iota + 1
	// ScheduledDowntime: planned maintenance (OS upgrades, hardware
	// service); many alert-looking messages are expected artifacts.
	ScheduledDowntime
	// UnscheduledDowntime: the machine is down due to failure.
	UnscheduledDowntime
	// EngineeringTime: the machine is up but dedicated to system testing
	// rather than production work (Feitelson's "workload flurries" time).
	EngineeringTime
)

// String returns the state's display name.
func (s State) String() string {
	switch s {
	case ProductionUptime:
		return "production-uptime"
	case ScheduledDowntime:
		return "scheduled-downtime"
	case UnscheduledDowntime:
		return "unscheduled-downtime"
	case EngineeringTime:
		return "engineering-time"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// States lists all operational states.
func States() []State {
	return []State{ProductionUptime, ScheduledDowntime, UnscheduledDowntime, EngineeringTime}
}

// CanTransition reports whether the Figure 1 machine permits from→to.
// Unscheduled downtime can begin from any up state (failures do not ask
// permission); scheduled downtime and engineering time are entered
// deliberately from production; every downtime returns to production or
// engineering time.
func CanTransition(from, to State) bool {
	if from == to {
		return false
	}
	switch from {
	case ProductionUptime:
		return true // any other state can follow production
	case EngineeringTime:
		return true
	case ScheduledDowntime, UnscheduledDowntime:
		return to == ProductionUptime || to == EngineeringTime
	default:
		return false
	}
}

// Transition is one logged state change: "the time and cause of system
// state changes".
type Transition struct {
	Time  time.Time
	To    State
	Cause string
}

// Timeline is an append-only operational-context log for one system.
type Timeline struct {
	system  logrec.System
	initial State
	trans   []Transition
}

// NewTimeline starts a timeline in the initial state.
func NewTimeline(sys logrec.System, initial State) *Timeline {
	return &Timeline{system: sys, initial: initial}
}

// System returns the timeline's system.
func (tl *Timeline) System() logrec.System { return tl.system }

// Record appends a transition. It returns an error when the transition is
// not permitted by the state machine or is out of time order.
func (tl *Timeline) Record(t time.Time, to State, cause string) error {
	cur := tl.StateAt(t)
	if !CanTransition(cur, to) {
		return fmt.Errorf("opcontext: illegal transition %v -> %v at %v", cur, to, t)
	}
	if n := len(tl.trans); n > 0 && t.Before(tl.trans[n-1].Time) {
		return fmt.Errorf("opcontext: transition at %v is before last logged transition %v", t, tl.trans[n-1].Time)
	}
	tl.trans = append(tl.trans, Transition{Time: t, To: to, Cause: cause})
	return nil
}

// StateAt returns the state in effect at time t.
func (tl *Timeline) StateAt(t time.Time) State {
	state := tl.initial
	for _, tr := range tl.trans {
		if tr.Time.After(t) {
			break
		}
		state = tr.To
	}
	return state
}

// Transitions returns a copy of the logged transitions.
func (tl *Timeline) Transitions() []Transition {
	out := make([]Transition, len(tl.trans))
	copy(out, tl.trans)
	return out
}

// TimeIn sums the duration spent in each state over [start, end) — the
// raw material of the RAS metrics the paper says should replace log-derived
// MTTF ("quantities of direct interest, such as the amount of useful work
// lost due to failures").
func (tl *Timeline) TimeIn(start, end time.Time) map[State]time.Duration {
	out := make(map[State]time.Duration)
	if !start.Before(end) {
		return out
	}
	// Build the boundary list clipped to the window.
	type seg struct {
		from time.Time
		st   State
	}
	segs := []seg{{from: start, st: tl.StateAt(start)}}
	for _, tr := range tl.trans {
		if !tr.Time.After(start) || !tr.Time.Before(end) {
			continue
		}
		segs = append(segs, seg{from: tr.Time, st: tr.To})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].from.Before(segs[j].from) })
	for i, s := range segs {
		segEnd := end
		if i+1 < len(segs) {
			segEnd = segs[i+1].from
		}
		out[s.st] += segEnd.Sub(s.from)
	}
	return out
}

// Significance is the annotator's verdict on an alert.
type Significance int

// Verdicts, from most to least actionable.
const (
	// Significant: the alert fired during production and merits
	// attention.
	Significant Significance = iota + 1
	// ExpectedArtifact: the alert fired during scheduled downtime or
	// engineering time and is likely an artifact of deliberate actions
	// (the paper's "harmless artifact of his actions" case).
	ExpectedArtifact
	// AlreadyDown: the alert fired during unscheduled downtime; it is
	// a symptom of a failure already being handled, not a new one.
	AlreadyDown
)

// String returns the verdict name.
func (s Significance) String() string {
	switch s {
	case Significant:
		return "significant"
	case ExpectedArtifact:
		return "expected-artifact"
	case AlreadyDown:
		return "already-down"
	default:
		return fmt.Sprintf("Significance(%d)", int(s))
	}
}

// Annotated pairs an alert with its operational context.
type Annotated struct {
	Alert        tag.Alert
	State        State
	Significance Significance
}

// Annotate stamps each alert with the state in effect when it fired and
// the resulting significance verdict.
func Annotate(tl *Timeline, alerts []tag.Alert) []Annotated {
	out := make([]Annotated, 0, len(alerts))
	for _, a := range alerts {
		st := tl.StateAt(a.Record.Time)
		out = append(out, Annotated{Alert: a, State: st, Significance: Judge(st)})
	}
	return out
}

// Judge maps an operational state to an alert significance verdict.
func Judge(st State) Significance {
	switch st {
	case ScheduledDowntime, EngineeringTime:
		return ExpectedArtifact
	case UnscheduledDowntime:
		return AlreadyDown
	default:
		return Significant
	}
}

// CountBySignificance tallies annotated alerts per verdict.
func CountBySignificance(ann []Annotated) map[Significance]int {
	out := make(map[Significance]int)
	for _, a := range ann {
		out[a.Significance]++
	}
	return out
}
