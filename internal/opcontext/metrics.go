package opcontext

import (
	"time"

	"whatsupersay/internal/tag"
)

// The paper's "Quantify RAS" recommendation: "Despite the temptation to
// calculate values like MTTF from the system logs, doing so can be
// inaccurate and misleading. ... We recommend calculating RAS metrics
// based on quantities of direct interest, such as the amount of useful
// work lost due to failures." This file provides both: the log-derived
// MTBF (so the caution can be demonstrated) and the recommended
// state-based metrics.

// RASMetrics are the state-based reliability/availability/serviceability
// quantities derived from the operational-context timeline.
type RASMetrics struct {
	// Window is the measured interval.
	Window time.Duration
	// Production, Scheduled, Unscheduled, Engineering are time in each
	// state.
	Production, Scheduled, Unscheduled, Engineering time.Duration
	// NodeHoursLost is unscheduled downtime multiplied by the node
	// count: the "useful work lost due to failures".
	NodeHoursLost float64
}

// Availability is production time over the window excluding scheduled
// downtime and engineering time (the production-availability definition
// the Figure 1 effort standardizes).
func (m RASMetrics) Availability() float64 {
	denom := m.Window - m.Scheduled - m.Engineering
	if denom <= 0 {
		return 0
	}
	return float64(m.Production) / float64(denom)
}

// Metrics computes state-based RAS metrics over a window.
func Metrics(tl *Timeline, start, end time.Time, nodes int) RASMetrics {
	in := tl.TimeIn(start, end)
	m := RASMetrics{
		Window:      end.Sub(start),
		Production:  in[ProductionUptime],
		Scheduled:   in[ScheduledDowntime],
		Unscheduled: in[UnscheduledDowntime],
		Engineering: in[EngineeringTime],
	}
	m.NodeHoursLost = in[UnscheduledDowntime].Hours() * float64(nodes)
	return m
}

// LogDerivedMTBF computes "mean time between failures" the naive way —
// the window divided by the number of filtered alerts — which the paper
// warns is "a strong function of the specific system and logging
// configuration; using logs to compare machines is absurd". It is
// provided precisely so the absurdity can be demonstrated against the
// state-based metrics (see the core tests and EXPERIMENTS.md).
func LogDerivedMTBF(filtered []tag.Alert, window time.Duration) time.Duration {
	if len(filtered) == 0 {
		return 0
	}
	return window / time.Duration(len(filtered))
}
