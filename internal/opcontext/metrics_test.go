package opcontext

import (
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

func buildTimeline(t *testing.T) *Timeline {
	t.Helper()
	tl := NewTimeline(logrec.Liberty, ProductionUptime)
	steps := []struct {
		at    time.Duration
		to    State
		cause string
	}{
		{10 * time.Hour, ScheduledDowntime, "maintenance"},
		{18 * time.Hour, ProductionUptime, "done"},
		{50 * time.Hour, UnscheduledDowntime, "switch failure"},
		{54 * time.Hour, ProductionUptime, "repaired"},
		{80 * time.Hour, EngineeringTime, "system testing"},
		{90 * time.Hour, ProductionUptime, "testing done"},
	}
	for _, s := range steps {
		if err := tl.Record(base.Add(s.at), s.to, s.cause); err != nil {
			t.Fatal(err)
		}
	}
	return tl
}

func TestMetrics(t *testing.T) {
	tl := buildTimeline(t)
	end := base.Add(100 * time.Hour)
	m := Metrics(tl, base, end, 256)
	if m.Window != 100*time.Hour {
		t.Errorf("window = %v", m.Window)
	}
	if m.Scheduled != 8*time.Hour {
		t.Errorf("scheduled = %v, want 8h", m.Scheduled)
	}
	if m.Unscheduled != 4*time.Hour {
		t.Errorf("unscheduled = %v, want 4h", m.Unscheduled)
	}
	if m.Engineering != 10*time.Hour {
		t.Errorf("engineering = %v, want 10h", m.Engineering)
	}
	if m.Production != 78*time.Hour {
		t.Errorf("production = %v, want 78h", m.Production)
	}
	// Availability = production / (window - scheduled - engineering)
	//              = 78 / 82.
	if got, want := m.Availability(), 78.0/82.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("availability = %v, want %v", got, want)
	}
	// Node-hours lost = 4h x 256 nodes.
	if m.NodeHoursLost != 4*256 {
		t.Errorf("node-hours lost = %v, want 1024", m.NodeHoursLost)
	}
}

func TestAvailabilityDegenerate(t *testing.T) {
	m := RASMetrics{Window: time.Hour, Scheduled: time.Hour}
	if m.Availability() != 0 {
		t.Error("degenerate availability must be 0")
	}
}

// TestLogDerivedMTBFIsMisleading demonstrates the paper's caution: two
// timelines with identical *actual* downtime produce wildly different
// log-derived MTBF when their logging configurations differ (one chatty
// category's redundancy changes the number without any reliability
// change).
func TestLogDerivedMTBFIsMisleading(t *testing.T) {
	c, ok := catalog.Lookup(logrec.Liberty, "PBS_CHK")
	if !ok {
		t.Fatal("category missing")
	}
	mkAlerts := func(n int) []tag.Alert {
		out := make([]tag.Alert, n)
		for i := range out {
			out[i] = tag.Alert{
				Record:   logrec.Record{Time: base.Add(time.Duration(i) * time.Hour)},
				Category: c,
			}
		}
		return out
	}
	window := 1000 * time.Hour
	quiet := LogDerivedMTBF(mkAlerts(10), window)
	chatty := LogDerivedMTBF(mkAlerts(1000), window)
	if quiet != 100*time.Hour || chatty != time.Hour {
		t.Errorf("MTBF = %v / %v", quiet, chatty)
	}
	// Same machine, same window, 100x apart: "using logs to compare
	// machines is absurd".
	if quiet/chatty != 100 {
		t.Errorf("ratio = %v", quiet/chatty)
	}
	if LogDerivedMTBF(nil, window) != 0 {
		t.Error("no alerts must yield 0")
	}
}
