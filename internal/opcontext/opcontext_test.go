package opcontext

import (
	"testing"
	"time"

	"whatsupersay/internal/catalog"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/tag"
)

var base = time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)

func TestCanTransition(t *testing.T) {
	cases := []struct {
		from, to State
		want     bool
	}{
		{ProductionUptime, ScheduledDowntime, true},
		{ProductionUptime, UnscheduledDowntime, true},
		{ProductionUptime, EngineeringTime, true},
		{ScheduledDowntime, ProductionUptime, true},
		{ScheduledDowntime, EngineeringTime, true},
		{ScheduledDowntime, UnscheduledDowntime, false},
		{UnscheduledDowntime, ProductionUptime, true},
		{UnscheduledDowntime, ScheduledDowntime, false},
		{EngineeringTime, ProductionUptime, true},
		{ProductionUptime, ProductionUptime, false},
	}
	for _, tc := range cases {
		if got := CanTransition(tc.from, tc.to); got != tc.want {
			t.Errorf("CanTransition(%v, %v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestTimelineStateAt(t *testing.T) {
	tl := NewTimeline(logrec.BlueGeneL, ProductionUptime)
	if err := tl.Record(base.Add(2*time.Hour), ScheduledDowntime, "maintenance"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Record(base.Add(10*time.Hour), ProductionUptime, "done"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Time
		want State
	}{
		{base, ProductionUptime},
		{base.Add(2 * time.Hour), ScheduledDowntime}, // boundary: new state applies
		{base.Add(5 * time.Hour), ScheduledDowntime},
		{base.Add(10 * time.Hour), ProductionUptime},
		{base.Add(24 * time.Hour), ProductionUptime},
	}
	for _, tc := range cases {
		if got := tl.StateAt(tc.at); got != tc.want {
			t.Errorf("StateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestTimelineRejectsIllegalTransition(t *testing.T) {
	tl := NewTimeline(logrec.BlueGeneL, ProductionUptime)
	if err := tl.Record(base, ScheduledDowntime, "m"); err != nil {
		t.Fatal(err)
	}
	// Scheduled -> Unscheduled is not a legal edge.
	if err := tl.Record(base.Add(time.Hour), UnscheduledDowntime, "x"); err == nil {
		t.Error("illegal transition accepted")
	}
	// Same state is not a transition.
	if err := tl.Record(base.Add(time.Hour), ScheduledDowntime, "x"); err == nil {
		t.Error("self transition accepted")
	}
}

func TestTimelineRejectsOutOfOrder(t *testing.T) {
	tl := NewTimeline(logrec.BlueGeneL, ProductionUptime)
	if err := tl.Record(base.Add(5*time.Hour), ScheduledDowntime, "m"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Record(base, ProductionUptime, "early"); err == nil {
		t.Error("out-of-order transition accepted")
	}
}

func TestTimeIn(t *testing.T) {
	tl := NewTimeline(logrec.Liberty, ProductionUptime)
	if err := tl.Record(base.Add(4*time.Hour), ScheduledDowntime, "m"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Record(base.Add(6*time.Hour), ProductionUptime, "done"); err != nil {
		t.Fatal(err)
	}
	d := tl.TimeIn(base, base.Add(10*time.Hour))
	if d[ProductionUptime] != 8*time.Hour {
		t.Errorf("production = %v, want 8h", d[ProductionUptime])
	}
	if d[ScheduledDowntime] != 2*time.Hour {
		t.Errorf("scheduled = %v, want 2h", d[ScheduledDowntime])
	}
	total := time.Duration(0)
	for _, v := range d {
		total += v
	}
	if total != 10*time.Hour {
		t.Errorf("state durations must sum to the window: %v", total)
	}
	if len(tl.TimeIn(base, base)) != 0 {
		t.Error("empty window must be empty")
	}
}

func TestJudge(t *testing.T) {
	want := map[State]Significance{
		ProductionUptime:    Significant,
		ScheduledDowntime:   ExpectedArtifact,
		EngineeringTime:     ExpectedArtifact,
		UnscheduledDowntime: AlreadyDown,
	}
	for st, sig := range want {
		if got := Judge(st); got != sig {
			t.Errorf("Judge(%v) = %v, want %v", st, got, sig)
		}
	}
}

func TestAnnotateDisambiguation(t *testing.T) {
	// The paper's example: the same MASNORM message during maintenance
	// vs during production means two very different things.
	tl := NewTimeline(logrec.BlueGeneL, ProductionUptime)
	if err := tl.Record(base.Add(1*time.Hour), ScheduledDowntime, "OS upgrade"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Record(base.Add(9*time.Hour), ProductionUptime, "done"); err != nil {
		t.Fatal(err)
	}
	mas, ok := catalog.Lookup(logrec.BlueGeneL, "MASNORM")
	if !ok {
		t.Fatal("MASNORM missing")
	}
	mkAlert := func(at time.Time) tag.Alert {
		return tag.Alert{
			Record:   logrec.Record{Time: at, Body: "ciodb exited normally with exit code 0"},
			Category: mas,
		}
	}
	ann := Annotate(tl, []tag.Alert{
		mkAlert(base.Add(2 * time.Hour)),  // during maintenance
		mkAlert(base.Add(12 * time.Hour)), // during production
	})
	if ann[0].Significance != ExpectedArtifact {
		t.Errorf("maintenance-time alert = %v, want expected-artifact", ann[0].Significance)
	}
	if ann[1].Significance != Significant {
		t.Errorf("production-time alert = %v, want significant", ann[1].Significance)
	}
	counts := CountBySignificance(ann)
	if counts[Significant] != 1 || counts[ExpectedArtifact] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTransitionsCopy(t *testing.T) {
	tl := NewTimeline(logrec.Liberty, ProductionUptime)
	if err := tl.Record(base, ScheduledDowntime, "m"); err != nil {
		t.Fatal(err)
	}
	trs := tl.Transitions()
	trs[0].Cause = "mutated"
	if tl.Transitions()[0].Cause != "m" {
		t.Error("Transitions must return a copy")
	}
}

func TestStateStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range States() {
		s := st.String()
		if seen[s] {
			t.Errorf("duplicate state name %q", s)
		}
		seen[s] = true
	}
	if State(0).String() != "State(0)" {
		t.Error("zero state string")
	}
	if Significance(0).String() != "Significance(0)" {
		t.Error("zero significance string")
	}
}
