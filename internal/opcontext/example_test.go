package opcontext_test

import (
	"fmt"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/opcontext"
)

// ExampleTimeline logs operational-state transitions and answers the
// paper's disambiguation question: what state was the machine in when an
// alert fired?
func ExampleTimeline() {
	tl := opcontext.NewTimeline(logrec.BlueGeneL, opcontext.ProductionUptime)
	day := time.Date(2005, 6, 15, 0, 0, 0, 0, time.UTC)
	_ = tl.Record(day.Add(6*time.Hour), opcontext.ScheduledDowntime, "OS upgrade")
	_ = tl.Record(day.Add(14*time.Hour), opcontext.ProductionUptime, "upgrade complete")

	for _, at := range []time.Duration{8 * time.Hour, 20 * time.Hour} {
		st := tl.StateAt(day.Add(at))
		fmt.Printf("ciodb exited normally at +%v -> %s (%s)\n", at, st, opcontext.Judge(st))
	}
	// Output:
	// ciodb exited normally at +8h0m0s -> scheduled-downtime (expected-artifact)
	// ciodb exited normally at +20h0m0s -> production-uptime (significant)
}
