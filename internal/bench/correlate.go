package bench

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"whatsupersay/internal/correlate"
	"whatsupersay/internal/filter"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// Correlation-mining benchmarks: what a fresh correlation graph after
// EVERY mutation costs. The incremental side appends the stream in
// batches with a miner observing the store — each batch folds a column
// delta plus its cross terms into the edge accumulators and the graph
// is served by a render, no rescan. The re-mine side is the same append
// cadence with the graph recomputed from a full store scan after each
// batch — the cost the online miner exists to avoid. Both sides produce
// byte-identical graphs (the differential tests in internal/correlate
// pin that); the ledger pins the ratio.

// CorrelateReport is one system's correlation-mining measurements.
type CorrelateReport struct {
	System  string `json:"system"`
	Records int    `json:"records"`
	// Batches is how many append-then-serve rounds the stream was fed
	// in; BatchSize is the entries per round.
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// Replicated is the stream replication factor applied to reach the
	// measurement floor (1 = the raw alert stream).
	Replicated int `json:"replicated,omitempty"`
	// Nodes and Edges size the final mined graph.
	Nodes  int          `json:"nodes"`
	Edges  int          `json:"edges"`
	Stages []StoreStage `json:"stages"`
	// IncrementalSpeedup is re-mine-per-batch time over incremental
	// maintain time. It grows with stream length — re-mines are O(total),
	// column deltas are O(batch + affected columns).
	IncrementalSpeedup float64 `json:"incremental_speedup"`
}

// RunCorrelateSystem benchmarks one system's online correlation miner
// against the per-mutation re-mine it replaces.
func RunCorrelateSystem(sys logrec.System, opts Options) (CorrelateReport, error) {
	opts = opts.withDefaults()
	out, err := simulate.Generate(simulate.Config{
		System: sys, Scale: opts.Scale, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return CorrelateReport{}, fmt.Errorf("bench correlate %v: %w", sys, err)
	}
	alerts := tag.NewTagger(sys).TagAll(out.Records)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	entries := store.FromAlerts(alerts, filtered)
	if len(entries) == 0 {
		return CorrelateReport{}, fmt.Errorf("bench correlate %v: no entries at scale %g", sys, opts.Scale)
	}
	entries, replicated := replicateEntries(entries, minStandingEntries)

	cfg := correlate.Config{}
	batches := (len(entries) + standingBatch - 1) / standingBatch
	rep := CorrelateReport{
		System: sys.ShortName(), Records: len(entries),
		Batches: batches, BatchSize: standingBatch, Replicated: replicated,
	}
	final := correlate.MineEntries(cfg, entries)
	rep.Nodes, rep.Edges = len(final.Nodes), len(final.Edges)

	// Incremental: the miner observes the store; after each batch the
	// fresh graph is served by a render over the folded state.
	runMaintain := func() {
		dir, err := os.MkdirTemp("", "bench-correlate-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.Create(dir, sys, store.Options{})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		m := correlate.NewMiner(st, cfg, "")
		st.SetObserver(m.OnMutation)
		if err := m.Init(); err != nil {
			panic(err)
		}
		for i := 0; i < len(entries); i += standingBatch {
			end := i + standingBatch
			if end > len(entries) {
				end = len(entries)
			}
			if err := st.Append(entries[i:end]...); err != nil {
				panic(err)
			}
			if g := m.Snapshot(); g.Events == 0 {
				panic("empty graph mid-stream")
			}
		}
		st.SetObserver(nil)
		m.Close()
	}

	// Re-mine: the same cadence with every post-batch graph recomputed
	// from a full store scan.
	runRemine := func() {
		dir, err := os.MkdirTemp("", "bench-correlate-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.Create(dir, sys, store.Options{})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		for i := 0; i < len(entries); i += standingBatch {
			end := i + standingBatch
			if end > len(entries) {
				end = len(entries)
			}
			if err := st.Append(entries[i:end]...); err != nil {
				panic(err)
			}
			if _, err := correlate.MineStore(st, cfg); err != nil {
				panic(err)
			}
		}
	}

	// Interleaved best-of, like the standing pair: both sides see the
	// same noisy windows, best-of discards them symmetrically.
	iters := opts.Iterations
	if iters < pairIterations {
		iters = pairIterations
	}
	runMaintain()
	runRemine()
	maintain := StoreStage{Name: "correlate-maintain", Records: len(entries)}
	remine := StoreStage{Name: "correlate-remine", Records: len(entries)}
	bestM, bestR := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < iters; i++ {
		runtime.GC()
		t0 := time.Now()
		runMaintain()
		m := time.Since(t0).Seconds()
		t1 := time.Now()
		runRemine()
		r := time.Since(t1).Seconds()
		bestM = math.Min(bestM, m)
		bestR = math.Min(bestR, r)
	}
	maintain.Sec, remine.Sec = bestM, bestR
	for _, st := range []*StoreStage{&maintain, &remine} {
		if st.Sec > 0 {
			st.RecPerSec = float64(len(entries)) / st.Sec
		}
	}
	mAllocs, mBytes := allocsOf(runMaintain)
	maintain.AllocsPerRecord = mAllocs / float64(len(entries))
	maintain.BytesPerRecord = mBytes / float64(len(entries))
	rAllocs, rBytes := allocsOf(runRemine)
	remine.AllocsPerRecord = rAllocs / float64(len(entries))
	remine.BytesPerRecord = rBytes / float64(len(entries))
	rep.Stages = append(rep.Stages, maintain, remine)

	for _, s := range rep.Stages {
		set := func(metric string, v float64) {
			name := fmt.Sprintf("%s{system=%q,stage=%q}", metric, rep.System, s.Name)
			obs.Default.Gauge(name).Set(v)
		}
		set("bench_correlate_seconds", s.Sec)
		set("bench_correlate_events_per_sec", s.RecPerSec)
	}
	if bestM > 0 {
		rep.IncrementalSpeedup = bestR / bestM
	}
	obs.Default.Gauge(fmt.Sprintf("bench_correlate_incremental_speedup{system=%q}", rep.System)).Set(rep.IncrementalSpeedup)
	return rep, nil
}
