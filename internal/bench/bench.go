// Package bench times the pipeline's hot stages — generation, parsing,
// tagging, filtering — serial versus parallel at a given scale, and
// writes the results as a machine-readable ledger (BENCH_pipeline.json).
// The ledger is the repository's performance record: it pins
// records/sec and allocs/record per stage so a regression shows up as a
// diff, not a feeling. Timing uses best-of-N wall clock (robust against
// scheduler noise); allocation counts come from runtime.MemStats deltas
// around a single run.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"whatsupersay/internal/filter"
	"whatsupersay/internal/ingest"
	"whatsupersay/internal/loadgen"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/parallel"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/tag"
)

// record publishes one stage's results as labeled gauges in the shared
// registry, so the bench ledger and production telemetry expose one
// schema: a `-metrics` snapshot or `/metrics` scrape taken after a
// bench run carries the same numbers BENCH_pipeline.json does.
func (s Stage) record(system string) {
	set := func(metric string, v float64) {
		name := fmt.Sprintf("%s{system=%q,stage=%q}", metric, system, s.Name)
		obs.Default.Gauge(name).Set(v)
	}
	set("bench_serial_seconds", s.SerialSec)
	set("bench_parallel_seconds", s.ParallelSec)
	set("bench_serial_records_per_sec", s.SerialRecPerSec)
	set("bench_parallel_records_per_sec", s.ParallelRecPerSec)
	set("bench_speedup", s.Speedup)
	set("bench_allocs_per_record", s.AllocsPerRecord)
	set("bench_bytes_per_record", s.BytesPerRecord)
}

// Options parameterizes one benchmark run.
type Options struct {
	// Scale is the generator volume scale (default simulate.DefaultScale).
	Scale float64
	// Seed feeds the generator.
	Seed int64
	// Iterations is how many times each stage is timed; the best wall
	// time wins (default 3).
	Iterations int
	// Workers is the parallel worker count (0 = GOMAXPROCS).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = simulate.DefaultScale
	}
	if o.Iterations <= 0 {
		o.Iterations = 3
	}
	return o
}

// Stage is one pipeline stage's measurements.
type Stage struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	// SerialSec and ParallelSec are best-of-iterations wall times.
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	// SerialRecPerSec / ParallelRecPerSec are Records over the best time.
	SerialRecPerSec   float64 `json:"serial_records_per_sec"`
	ParallelRecPerSec float64 `json:"parallel_records_per_sec"`
	// Speedup is SerialSec / ParallelSec.
	Speedup float64 `json:"speedup"`
	// AllocsPerRecord and BytesPerRecord are heap deltas of one parallel
	// run divided by Records.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
	// SerialFallbacks counts how many times the pool's autotune probe
	// judged this stage's parallel runs too small to fan out and
	// finished them serially (summed over the timed iterations). A
	// nonzero value explains a speedup near 1.0 at small scales: the
	// parallel run was serial on purpose.
	SerialFallbacks int64 `json:"serial_fallbacks"`
}

// Report is one system's stage measurements.
type Report struct {
	System  string  `json:"system"`
	Records int     `json:"records"`
	Lines   int     `json:"lines"`
	Alerts  int     `json:"alerts"`
	Stages  []Stage `json:"stages"`
	// TotalSerialSec / TotalParallelSec sum the stage times; TotalSpeedup
	// is their ratio — the end-to-end win.
	TotalSerialSec   float64 `json:"total_serial_sec"`
	TotalParallelSec float64 `json:"total_parallel_sec"`
	TotalSpeedup     float64 `json:"total_speedup"`
}

// Ledger is the whole benchmark run, as serialized to
// BENCH_pipeline.json.
type Ledger struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Scale      float64  `json:"scale"`
	Seed       int64    `json:"seed"`
	Iterations int      `json:"iterations"`
	Reports    []Report `json:"reports"`
	// StoreReports measures the storage read path (seal, scan, and the
	// aggregate pair) per system; see store.go.
	StoreReports []StoreReport `json:"store_reports,omitempty"`
	// StandingReports measures the standing-query maintenance path
	// (incremental delta-apply vs a from-scratch rescan after every
	// mutation batch) per system; see standing.go.
	StandingReports []StandingReport `json:"standing_reports,omitempty"`
	// CorrelateReports measures the online correlation miner
	// (incremental column/edge folds vs a from-scratch re-mine after
	// every mutation batch) per system; see correlate.go.
	CorrelateReports []CorrelateReport `json:"correlate_reports,omitempty"`
	// LoadReports holds `logstudy loadgen` runs: closed/open-loop load
	// against a live serve endpoint, with per-path latency quantiles and
	// the saturation knee. Written by the loadgen subcommand (which
	// upserts into an existing ledger), not by Run.
	LoadReports []loadgen.Report `json:"load_reports,omitempty"`
}

// timeBest runs fn iters times and returns the best wall time. A
// collection runs first so one stage's garbage isn't billed to the
// next stage's clock.
func timeBest(iters int, fn func()) float64 {
	runtime.GC()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best.Seconds()
}

// allocsOf runs fn once and returns the heap allocation count and byte
// delta it caused.
func allocsOf(fn func()) (allocs, bytes float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs - before.Mallocs), float64(after.TotalAlloc - before.TotalAlloc)
}

// stage assembles one Stage from its serial and parallel closures.
func stage(name string, records, iters int, serial, par func()) Stage {
	s := Stage{Name: name, Records: records}
	s.SerialSec = timeBest(iters, serial)
	fallbacks := obs.Default.Counter(parallel.SerialFallbackCounter)
	before := fallbacks.Value()
	s.ParallelSec = timeBest(iters, par)
	s.SerialFallbacks = fallbacks.Value() - before
	if records > 0 {
		if s.SerialSec > 0 {
			s.SerialRecPerSec = float64(records) / s.SerialSec
		}
		if s.ParallelSec > 0 {
			s.ParallelRecPerSec = float64(records) / s.ParallelSec
		}
	}
	if s.ParallelSec > 0 {
		s.Speedup = s.SerialSec / s.ParallelSec
	}
	allocs, bytes := allocsOf(par)
	if records > 0 {
		s.AllocsPerRecord = allocs / float64(records)
		s.BytesPerRecord = bytes / float64(records)
	}
	return s
}

// RunSystem benchmarks one system's pipeline.
func RunSystem(sys logrec.System, opts Options) (Report, error) {
	opts = opts.withDefaults()
	serialCfg := simulate.Config{System: sys, Scale: opts.Scale, Seed: opts.Seed, Workers: 1}
	parCfg := serialCfg
	parCfg.Workers = opts.Workers

	// One generation up front supplies the inputs for the later stages.
	out, err := simulate.Generate(parCfg)
	if err != nil {
		return Report{}, fmt.Errorf("bench %v: %w", sys, err)
	}
	rep := Report{
		System:  sys.ShortName(),
		Records: len(out.Records),
		Lines:   len(out.Lines),
	}

	rep.Stages = append(rep.Stages, stage("generate", len(out.Records), opts.Iterations,
		func() { _, _ = simulate.Generate(serialCfg) },
		func() { _, _ = simulate.Generate(parCfg) },
	))

	rd := ingest.Reader{System: sys, Start: out.Start}
	serialOpts := parallel.Options{Workers: 1}
	parOpts := parallel.Options{Workers: opts.Workers}
	rep.Stages = append(rep.Stages, stage("parse", len(out.Lines), opts.Iterations,
		func() { rd.ParseAll(out.Lines, serialOpts) },
		func() { rd.ParseAll(out.Lines, parOpts) },
	))

	tg := tag.NewTagger(sys)
	var alerts []tag.Alert
	rep.Stages = append(rep.Stages, stage("tag", len(out.Records), opts.Iterations,
		func() { tg.TagAllSerial(out.Records) },
		func() { alerts = tg.TagAllParallel(out.Records, parOpts) },
	))
	rep.Alerts = len(alerts)

	// Filtering has no parallel variant (Algorithm 3.1 is a sequential
	// scan over an already-small stream); it is timed for the stage cost
	// table with serial == parallel.
	tag.SortAlerts(alerts)
	f := filter.Simultaneous{T: filter.DefaultThreshold}
	run := func() { f.Filter(alerts) }
	rep.Stages = append(rep.Stages, stage("filter", len(alerts), opts.Iterations, run, run))

	for _, s := range rep.Stages {
		s.record(rep.System)
		rep.TotalSerialSec += s.SerialSec
		rep.TotalParallelSec += s.ParallelSec
	}
	if rep.TotalParallelSec > 0 {
		rep.TotalSpeedup = rep.TotalSerialSec / rep.TotalParallelSec
	}
	return rep, nil
}

// Run benchmarks the given systems and assembles the ledger.
func Run(systems []logrec.System, opts Options) (*Ledger, error) {
	opts = opts.withDefaults()
	led := &Ledger{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    opts.Workers,
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		Iterations: opts.Iterations,
	}
	for _, sys := range systems {
		rep, err := RunSystem(sys, opts)
		if err != nil {
			return nil, err
		}
		led.Reports = append(led.Reports, rep)
		srep, err := RunStoreSystem(sys, opts)
		if err != nil {
			return nil, err
		}
		led.StoreReports = append(led.StoreReports, srep)
		standing, err := RunStandingSystem(sys, opts)
		if err != nil {
			return nil, err
		}
		led.StandingReports = append(led.StandingReports, standing)
		correl, err := RunCorrelateSystem(sys, opts)
		if err != nil {
			return nil, err
		}
		led.CorrelateReports = append(led.CorrelateReports, correl)
	}
	return led, nil
}

// WriteJSON writes the ledger to path, pretty-printed.
func (l *Ledger) WriteJSON(path string) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a ledger previously written by WriteJSON, so a later
// run (e.g. `logstudy loadgen`) can upsert its section without
// clobbering the others.
func ReadJSON(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &l, nil
}
