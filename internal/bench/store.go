package bench

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"whatsupersay/internal/filter"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/query"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// Store-stage benchmarks. The pipeline stages above measure the batch
// path (generate → parse → tag → filter); these measure the storage
// read path that serves /api/aggregate: sealing entries into segments,
// the row scan that materializes every entry, and the aggregate both
// ways — row-decode versus the zero-materialization columnar scan.
// The decode/columnar ratio (ColumnarSpeedup) is the number the
// mmap'd-segment work is accountable to; the ledger pins it alongside
// allocs/record so a regression in either shows up as a diff.

// StoreStage is one store-path stage's measurements. Store stages have
// no serial/parallel split — a scan is one pass — so a single
// best-of-iterations time stands alone.
type StoreStage struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	// Sec is the best-of-iterations wall time; RecPerSec is Records
	// over it.
	Sec       float64 `json:"sec"`
	RecPerSec float64 `json:"records_per_sec"`
	// AllocsPerRecord and BytesPerRecord are heap deltas of one run
	// divided by Records.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// record publishes the stage as labeled gauges, mirroring Stage.record.
func (s StoreStage) record(system string) {
	set := func(metric string, v float64) {
		name := fmt.Sprintf("%s{system=%q,stage=%q}", metric, system, s.Name)
		obs.Default.Gauge(name).Set(v)
	}
	set("bench_store_seconds", s.Sec)
	set("bench_store_records_per_sec", s.RecPerSec)
	set("bench_store_allocs_per_record", s.AllocsPerRecord)
	set("bench_store_bytes_per_record", s.BytesPerRecord)
}

// StoreReport is one system's store-path measurements.
type StoreReport struct {
	System string `json:"system"`
	// Records is the stored entry count (one per tagged alert).
	Records  int `json:"records"`
	Segments int `json:"segments"`
	// Replicated is the stream replication factor applied to reach the
	// measurement floor (1 = the raw alert stream; see minStoreEntries).
	Replicated int          `json:"replicated,omitempty"`
	Stages     []StoreStage `json:"stages"`
	// ColumnarSpeedup is aggregate-decode time over aggregate-columnar
	// time: how much the zero-materialization path wins by.
	ColumnarSpeedup float64 `json:"columnar_speedup"`
}

// minStoreEntries is the smallest entry stream the store stages accept
// as a measurement; smaller streams are replicated up to it.
const minStoreEntries = 20_000

// pairIterations is the floor on interleaved iterations for the
// aggregate decode/columnar pair: the ratio of two short measurements
// needs more best-of samples than a single stage time does.
const pairIterations = 7

// storeStage assembles one StoreStage from a single closure.
func storeStage(name string, records, iters int, fn func()) StoreStage {
	s := StoreStage{Name: name, Records: records}
	s.Sec = timeBest(iters, fn)
	if records > 0 && s.Sec > 0 {
		s.RecPerSec = float64(records) / s.Sec
	}
	allocs, bytes := allocsOf(fn)
	if records > 0 {
		s.AllocsPerRecord = allocs / float64(records)
		s.BytesPerRecord = bytes / float64(records)
	}
	return s
}

// RunStoreSystem benchmarks one system's store read path: it runs the
// batch pipeline once to get the entry stream, then times seal, scan,
// and the aggregate pair against a fully sealed store.
func RunStoreSystem(sys logrec.System, opts Options) (StoreReport, error) {
	opts = opts.withDefaults()
	out, err := simulate.Generate(simulate.Config{
		System: sys, Scale: opts.Scale, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return StoreReport{}, fmt.Errorf("bench store %v: %w", sys, err)
	}
	alerts := tag.NewTagger(sys).TagAll(out.Records)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	entries := store.FromAlerts(alerts, filtered)
	if len(entries) == 0 {
		return StoreReport{}, fmt.Errorf("bench store %v: no entries at scale %g", sys, opts.Scale)
	}

	// Quiet systems yield too few alerts at bench scale for a stable
	// throughput measurement — fixed per-aggregate overhead swamps the
	// per-record cost being measured. Replicate the stream forward in
	// time to a floor, and record the factor so the ledger says so.
	entries, replicated := replicateEntries(entries, minStoreEntries)
	rep := StoreReport{System: sys.ShortName(), Records: len(entries), Replicated: replicated}

	// Seal: append the whole stream into a fresh store and seal it,
	// once per iteration. This times the write path end to end — wal
	// append, segment build, fsync, mmap of the durable file.
	rep.Stages = append(rep.Stages, storeStage("seal", len(entries), opts.Iterations, func() {
		dir, err := os.MkdirTemp("", "bench-store-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		s, err := store.Create(dir, sys, store.Options{})
		if err != nil {
			panic(err)
		}
		if err := s.Append(entries...); err != nil {
			panic(err)
		}
		if err := s.Close(); err != nil { // Close seals the tail
			panic(err)
		}
	}))

	// One sealed store serves the read stages.
	dir, err := os.MkdirTemp("", "bench-store-*")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	s, err := store.Create(dir, sys, store.Options{})
	if err != nil {
		return rep, err
	}
	defer s.Close()
	if err := s.Append(entries...); err != nil {
		return rep, err
	}
	if err := s.Seal(); err != nil {
		return rep, err
	}
	rep.Segments = len(s.Segments())

	// Scan: the row path, materializing every entry.
	rep.Stages = append(rep.Stages, storeStage("scan", len(entries), opts.Iterations, func() {
		n := 0
		if _, err := s.Scan(store.Filter{}, func(store.Entry) error { n++; return nil }); err != nil {
			panic(err)
		}
	}))

	// The aggregate pair: identical query, identical answer (pinned by
	// the differential tests); only the execution strategy differs.
	// The two sides are timed interleaved within each iteration — on a
	// shared machine, timing one side's iterations in a block and then
	// the other's lets a noisy window land entirely on one side and
	// skew the ratio; interleaving exposes both to the same windows,
	// and best-of-N then discards the noisy ones symmetrically.
	decode := query.Engine{Store: s, DisableColumnar: true}
	columnar := query.Engine{Store: s}
	runDecode := func() {
		if _, _, err := decode.Aggregate(store.Filter{}, query.AggregateOptions{}); err != nil {
			panic(err)
		}
	}
	runColumnar := func() {
		if _, _, err := columnar.Aggregate(store.Filter{}, query.AggregateOptions{}); err != nil {
			panic(err)
		}
	}
	iters := opts.Iterations
	if iters < pairIterations {
		iters = pairIterations
	}
	// One untimed warmup of each side faults the mapping in and
	// steadies the first timed iteration.
	runDecode()
	runColumnar()
	decodeStage := StoreStage{Name: "aggregate-decode", Records: len(entries)}
	colStage := StoreStage{Name: "aggregate-columnar", Records: len(entries)}
	bestD, bestC := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < iters; i++ {
		runtime.GC()
		t0 := time.Now()
		runDecode()
		d := time.Since(t0).Seconds()
		t1 := time.Now()
		runColumnar()
		c := time.Since(t1).Seconds()
		bestD = math.Min(bestD, d)
		bestC = math.Min(bestC, c)
	}
	decodeStage.Sec, colStage.Sec = bestD, bestC
	for _, st := range []*StoreStage{&decodeStage, &colStage} {
		if st.Sec > 0 {
			st.RecPerSec = float64(len(entries)) / st.Sec
		}
	}
	dAllocs, dBytes := allocsOf(runDecode)
	decodeStage.AllocsPerRecord = dAllocs / float64(len(entries))
	decodeStage.BytesPerRecord = dBytes / float64(len(entries))
	cAllocs, cBytes := allocsOf(runColumnar)
	colStage.AllocsPerRecord = cAllocs / float64(len(entries))
	colStage.BytesPerRecord = cBytes / float64(len(entries))
	rep.Stages = append(rep.Stages, decodeStage, colStage)

	for _, st := range rep.Stages {
		st.record(rep.System)
	}
	if bestC > 0 {
		rep.ColumnarSpeedup = bestD / bestC
	}
	obs.Default.Gauge(fmt.Sprintf("bench_store_columnar_speedup{system=%q}", rep.System)).Set(rep.ColumnarSpeedup)
	return rep, nil
}
