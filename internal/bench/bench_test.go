package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"whatsupersay/internal/logrec"
)

// TestRunSmoke: a 1-iteration run at a tiny scale produces a complete
// ledger — every stage present, every rate positive — and round-trips
// through JSON.
func TestRunSmoke(t *testing.T) {
	led, err := Run([]logrec.System{logrec.Liberty}, Options{Scale: 0.0001, Seed: 2, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Reports) != 1 {
		t.Fatalf("%d reports, want 1", len(led.Reports))
	}
	rep := led.Reports[0]
	wantStages := []string{"generate", "parse", "tag", "filter"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("%d stages, want %d", len(rep.Stages), len(wantStages))
	}
	for i, s := range rep.Stages {
		if s.Name != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, wantStages[i])
		}
		if s.Records <= 0 {
			t.Errorf("stage %s: no records", s.Name)
		}
		if s.SerialRecPerSec <= 0 || s.ParallelRecPerSec <= 0 {
			t.Errorf("stage %s: nonpositive rate (%v, %v)", s.Name, s.SerialRecPerSec, s.ParallelRecPerSec)
		}
	}
	if rep.TotalSerialSec <= 0 || rep.TotalSpeedup <= 0 {
		t.Errorf("bad totals: %+v", rep)
	}

	if len(led.StoreReports) != 1 {
		t.Fatalf("%d store reports, want 1", len(led.StoreReports))
	}
	srep := led.StoreReports[0]
	wantStore := []string{"seal", "scan", "aggregate-decode", "aggregate-columnar"}
	if len(srep.Stages) != len(wantStore) {
		t.Fatalf("%d store stages, want %d", len(srep.Stages), len(wantStore))
	}
	for i, s := range srep.Stages {
		if s.Name != wantStore[i] {
			t.Errorf("store stage %d = %q, want %q", i, s.Name, wantStore[i])
		}
		if s.Records <= 0 || s.RecPerSec <= 0 {
			t.Errorf("store stage %s: bad measurements %+v", s.Name, s)
		}
	}
	if srep.Segments <= 0 {
		t.Errorf("store report has %d segments", srep.Segments)
	}
	if srep.ColumnarSpeedup <= 0 {
		t.Errorf("columnar speedup = %v", srep.ColumnarSpeedup)
	}

	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := led.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Ledger
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("ledger does not round-trip: %v", err)
	}
	if back.Reports[0].System != "liberty" {
		t.Errorf("system = %q", back.Reports[0].System)
	}
}
