package bench

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"whatsupersay/internal/filter"
	"whatsupersay/internal/logrec"
	"whatsupersay/internal/obs"
	"whatsupersay/internal/query"
	"whatsupersay/internal/simulate"
	"whatsupersay/internal/store"
	"whatsupersay/internal/tag"
)

// Standing-query benchmarks: what a fresh aggregate after EVERY
// mutation costs. The incremental side appends the stream in batches
// with a registry observing the store — each batch folds a delta into
// the materialized Partial and the answer is served by a merge, no
// scan. The rescan side is the same append cadence with the aggregate
// recomputed from scratch after each batch — the cost standing
// subscriptions exist to avoid. Both sides produce byte-identical
// answers (the differential tests pin that); the ledger pins the ratio.

// StandingReport is one system's standing-path measurements.
type StandingReport struct {
	System  string `json:"system"`
	Records int    `json:"records"`
	// Batches is how many append-then-serve rounds the stream was fed
	// in; BatchSize is the entries per round.
	Batches   int `json:"batches"`
	BatchSize int `json:"batch_size"`
	// Subscriptions is how many standing filters were maintained/served.
	Subscriptions int `json:"subscriptions"`
	// Replicated is the stream replication factor applied to reach the
	// measurement floor (1 = the raw alert stream).
	Replicated int          `json:"replicated,omitempty"`
	Stages     []StoreStage `json:"stages"`
	// IncrementalSpeedup is rescan-per-batch time over standing-maintain
	// time: how much incremental materialization wins by at this stream
	// size. It grows with stream length — rescans are O(total), deltas
	// are O(batch).
	IncrementalSpeedup float64 `json:"incremental_speedup"`
}

// standingBatch is the append granularity: one "mutation" as the
// maintenance loop sees it.
const standingBatch = 512

// minStandingEntries is the smallest stream the standing stages accept;
// smaller streams replicate up to it (see replicateEntries).
const minStandingEntries = 10_000

// replicateEntries grows a short entry stream forward in time to at
// least floor entries, returning the grown stream and the factor.
func replicateEntries(entries []store.Entry, floor int) ([]store.Entry, int) {
	n := len(entries)
	if n == 0 || n >= floor {
		return entries, 1
	}
	span := entries[n-1].Record.Time.Sub(entries[0].Record.Time) + time.Second
	replicated := (floor + n - 1) / n
	grown := make([]store.Entry, 0, n*replicated)
	grown = append(grown, entries...)
	for r := 1; r < replicated; r++ {
		for _, en := range entries {
			en.Record.Time = en.Record.Time.Add(time.Duration(r) * span)
			en.Record.Seq += uint64(r * n)
			grown = append(grown, en)
		}
	}
	return grown, replicated
}

// RunStandingSystem benchmarks one system's standing-query maintenance
// path against the per-mutation rescan it replaces.
func RunStandingSystem(sys logrec.System, opts Options) (StandingReport, error) {
	opts = opts.withDefaults()
	out, err := simulate.Generate(simulate.Config{
		System: sys, Scale: opts.Scale, Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		return StandingReport{}, fmt.Errorf("bench standing %v: %w", sys, err)
	}
	alerts := tag.NewTagger(sys).TagAll(out.Records)
	tag.SortAlerts(alerts)
	filtered := filter.Simultaneous{T: filter.DefaultThreshold}.Filter(alerts)
	entries := store.FromAlerts(alerts, filtered)
	if len(entries) == 0 {
		return StandingReport{}, fmt.Errorf("bench standing %v: no entries at scale %g", sys, opts.Scale)
	}
	entries, replicated := replicateEntries(entries, minStandingEntries)

	// The standing filters: everything, the survivors, and one source —
	// all index-answerable, so neither side pays a row-decode penalty
	// the other doesn't.
	kept := true
	filters := []store.Filter{
		{},
		{Kept: &kept},
		{Sources: []string{entries[0].Record.Source}},
	}
	batches := (len(entries) + standingBatch - 1) / standingBatch
	rep := StandingReport{
		System: sys.ShortName(), Records: len(entries),
		Batches: batches, BatchSize: standingBatch,
		Subscriptions: len(filters), Replicated: replicated,
	}

	// Incremental: registry observes the store; after each batch every
	// subscription's fresh answer is served from the materialization.
	runMaintain := func() {
		dir, err := os.MkdirTemp("", "bench-standing-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.Create(dir, sys, store.Options{})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		reg := query.NewRegistry(st)
		defer reg.Close()
		st.SetObserver(reg.OnMutation)
		ids := make([]string, 0, len(filters))
		for _, f := range filters {
			info, err := reg.Register(f, query.AggregateOptions{}, 0)
			if err != nil {
				panic(err)
			}
			ids = append(ids, info.ID)
		}
		for i := 0; i < len(entries); i += standingBatch {
			end := i + standingBatch
			if end > len(entries) {
				end = len(entries)
			}
			if err := st.Append(entries[i:end]...); err != nil {
				panic(err)
			}
			for _, id := range ids {
				if _, ok := reg.AggregateOf(id); !ok {
					panic("subscription vanished")
				}
			}
		}
	}

	// Rescan: the same cadence with every post-batch answer recomputed
	// by a full engine aggregate.
	runRescan := func() {
		dir, err := os.MkdirTemp("", "bench-standing-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.Create(dir, sys, store.Options{})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		eng := query.Engine{Store: st}
		for i := 0; i < len(entries); i += standingBatch {
			end := i + standingBatch
			if end > len(entries) {
				end = len(entries)
			}
			if err := st.Append(entries[i:end]...); err != nil {
				panic(err)
			}
			for _, f := range filters {
				if _, _, err := eng.Aggregate(f, query.AggregateOptions{}); err != nil {
					panic(err)
				}
			}
		}
	}

	// Interleaved best-of, like the decode/columnar pair: both sides see
	// the same noisy windows, best-of discards them symmetrically.
	iters := opts.Iterations
	if iters < pairIterations {
		iters = pairIterations
	}
	runMaintain()
	runRescan()
	maintain := StoreStage{Name: "standing-maintain", Records: len(entries)}
	rescan := StoreStage{Name: "standing-rescan", Records: len(entries)}
	bestM, bestR := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < iters; i++ {
		runtime.GC()
		t0 := time.Now()
		runMaintain()
		m := time.Since(t0).Seconds()
		t1 := time.Now()
		runRescan()
		r := time.Since(t1).Seconds()
		bestM = math.Min(bestM, m)
		bestR = math.Min(bestR, r)
	}
	maintain.Sec, rescan.Sec = bestM, bestR
	for _, st := range []*StoreStage{&maintain, &rescan} {
		if st.Sec > 0 {
			st.RecPerSec = float64(len(entries)) / st.Sec
		}
	}
	mAllocs, mBytes := allocsOf(runMaintain)
	maintain.AllocsPerRecord = mAllocs / float64(len(entries))
	maintain.BytesPerRecord = mBytes / float64(len(entries))
	rAllocs, rBytes := allocsOf(runRescan)
	rescan.AllocsPerRecord = rAllocs / float64(len(entries))
	rescan.BytesPerRecord = rBytes / float64(len(entries))
	rep.Stages = append(rep.Stages, maintain, rescan)

	for _, s := range rep.Stages {
		set := func(metric string, v float64) {
			name := fmt.Sprintf("%s{system=%q,stage=%q}", metric, rep.System, s.Name)
			obs.Default.Gauge(name).Set(v)
		}
		set("bench_standing_seconds", s.Sec)
		set("bench_standing_records_per_sec", s.RecPerSec)
	}
	if bestM > 0 {
		rep.IncrementalSpeedup = bestR / bestM
	}
	obs.Default.Gauge(fmt.Sprintf("bench_standing_incremental_speedup{system=%q}", rep.System)).Set(rep.IncrementalSpeedup)
	return rep, nil
}
