package logrec

import (
	"fmt"
	"strings"
)

// Severity is a log severity on one of the two native scales in the study:
// the 8-level BSD syslog scale (Red Storm's syslog path) and the 6-level
// BG/L RAS scale. A single ordered enum covers both; scale membership is
// queried with IsSyslog / IsBGL.
//
// The paper's central observation about severities (Tables 5 and 6) is that
// they are unreliable failure indicators, so nothing in the analysis
// pipeline treats them as authoritative — they are just another field.
type Severity int

// SeverityUnknown is the zero value: the logging path recorded no severity.
const SeverityUnknown Severity = 0

// BSD syslog severities, most to least severe (RFC 3164 numbering is the
// reverse; we order by increasing enum value = decreasing severity so that
// the two scales can share one ordered type).
const (
	SevEmerg Severity = iota + 1
	SevAlert
	SevCrit
	SevErr
	SevWarning
	SevNotice
	SevInfo
	SevDebug
)

// BG/L RAS severities, most to least severe (Table 5 ordering).
const (
	SevFatal Severity = iota + 101
	SevFailure
	SevSevere
	SevError
	SevWarn
	SevInfoBGL
)

// IsSyslog reports whether s belongs to the BSD syslog scale.
func (s Severity) IsSyslog() bool { return s >= SevEmerg && s <= SevDebug }

// IsBGL reports whether s belongs to the BG/L RAS scale.
func (s Severity) IsBGL() bool { return s >= SevFatal && s <= SevInfoBGL }

// String returns the canonical upper-case name used in the logs.
func (s Severity) String() string {
	switch s {
	case SeverityUnknown:
		return "UNKNOWN"
	case SevEmerg:
		return "EMERG"
	case SevAlert:
		return "ALERT"
	case SevCrit:
		return "CRIT"
	case SevErr:
		return "ERR"
	case SevWarning:
		return "WARNING"
	case SevNotice:
		return "NOTICE"
	case SevInfo:
		return "INFO"
	case SevDebug:
		return "DEBUG"
	case SevFatal:
		return "FATAL"
	case SevFailure:
		return "FAILURE"
	case SevSevere:
		return "SEVERE"
	case SevError:
		return "ERROR"
	case SevWarn:
		return "WARNING"
	case SevInfoBGL:
		return "INFO"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SyslogSeverities lists the BSD syslog scale, most severe first
// (Table 6 row order).
func SyslogSeverities() []Severity {
	return []Severity{SevEmerg, SevAlert, SevCrit, SevErr, SevWarning, SevNotice, SevInfo, SevDebug}
}

// BGLSeverities lists the BG/L RAS scale, most severe first
// (Table 5 row order).
func BGLSeverities() []Severity {
	return []Severity{SevFatal, SevFailure, SevSevere, SevError, SevWarn, SevInfoBGL}
}

// ParseSyslogSeverity parses a BSD syslog severity name.
func ParseSyslogSeverity(name string) (Severity, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "EMERG", "PANIC":
		return SevEmerg, nil
	case "ALERT":
		return SevAlert, nil
	case "CRIT":
		return SevCrit, nil
	case "ERR", "ERROR":
		return SevErr, nil
	case "WARNING", "WARN":
		return SevWarning, nil
	case "NOTICE":
		return SevNotice, nil
	case "INFO":
		return SevInfo, nil
	case "DEBUG":
		return SevDebug, nil
	}
	return SeverityUnknown, fmt.Errorf("unknown syslog severity %q", name)
}

// ParseBGLSeverity parses a BG/L RAS severity name.
func ParseBGLSeverity(name string) (Severity, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "FATAL":
		return SevFatal, nil
	case "FAILURE":
		return SevFailure, nil
	case "SEVERE":
		return SevSevere, nil
	case "ERROR":
		return SevError, nil
	case "WARNING", "WARN":
		return SevWarn, nil
	case "INFO":
		return SevInfoBGL, nil
	}
	return SeverityUnknown, fmt.Errorf("unknown BG/L severity %q", name)
}

// SyslogPriority returns the RFC 3164 numeric severity (0 = emergency) for
// a syslog-scale severity, for use when rendering <PRI> fields. It returns
// false when s is not on the syslog scale.
func (s Severity) SyslogPriority() (int, bool) {
	if !s.IsSyslog() {
		return 0, false
	}
	return int(s - SevEmerg), true
}
