package logrec

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSystemString(t *testing.T) {
	want := map[System]string{
		BlueGeneL:   "Blue Gene/L",
		Thunderbird: "Thunderbird",
		RedStorm:    "Red Storm",
		Spirit:      "Spirit",
		Liberty:     "Liberty",
	}
	for sys, name := range want {
		if got := sys.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(sys), got, name)
		}
	}
	if got := System(99).String(); got != "System(99)" {
		t.Errorf("unknown system String() = %q", got)
	}
}

func TestSystemsOrder(t *testing.T) {
	systems := Systems()
	if len(systems) != 5 {
		t.Fatalf("Systems() returned %d systems, want 5", len(systems))
	}
	want := []System{BlueGeneL, Thunderbird, RedStorm, Spirit, Liberty}
	for i, sys := range systems {
		if sys != want[i] {
			t.Errorf("Systems()[%d] = %v, want %v", i, sys, want[i])
		}
	}
}

func TestParseSystem(t *testing.T) {
	cases := []struct {
		in      string
		want    System
		wantErr bool
	}{
		{"bgl", BlueGeneL, false},
		{"Blue Gene/L", BlueGeneL, false},
		{"BLUE GENE/L", BlueGeneL, false},
		{"tbird", Thunderbird, false},
		{"redstorm", RedStorm, false},
		{"Red Storm", RedStorm, false},
		{"spirit", Spirit, false},
		{"  liberty  ", Liberty, false},
		{"asci-red", 0, true},
		{"", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseSystem(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSystem(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSystem(%q) error: %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSystem(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestShortNameRoundTrip(t *testing.T) {
	for _, sys := range Systems() {
		got, err := ParseSystem(sys.ShortName())
		if err != nil {
			t.Fatalf("ParseSystem(%q): %v", sys.ShortName(), err)
		}
		if got != sys {
			t.Errorf("round trip via ShortName: got %v, want %v", got, sys)
		}
	}
}

func TestRecordBefore(t *testing.T) {
	t0 := time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC)
	a := Record{Time: t0, Seq: 1}
	b := Record{Time: t0.Add(time.Second), Seq: 0}
	c := Record{Time: t0, Seq: 2}
	if !a.Before(b) {
		t.Error("earlier time should sort first")
	}
	if b.Before(a) {
		t.Error("Before must not be symmetric for distinct times")
	}
	if !a.Before(c) {
		t.Error("same time: lower Seq should sort first")
	}
	if a.Before(a) {
		t.Error("a record must not be before itself")
	}
}

func TestSortRecords(t *testing.T) {
	t0 := time.Date(2005, 6, 3, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		{Time: t0.Add(3 * time.Second), Seq: 0},
		{Time: t0, Seq: 2},
		{Time: t0, Seq: 1},
		{Time: t0.Add(time.Second), Seq: 3},
	}
	SortRecords(recs)
	if !IsSorted(recs) {
		t.Fatal("SortRecords did not produce sorted output")
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Errorf("tie-break by Seq failed: got seqs %d,%d", recs[0].Seq, recs[1].Seq)
	}
}

func TestSortRecordsPropertyIdempotentAndOrdered(t *testing.T) {
	base := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(offsets []int16, seqs []uint16) bool {
		n := len(offsets)
		if len(seqs) < n {
			n = len(seqs)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{Time: base.Add(time.Duration(offsets[i]) * time.Second), Seq: uint64(seqs[i])}
		}
		SortRecords(recs)
		if !IsSorted(recs) {
			return false
		}
		// Idempotent: sorting again changes nothing.
		again := make([]Record, len(recs))
		copy(again, recs)
		SortRecords(again)
		for i := range recs {
			if !recs[i].Time.Equal(again[i].Time) || recs[i].Seq != again[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestRecordKeyAndClone(t *testing.T) {
	r := Record{
		Time: time.Unix(1117800000, 0).UTC(), Seq: 7,
		System: Spirit, Source: "sn373", Body: "x",
	}
	c := r.Clone()
	c.Body = "y"
	if r.Body != "x" {
		t.Error("Clone must not share mutable state")
	}
	if got := r.Key(); got != "spirit/sn373@1117800000#7" {
		t.Errorf("Key() = %q", got)
	}
}
