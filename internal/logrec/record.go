// Package logrec defines the structured log record model shared by every
// subsystem in the study: the parsed representation of one line (or one RAS
// event) from a supercomputer system log, together with the severity scales
// used by the five machines.
//
// The model deliberately mirrors what the DSN 2007 paper ("What
// Supercomputers Say") works with: a timestamp, a source (the reporting
// node), an optional severity, an optional program tag, and an unstructured
// message body. Alert tagging (package tag) and filtering (package filter)
// operate on these records.
package logrec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// System identifies one of the five supercomputers in the study.
type System int

// The five systems of Table 1, ordered as the paper lists them.
const (
	BlueGeneL System = iota + 1
	Thunderbird
	RedStorm
	Spirit
	Liberty
)

// String returns the paper's name for the system.
func (s System) String() string {
	switch s {
	case BlueGeneL:
		return "Blue Gene/L"
	case Thunderbird:
		return "Thunderbird"
	case RedStorm:
		return "Red Storm"
	case Spirit:
		return "Spirit"
	case Liberty:
		return "Liberty"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// ShortName returns a lowercase identifier suitable for file names and CLI
// flags (e.g. "bgl", "tbird").
func (s System) ShortName() string {
	switch s {
	case BlueGeneL:
		return "bgl"
	case Thunderbird:
		return "tbird"
	case RedStorm:
		return "redstorm"
	case Spirit:
		return "spirit"
	case Liberty:
		return "liberty"
	default:
		return fmt.Sprintf("system%d", int(s))
	}
}

// Systems lists all five systems in paper order.
func Systems() []System {
	return []System{BlueGeneL, Thunderbird, RedStorm, Spirit, Liberty}
}

// ParseSystem resolves a system from its short or full name,
// case-insensitively. It accepts both "bgl" and "Blue Gene/L" forms.
func ParseSystem(name string) (System, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, s := range Systems() {
		if n == s.ShortName() || n == strings.ToLower(s.String()) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown system %q", name)
}

// Record is one structured log entry.
//
// Seq is a monotonically increasing sequence number assigned at generation
// (or ingestion) time; it makes sorting stable when many records share a
// timestamp, which is routine at one-second syslog granularity.
type Record struct {
	// Seq is the stable per-stream sequence number.
	Seq uint64
	// Time is when the message was generated. BG/L records carry
	// microsecond precision; syslog-based records carry one-second
	// precision (the parser truncates accordingly).
	Time time.Time
	// System is the machine the record belongs to.
	System System
	// Source is the reporting component: a node name such as "sn373",
	// "tbird-admin1", or a BG/L location string. A corrupted source field
	// is preserved verbatim (see package corrupt).
	Source string
	// Facility is the syslog facility when known (empty otherwise).
	Facility string
	// Severity is the record's severity on its native scale, or
	// SeverityUnknown when the logging path does not record one (the
	// Thunderbird, Spirit, and Liberty configurations in the study did
	// not store severities).
	Severity Severity
	// Program is the reporting program tag ("kernel", "pbs_mom", ...),
	// when present.
	Program string
	// Body is the unstructured message body.
	Body string
	// Raw is the original wire form of the record, when it was parsed
	// from text. Generators leave it empty and renderers produce it.
	Raw string
	// Corrupted marks records whose wire form was damaged in transit
	// (truncated, overwritten, or mis-attributed). Parsers set it when
	// they detect damage; the generator's ground truth also sets it.
	Corrupted bool
}

// Clone returns a copy of the record.
func (r Record) Clone() Record { return r }

// Key returns a compact identity string used in debugging output.
func (r Record) Key() string {
	return fmt.Sprintf("%s/%s@%d#%d", r.System.ShortName(), r.Source, r.Time.Unix(), r.Seq)
}

// Before reports whether r should sort before other: by time, then by
// sequence number as a tiebreak.
func (r Record) Before(other Record) bool {
	if !r.Time.Equal(other.Time) {
		return r.Time.Before(other.Time)
	}
	return r.Seq < other.Seq
}

// SortRecords sorts records in place into canonical order (time, then
// sequence number). All downstream analyses assume this order.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Before(recs[j]) })
}

// IsSorted reports whether recs is in canonical order.
func IsSorted(recs []Record) bool {
	return sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].Before(recs[j]) })
}
