package logrec

import "testing"

func TestSeverityScaleMembership(t *testing.T) {
	for _, s := range SyslogSeverities() {
		if !s.IsSyslog() {
			t.Errorf("%v should be on the syslog scale", s)
		}
		if s.IsBGL() {
			t.Errorf("%v should not be on the BG/L scale", s)
		}
	}
	for _, s := range BGLSeverities() {
		if !s.IsBGL() {
			t.Errorf("%v should be on the BG/L scale", s)
		}
		if s.IsSyslog() {
			t.Errorf("%v should not be on the syslog scale", s)
		}
	}
	if SeverityUnknown.IsSyslog() || SeverityUnknown.IsBGL() {
		t.Error("SeverityUnknown belongs to no scale")
	}
}

func TestSeverityCounts(t *testing.T) {
	if got := len(SyslogSeverities()); got != 8 {
		t.Errorf("syslog scale has %d levels, want 8", got)
	}
	if got := len(BGLSeverities()); got != 6 {
		t.Errorf("BG/L scale has %d levels, want 6 (Table 5)", got)
	}
}

func TestParseSyslogSeverityRoundTrip(t *testing.T) {
	for _, s := range SyslogSeverities() {
		got, err := ParseSyslogSeverity(s.String())
		if err != nil {
			t.Fatalf("ParseSyslogSeverity(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
	if _, err := ParseSyslogSeverity("BOGUS"); err == nil {
		t.Error("expected error for unknown severity")
	}
}

func TestParseBGLSeverityRoundTrip(t *testing.T) {
	for _, s := range BGLSeverities() {
		got, err := ParseBGLSeverity(s.String())
		if err != nil {
			t.Fatalf("ParseBGLSeverity(%q): %v", s.String(), err)
		}
		// WARNING and INFO render identically on both scales, so the
		// parse maps to the BG/L member.
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
	if _, err := ParseBGLSeverity("CRIT"); err == nil {
		t.Error("CRIT is not a BG/L severity")
	}
}

func TestParseSeverityAliases(t *testing.T) {
	if s, err := ParseSyslogSeverity("panic"); err != nil || s != SevEmerg {
		t.Errorf("PANIC alias: got %v, %v", s, err)
	}
	if s, err := ParseSyslogSeverity("error"); err != nil || s != SevErr {
		t.Errorf("ERROR alias: got %v, %v", s, err)
	}
	if s, err := ParseBGLSeverity("warn"); err != nil || s != SevWarn {
		t.Errorf("WARN alias: got %v, %v", s, err)
	}
}

func TestSyslogPriority(t *testing.T) {
	cases := []struct {
		sev  Severity
		want int
	}{
		{SevEmerg, 0}, {SevAlert, 1}, {SevCrit, 2}, {SevErr, 3},
		{SevWarning, 4}, {SevNotice, 5}, {SevInfo, 6}, {SevDebug, 7},
	}
	for _, tc := range cases {
		got, ok := tc.sev.SyslogPriority()
		if !ok || got != tc.want {
			t.Errorf("%v.SyslogPriority() = %d,%v want %d,true", tc.sev, got, ok, tc.want)
		}
	}
	if _, ok := SevFatal.SyslogPriority(); ok {
		t.Error("BG/L severity must not have a syslog priority")
	}
	if _, ok := SeverityUnknown.SyslogPriority(); ok {
		t.Error("unknown severity must not have a syslog priority")
	}
}
