package query

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"whatsupersay/internal/store"
)

// Tests for the options-normalization invariant (one canonical form
// feeds both the cache key and the merge, so key-equal options are
// guaranteed byte-identical answers), the strict request-side quantile
// validation, and the late-cancellation regression in collect.

func TestNormalizeResolvesDefaultsAndScrubs(t *testing.T) {
	cases := []struct {
		name string
		in   AggregateOptions
		want AggregateOptions
	}{
		{"zero value", AggregateOptions{},
			AggregateOptions{TopK: DefaultTopK, Quantiles: DefaultQuantiles}},
		{"negative topk", AggregateOptions{TopK: -3},
			AggregateOptions{TopK: DefaultTopK, Quantiles: DefaultQuantiles}},
		{"explicit defaults unchanged", AggregateOptions{TopK: DefaultTopK, Quantiles: []float64{0.5, 0.9, 0.99}},
			AggregateOptions{TopK: DefaultTopK, Quantiles: DefaultQuantiles}},
		{"garbage quantiles scrubbed", AggregateOptions{TopK: 2, Quantiles: []float64{math.NaN(), -1, 0, 1.5, math.Inf(1), 0.7}},
			AggregateOptions{TopK: 2, Quantiles: []float64{0.7}}},
		{"all-garbage falls back", AggregateOptions{Quantiles: []float64{math.NaN(), 2}},
			AggregateOptions{TopK: DefaultTopK, Quantiles: DefaultQuantiles}},
		{"unsorted sorted", AggregateOptions{TopK: 1, Quantiles: []float64{0.9, 0.5}},
			AggregateOptions{TopK: 1, Quantiles: []float64{0.5, 0.9}}},
	}
	for _, tc := range cases {
		got := tc.in.Normalize()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Normalize(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
		// Normalize is idempotent: the canonical form maps to itself.
		if again := got.Normalize(); !reflect.DeepEqual(again, got) {
			t.Errorf("%s: Normalize not idempotent: %+v -> %+v", tc.name, got, again)
		}
	}
}

func TestValidateQuantilesStrict(t *testing.T) {
	bad := [][]float64{
		{math.NaN()},
		{math.Inf(1)},
		{math.Inf(-1)},
		{0},
		{-0.5},
		{1.0001},
		{0.9, 0.5}, // not increasing
		{0.5, 0.5}, // not strictly increasing
		{0.5, math.NaN()},
	}
	for _, qs := range bad {
		if err := ValidateQuantiles(qs); err == nil {
			t.Errorf("ValidateQuantiles(%v) accepted garbage", qs)
		}
	}
	good := [][]float64{
		nil,
		{0.5},
		{0.5, 0.9, 0.99},
		{1},
		{0.000001, 1},
	}
	for _, qs := range good {
		if err := ValidateQuantiles(qs); err != nil {
			t.Errorf("ValidateQuantiles(%v): %v", qs, err)
		}
	}
}

// TestCacheKeyNormalizesOptions pins the regression: option values that
// produce byte-identical answers (defaults spelled implicitly vs
// explicitly) must share one cache key, and genuinely different shapes
// must not.
func TestCacheKeyNormalizesOptions(t *testing.T) {
	f := store.Filter{Categories: []string{"KERNDTLB"}}
	base := Key(7, f, AggregateOptions{})
	same := []AggregateOptions{
		{TopK: DefaultTopK},
		{Quantiles: DefaultQuantiles},
		{TopK: DefaultTopK, Quantiles: []float64{0.5, 0.9, 0.99}},
		{TopK: -1, Quantiles: []float64{math.NaN()}}, // scrubs to defaults
	}
	for _, opts := range same {
		if Key(7, f, opts) != base {
			t.Errorf("Key(%+v) != Key(zero) — duplicate cache entries for one answer", opts)
		}
	}
	diff := []AggregateOptions{
		{TopK: 3},
		{Quantiles: []float64{0.5}},
		{TopK: DefaultTopK, Quantiles: []float64{0.5, 0.9}},
	}
	for _, opts := range diff {
		if Key(7, f, opts) == base {
			t.Errorf("Key(%+v) == Key(zero) — distinct answers share a key", opts)
		}
	}
	if Key(8, f, AggregateOptions{}) == base {
		t.Error("fingerprint not part of the key")
	}
}

// TestCacheSharesEntryAcrossEquivalentOptions drives the same property
// through the engine: implicit and explicit defaults hit one entry.
func TestCacheSharesEntryAcrossEquivalentOptions(t *testing.T) {
	st := openFixtureStore(t)
	eng := &Engine{Store: st}
	eng.EnableCache(8)
	forms := []AggregateOptions{
		{},
		{TopK: DefaultTopK},
		{Quantiles: append([]float64(nil), DefaultQuantiles...)},
		{TopK: DefaultTopK, Quantiles: append([]float64(nil), DefaultQuantiles...)},
	}
	var first []byte
	for i, opts := range forms {
		agg, _, err := eng.Aggregate(store.Filter{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := mustJSON(t, agg)
		if i == 0 {
			first = got
		} else if string(got) != string(first) {
			t.Fatalf("options form %d answer diverges:\n%s\n%s", i, got, first)
		}
	}
	if n := eng.CacheLen(); n != 1 {
		t.Fatalf("equivalent option spellings created %d cache entries, want 1", n)
	}
}

// cancelAtEndScanner is a Scanner whose deadline lapses at the instant
// the scan finishes: every entry is delivered, then the context is
// canceled before control returns to the engine.
type cancelAtEndScanner struct {
	entries []store.Entry
	cancel  context.CancelFunc
}

func (s cancelAtEndScanner) Scan(f store.Filter, fn func(store.Entry) error) (store.ScanStats, error) {
	st := store.ScanStats{}
	for _, en := range s.entries {
		if !f.Match(en) {
			continue
		}
		if err := fn(en); err != nil {
			return st, err
		}
		st.Matched++
	}
	s.cancel()
	return st, nil
}

func (s cancelAtEndScanner) Fingerprint() uint64 { return 1 }

// TestCompletedScanSurvivesLateCancellation is the regression test for
// the collect bug: a context that expires after the scan delivered its
// last entry must not discard the finished work. Before the fix, a
// post-scan ctx.Err() re-check turned complete answers into errors —
// in the sharded path that charged healthy shards with failures and
// degraded whole responses right at the deadline boundary.
func TestCompletedScanSurvivesLateCancellation(t *testing.T) {
	entries := fixture()

	ctx, cancel := context.WithCancel(context.Background())
	eng := &Engine{Store: cancelAtEndScanner{entries: entries, cancel: cancel}}
	got, stt, err := eng.SelectContext(ctx, store.Filter{}, 0)
	if err != nil {
		t.Fatalf("completed select discarded on late cancel: %v", err)
	}
	if len(got) != len(entries) || stt.Matched != len(entries) {
		t.Fatalf("select returned %d entries (stats %+v), want %d", len(got), stt, len(entries))
	}

	ctx, cancel = context.WithCancel(context.Background())
	eng = &Engine{Store: cancelAtEndScanner{entries: entries, cancel: cancel}}
	agg, _, err := eng.AggregateContext(ctx, store.Filter{}, AggregateOptions{})
	if err != nil {
		t.Fatalf("completed aggregate discarded on late cancel: %v", err)
	}
	want := Aggregate(entries, AggregateOptions{})
	if string(mustJSON(t, agg)) != string(mustJSON(t, want)) {
		t.Fatalf("late-cancel aggregate diverges:\n%s\n%s", mustJSON(t, agg), mustJSON(t, want))
	}

	// A cancellation the scan DOES observe still aborts: deliver enough
	// entries that the strided poll runs after the cancel.
	big := make([]store.Entry, 0, 2*ctxCheckStride)
	for len(big) < 2*ctxCheckStride {
		big = append(big, entries...)
	}
	doneCtx, doneCancel := context.WithCancel(context.Background())
	doneCancel()
	eng = &Engine{Store: cancelAtEndScanner{entries: big, cancel: func() {}}}
	if _, _, err := eng.SelectContext(doneCtx, store.Filter{}, 0); err == nil {
		t.Fatal("mid-scan cancellation was ignored")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
