package query

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"whatsupersay/internal/logrec"
	"whatsupersay/internal/store"
)

// The standing-query differential: after every mutation — append, seal,
// compaction, retention — a subscription's incrementally maintained
// aggregate must marshal to exactly the bytes a from-scratch Aggregate
// over the same filter and options produces. This is the contract that
// lets /api/subscribe serve materializations without rescans.

// standingEntries fabricates n entries starting at base spaced a second
// apart, cycling sources, categories, severities, and the kept flag so
// every aggregate dimension is populated.
func standingEntries(base time.Time, startSeq uint64, n int) []store.Entry {
	srcs := []string{"R23-M0", "R23-M1", "R24-M0"}
	cats := []string{"KERNDTLB", "APPSEV", "KERNMNTF"}
	sevs := []logrec.Severity{logrec.SevFatal, logrec.SevError, logrec.SevWarning}
	out := make([]store.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Entry{
			Record: logrec.Record{
				Seq:      startSeq + uint64(i),
				Time:     base.Add(time.Duration(i) * time.Second),
				System:   logrec.BlueGeneL,
				Source:   srcs[i%len(srcs)],
				Severity: sevs[i%len(sevs)],
				Body:     fmt.Sprintf("event %d", i),
			},
			Category: cats[i%len(cats)],
			Kept:     i%4 != 3,
		})
	}
	return out
}

// waitStandingClean polls until no subscription is dirty or mid-scan —
// rebuilds are asynchronous, so differential checks after compaction or
// retention must wait for the worker to install.
func waitStandingClean(t *testing.T, reg *Registry) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, info := range reg.List() {
			if info.Dirty {
				clean = false
				break
			}
		}
		if clean {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("standing rebuild did not settle: %+v", reg.List())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkStandingDifferential asserts every subscription's materialized
// answer is byte-identical to a from-scratch aggregate at this moment.
func checkStandingDifferential(t *testing.T, step string, st *store.Store, reg *Registry) {
	t.Helper()
	waitStandingClean(t, reg)
	for _, info := range reg.List() {
		got, ok := reg.AggregateOf(info.ID)
		if !ok {
			t.Fatalf("%s: subscription %s vanished", step, info.ID)
		}
		want, _, err := (&Engine{Store: st}).Aggregate(info.Filter, info.Options)
		if err != nil {
			t.Fatalf("%s: from-scratch aggregate: %v", step, err)
		}
		g, _ := json.Marshal(got)
		w, _ := json.Marshal(want)
		if string(g) != string(w) {
			t.Fatalf("%s: %s diverges from scratch\nincremental: %s\nscratch:     %s",
				step, info.ID, g, w)
		}
	}
}

func TestStandingDifferential(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.BlueGeneL, store.Options{FlushEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := NewRegistry(st)
	defer reg.Close()
	st.SetObserver(reg.OnMutation)

	base := time.Date(2005, 6, 1, 12, 0, 0, 0, time.UTC)
	kept := true
	filters := []struct {
		f    store.Filter
		opts AggregateOptions
	}{
		{store.Filter{}, AggregateOptions{}},
		{store.Filter{Categories: []string{"KERNDTLB"}}, AggregateOptions{TopK: 2}},
		{store.Filter{Kept: &kept, Severities: []logrec.Severity{logrec.SevFatal}}, AggregateOptions{Quantiles: []float64{0.5, 0.99}}},
		{store.Filter{Sources: []string{"R23-M0", "R24-M0"}}, AggregateOptions{TopK: 1, Quantiles: []float64{0.9}}},
		{store.Filter{From: base.Add(30 * time.Minute), To: base.Add(100 * time.Minute)}, AggregateOptions{}},
		{store.Filter{BodyContains: "event 1"}, AggregateOptions{}},
	}
	for _, fc := range filters {
		if _, err := reg.Register(fc.f, fc.opts, 0); err != nil {
			t.Fatal(err)
		}
	}
	checkStandingDifferential(t, "empty baseline", st, reg)

	// Appends, auto-sealing every 3 entries (append + seal mutations).
	if err := st.Append(standingEntries(base, 0, 7)...); err != nil {
		t.Fatal(err)
	}
	checkStandingDifferential(t, "append+autoseal", st, reg)

	// A second era, then an explicit seal.
	if err := st.Append(standingEntries(base.Add(40*time.Minute), 100, 5)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	checkStandingDifferential(t, "seal", st, reg)

	// Compaction merges the small segments; the entry set is unchanged
	// but the registry rebuilds anyway (layout invalidation).
	cst, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Compactions == 0 {
		t.Fatal("compaction did not run; test needs a real compact mutation")
	}
	checkStandingDifferential(t, "compaction rebuild", st, reg)

	// A newer era sealed, then retention drops the old merged segment.
	if err := st.Append(standingEntries(base.Add(3*time.Hour), 200, 6)...); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	rst, err := st.ApplyRetention(base.Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rst.SegmentsDropped == 0 {
		t.Fatal("retention dropped nothing; test needs a real retention mutation")
	}
	checkStandingDifferential(t, "retention rebuild", st, reg)

	// And keep appending after the rebuild — deltas resume on the new
	// baseline.
	if err := st.Append(standingEntries(base.Add(4*time.Hour), 300, 4)...); err != nil {
		t.Fatal(err)
	}
	checkStandingDifferential(t, "post-retention append", st, reg)
}

// TestStandingThresholdEdgeTriggered pins the latch semantics: one
// event per crossing, no repeats while the total stays above the line,
// re-armed only when retention drops it back below.
func TestStandingThresholdEdgeTriggered(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.BlueGeneL, store.Options{FlushEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := NewRegistry(st)
	defer reg.Close()
	st.SetObserver(reg.OnMutation)

	var mu sync.Mutex
	var events []StandingEvent
	reg.SetNotify(func(ev StandingEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(events)
	}

	base := time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)
	info, err := reg.Register(store.Filter{}, AggregateOptions{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 0 {
		t.Fatalf("event fired on empty registration: %d", n)
	}

	// Below the line: no event.
	if err := st.Append(standingEntries(base, 0, 3)...); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 0 {
		t.Fatalf("event fired below threshold: %d", n)
	}
	// Crossing: exactly one.
	if err := st.Append(standingEntries(base.Add(time.Minute), 10, 3)...); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Fatalf("crossing fired %d events, want 1", n)
	}
	mu.Lock()
	ev := events[0]
	mu.Unlock()
	if ev.SubscriptionID != info.ID || ev.Total != 6 || ev.Threshold != 5 || ev.Aggregate.Total != 6 {
		t.Fatalf("event payload: %+v", ev)
	}
	// Staying above the line: still one.
	if err := st.Append(standingEntries(base.Add(2*time.Minute), 20, 4)...); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Fatalf("post-crossing append fired again: %d events", n)
	}

	// Retention below the line re-arms the latch.
	if err := st.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(standingEntries(base.Add(24*time.Hour), 30, 2)...); err != nil {
		t.Fatal(err)
	}
	rst, err := st.ApplyRetention(base.Add(12 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rst.SegmentsDropped == 0 {
		t.Fatal("retention dropped nothing")
	}
	waitStandingClean(t, reg)
	if n := count(); n != 1 {
		t.Fatalf("retention itself fired: %d events", n)
	}
	// Cross again: second event.
	if err := st.Append(standingEntries(base.Add(25*time.Hour), 40, 4)...); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 2 {
		t.Fatalf("re-crossing fired %d events, want 2", n)
	}
}

// TestStandingRegisterDuringAppends races registration's fenced
// baseline against a concurrent append stream: whatever interleaving
// happens, the installed materialization must converge to the
// from-scratch answer once the stream quiesces (every entry lands
// exactly once — via the baseline scan, the install buffer, or a live
// delta).
func TestStandingRegisterDuringAppends(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.BlueGeneL, store.Options{FlushEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := NewRegistry(st)
	defer reg.Close()
	st.SetObserver(reg.OnMutation)

	base := time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC)
	const batches, per = 40, 7
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			batch := standingEntries(base.Add(time.Duration(i)*time.Minute), uint64(i*per), per)
			if err := st.Append(batch...); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Register mid-stream, several times.
	for i := 0; i < 5; i++ {
		if _, err := reg.Register(store.Filter{}, AggregateOptions{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	checkStandingDifferential(t, "quiesced", st, reg)

	total := batches * per
	for _, info := range reg.List() {
		if info.Total != total {
			t.Fatalf("%s total = %d, want %d", info.ID, info.Total, total)
		}
	}
}

// TestStandingUnregister checks removal and the subscription listing.
func TestStandingUnregister(t *testing.T) {
	st, err := store.Create(t.TempDir(), logrec.BlueGeneL, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := NewRegistry(st)
	defer reg.Close()
	st.SetObserver(reg.OnMutation)

	a, err := reg.Register(store.Filter{}, AggregateOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Register(store.Filter{}, AggregateOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reg.List()); got != 2 {
		t.Fatalf("listed %d, want 2", got)
	}
	if !reg.Unregister(a.ID) {
		t.Fatal("unregister known id failed")
	}
	if reg.Unregister(a.ID) {
		t.Fatal("double unregister succeeded")
	}
	list := reg.List()
	if len(list) != 1 || list[0].ID != b.ID {
		t.Fatalf("listing after unregister: %+v", list)
	}
	if _, ok := reg.AggregateOf(a.ID); ok {
		t.Fatal("aggregate of removed subscription still served")
	}
}
