package query

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"whatsupersay/internal/obs"
	"whatsupersay/internal/store"
)

// The aggregate cache makes repeated /api/aggregate calls on a quiet
// store O(1). Soundness rests on one invariant: an Aggregation is a
// pure function of (the store's matched entry set, the filter, the
// options), and store.Fingerprint() pins the entry set — it changes on
// every append, seal, compaction, and retention pass, and only then. So
// a cache entry keyed by (fingerprint, filter, options) can never serve
// a stale result: any mutation moves the store to a new fingerprint and
// the old entries simply stop being addressable (and age out via LRU).
// Compaction in particular invalidates by construction even though it
// does not change the entry set — a deliberate over-invalidation that
// keeps the fingerprint cheap (inventory identity, not content hash).
//
// ScanStats are cached alongside the aggregation: a cache hit reports
// the stats of the scan that populated the entry, which is exactly what
// a fresh scan of the (unchanged) store would report — so hit responses
// are byte-identical to miss responses, the property the differential
// tests pin.

// DefaultCacheSize is the aggregate cache's entry bound when enabling
// with size <= 0.
const DefaultCacheSize = 256

// Cache telemetry.
var (
	mCacheHits      = obs.Default.Counter("query_cache_hits_total")
	mCacheMisses    = obs.Default.Counter("query_cache_misses_total")
	mCacheEvictions = obs.Default.Counter("query_cache_evictions_total")
	gCacheEntries   = obs.Default.Gauge("query_cache_entries")
)

// aggCache is a bounded LRU over aggregate results.
type aggCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element, value *aggEntry
}

type aggEntry struct {
	key  string
	agg  Aggregation
	scan store.ScanStats
}

func newAggCache(max int) *aggCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &aggCache{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

func (c *aggCache) get(key string) (Aggregation, store.ScanStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		mCacheMisses.Add(1)
		return Aggregation{}, store.ScanStats{}, false
	}
	c.order.MoveToFront(el)
	mCacheHits.Add(1)
	en := el.Value.(*aggEntry)
	return en.agg, en.scan, true
}

func (c *aggCache) put(key string, agg Aggregation, scan store.ScanStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*aggEntry).agg, el.Value.(*aggEntry).scan = agg, scan
		return
	}
	c.entries[key] = c.order.PushFront(&aggEntry{key: key, agg: agg, scan: scan})
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*aggEntry).key)
		mCacheEvictions.Add(1)
	}
	gCacheEntries.Set(float64(c.order.Len()))
}

// Len returns the live entry count (test hook).
func (c *aggCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// EnableCache turns on the aggregate-result cache, bounded to size
// entries (DefaultCacheSize when size <= 0). Call before serving; an
// engine without a cache computes every aggregate from a scan.
func (e *Engine) EnableCache(size int) {
	e.cache = newAggCache(size)
}

// CacheLen reports the cache's live entry count (0 when disabled).
func (e *Engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}

// Cache is the aggregate cache in exported form, for layers above one
// engine. The shard router keys it by a *combined* fingerprint — the
// fold of only the shards a query fans out to — so a mutation on one
// shard invalidates exactly the cached queries whose source routing
// touched that shard, and source-pinned queries on quiet shards keep
// hitting while a hot shard churns.
type Cache struct{ c *aggCache }

// NewCache builds a bounded LRU aggregate cache (DefaultCacheSize
// entries when size <= 0).
func NewCache(size int) *Cache { return &Cache{c: newAggCache(size)} }

// Get returns the cached aggregation for key, if present.
func (c *Cache) Get(key string) (Aggregation, store.ScanStats, bool) { return c.c.get(key) }

// Put stores an aggregation under key, evicting LRU entries past the
// bound. Callers must only cache complete answers: a degraded partial
// result is a property of the moment's failures, not of the key.
func (c *Cache) Put(key string, agg Aggregation, st store.ScanStats) { c.c.put(key, agg, st) }

// Len reports the live entry count.
func (c *Cache) Len() int { return c.c.len() }

// Key canonicalizes (fingerprint, filter, options) into a cache key —
// the same encoding the engine's internal cache uses, exported so the
// shard router's combined-fingerprint cache shares its soundness
// argument.
func Key(fp uint64, f store.Filter, opts AggregateOptions) string { return cacheKey(fp, f, opts) }

// cacheKey canonicalizes (fingerprint, filter, options) into the cache
// key. Filter slices are order-sensitive here on purpose: two requests
// naming the same sources in different orders are semantically equal
// but key differently — a harmless extra miss, never a wrong hit.
// Options, by contrast, are normalized before keying: defaults are
// applied later in MergePartials, so TopK 0 and DefaultTopK (or nil
// and explicit default quantiles) produce byte-identical answers and
// must share one key — distinct keys would double entries and evict
// real ones.
func cacheKey(fp uint64, f store.Filter, opts AggregateOptions) string {
	opts = opts.Normalize()
	var b strings.Builder
	fmt.Fprintf(&b, "%016x|%d|%d|", fp, f.From.UnixNano(), f.To.UnixNano())
	if f.From.IsZero() {
		b.WriteString("z")
	}
	b.WriteByte('|')
	if f.To.IsZero() {
		b.WriteString("z")
	}
	b.WriteByte('|')
	for _, s := range f.Sources {
		fmt.Fprintf(&b, "s=%q,", s)
	}
	b.WriteByte('|')
	for _, c := range f.Categories {
		fmt.Fprintf(&b, "c=%q,", c)
	}
	b.WriteByte('|')
	for _, s := range f.Severities {
		fmt.Fprintf(&b, "v=%d,", s)
	}
	b.WriteByte('|')
	if f.Kept != nil {
		fmt.Fprintf(&b, "k=%t", *f.Kept)
	}
	b.WriteByte('|')
	if f.BodyContains != "" {
		fmt.Fprintf(&b, "b=%q", f.BodyContains)
	}
	fmt.Fprintf(&b, "|topk=%d|q=%v", opts.TopK, opts.Quantiles)
	return b.String()
}
